//===- examples/textual_ir.cpp - working with IR as text ------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the textual-IR workflow: author a function in the printer's
/// syntax (no frontend involved), parse it, run the full promotion
/// pipeline on it, and print the result. Useful for constructing CFG
/// shapes Mini-C cannot express — this example uses an irreducible
/// two-entry cycle, which becomes an improper interval whose promotion
/// preheader is the least common dominator of its entries (§4.1).
///
/// Build & run:  ./build/examples/textual_ir
///
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "pipeline/Pipeline.h"
#include <cstdio>

using namespace srp;

int main() {
  const char *Text = R"(
global g = 0
global which = 1
func void @main() {
entry:
  %w = ld [which]
  condbr %w, left, right
left:
  %g1 = ld [g]
  %s1 = add %g1, 1
  st [g], %s1
  %c1 = cmplt %s1, 40
  condbr %c1, right, out1
right:
  %g2 = ld [g]
  %s2 = add %g2, 2
  st [g], %s2
  %c2 = cmplt %s2, 40
  condbr %c2, left, out2
out1:
  print %s1
  ret
out2:
  print %s2
  ret
}
)";

  std::vector<std::string> Errors;
  auto M = parseIR(Text, Errors);
  if (!M) {
    for (const auto &E : Errors)
      std::fprintf(stderr, "parse error: %s\n", E.c_str());
    return 1;
  }
  std::printf("== parsed (an irreducible left<->right cycle) ==\n%s\n",
              toString(*M).c_str());

  PipelineOptions Opts;
  PipelineResult R = PipelineBuilder().options(Opts).run(std::move(M));
  if (!R.Ok) {
    for (const auto &E : R.Errors)
      std::fprintf(stderr, "pipeline error: %s\n", E.c_str());
    return 1;
  }

  std::printf("== after promotion ==\n%s\n",
              toString(*R.M->getFunction("main")).c_str());
  std::printf("program printed %lld; dynamic scalar memops %llu -> %llu\n",
              static_cast<long long>(R.RunAfter.Output.at(0)),
              static_cast<unsigned long long>(R.RunBefore.Counts.memOps()),
              static_cast<unsigned long long>(R.RunAfter.Counts.memOps()));
  std::printf("(improper intervals promote conservatively: behaviour is "
              "preserved either way)\n");
  return 0;
}
