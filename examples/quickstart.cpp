//===- examples/quickstart.cpp - five-minute tour of the library ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small Mini-C program, run the full promotion
/// pipeline (mem2reg -> canonical CFG -> memory SSA -> profile -> the
/// paper's interval/web promoter), and print what changed.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "ir/Printer.h"
#include <cstdio>

using namespace srp;

int main() {
  const char *Source = R"(
    int counter = 0;

    void tick() { counter = counter + 1; }

    void main() {
      int i;
      for (i = 0; i < 1000; i++) counter = counter + 2;
      tick();
      print(counter);
    }
  )";

  PipelineOptions Opts;
  Opts.Mode = PromotionMode::Paper;
  PipelineResult R = PipelineBuilder().options(Opts).run(Source);
  if (!R.Ok) {
    for (const auto &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  std::printf("== program output ==\n");
  for (int64_t V : R.RunAfter.Output)
    std::printf("  %lld\n", static_cast<long long>(V));

  std::printf("\n== what promotion did ==\n");
  std::printf("  webs considered / promoted : %u / %u\n",
              R.Promo.WebsConsidered, R.Promo.WebsPromoted);
  std::printf("  loads replaced by copies   : %u\n", R.Promo.LoadsReplaced);
  std::printf("  stores deleted             : %u\n", R.Promo.StoresDeleted);
  std::printf("  boundary loads inserted    : %u\n", R.Promo.LoadsInserted);
  std::printf("  boundary stores inserted   : %u\n", R.Promo.StoresInserted);

  std::printf("\n== dynamic memory operations (interpreted) ==\n");
  std::printf("  before: %llu loads, %llu stores\n",
              static_cast<unsigned long long>(
                  R.RunBefore.Counts.SingletonLoads),
              static_cast<unsigned long long>(
                  R.RunBefore.Counts.SingletonStores));
  std::printf("  after : %llu loads, %llu stores\n",
              static_cast<unsigned long long>(
                  R.RunAfter.Counts.SingletonLoads),
              static_cast<unsigned long long>(
                  R.RunAfter.Counts.SingletonStores));

  std::printf("\n== IR of main() after promotion ==\n%s\n",
              toString(*R.M->getFunction("main")).c_str());
  return 0;
}
