//===- examples/hotloop_globals.cpp - the paper's Figure 1 scenario -------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the paper's motivating example (Fig. 1): a global variable
/// incremented in a hot loop, followed by a loop of function calls. The
/// example prints the IR before and after promotion so you can see the
/// loop body's load/store of x replaced by register traffic with a single
/// load before the loop and a store after it, while the call loop is left
/// to read/write memory.
///
/// Build & run:  ./build/examples/hotloop_globals
///
//===----------------------------------------------------------------------===//

#include "analysis/CFGCanonicalize.h"
#include "analysis/Verifier.h"
#include "frontend/Lowering.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "profile/ProfileInfo.h"
#include "promotion/RegisterPromotion.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemorySSA.h"
#include <cstdio>

using namespace srp;

int main() {
  // The paper's Fig. 1(a), in Mini-C.
  const char *Source = R"(
    int x = 0;
    void foo() { x = x + 1; }
    void main() {
      int i;
      for (i = 0; i < 100; i++) x++;
      for (i = 0; i < 10; i++) foo();
      print(x);
    }
  )";

  std::vector<std::string> Errors;
  auto M = compileMiniC(Source, Errors);
  if (!M) {
    for (const auto &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  // Front half: locals to SSA, canonical CFG, memory SSA.
  struct FnState {
    Function *F;
    CanonicalCFG CFG;
  };
  std::vector<FnState> Fns;
  for (const auto &F : M->functions()) {
    DominatorTree DT(*F);
    promoteLocalsToSSA(*F, DT);
    Fns.push_back({F.get(), canonicalize(*F)});
  }
  for (auto &S : Fns)
    buildMemorySSA(*S.F, S.CFG.DT);

  std::printf("== main() before promotion (memory SSA form) ==\n%s\n",
              toString(*M->getFunction("main")).c_str());

  // Profile feedback from a real run.
  Interpreter Profiler(*M);
  ExecutionResult ProfileRun = Profiler.run();
  ProfileInfo PI = ProfileInfo::fromExecution(ProfileRun);

  for (auto &S : Fns)
    promoteRegisters(*S.F, S.CFG.DT, S.CFG.IT, PI, {});

  auto Errs = verify(*M);
  for (const auto &E : Errs)
    std::fprintf(stderr, "verifier: %s\n", E.c_str());

  std::printf("== main() after promotion ==\n%s\n",
              toString(*M->getFunction("main")).c_str());

  Interpreter Check(*M);
  ExecutionResult After = Check.run();
  std::printf("x at exit: %lld (expect 110)\n",
              static_cast<long long>(After.Output.at(0)));
  std::printf("dynamic loads+stores of scalars: %llu -> %llu\n",
              static_cast<unsigned long long>(ProfileRun.Counts.memOps()),
              static_cast<unsigned long long>(After.Counts.memOps()));
  std::printf("(the paper reduces this example from 200 memory operations "
              "to 2)\n");
  return Errs.empty() && After.Ok ? 0 : 1;
}
