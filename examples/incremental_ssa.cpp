//===- examples/incremental_ssa.cpp - the paper's Example 2 (Fig. 9/10) ---===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the incremental SSA updater on the paper's Example 2 directly:
/// a six-block CFG with one existing definition of x (in b1) and three
/// uses (b3, b4, b5); register promotion then clones two stores into b2
/// and b3. The batch updater places phis at the iterated dominance
/// frontier, renames each use to its reaching definition, and deletes the
/// definitions the cloning made dead — all with ONE IDF computation.
///
/// Build & run:  ./build/examples/incremental_ssa
///
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ssa/SSAUpdater.h"
#include <cstdio>

using namespace srp;

int main() {
  Module M;
  MemoryObject *X = M.createGlobal("x", 0);
  Function *F = M.createFunction("f", Type::Void);

  //        b1 (x0 = st)
  //       /  \ .
  //      b2    b3 (use)
  //     /  \     |
  //    b4   \    |        b2 -> b5 directly, as in the paper's figure
  //     \    \   |
  //      ----- b5 (use)
  //             |
  //            b6
  BasicBlock *B1 = F->createBlock("b1");
  BasicBlock *B2 = F->createBlock("b2");
  BasicBlock *B3 = F->createBlock("b3");
  BasicBlock *B4 = F->createBlock("b4");
  BasicBlock *B5 = F->createBlock("b5");
  BasicBlock *B6 = F->createBlock("b6");

  IRBuilder B(B1);
  StoreInst *St0 = B.store(X, M.constant(10));
  B.condBr(M.constant(1), B2, B3);
  B.setInsertPoint(B2);
  B.condBr(M.constant(1), B4, B5);
  B.setInsertPoint(B3);
  LoadInst *U3 = B.load(X, "u3");
  B.print(U3);
  B.br(B5);
  B.setInsertPoint(B4);
  LoadInst *U4 = B.load(X, "u4");
  B.print(U4);
  B.br(B5);
  B.setInsertPoint(B5);
  LoadInst *U5 = B.load(X, "u5");
  B.print(U5);
  B.br(B6);
  B.setInsertPoint(B6);
  B.ret();

  // Memory SSA by hand: x0 defined in b1, used by all three loads.
  MemoryName *Entry = F->createMemoryName(X);
  F->setEntryMemoryName(X, Entry);
  MemoryName *X0 = F->createMemoryName(X);
  St0->addMemDef(X0);
  U3->addMemOperand(X0);
  U4->addMemOperand(X0);
  U5->addMemOperand(X0);

  std::printf("== before cloning ==\n%s\n", toString(*F).c_str());

  // "Assume register promotion creates two stores: one in b2 and the
  // other in b3" — clone them and let the updater repair SSA form.
  auto clone = [&](BasicBlock *BB, int64_t V) {
    auto St = std::make_unique<StoreInst>(X, M.constant(V));
    MemoryName *N = F->createMemoryName(X);
    St->addMemDef(N);
    BB->prepend(std::move(St));
    return N;
  };
  MemoryName *X1 = clone(B2, 20);
  MemoryName *X2 = clone(B3, 30);

  std::printf("== after inserting clones (SSA temporarily stale) ==\n%s\n",
              toString(*F).c_str());

  DominatorTree DT(*F);
  SSAUpdateStats Stats = updateSSAForClonedResources(*F, DT, {X0}, {X1, X2});

  std::printf("== after updateSSAForClonedResources ==\n%s\n",
              toString(*F).c_str());
  std::printf("IDF computations : %u (one batch, not one per clone)\n",
              Stats.IDFComputations);
  std::printf("phis inserted    : %u (at the iterated dominance frontier)\n",
              Stats.PhisInserted);
  std::printf("phis deleted     : %u (the dead one in b6)\n",
              Stats.PhisDeleted);
  std::printf("defs deleted     : %u (the original store in b1 died)\n",
              Stats.DefsDeleted);
  std::printf("uses renamed     : %u\n", Stats.UsesRenamed);
  return 0;
}
