//===- examples/cold_call_path.cpp - the paper's Figure 7/8 scenario ------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates profile-driven partial promotion (the paper's Fig. 7/8):
/// a loop increments a global on every iteration but calls a function only
/// on a rarely taken path. Complete promotion is impossible (the call may
/// read and write the global), yet the promoter keeps the HOT path free of
/// loads/stores by placing a compensating store before the call and a
/// reload after it — both on the COLD path.
///
/// The example runs the same program with two different profiles (cold
/// call vs hot call) and shows how the placement decision flips.
///
/// Build & run:  ./build/examples/cold_call_path
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "ir/Printer.h"
#include <cstdio>

using namespace srp;

namespace {

/// The Fig. 7 shape, with the branch condition controlled by `cutoff` so
/// the profile can make the call path cold (cutoff small) or hot (cutoff
/// large).
std::string program(int Cutoff) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf), R"(
    int x = 0;
    void foo() { x = x | 1; }
    void main() {
      int i;
      for (i = 0; i < 100; i++) {
        x++;
        if (x < %d) foo();
      }
      print(x);
    }
  )",
                Cutoff);
  return Buf;
}

void runCase(const char *Label, int Cutoff) {
  PipelineOptions Opts;
  Opts.Mode = PromotionMode::Paper;
  PipelineResult R = PipelineBuilder().options(Opts).run(program(Cutoff));
  if (!R.Ok) {
    for (const auto &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return;
  }
  std::printf("---- %s (call taken on x < %d) ----\n", Label, Cutoff);
  std::printf("  webs promoted: %u, stores eliminated in: %u webs\n",
              R.Promo.WebsPromoted, R.Promo.WebsStoreEliminated);
  std::printf("  compensating stores inserted: %u, reloads inserted: %u\n",
              R.Promo.StoresInserted, R.Promo.LoadsInserted);
  std::printf("  dynamic scalar memops: %llu -> %llu\n",
              static_cast<unsigned long long>(R.RunBefore.Counts.memOps()),
              static_cast<unsigned long long>(R.RunAfter.Counts.memOps()));
  std::printf("  program prints %lld\n\n",
              static_cast<long long>(R.RunAfter.Output.at(0)));
}

} // namespace

int main() {
  std::printf("Profile-driven load/store placement (paper Fig. 7/8)\n\n");
  // Cold call path: the branch is taken only while x < 30, i.e. in the
  // first few iterations. Promotion pays for loads/stores on that path
  // to clear 100 hot-path loads and stores.
  runCase("cold call path", 30);
  // Hot call path: the call happens on (almost) every iteration; the
  // compensation would cost as much as it saves, so the profit model
  // keeps the variable in memory on that path.
  runCase("hot call path", 1000);

  std::printf("With the cold profile the hot loop runs entirely in a "
              "register;\nwith the hot profile the promoter backs off "
              "instead of slowing the loop down.\n");
  return 0;
}
