//===- examples/register_pressure.cpp - pressure vs memops trade-off ------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the trade-off the paper's Table 3 quantifies: promotion removes
/// memory operations but raises register pressure, because every promoted
/// variable becomes a live virtual register across its interval. This
/// example promotes an increasing number of globals in the same loop and
/// reports, for each configuration, the dynamic memory operations and the
/// colors needed to color the interference graph of main().
///
/// Build & run:  ./build/examples/register_pressure
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "regalloc/Coloring.h"
#include <cstdio>
#include <sstream>
#include <string>

using namespace srp;

namespace {

/// A loop that updates the first \p Hot of eight globals each iteration.
/// The call to flush() after the loop fences the epilogue so promotion is
/// scoped to the loop and pressure tracks the hot-variable count.
std::string program(unsigned Hot) {
  std::ostringstream OS;
  for (unsigned I = 0; I != 8; ++I)
    OS << "int g" << I << " = " << I << ";\n";
  OS << "int flushes = 0;\n";
  OS << "void flush() { flushes = flushes + 1; }\n";
  OS << "void main() {\n  int i;\n  for (i = 0; i < 50; i++) {\n";
  for (unsigned I = 0; I != Hot; ++I)
    OS << "    g" << I << " = g" << I << " + " << (I + 1) << ";\n";
  OS << "  }\n  flush();\n";
  for (unsigned I = 0; I != 8; ++I)
    OS << "  print(g" << I << ");\n";
  OS << "  flush();\n}\n";
  return OS.str();
}

} // namespace

int main() {
  std::printf("Promotion raises register pressure as it removes memops "
              "(cf. paper Table 3)\n\n");
  std::printf("%-10s %12s %12s %10s %10s\n", "hot vars", "memops-none",
              "memops-promo", "colors-none", "colors-promo");

  for (unsigned Hot = 1; Hot <= 8; ++Hot) {
    std::string Src = program(Hot);

    PipelineOptions None;
    None.Mode = PromotionMode::None;
    PipelineResult R0 = PipelineBuilder().options(None).run(Src);

    PipelineOptions Promo;
    Promo.Mode = PromotionMode::Paper;
    PipelineResult R1 = PipelineBuilder().options(Promo).run(Src);

    if (!R0.Ok || !R1.Ok) {
      std::fprintf(stderr, "pipeline failed for Hot=%u\n", Hot);
      return 1;
    }

    PressureReport P0 = measureRegisterPressure(*R0.M->getFunction("main"));
    PressureReport P1 = measureRegisterPressure(*R1.M->getFunction("main"));
    std::printf("%-10u %12llu %12llu %10u %10u\n", Hot,
                static_cast<unsigned long long>(R0.RunAfter.Counts.memOps()),
                static_cast<unsigned long long>(R1.RunAfter.Counts.memOps()),
                P0.ColorsNeeded, P1.ColorsNeeded);
  }

  std::printf("\nEach promoted global buys ~100 fewer memory operations "
              "for one more color.\n");
  return 0;
}
