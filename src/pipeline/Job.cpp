//===- pipeline/Job.cpp - First-class compile jobs ------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Job.h"
#include "analysis/AnalysisManager.h"
#include "ir/IRParser.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <thread>

using namespace srp;

namespace {
SRP_STATISTIC(NumParallelJobs, "pipeline", "parallel-jobs",
              "Jobs executed through runPipelineParallel");
SRP_HISTOGRAM(JobMicros, "pipeline", "job-micros",
              "End-to-end wall time of one compile job (us)");

/// The single execution point every consumer funnels through (one-shot
/// CLI, parallel driver, server workers): runs the pipeline with the
/// job's observability capture armed on the calling thread, so remarks
/// and trace events from concurrent jobs never interleave, and the bytes
/// a `--connect` client receives come from the same code path as a local
/// run's.
PipelineResult executeJob(const CompileJob &Job) {
  std::optional<RemarkEngine> RE;
  std::optional<ScopedThreadRemarkSink> SinkGuard;
  std::optional<trace::LocalCapture> Capture;
  if (Job.WantRemarks) {
    RE.emplace();
    RE->setPassFilter(Job.RemarksFilter);
    SinkGuard.emplace(*RE);
  }
  if (Job.WantTrace)
    Capture.emplace();

  PipelineResult R;
  PipelineBuilder B;
  B.options(Job.Opts);
  if (Job.InputIsIR) {
    auto M = parseIR(Job.Source.str(), R.Errors);
    if (M)
      R = B.run(std::move(M));
  } else {
    R = B.run(Job.Source);
  }

  if (Job.WantRemarks) {
    R.Remarks = RE->remarks();
    R.RemarksCaptured = true;
  }
  if (Job.WantTrace)
    R.TraceJson = Capture->toChromeJson();
  JobMicros.observeSeconds(R.WallSeconds);
  return R;
}
} // namespace

JobResult srp::runCompileJob(const CompileJob &Job) {
  JobResult Out;
  Out.Pipeline = executeJob(Job);
  Out.ReportJson = resultToJson(Out.Pipeline, Job);
  return Out;
}

uint64_t srp::finalMemoryHash(const ExecutionResult &R) {
  // Order-independent: hash each (object, cells) record separately and
  // combine commutatively, because FinalMemory is an unordered_map.
  auto fnv = [](uint64_t H, uint64_t V) {
    for (int B = 0; B != 8; ++B) {
      H ^= (V >> (B * 8)) & 0xFF;
      H *= 1099511628211ull;
    }
    return H;
  };
  uint64_t Acc = 0;
  for (const auto &[Obj, Cells] : R.FinalMemory) {
    uint64_t H = fnv(14695981039346656037ull, Obj);
    H = fnv(H, Cells.size());
    for (int64_t C : Cells)
      H = fnv(H, static_cast<uint64_t>(C));
    Acc += H * 0x9E3779B97F4A7C15ull; // commutative combine
  }
  return Acc;
}

std::string srp::pipelineOptionsKey(const PipelineOptions &Opts) {
  std::ostringstream OS;
  OS << "mode=" << promotionModeName(Opts.Mode)
     << ";entry=" << Opts.EntryFunction
     << ";verify=" << (Opts.VerifyEachStep
                           ? strictnessName(Opts.VerifyStrictness)
                           : strictnessName(Strictness::Off))
     << ";pressure=" << (Opts.MeasurePressure ? 1 : 0)
     << ";nocache=" << (Opts.DisableAnalysisCache ? 1 : 0)
     << ";interp=" << interpEngineName(Opts.Interp)
     << ";jit=" << Opts.JitThreshold
     << ";boundary=" << (Opts.Promo.CountBoundaryOps ? 1 : 0)
     << ";web=" << (Opts.Promo.WebGranularity ? 1 : 0)
     << ";store-elim=" << (Opts.Promo.AllowStoreElimination ? 1 : 0)
     << ";threshold=" << Opts.Promo.ProfitThreshold
     << ";direct-stores=" << (Opts.Promo.DirectAliasedStores ? 1 : 0);
  return OS.str();
}

namespace {
/// Canonical spelling of a job's observability requests. Folded into the
/// fingerprint and the cache key — a cached entry must carry exactly the
/// capture (remarks on/off, filter, trace on/off) its submission asked
/// for, or a hit could replay the wrong bytes — but kept out of
/// pipelineOptionsKey, which stays purely semantic.
std::string observabilityKey(const CompileJob &Job) {
  return std::string("remarks=") + (Job.WantRemarks ? "1" : "0") +
         ";filter=" + Job.RemarksFilter +
         ";trace=" + (Job.WantTrace ? "1" : "0");
}
} // namespace

uint64_t srp::jobFingerprint(const CompileJob &Job) {
  auto fnv = [](uint64_t H, const std::string &S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= 1099511628211ull;
    }
    return H;
  };
  uint64_t H = 14695981039346656037ull;
  H = fnv(H, Job.Source.str());
  H = fnv(H, pipelineOptionsKey(Job.Opts));
  H = fnv(H, Job.InputIsIR ? "ir" : "mc");
  H = fnv(H, observabilityKey(Job));
  return H;
}

std::string srp::resultToJson(const PipelineResult &R,
                              const CompileJob &Job) {
  const PipelineOptions &Opts = Job.Opts;
  std::ostringstream OS;
  OS << "{\n"
     << "  \"file\": \"" << jsonEscape(Job.Name) << "\",\n"
     << "  \"mode\": \"" << promotionModeName(Opts.Mode) << "\",\n"
     << "  \"entry\": \"" << jsonEscape(Opts.EntryFunction) << "\",\n"
     << "  \"ok\": " << (R.Ok ? "true" : "false") << ",\n"
     << "  \"errors\": [";
  for (size_t I = 0; I != R.Errors.size(); ++I)
    OS << (I ? ", " : "") << "\"" << jsonEscape(R.Errors[I]) << "\"";
  OS << "],\n"
     << "  \"exit_value\": " << R.RunAfter.ExitValue << ",\n"
     << "  \"passes\": " << passRecordsToJson(R.Passes, 1) << ",\n"
     << "  \"statistics\": " << stats::toJson(stats::snapshot(), 1)
     << ",\n"
     << "  \"telemetry\": " << stats::metricsToJson(stats::metrics(), 1)
     << ",\n"
     << "  \"analysis\": " << analysisCacheStatsToJson(R.Analysis, 1)
     << ",\n"
     << "  \"interp\": {\n"
     << "    \"engine\": \"" << interpEngineName(Opts.Interp) << "\",\n"
     << "    \"functions_decoded\": "
     << (R.RunBefore.Interp.FunctionsDecoded +
         R.RunAfter.Interp.FunctionsDecoded)
     << ",\n"
     << "    \"decode_cache_hits\": "
     << (R.RunBefore.Interp.DecodeCacheHits +
         R.RunAfter.Interp.DecodeCacheHits)
     << ",\n"
     << "    \"walk_fallback_calls\": "
     << (R.RunBefore.Interp.WalkFallbackCalls +
         R.RunAfter.Interp.WalkFallbackCalls)
     << ",\n"
     << "    \"functions_compiled\": "
     << (R.RunBefore.Interp.FunctionsCompiled +
         R.RunAfter.Interp.FunctionsCompiled)
     << ",\n"
     << "    \"native_calls\": "
     << (R.RunBefore.Interp.NativeCalls + R.RunAfter.Interp.NativeCalls)
     << ",\n"
     << "    \"deopts\": "
     << (R.RunBefore.Interp.Deopts + R.RunAfter.Interp.Deopts) << ",\n"
     << "    \"decode_seconds\": "
     << (R.RunBefore.Interp.DecodeSeconds + R.RunAfter.Interp.DecodeSeconds)
     << ",\n"
     << "    \"compile_seconds\": "
     << (R.RunBefore.Interp.CompileSeconds + R.RunAfter.Interp.CompileSeconds)
     << ",\n"
     << "    \"profile_exec_seconds\": " << R.RunBefore.Interp.ExecSeconds
     << ",\n"
     << "    \"measure_exec_seconds\": " << R.RunAfter.Interp.ExecSeconds
     << "\n"
     << "  },\n"
     << "  \"verification\": {\n"
     << "    \"strictness\": \""
     << strictnessName(Opts.VerifyEachStep ? Opts.VerifyStrictness
                                           : Strictness::Off)
     << "\",\n"
     << "    \"passes_verified\": " << R.Verify.PassesVerified << ",\n"
     << "    \"checks_run\": " << R.Verify.ChecksRun << ",\n"
     << "    \"diagnostics\": " << R.Verify.Diagnostics << ",\n"
     << "    \"wall_seconds\": " << R.Verify.WallSeconds << "\n"
     << "  },\n"
     << "  \"validation\": {\n"
     << "    \"passes_validated\": " << R.Verify.Validation.PassesValidated
     << ",\n"
     << "    \"functions_validated\": "
     << R.Verify.Validation.FunctionsValidated << ",\n"
     << "    \"functions_skipped_identical\": "
     << R.Verify.Validation.FunctionsSkippedIdentical << ",\n"
     << "    \"effect_pairs_matched\": "
     << R.Verify.Validation.EffectPairsMatched << ",\n"
     << "    \"obligations_proven\": "
     << R.Verify.Validation.ObligationsProven << ",\n"
     << "    \"obligations_failed\": "
     << R.Verify.Validation.ObligationsFailed << ",\n"
     << "    \"webs_checked\": " << R.Verify.Validation.WebsChecked << ",\n"
     << "    \"webs_proven\": " << R.Verify.Validation.WebsProven << ",\n"
     << "    \"wall_seconds\": " << R.Verify.Validation.WallSeconds << "\n"
     << "  },\n"
     << "  \"counts\": {\n"
     << "    \"static_loads_before\": " << R.StaticBefore.Loads << ",\n"
     << "    \"static_loads_after\": " << R.StaticAfter.Loads << ",\n"
     << "    \"static_stores_before\": " << R.StaticBefore.Stores << ",\n"
     << "    \"static_stores_after\": " << R.StaticAfter.Stores << ",\n"
     << "    \"dynamic_loads_before\": "
     << R.RunBefore.Counts.SingletonLoads << ",\n"
     << "    \"dynamic_loads_after\": " << R.RunAfter.Counts.SingletonLoads
     << ",\n"
     << "    \"dynamic_stores_before\": "
     << R.RunBefore.Counts.SingletonStores << ",\n"
     << "    \"dynamic_stores_after\": "
     << R.RunAfter.Counts.SingletonStores << "\n"
     << "  },\n"
     << "  \"exec\": {\n"
     << "    \"output\": [";
  for (size_t I = 0; I != R.RunAfter.Output.size(); ++I)
    OS << (I ? ", " : "") << R.RunAfter.Output[I];
  {
    char HashBuf[32];
    std::snprintf(HashBuf, sizeof(HashBuf), "%016llx",
                  static_cast<unsigned long long>(finalMemoryHash(R.RunAfter)));
    OS << "],\n"
       << "    \"final_memory_hash\": \"" << HashBuf << "\",\n"
       << "    \"wall_seconds\": " << R.WallSeconds << "\n"
       << "  },\n";
  }
  OS << "  \"pressure\": {\n"
     << "    \"values\": " << R.Pressure.NumValues << ",\n"
     << "    \"edges\": " << R.Pressure.Edges << ",\n"
     << "    \"colors_needed\": " << R.Pressure.ColorsNeeded << ",\n"
     << "    \"max_live\": " << R.Pressure.MaxLive << "\n"
     << "  },\n"
     << "  \"remarks\": ";
  if (R.RemarksCaptured)
    OS << remarksToJson(R.Remarks, 1);
  else
    OS << "null";
  OS << ",\n"
     << "  \"trace\": ";
  if (!R.TraceJson.empty()) {
    // The capture is a complete JSON document ending in '\n'; embed it
    // verbatim minus the terminator (its own inner layout is already
    // byte-stable, which is what matters for report diffs).
    std::string T = R.TraceJson;
    while (!T.empty() && T.back() == '\n')
      T.pop_back();
    OS << T;
  } else {
    OS << "null";
  }
  OS << "\n"
     << "}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===
// JobCache
//===----------------------------------------------------------------------===

std::string JobCache::keyOf(const CompileJob &Job) const {
  // Fingerprint plus the exact options/observability keys and source
  // length: a 64-bit hash collision alone can never alias two jobs.
  return std::to_string(jobFingerprint(Job)) + "#" +
         std::to_string(Job.Source.str().size()) + "#" +
         (Job.InputIsIR ? "ir#" : "mc#") + pipelineOptionsKey(Job.Opts) +
         "#" + observabilityKey(Job);
}

JobCache::EntryPtr JobCache::lookup(const CompileJob &Job) {
  std::string Key = keyOf(Job);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second.Pos);
  return It->second.E;
}

void JobCache::insert(const CompileJob &Job, EntryPtr E) {
  if (!E)
    return;
  std::string Key = keyOf(Job);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second.E = std::move(E);
    LRU.splice(LRU.begin(), LRU, It->second.Pos);
    return;
  }
  while (Map.size() >= Capacity) {
    Map.erase(LRU.back());
    LRU.pop_back();
    ++Stats.Evictions;
  }
  LRU.push_front(Key);
  Map.emplace(Key, Slot{std::move(E), LRU.begin()});
  ++Stats.Insertions;
}

JobCache::EntryPtr JobCache::makeEntry(const CompileJob &Job,
                                       const PipelineResult &R,
                                       const std::string &ReportJson) {
  (void)Job;
  auto E = std::make_shared<Entry>();
  E->Ok = R.Ok;
  E->ExitValue = R.RunAfter.ExitValue;
  E->Output = R.RunAfter.Output;
  E->FinalMemoryHash = finalMemoryHash(R.RunAfter);
  E->Errors = R.Errors;
  E->ReportJson = ReportJson;
  if (R.RemarksCaptured)
    E->RemarksJson = remarksToJson(R.Remarks);
  E->TraceJson = R.TraceJson;
  return E;
}

JobCacheStats JobCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t JobCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

//===----------------------------------------------------------------------===
// Parallel driver
//===----------------------------------------------------------------------===

std::vector<PipelineResult>
srp::runPipelineParallel(const std::vector<CompileJob> &Jobs,
                         unsigned Threads, const JobDoneFn &OnDone,
                         const char *TrackPrefix) {
  std::vector<PipelineResult> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = std::min<unsigned>(Threads, static_cast<unsigned>(Jobs.size()));

  std::atomic<size_t> Next{0};
  std::atomic<int64_t> Completed{0};
  // Pooled workers name their trace track and pin it with a start marker
  // (a worker that loses every queue race would otherwise leave no track).
  // The single-threaded path stays on the caller's track.
  auto Worker = [&](unsigned WorkerId, bool Pooled) {
    if (Pooled && trace::enabled()) {
      trace::setThreadName(std::string(TrackPrefix) + "/worker-" +
                           std::to_string(WorkerId));
      trace::instant("job", "worker-start");
    }
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Jobs.size();
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      {
        TraceSpan Span;
        if (trace::enabled())
          Span.begin("job", Jobs[I].Name);
        Results[I] = executeJob(Jobs[I]);
      }
      ++NumParallelJobs;
      if (OnDone)
        OnDone(I, Results[I]);
      const int64_t Done = Completed.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled())
        trace::counter("job", "jobs-completed", "jobs", Done + 1);
    }
  };

  if (Threads <= 1) {
    Worker(0, /*Pooled=*/false);
    return Results;
  }

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back(Worker, T, /*Pooled=*/true);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
