//===- pipeline/Pipeline.cpp - End-to-end compilation driver -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "analysis/CFGCanonicalize.h"
#include "frontend/Lowering.h"
#include "ir/Module.h"
#include "pipeline/PassManager.h"
#include "profile/ProfileInfo.h"
#include "promotion/Cleanup.h"
#include "promotion/RegisterPromotion.h"
#include "regalloc/Coloring.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemoryOpt.h"
#include "ssa/MemorySSA.h"
#include "support/Statistics.h"
#include <algorithm>
#include <atomic>
#include <thread>

using namespace srp;

namespace {
SRP_STATISTIC(NumPipelineRuns, "pipeline", "runs",
              "Pipeline executions (all modes)");
SRP_STATISTIC(NumParallelJobs, "pipeline", "parallel-jobs",
              "Jobs executed through runPipelineParallel");
} // namespace

const char *srp::promotionModeName(PromotionMode Mode) {
  switch (Mode) {
  case PromotionMode::None:
    return "none";
  case PromotionMode::Paper:
    return "paper";
  case PromotionMode::PaperNoProfile:
    return "noprofile";
  case PromotionMode::LoopBaseline:
    return "baseline";
  case PromotionMode::Superblock:
    return "superblock";
  case PromotionMode::MemOptOnly:
    return "memopt";
  }
  return "unknown";
}

StaticCounts srp::countStaticMemOps(const Function &F) {
  StaticCounts C;
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      switch (I->kind()) {
      case Value::Kind::Load:
        ++C.Loads;
        break;
      case Value::Kind::Store:
        ++C.Stores;
        break;
      case Value::Kind::PtrLoad:
      case Value::Kind::PtrStore:
      case Value::Kind::ArrayLoad:
      case Value::Kind::ArrayStore:
        ++C.AliasedOps;
        break;
      default:
        break;
      }
    }
  }
  return C;
}

StaticCounts srp::countStaticMemOps(const Module &M) {
  StaticCounts C;
  for (const auto &F : M.functions()) {
    StaticCounts FC = countStaticMemOps(*F);
    C.Loads += FC.Loads;
    C.Stores += FC.Stores;
    C.AliasedOps += FC.AliasedOps;
  }
  return C;
}

PipelineResult srp::runPipeline(const std::string &Source,
                                const PipelineOptions &Opts) {
  PipelineResult R;
  auto M = compileMiniC(Source, R.Errors);
  if (!M)
    return R;
  return runPipeline(std::move(M), Opts);
}

PipelineResult srp::runPipeline(std::unique_ptr<Module> M,
                                const PipelineOptions &Opts) {
  PipelineResult R;
  R.M = std::move(M);
  Module &Mod = *R.M;
  ++NumPipelineRuns;

  // Per-function analysis state shared between passes. Built by the
  // canonicalise pass; the promoters rely on the CFG shape (and hence DT
  // and IT) staying fixed from then on.
  struct FnState {
    Function *F;
    CanonicalCFG CFG;
  };
  std::vector<FnState> Fns;

  PassManagerOptions PMOpts;
  PMOpts.VerifyEachPass = Opts.VerifyEachStep;
  PassManager PM(PMOpts);

  // -- Common front half: locals to SSA, canonical CFG shape. ------------
  PM.addPass("mem2reg", [](Module &Mod, std::vector<std::string> &) {
    for (const auto &F : Mod.functions()) {
      DominatorTree DT(*F);
      promoteLocalsToSSA(*F, DT);
    }
    return true;
  });

  PM.addPass("canonicalise", [&](Module &Mod, std::vector<std::string> &) {
    for (const auto &F : Mod.functions())
      Fns.push_back(FnState{F.get(), canonicalize(*F)});
    R.StaticBefore = countStaticMemOps(Mod);
    return true;
  });

  // -- Profile run ("before" measurement doubles as the profile input). --
  PM.addPass("profile", [&](Module &Mod, std::vector<std::string> &Errors) {
    Interpreter Interp(Mod);
    R.RunBefore = Interp.run(Opts.EntryFunction);
    if (!R.RunBefore.Ok) {
      Errors.push_back("profile run failed: " + R.RunBefore.Error);
      return false;
    }
    return true;
  });

  // -- Mode-specific transformation stages. ------------------------------
  bool NeedsMemorySSA = Opts.Mode == PromotionMode::Paper ||
                        Opts.Mode == PromotionMode::PaperNoProfile ||
                        Opts.Mode == PromotionMode::MemOptOnly;
  if (NeedsMemorySSA)
    PM.addPass("memory-ssa", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns)
        buildMemorySSA(*S.F, S.CFG.DT);
      return true;
    });

  switch (Opts.Mode) {
  case PromotionMode::None:
    break;
  case PromotionMode::Paper:
  case PromotionMode::PaperNoProfile:
    PM.addPass("promotion", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns) {
        ProfileInfo PI = Opts.Mode == PromotionMode::Paper
                             ? ProfileInfo::fromExecution(R.RunBefore)
                             : ProfileInfo::estimate(*S.F, S.CFG.IT);
        R.Promo +=
            promoteRegisters(*S.F, S.CFG.DT, S.CFG.IT, PI, Opts.Promo);
      }
      return true;
    });
    break;
  case PromotionMode::LoopBaseline:
    PM.addPass("promotion", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns)
        R.Baseline += promoteLoopsBaseline(*S.F);
      return true;
    });
    break;
  case PromotionMode::Superblock:
    PM.addPass("promotion", [&](Module &, std::vector<std::string> &) {
      ProfileInfo PI = ProfileInfo::fromExecution(R.RunBefore);
      for (FnState &S : Fns)
        R.Superblock += promoteSuperblocks(*S.F, PI);
      return true;
    });
    break;
  case PromotionMode::MemOptOnly:
    PM.addPass("promotion", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns)
        optimizeMemorySSA(*S.F, S.CFG.DT);
      return true;
    });
    break;
  }

  // The promoters sweep up after themselves; this pass re-runs the
  // cleanup as an idempotent fixpoint so stragglers (dummy loads, dead
  // copies, unused memory phis) never survive into measurement.
  if (NeedsMemorySSA)
    PM.addPass("cleanup", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns)
        cleanupAfterPromotion(*S.F);
      return true;
    });

  // -- Measurement back half. --------------------------------------------
  PM.addPass("measure", [&](Module &Mod, std::vector<std::string> &Errors) {
    R.StaticAfter = countStaticMemOps(Mod);
    Interpreter Interp(Mod);
    R.RunAfter = Interp.run(Opts.EntryFunction);
    if (!R.RunAfter.Ok) {
      Errors.push_back("measurement run failed: " + R.RunAfter.Error);
      return false;
    }
    // Behavioural equivalence between the two runs is an invariant of
    // every mode; violations are reported as errors so tests and benches
    // notice.
    if (R.RunBefore.Output != R.RunAfter.Output)
      Errors.push_back("printed output changed across promotion");
    if (R.RunBefore.ExitValue != R.RunAfter.ExitValue)
      Errors.push_back("exit value changed across promotion");
    if (R.RunBefore.FinalMemory != R.RunAfter.FinalMemory)
      Errors.push_back("final memory state changed across promotion");
    return Errors.empty();
  });

  if (Opts.MeasurePressure)
    PM.addPass("pressure", [&](Module &, std::vector<std::string> &) {
      for (FnState &S : Fns) {
        PressureReport PR = measureRegisterPressure(*S.F);
        R.Pressure.NumValues += PR.NumValues;
        R.Pressure.Edges += PR.Edges;
        R.Pressure.ColorsNeeded =
            std::max(R.Pressure.ColorsNeeded, PR.ColorsNeeded);
        R.Pressure.MaxLive = std::max(R.Pressure.MaxLive, PR.MaxLive);
      }
      return true;
    });

  R.Ok = PM.run(Mod, R.Errors) && R.Errors.empty();
  R.Passes = PM.records();
  return R;
}

std::vector<PipelineResult>
srp::runPipelineParallel(const std::vector<PipelineJob> &Jobs,
                         unsigned Threads) {
  std::vector<PipelineResult> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = std::min<unsigned>(Threads, static_cast<unsigned>(Jobs.size()));

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Jobs.size();
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      Results[I] = runPipeline(Jobs[I].Source, Jobs[I].Opts);
      ++NumParallelJobs;
    }
  };

  if (Threads <= 1) {
    Worker();
    return Results;
  }

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
