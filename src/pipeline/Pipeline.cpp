//===- pipeline/Pipeline.cpp - End-to-end compilation driver -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "analysis/CFGCanonicalize.h"
#include "analysis/Verifier.h"
#include "frontend/Lowering.h"
#include "ir/Module.h"
#include "profile/ProfileInfo.h"
#include "promotion/RegisterPromotion.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemoryOpt.h"
#include "ssa/MemorySSA.h"

using namespace srp;

StaticCounts srp::countStaticMemOps(const Function &F) {
  StaticCounts C;
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      switch (I->kind()) {
      case Value::Kind::Load:
        ++C.Loads;
        break;
      case Value::Kind::Store:
        ++C.Stores;
        break;
      case Value::Kind::PtrLoad:
      case Value::Kind::PtrStore:
      case Value::Kind::ArrayLoad:
      case Value::Kind::ArrayStore:
        ++C.AliasedOps;
        break;
      default:
        break;
      }
    }
  }
  return C;
}

StaticCounts srp::countStaticMemOps(const Module &M) {
  StaticCounts C;
  for (const auto &F : M.functions()) {
    StaticCounts FC = countStaticMemOps(*F);
    C.Loads += FC.Loads;
    C.Stores += FC.Stores;
    C.AliasedOps += FC.AliasedOps;
  }
  return C;
}

PipelineResult srp::runPipeline(const std::string &Source,
                                const PipelineOptions &Opts) {
  PipelineResult R;
  auto M = compileMiniC(Source, R.Errors);
  if (!M)
    return R;
  return runPipeline(std::move(M), Opts);
}

PipelineResult srp::runPipeline(std::unique_ptr<Module> M,
                                const PipelineOptions &Opts) {
  PipelineResult R;
  R.M = std::move(M);
  Module &Mod = *R.M;

  auto checkValid = [&](const char *Stage) {
    if (!Opts.VerifyEachStep)
      return true;
    auto Errs = verify(Mod);
    for (const std::string &E : Errs)
      R.Errors.push_back(std::string(Stage) + ": " + E);
    return Errs.empty();
  };

  // Common front half: locals to SSA, canonical CFG shape.
  struct FnState {
    Function *F;
    CanonicalCFG CFG;
  };
  std::vector<FnState> Fns;
  for (const auto &F : Mod.functions()) {
    DominatorTree DT(*F);
    promoteLocalsToSSA(*F, DT);
    FnState S{F.get(), canonicalize(*F)};
    Fns.push_back(std::move(S));
  }
  if (!checkValid("after mem2reg+canonicalise"))
    return R;

  R.StaticBefore = countStaticMemOps(Mod);

  // Profile run ("before" measurement doubles as the profile input).
  Interpreter Interp(Mod);
  R.RunBefore = Interp.run(Opts.EntryFunction);
  if (!R.RunBefore.Ok) {
    R.Errors.push_back("profile run failed: " + R.RunBefore.Error);
    return R;
  }

  switch (Opts.Mode) {
  case PromotionMode::None:
    break;
  case PromotionMode::Paper:
  case PromotionMode::PaperNoProfile: {
    for (FnState &S : Fns) {
      buildMemorySSA(*S.F, S.CFG.DT);
      ProfileInfo PI = Opts.Mode == PromotionMode::Paper
                           ? ProfileInfo::fromExecution(R.RunBefore)
                           : ProfileInfo::estimate(*S.F, S.CFG.IT);
      R.Promo +=
          promoteRegisters(*S.F, S.CFG.DT, S.CFG.IT, PI, Opts.Promo);
    }
    break;
  }
  case PromotionMode::LoopBaseline:
    for (FnState &S : Fns)
      R.Baseline += promoteLoopsBaseline(*S.F);
    break;
  case PromotionMode::Superblock: {
    ProfileInfo PI = ProfileInfo::fromExecution(R.RunBefore);
    for (FnState &S : Fns)
      R.Superblock += promoteSuperblocks(*S.F, PI);
    break;
  }
  case PromotionMode::MemOptOnly:
    for (FnState &S : Fns) {
      buildMemorySSA(*S.F, S.CFG.DT);
      optimizeMemorySSA(*S.F, S.CFG.DT);
    }
    break;
  }
  if (!checkValid("after promotion"))
    return R;

  R.StaticAfter = countStaticMemOps(Mod);

  Interpreter Interp2(Mod);
  R.RunAfter = Interp2.run(Opts.EntryFunction);
  if (!R.RunAfter.Ok) {
    R.Errors.push_back("measurement run failed: " + R.RunAfter.Error);
    return R;
  }

  // Behavioural equivalence between the two runs is an invariant of every
  // mode; violations are reported as errors so tests and benches notice.
  if (R.RunBefore.Output != R.RunAfter.Output)
    R.Errors.push_back("printed output changed across promotion");
  if (R.RunBefore.ExitValue != R.RunAfter.ExitValue)
    R.Errors.push_back("exit value changed across promotion");
  if (R.RunBefore.FinalMemory != R.RunAfter.FinalMemory)
    R.Errors.push_back("final memory state changed across promotion");

  R.Ok = R.Errors.empty();
  return R;
}
