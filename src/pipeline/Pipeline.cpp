//===- pipeline/Pipeline.cpp - End-to-end compilation driver -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "analysis/CFGCanonicalize.h"
#include "frontend/Lowering.h"
#include "ir/Module.h"
#include "pipeline/PassManager.h"
#include "profile/ProfileInfo.h"
#include "promotion/Cleanup.h"
#include "promotion/RegisterPromotion.h"
#include "regalloc/Coloring.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemoryOpt.h"
#include "ssa/MemorySSA.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include <algorithm>

using namespace srp;

namespace {
SRP_STATISTIC(NumPipelineRuns, "pipeline", "runs",
              "Pipeline executions (all modes)");
} // namespace

StaticCounts srp::countStaticMemOps(const Function &F) {
  StaticCounts C;
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      switch (I->kind()) {
      case Value::Kind::Load:
        ++C.Loads;
        break;
      case Value::Kind::Store:
        ++C.Stores;
        break;
      case Value::Kind::PtrLoad:
      case Value::Kind::PtrStore:
      case Value::Kind::ArrayLoad:
      case Value::Kind::ArrayStore:
        ++C.AliasedOps;
        break;
      default:
        break;
      }
    }
  }
  return C;
}

StaticCounts srp::countStaticMemOps(const Module &M) {
  StaticCounts C;
  for (const auto &F : M.functions()) {
    StaticCounts FC = countStaticMemOps(*F);
    C.Loads += FC.Loads;
    C.Stores += FC.Stores;
    C.AliasedOps += FC.AliasedOps;
  }
  return C;
}

PipelineResult PipelineBuilder::run(const SourceText &Source) {
  const double T0 = monotonicSeconds();
  PipelineResult R;
  auto M = compileMiniC(Source.str(), R.Errors);
  if (!M) {
    R.WallSeconds = monotonicSeconds() - T0;
    return R;
  }
  R = run(std::move(M));
  R.WallSeconds = monotonicSeconds() - T0; // include the compile
  return R;
}

PipelineResult PipelineBuilder::run(std::unique_ptr<Module> M) {
  const double T0 = monotonicSeconds();
  PipelineResult R;
  R.M = std::move(M);
  Module &Mod = *R.M;
  ++NumPipelineRuns;

  // Fresh manager per run: analyses of the previous run's module must not
  // leak into this one. The builder keeps it alive past the run so tests
  // can inspect cache state.
  AM = std::make_unique<AnalysisManager>(&Mod);
  AnalysisManager &AMRef = *AM;
  if (Opts.DisableAnalysisCache)
    AMRef.setCachingEnabled(false);

  PassManagerOptions PMOpts;
  PMOpts.VerifyEachPass = Opts.VerifyEachStep;
  PMOpts.VerifyStrictness = Opts.VerifyStrictness;
  PassManager PM(PMOpts);

  // -- Common front half: locals to SSA, canonical CFG shape. ------------
  PM.addFunctionPass(
      "mem2reg", [](Function &F, AnalysisManager &AM,
                    std::vector<std::string> &) {
        // The AM overload reports the rewrite through the notifier, which
        // invalidates exactly what went stale (liveness).
        promoteLocalsToSSA(F, AM);
        return PreservedAnalyses::all();
      });

  PM.addPass("canonicalise", PassManager::ModulePassFn(
                                 [&](Module &Mod, AnalysisManager &AM,
                                     std::vector<std::string> &) {
    for (const auto &F : Mod.functions())
      canonicalize(*F, AM);
    R.StaticBefore = countStaticMemOps(Mod);
    return true;
  }));

  // -- Profile run ("before" measurement doubles as the profile input). --
  PM.addPass("profile", PassManager::ModulePassFn(
                            [&](Module &Mod, AnalysisManager &AM,
                                std::vector<std::string> &Errors) {
    Interpreter Interp(Mod, 200'000'000, Opts.Interp, &AM);
    Interp.setJitThreshold(Opts.JitThreshold);
    R.RunBefore = Interp.run(Opts.EntryFunction);
    if (!R.RunBefore.Ok) {
      Errors.push_back("profile run failed: " + R.RunBefore.Error);
      return false;
    }
    // One module-wide profile for every function (the old pipeline
    // re-derived it per function inside the promotion pass).
    AM.setExecution(R.RunBefore.BlockCounts);
    return true;
  }));

  // -- Mode-specific transformation stages. ------------------------------
  bool NeedsMemorySSA = Opts.Mode == PromotionMode::Paper ||
                        Opts.Mode == PromotionMode::PaperNoProfile ||
                        Opts.Mode == PromotionMode::MemOptOnly;
  if (NeedsMemorySSA)
    PM.addFunctionPass(
        "memory-ssa", [](Function &F, AnalysisManager &AM,
                         std::vector<std::string> &) {
          AM.get<MemorySSAInfo>(F);
          return PreservedAnalyses::all();
        });

  switch (Opts.Mode) {
  case PromotionMode::None:
    break;
  case PromotionMode::Paper:
  case PromotionMode::PaperNoProfile:
    PM.addFunctionPass(
        "promotion", [&](Function &F, AnalysisManager &AM,
                         std::vector<std::string> &Errors) {
          const ProfileInfo &PI = Opts.Mode == PromotionMode::Paper
                                      ? AM.executionProfile()
                                      : AM.get<StaticFrequency>(F).Freq;
          // At Full strictness, cross-check the promoter's ledger (L4's
          // promo-count-delta): the static load/store deltas must stay
          // within what the reported replacements/insertions/deletions
          // allow.
          const bool CheckDelta =
              Opts.VerifyEachStep &&
              Opts.VerifyStrictness >= Strictness::Full;
          StaticCounts Before =
              CheckDelta ? countStaticMemOps(F) : StaticCounts{};
          const size_t LedgerBefore =
              validation::sink() ? validation::sink()->size() : 0;
          PromotionStats S = promoteRegisters(F, PI, AM, Opts.Promo);
          R.Promo += S;
          // At Semantic the promoter must have filed one validation-ledger
          // record per web it claims promoted, or the validator would
          // silently skip the cross-check for the missing webs.
          if (validation::WebLedger *L = validation::sink())
            if (L->size() - LedgerBefore != S.WebsPromoted)
              Errors.push_back(
                  "promotion ledger mismatch in '" + F.name() + "': " +
                  std::to_string(S.WebsPromoted) +
                  " web(s) reported promoted but " +
                  std::to_string(L->size() - LedgerBefore) +
                  " recorded for validation");
          // Any instruction-level rewrite stales the decoded bytecode the
          // profile run cached; untouched functions keep their decode (the
          // promoter's own SSA/CFG edit notifications cover most edits,
          // but plain load->copy rewrites go through neither hook).
          const bool Edited = S.LoadsReplaced || S.LoadsInserted ||
                              S.StoresInserted || S.StoresDeleted ||
                              S.DummyLoadsInserted || S.RegisterPhisCreated;
          if (CheckDelta) {
            StaticCounts After = countStaticMemOps(F);
            PromotionDeltaExpectation E;
            E.LoadsBefore = Before.Loads;
            E.LoadsAfter = After.Loads;
            E.LoadsReplaced = S.LoadsReplaced;
            E.LoadsInserted = S.LoadsInserted;
            E.StoresBefore = Before.Stores;
            E.StoresAfter = After.Stores;
            E.StoresDeleted = S.StoresDeleted;
            E.StoresInserted = S.StoresInserted;
            DiagnosticEngine DE;
            checkPromotionDelta(E, DE);
            for (const Diagnostic &D : DE.diagnostics())
              if (D.Severity == DiagSeverity::Error)
                Errors.push_back("promotion ledger mismatch in '" +
                                 F.name() + "': " + D.Message);
          }
          return Edited ? PreservedAnalyses::all().abandon(
                              AnalysisKind::Bytecode)
                        : PreservedAnalyses::all();
        });
    break;
  case PromotionMode::LoopBaseline:
    PM.addFunctionPass(
        "promotion", [&](Function &F, AnalysisManager &AM,
                         std::vector<std::string> &) {
          LoopPromotionStats S = promoteLoopsBaseline(F, AM);
          R.Baseline += S;
          return S.VariablesPromoted
                     ? PreservedAnalyses::all().abandon(AnalysisKind::Bytecode)
                     : PreservedAnalyses::all();
        });
    break;
  case PromotionMode::Superblock:
    PM.addFunctionPass(
        "promotion", [&](Function &F, AnalysisManager &AM,
                         std::vector<std::string> &) {
          SuperblockStats S = promoteSuperblocks(F, AM.executionProfile(), AM);
          R.Superblock += S;
          return S.TracesFormed || S.VariablesPromoted
                     ? PreservedAnalyses::all().abandon(AnalysisKind::Bytecode)
                     : PreservedAnalyses::all();
        });
    break;
  case PromotionMode::MemOptOnly:
    PM.addFunctionPass(
        "promotion", [](Function &F, AnalysisManager &AM,
                        std::vector<std::string> &) {
          MemoryOptStats S = optimizeMemorySSA(F, AM);
          return S.total() ? PreservedAnalyses::all().abandon(
                                 AnalysisKind::Bytecode)
                           : PreservedAnalyses::all();
        });
    break;
  }

  // The promoters sweep up after themselves; this pass re-runs the
  // cleanup as an idempotent fixpoint so stragglers (dummy loads, dead
  // copies, unused memory phis) never survive into measurement.
  if (NeedsMemorySSA)
    PM.addFunctionPass(
        "cleanup", [](Function &F, AnalysisManager &AM,
                      std::vector<std::string> &) {
          CleanupStats S = cleanupAfterPromotion(F, AM);
          const bool Edited = S.DummyLoadsRemoved || S.CopiesPropagated ||
                              S.DeadInstructionsRemoved ||
                              S.DeadMemPhisRemoved;
          return Edited ? PreservedAnalyses::all().abandon(
                              AnalysisKind::Bytecode)
                        : PreservedAnalyses::all();
        });

  // -- Measurement back half. --------------------------------------------
  PM.addPass("measure", PassManager::ModulePassFn(
                            [&](Module &Mod, AnalysisManager &AM,
                                std::vector<std::string> &Errors) {
    R.StaticAfter = countStaticMemOps(Mod);
    // Shares the manager with the profile pass: functions the promotion
    // stage left untouched reuse their decoded bytecode (decode-cache-hits
    // in --stats-json counts them).
    Interpreter Interp(Mod, 200'000'000, Opts.Interp, &AM);
    Interp.setJitThreshold(Opts.JitThreshold);
    R.RunAfter = Interp.run(Opts.EntryFunction);
    if (!R.RunAfter.Ok) {
      Errors.push_back("measurement run failed: " + R.RunAfter.Error);
      return false;
    }
    // Behavioural equivalence between the two runs is an invariant of
    // every mode; violations are reported as errors so tests and benches
    // notice.
    if (R.RunBefore.Output != R.RunAfter.Output)
      Errors.push_back("printed output changed across promotion");
    if (R.RunBefore.ExitValue != R.RunAfter.ExitValue)
      Errors.push_back("exit value changed across promotion");
    if (R.RunBefore.FinalMemory != R.RunAfter.FinalMemory)
      Errors.push_back("final memory state changed across promotion");
    return Errors.empty();
  }));

  if (Opts.MeasurePressure)
    PM.addFunctionPass(
        "pressure", [&](Function &F, AnalysisManager &AM,
                        std::vector<std::string> &) {
          PressureReport PR = measureRegisterPressure(F, AM);
          R.Pressure.NumValues += PR.NumValues;
          R.Pressure.Edges += PR.Edges;
          R.Pressure.ColorsNeeded =
              std::max(R.Pressure.ColorsNeeded, PR.ColorsNeeded);
          R.Pressure.MaxLive = std::max(R.Pressure.MaxLive, PR.MaxLive);
          if (RemarkEngine *RE = remarks::sink())
            RE->record(
                Remark(RemarkKind::Analysis, "pressure", "RegisterPressure")
                    .inFunction(F.name())
                    .arg("num-values", PR.NumValues)
                    .arg("interference-edges", PR.Edges)
                    .arg("colors-needed", PR.ColorsNeeded)
                    .arg("max-live", PR.MaxLive));
          return PreservedAnalyses::all();
        });

  R.Ok = PM.run(Mod, AMRef, R.Errors) && R.Errors.empty();
  R.Passes = PM.records();
  R.Analysis = AMRef.cacheStats();
  R.Verify = PM.verifyStats();
  R.WallSeconds = monotonicSeconds() - T0;
  return R;
}

