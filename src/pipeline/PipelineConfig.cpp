//===- pipeline/PipelineConfig.cpp - Pipeline configuration ---------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/PipelineConfig.h"

using namespace srp;

const char *srp::promotionModeName(PromotionMode Mode) {
  switch (Mode) {
  case PromotionMode::None:
    return "none";
  case PromotionMode::Paper:
    return "paper";
  case PromotionMode::PaperNoProfile:
    return "noprofile";
  case PromotionMode::LoopBaseline:
    return "baseline";
  case PromotionMode::Superblock:
    return "superblock";
  case PromotionMode::MemOptOnly:
    return "memopt";
  }
  return "unknown";
}

bool srp::parsePromotionMode(const std::string &Name, PromotionMode &Mode) {
  for (PromotionMode M : allPromotionModes()) {
    if (Name == promotionModeName(M)) {
      Mode = M;
      return true;
    }
  }
  return false;
}

const std::array<PromotionMode, 6> &srp::allPromotionModes() {
  static const std::array<PromotionMode, 6> Modes = {
      PromotionMode::None,         PromotionMode::Paper,
      PromotionMode::PaperNoProfile, PromotionMode::LoopBaseline,
      PromotionMode::Superblock,   PromotionMode::MemOptOnly,
  };
  return Modes;
}
