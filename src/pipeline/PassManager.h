//===- pipeline/PassManager.h - Instrumented pass sequencing ---*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented pass-manager layer underneath `srp::PipelineBuilder`:
/// each
/// pipeline stage (mem2reg, canonicalise, memory-ssa, profile, promotion,
/// cleanup, measure, pressure) runs as a named pass with
///
///  - per-pass wall-clock timing (support/Timer.h),
///  - optional IR verification after every pass, with failures attributed
///    to the pass that introduced them ("after pass 'X': ..."),
///  - global named counters (support/Statistics.h) bumped by the passes
///    themselves.
///
/// A PassManager instance is single-threaded and per-run; the parallel
/// workload driver creates one per job, so only the statistics registry is
/// shared across threads. Pass records serialise to JSON for
/// `srpc --time-passes` and the benchmark harnesses.
///
/// Passes receive the run's AnalysisManager and pull dominators, interval
/// trees, memory SSA, profiles and liveness from it instead of rebuilding
/// them. A function pass returns the PreservedAnalyses set it kept valid;
/// the manager invalidates the rest per function. Module passes and the
/// legacy (Module&, Errors&) form manage invalidation themselves (the
/// CFGEdit/SSAUpdater notifier hooks cover the common cases).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_PASSMANAGER_H
#define SRP_PIPELINE_PASSMANAGER_H

#include "analysis/AnalysisManager.h"
#include "analysis/StaticAnalysis.h"
#include "analysis/TransValidate.h"
#include <functional>
#include <string>
#include <vector>

namespace srp {

class Function;
class Module;

/// Timing and verification outcome of one executed pass.
struct PassRecord {
  std::string Name;
  double WallSeconds = 0;
  bool Ran = false;        ///< false when a prior pass aborted the run
  bool Failed = false;     ///< pass reported an error
  bool Verified = false;   ///< post-pass verification ran
  unsigned VerifyErrors = 0;
};

struct PassManagerOptions {
  /// Run the IR verifier after every pass and attribute failures. The
  /// master switch; when false, VerifyStrictness is ignored.
  bool VerifyEachPass = true;
  /// How deep the between-pass verification digs (see
  /// analysis/StaticAnalysis.h). Fast is the historical verifier; Full
  /// adds the whole-function memory-SSA walks and the L3/L4 canonical and
  /// promotion invariants, and dumps the IR of every offending function
  /// on failure (the fuzz sweep runs at Full). Semantic runs everything
  /// Full runs and additionally translation-validates each pass: the
  /// manager snapshots the module before the pass and proves the result
  /// semantically equivalent (analysis/TransValidate.h), cross-checking
  /// the promoters' web ledger so a promoted-but-unproven web fails hard.
  Strictness VerifyStrictness = Strictness::Fast;

  /// The level verification actually runs at.
  Strictness effectiveStrictness() const {
    return VerifyEachPass ? VerifyStrictness : Strictness::Off;
  }
};

/// Aggregate verification accounting for one PassManager run (surfaced as
/// the `verification` section of `srpc --stats-json`).
struct VerifyRunStats {
  uint64_t PassesVerified = 0; ///< Between-pass verifications executed.
  uint64_t ChecksRun = 0;      ///< Individual checker executions.
  uint64_t Diagnostics = 0;    ///< Diagnostics emitted (all severities).
  double WallSeconds = 0;      ///< Time spent verifying.
  /// Translation-validation accounting (populated at Strictness::Semantic;
  /// surfaced as the `validation` section of `srpc --stats-json`).
  TransValidateStats Validation;
};

/// Runs a fixed sequence of named module passes with timing, verification
/// and error attribution.
class PassManager {
public:
  /// Legacy pass body (no analysis manager): transforms \p M, appends
  /// problems to \p Errors and returns false to abort the remaining
  /// pipeline. Kept so pre-AnalysisManager passes and tests compile.
  using PassFn = std::function<bool(Module &M, std::vector<std::string> &Errors)>;

  /// A module pass: like PassFn but with access to the run's analysis
  /// cache. Responsible for its own invalidation (usually implicit via
  /// the IR-change notifier).
  using ModulePassFn = std::function<bool(
      Module &M, AnalysisManager &AM, std::vector<std::string> &Errors)>;

  /// A function pass: runs once per function and declares, through its
  /// return value, which cached analyses it preserved; the pass manager
  /// invalidates the rest for that function. Report problems by appending
  /// to \p Errors — any new entry aborts the pipeline.
  using FunctionPassFn = std::function<PreservedAnalyses(
      Function &F, AnalysisManager &AM, std::vector<std::string> &Errors)>;

  explicit PassManager(PassManagerOptions Opts = {}) : Opts(Opts) {}

  /// Appends a pass. Names should be short lower-case stage names; they
  /// become the "name" fields of the timing report and the attribution
  /// prefix of verifier errors.
  void addPass(std::string Name, PassFn Fn);
  void addPass(std::string Name, ModulePassFn Fn);

  /// Appends a pass that runs over every function of the module, with
  /// per-function PreservedAnalyses-driven invalidation.
  void addFunctionPass(std::string Name, FunctionPassFn Fn);

  /// Runs every registered pass in order over \p M. Stops at the first
  /// pass that fails or breaks the verifier; errors are appended to
  /// \p Errors prefixed with the offending pass's name. Returns true when
  /// every pass ran cleanly. This overload serves legacy callers by
  /// running against a fresh, run-local AnalysisManager.
  bool run(Module &M, std::vector<std::string> &Errors);

  /// Same, against the caller's AnalysisManager (the pipeline threads the
  /// builder-owned manager through here).
  bool run(Module &M, AnalysisManager &AM, std::vector<std::string> &Errors);

  /// Per-pass records, in registration order. Populated by run(); passes
  /// skipped after an abort keep Ran = false and WallSeconds = 0.
  const std::vector<PassRecord> &records() const { return Records; }

  /// Registered pass names in execution order.
  std::vector<std::string> passNames() const;

  size_t size() const { return Passes.size(); }

  /// Verification accounting for the last run().
  const VerifyRunStats &verifyStats() const { return VStats; }

private:
  PassManagerOptions Opts;
  VerifyRunStats VStats;
  // Every form is stored as a ModulePassFn; the other addPass overloads
  // wrap into it.
  std::vector<std::pair<std::string, ModulePassFn>> Passes;
  std::vector<PassRecord> Records;
};

/// Renders pass records as a JSON array (name, wall_seconds, ran,
/// verified, verify_errors), two-space indented at \p Indent levels.
std::string passRecordsToJson(const std::vector<PassRecord> &Records,
                              unsigned Indent = 0);

} // namespace srp

#endif // SRP_PIPELINE_PASSMANAGER_H
