//===- pipeline/PassManager.cpp - Instrumented pass sequencing ------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/PassManager.h"
#include "analysis/Verifier.h"
#include "ir/Module.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include <sstream>

using namespace srp;

namespace {
SRP_STATISTIC(NumPassesRun, "pipeline", "passes-run",
              "Passes executed across all pipeline runs");
SRP_STATISTIC(NumVerifyFailures, "pipeline", "verify-failures",
              "Post-pass verifier failures across all pipeline runs");
} // namespace

void PassManager::addPass(std::string Name, PassFn Fn) {
  addPass(std::move(Name),
          ModulePassFn([Fn = std::move(Fn)](Module &M, AnalysisManager &,
                                            std::vector<std::string> &Errors) {
            return Fn(M, Errors);
          }));
}

void PassManager::addPass(std::string Name, ModulePassFn Fn) {
  Passes.emplace_back(std::move(Name), std::move(Fn));
}

void PassManager::addFunctionPass(std::string Name, FunctionPassFn Fn) {
  addPass(std::move(Name),
          ModulePassFn([Fn = std::move(Fn)](Module &M, AnalysisManager &AM,
                                            std::vector<std::string> &Errors) {
            const size_t Before = Errors.size();
            for (const auto &F : M.functions()) {
              PreservedAnalyses PA = Fn(*F, AM, Errors);
              AM.invalidate(*F, PA);
              if (Errors.size() > Before)
                return false;
            }
            return true;
          }));
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const auto &[Name, Fn] : Passes)
    Names.push_back(Name);
  return Names;
}

bool PassManager::run(Module &M, std::vector<std::string> &Errors) {
  AnalysisManager AM(&M);
  return run(M, AM, Errors);
}

bool PassManager::run(Module &M, AnalysisManager &AM,
                      std::vector<std::string> &Errors) {
  Records.clear();
  Records.reserve(Passes.size());
  for (const auto &[Name, Fn] : Passes)
    Records.push_back(PassRecord{Name, 0, false, false, false, 0});

  for (size_t I = 0; I != Passes.size(); ++I) {
    PassRecord &Rec = Records[I];
    Rec.Ran = true;
    ++NumPassesRun;

    bool PassOk;
    {
      ScopedTimer T(Rec.WallSeconds);
      PassOk = Passes[I].second(M, AM, Errors);
    }
    if (!PassOk) {
      Rec.Failed = true;
      // Make sure an aborting pass left at least one attributed message.
      if (Errors.empty())
        Errors.push_back("pass '" + Rec.Name + "' failed");
      return false;
    }

    if (Opts.VerifyEachPass) {
      Rec.Verified = true;
      auto VErrs = verify(M);
      Rec.VerifyErrors = static_cast<unsigned>(VErrs.size());
      if (!VErrs.empty()) {
        ++NumVerifyFailures;
        for (const std::string &E : VErrs)
          Errors.push_back("after pass '" + Rec.Name + "': " + E);
        return false;
      }
    }
  }
  return true;
}

std::string srp::passRecordsToJson(const std::vector<PassRecord> &Records,
                                   unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const PassRecord &R : Records) {
    OS << (First ? "\n" : ",\n") << Inner << "{\"name\": \""
       << jsonEscape(R.Name) << "\", \"wall_seconds\": ";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.9f", R.WallSeconds);
    OS << Buf << ", \"ran\": " << (R.Ran ? "true" : "false")
       << ", \"verified\": " << (R.Verified ? "true" : "false")
       << ", \"verify_errors\": " << R.VerifyErrors << "}";
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "]";
  return OS.str();
}
