//===- pipeline/PassManager.cpp - Instrumented pass sequencing ------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "pipeline/PassManager.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace srp;

namespace {
SRP_STATISTIC(NumPassesRun, "pipeline", "passes-run",
              "Passes executed across all pipeline runs");
SRP_STATISTIC(NumVerifyFailures, "pipeline", "verify-failures",
              "Post-pass verifier failures across all pipeline runs");
SRP_HISTOGRAM(PassMicros, "pipeline", "pass-micros",
              "Wall time of one pass execution (us)");
} // namespace

void PassManager::addPass(std::string Name, PassFn Fn) {
  addPass(std::move(Name),
          ModulePassFn([Fn = std::move(Fn)](Module &M, AnalysisManager &,
                                            std::vector<std::string> &Errors) {
            return Fn(M, Errors);
          }));
}

void PassManager::addPass(std::string Name, ModulePassFn Fn) {
  Passes.emplace_back(std::move(Name), std::move(Fn));
}

void PassManager::addFunctionPass(std::string Name, FunctionPassFn Fn) {
  addPass(std::move(Name),
          ModulePassFn([Fn = std::move(Fn)](Module &M, AnalysisManager &AM,
                                            std::vector<std::string> &Errors) {
            const size_t Before = Errors.size();
            for (const auto &F : M.functions()) {
              PreservedAnalyses PA = Fn(*F, AM, Errors);
              AM.invalidate(*F, PA);
              if (Errors.size() > Before)
                return false;
            }
            return true;
          }));
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const auto &[Name, Fn] : Passes)
    Names.push_back(Name);
  return Names;
}

bool PassManager::run(Module &M, std::vector<std::string> &Errors) {
  AnalysisManager AM(&M);
  return run(M, AM, Errors);
}

bool PassManager::run(Module &M, AnalysisManager &AM,
                      std::vector<std::string> &Errors) {
  VStats = VerifyRunStats{};
  Records.clear();
  Records.reserve(Passes.size());
  for (const auto &[Name, Fn] : Passes)
    Records.push_back(PassRecord{Name, 0, false, false, false, 0});

  const Strictness Level = Opts.effectiveStrictness();
  for (size_t I = 0; I != Passes.size(); ++I) {
    PassRecord &Rec = Records[I];
    Rec.Ran = true;
    ++NumPassesRun;

    // At Full and above, keep the pre-pass text of every function: it
    // detects which functions a pass touched (only those are
    // translation-validated) and lets a failure dump show the IR the pass
    // started from next to what it produced.
    std::unordered_map<std::string, std::string> PreText;
    if (Level >= Strictness::Full)
      for (const auto &F : M.functions())
        PreText.emplace(F->name(), toString(*F));
    // At Semantic, additionally snapshot the module itself and collect
    // the pass's promoted-web reports for the post-pass cross-check.
    std::unique_ptr<Module> PreClone;
    validation::WebLedger Ledger;
    if (Level >= Strictness::Semantic) {
      ScopedTimer T(VStats.Validation.WallSeconds);
      PreClone = cloneModule(M);
    }

    bool PassOk;
    {
      std::optional<validation::ScopedWebLedger> LG;
      if (Level >= Strictness::Semantic)
        LG.emplace(Ledger);
      TraceSpan Span;
      if (trace::enabled())
        Span.begin("pass", Rec.Name);
      ScopedTimer T(Rec.WallSeconds);
      PassOk = Passes[I].second(M, AM, Errors);
    }
    PassMicros.observeSeconds(Rec.WallSeconds);
    if (!PassOk) {
      Rec.Failed = true;
      // Make sure an aborting pass left at least one attributed message.
      if (Errors.empty())
        Errors.push_back("pass '" + Rec.Name + "' failed");
      return false;
    }

    // At Full strictness and above (the fuzz sweep's setting) a failure
    // also dumps the offending functions — the IR the pass started from
    // and what it left behind — so a seed failure is diagnosable from the
    // error list alone.
    auto DumpBroken = [&](const std::unordered_set<std::string> &BrokenFns) {
      if (Level < Strictness::Full)
        return;
      for (const auto &F : M.functions()) {
        if (!BrokenFns.count(F->name()))
          continue;
        auto It = PreText.find(F->name());
        if (It != PreText.end())
          Errors.push_back("after pass '" + Rec.Name +
                           "': IR of function '" + F->name() +
                           "' before the pass:\n" + It->second);
        Errors.push_back("after pass '" + Rec.Name + "': IR of function '" +
                         F->name() + "':\n" + toString(*F));
      }
    };
    auto Attribute = [&](const DiagnosticEngine &DE) {
      ++NumVerifyFailures;
      std::unordered_set<std::string> BrokenFns;
      for (const Diagnostic &D : DE.diagnostics())
        if (D.Severity == DiagSeverity::Error) {
          Errors.push_back("after pass '" + Rec.Name + "': " + toText(D));
          if (!D.Loc.Function.empty())
            BrokenFns.insert(D.Loc.Function);
        }
      DumpBroken(BrokenFns);
    };

    if (Level != Strictness::Off) {
      Rec.Verified = true;
      DiagnosticEngine DE;
      CheckRunStats CS;
      {
        TraceSpan Span;
        if (trace::enabled())
          Span.begin("verify", "verify:" + Rec.Name);
        ScopedTimer T(VStats.WallSeconds);
        CS = runChecks(M, DE, Level, &AM);
      }
      ++VStats.PassesVerified;
      VStats.ChecksRun += CS.ChecksRun;
      VStats.Diagnostics += CS.Diagnostics;
      Rec.VerifyErrors = DE.errors();
      if (DE.hasErrors()) {
        Attribute(DE);
        return false;
      }
    }

    // Translation validation: prove the post-pass module equivalent to the
    // pre-pass snapshot. Only well-formed IR is compared (the structural
    // checks above passed), and only functions whose text changed.
    if (Level >= Strictness::Semantic) {
      std::unordered_set<std::string> Changed;
      for (const auto &F : M.functions()) {
        auto It = PreText.find(F->name());
        if (It == PreText.end() || It->second != toString(*F))
          Changed.insert(F->name());
      }
      for (const auto &[Name, Text] : PreText)
        if (!M.getFunction(Name))
          Changed.insert(Name);
      if (Changed.empty() && Ledger.size() == 0) {
        VStats.Validation.FunctionsSkippedIdentical += M.functions().size();
      } else {
        DiagnosticEngine VDE;
        bool Proven;
        {
          TraceSpan Span;
          if (trace::enabled())
            Span.begin("verify", "validate:" + Rec.Name);
          ScopedTimer T(VStats.Validation.WallSeconds);
          std::unique_ptr<Module> PostClone = cloneModule(M);
          Proven = validateTranslation(*PreClone, *PostClone,
                                       Ledger.records(), VDE,
                                       VStats.Validation, &Changed);
        }
        ++VStats.Validation.PassesValidated;
        VStats.Diagnostics += VDE.diagnostics().size();
        if (!Proven) {
          Rec.VerifyErrors += VDE.errors();
          Attribute(VDE);
          return false;
        }
      }
    }
  }
  return true;
}

std::string srp::passRecordsToJson(const std::vector<PassRecord> &Records,
                                   unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const PassRecord &R : Records) {
    OS << (First ? "\n" : ",\n") << Inner << "{\"name\": \""
       << jsonEscape(R.Name) << "\", \"wall_seconds\": ";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.9f", R.WallSeconds);
    OS << Buf << ", \"ran\": " << (R.Ran ? "true" : "false")
       << ", \"verified\": " << (R.Verified ? "true" : "false")
       << ", \"verify_errors\": " << R.VerifyErrors << "}";
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "]";
  return OS.str();
}
