//===- pipeline/PipelineConfig.h - Pipeline configuration ------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for pipeline configuration: the promotion
/// mode enum with its name round-trip (promotionModeName /
/// parsePromotionMode, shared by srpc, the benches and the tests), the
/// unified PipelineOptions struct (which embeds the promoter tunables —
/// there is deliberately no second copy of entry-function or verify
/// settings anywhere else), and SourceText, the shared immutable job
/// source used by the parallel workload driver.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_PIPELINECONFIG_H
#define SRP_PIPELINE_PIPELINECONFIG_H

#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "promotion/PromotionOptions.h"
#include <array>
#include <memory>
#include <ostream>
#include <string>

namespace srp {

/// How to transform the program between the profile run and measurement.
enum class PromotionMode {
  None,          ///< control: mem2reg only
  Paper,         ///< the paper's SSA/interval/profile promoter
  PaperNoProfile,///< paper promoter driven by static frequency estimates
  LoopBaseline,  ///< Lu-Cooper-style loop promotion
  Superblock,    ///< Mahlke-style superblock (hot trace) migration
  MemOptOnly,    ///< classic memory-SSA RLE + DSE, no promotion
};

/// Spelling used by -mode= flags, test names and JSON output.
const char *promotionModeName(PromotionMode Mode);

/// Inverse of promotionModeName: accepts exactly the spellings it emits
/// ("none", "paper", "noprofile", "baseline", "superblock", "memopt").
/// Returns false (leaving \p Mode untouched) for anything else.
bool parsePromotionMode(const std::string &Name, PromotionMode &Mode);

/// Every mode, in declaration order — the matrix axis used by the
/// differential oracle and the workload benches.
const std::array<PromotionMode, 6> &allPromotionModes();

/// Options of a pipeline run. Promoter tunables live in the embedded
/// PromotionOptions; everything else (mode, entry, verification,
/// measurement, caching) is pipeline-level.
struct PipelineOptions {
  PromotionMode Mode = PromotionMode::Paper;
  PromotionOptions Promo;
  std::string EntryFunction = "main";
  /// Run the IR verifier after every pass; failures are attributed to the
  /// pass that introduced them.
  bool VerifyEachStep = true;
  /// How deep the between-pass verification digs (srpc -verify-each=).
  /// Fast is the historical verifier (L0/L1 + memory-SSA link checks);
  /// Full adds the whole-function memory-SSA walks, the canonical-shape
  /// checks, the promotion invariants, and the promotion-ledger
  /// cross-check. Ignored when VerifyEachStep is false.
  Strictness VerifyStrictness = Strictness::Fast;
  /// Measure post-promotion register pressure (Table 3's coloring) as a
  /// final pipeline pass.
  bool MeasurePressure = true;
  /// Force every analysis request to rebuild (differential testing of the
  /// analysis cache). The SRP_DISABLE_ANALYSIS_CACHE=1 environment
  /// variable has the same effect without a rebuild.
  bool DisableAnalysisCache = false;
  /// Execution engine for the profile and measurement runs (srpc
  /// -interp=walk|bytecode|native; all produce identical
  /// ExecutionResults).
  InterpEngine Interp = defaultInterpEngine();
  /// Native engine only: call count at which a function is JIT-compiled.
  /// 0 keeps the process default (SRP_JIT_THRESHOLD, else 2 — profile run
  /// warms the ledger, measurement runs natively); 1 compiles on first
  /// call, which the parity suites use to force the JIT path.
  uint64_t JitThreshold = 0;
};

/// Immutable, cheaply copyable Mini-C source text. Copies share one
/// heap-allocated string, so fanning a workload out to a 54-job matrix
/// duplicates a pointer, not the program text.
class SourceText {
  std::shared_ptr<const std::string> Text;

public:
  SourceText() = default;
  SourceText(std::string S)
      : Text(std::make_shared<const std::string>(std::move(S))) {}
  SourceText(const char *S) : Text(std::make_shared<const std::string>(S)) {}

  const std::string &str() const {
    static const std::string Empty;
    return Text ? *Text : Empty;
  }
  operator const std::string &() const { return str(); }

  bool empty() const { return !Text || Text->empty(); }
  /// Identity of the shared storage (for tests asserting no duplication).
  const std::string *storage() const { return Text.get(); }
  bool sharesStorageWith(const SourceText &O) const {
    return Text && Text == O.Text;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const SourceText &S) {
  return OS << S.str();
}

} // namespace srp

#endif // SRP_PIPELINE_PIPELINECONFIG_H
