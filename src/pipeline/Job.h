//===- pipeline/Job.h - First-class compile jobs ---------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job API every pipeline entry point consumes: a CompileJob names a
/// unit of work (source + PipelineOptions), a JobResult carries the run's
/// PipelineResult plus its serialised report. Three consumers share it:
///
///   - the srpc one-shot CLI path (runCompileJob),
///   - the parallel workload driver (runPipelineParallel),
///   - the compile server's batch dispatcher (src/server/Server.h),
///
/// replacing the old ad-hoc `(Source, PipelineOptions)` plumbing and the
/// deprecated free runPipeline wrappers (deleted in this change).
///
/// resultToJson builds the `srpc --stats-json` document from a
/// PipelineResult; the server's wire format embeds the same bytes, so
/// the CLI report and the remote report are byte-identical by
/// construction (the schema is pinned by tests/JobTest.cpp and
/// documented in docs/OBSERVABILITY.md).
///
/// JobCache is the process-wide cross-job result cache the server
/// shares between clients: identical (source, options) submissions are
/// answered from memory. Within one job, the per-run AnalysisManager
/// still amortises dominators/intervals/memory-SSA/liveness/bytecode
/// across passes; the cache model is described in docs/SERVER.md.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_JOB_H
#define SRP_PIPELINE_JOB_H

#include "pipeline/Pipeline.h"
#include "pipeline/PipelineConfig.h"
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace srp {

/// One unit of compile/run work. Source is shared immutable storage:
/// building a workload x mode matrix copies pointers, not program text.
struct CompileJob {
  std::string Name;   ///< report label ("compress.mc/paper", file name)
  SourceText Source;  ///< Mini-C source (or textual IR, see InputIsIR)
  PipelineOptions Opts;
  bool InputIsIR = false; ///< parse Source as textual IR, not Mini-C

  /// Observability requests. These travel with the job (a `--connect`
  /// client sets them in the wire request) and are folded into
  /// jobFingerprint — but not into pipelineOptionsKey, which stays
  /// purely semantic — so a cached result always carries the capture the
  /// submission asked for and can replay it byte-identically.
  bool WantRemarks = false;     ///< capture remarks into the result
  std::string RemarksFilter;    ///< pass filter ("" = every pass)
  bool WantTrace = false;       ///< capture a per-job Chrome trace
};

/// What one job produced: the pipeline result plus the serialised
/// report (the --stats-json document) built by resultToJson.
struct JobResult {
  PipelineResult Pipeline;
  std::string ReportJson;
  bool CacheHit = false; ///< answered from a JobCache, not a fresh run

  bool ok() const { return Pipeline.Ok; }
};

/// Runs one job through the pipeline (Mini-C or textual IR input) and
/// builds its report. The one-shot srpc path and the server workers both
/// funnel through here.
JobResult runCompileJob(const CompileJob &Job);

/// Renders \p R as the `srpc --stats-json` JSON document (multi-line,
/// two-space indented, byte-stable for equal inputs). \p Job supplies
/// the identity fields (file/name, mode, entry) and the engine/verify
/// spellings. The "statistics" section snapshots the process-global
/// registry at call time.
std::string resultToJson(const PipelineResult &R, const CompileJob &Job);

/// Order-independent 64-bit digest of an execution's final memory state
/// (object id -> cells). Lets the server wire format carry a
/// behavioural-parity witness without shipping whole memory images.
uint64_t finalMemoryHash(const ExecutionResult &R);

/// Canonical single-line spelling of every semantics-relevant pipeline
/// option ("mode=paper entry=main ..."), the options half of a job
/// fingerprint. Two jobs with equal keys and equal source bytes are
/// interchangeable.
std::string pipelineOptionsKey(const PipelineOptions &Opts);

/// FNV-1a digest of (source bytes, options key, input kind). Used as
/// the JobCache index.
uint64_t jobFingerprint(const CompileJob &Job);

/// Running totals of a JobCache.
struct JobCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? double(Hits) / double(Total) : 0.0;
  }
};

/// Process-wide, thread-safe, bounded LRU cache of finished job
/// results, keyed by jobFingerprint + the exact (options key, source
/// length) pair so a hash collision can never alias two jobs. The
/// compile server consults it before scheduling (docs/SERVER.md);
/// entries are immutable and shared, so a hit costs one map lookup and
/// a shared_ptr copy.
class JobCache {
public:
  /// The cacheable slice of a JobResult: the serialised report plus the
  /// behavioural fields responses carry (output, exit, parity hash).
  struct Entry {
    bool Ok = false;
    int64_t ExitValue = 0;
    std::vector<int64_t> Output;
    uint64_t FinalMemoryHash = 0;
    std::vector<std::string> Errors;
    std::string ReportJson;
    /// Captured observability, replayed byte-identically on a hit.
    /// RemarksJson is the remarksToJson document ("" when the job did not
    /// request remarks — WantRemarks is in the cache key, so every entry
    /// for a requesting job has it, even if empty of remarks); TraceJson
    /// is the per-job Chrome trace document, "" when not requested.
    std::string RemarksJson;
    std::string TraceJson;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit JobCache(size_t Capacity = 128) : Capacity(Capacity ? Capacity : 1) {}

  /// Returns the cached entry for \p Job, or null. A hit refreshes the
  /// entry's LRU position.
  EntryPtr lookup(const CompileJob &Job);

  /// Inserts (or refreshes) the result of \p Job, evicting the least
  /// recently used entry when full.
  void insert(const CompileJob &Job, EntryPtr E);

  /// Builds the cacheable slice of a finished job.
  static EntryPtr makeEntry(const CompileJob &Job, const PipelineResult &R,
                            const std::string &ReportJson);

  JobCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }

private:
  std::string keyOf(const CompileJob &Job) const;

  const size_t Capacity;
  mutable std::mutex Mu;
  std::list<std::string> LRU; // front = most recent
  struct Slot {
    EntryPtr E;
    std::list<std::string>::iterator Pos;
  };
  std::unordered_map<std::string, Slot> Map;
  JobCacheStats Stats;
};

/// Per-job completion hook for runPipelineParallel, invoked on the
/// worker thread that finished the job, after its result is stored.
/// Used by the compile server to stream responses as jobs finish
/// instead of waiting for the whole batch.
using JobDoneFn =
    std::function<void(size_t Index, const PipelineResult &Result)>;

/// Runs every job through the pipeline on a pool of \p Threads worker
/// threads (0 = hardware concurrency, clamped to the job count;
/// 1 = sequential in the calling thread). Results are returned in job
/// order and are identical to running the jobs sequentially: jobs share
/// no mutable state except the statistics registry, whose counters are
/// atomic and accumulate order-independently. \p TrackPrefix names the
/// pool's trace tracks ("<prefix>/worker-N"), so merged timelines tell
/// this driver's workers apart from other subsystems' pools (the compile
/// server passes "server").
std::vector<PipelineResult>
runPipelineParallel(const std::vector<CompileJob> &Jobs, unsigned Threads = 0,
                    const JobDoneFn &OnDone = nullptr,
                    const char *TrackPrefix = "pipeline");

} // namespace srp

#endif // SRP_PIPELINE_JOB_H
