//===- pipeline/Pipeline.h - End-to-end compilation driver -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement pipeline of the paper's evaluation, end to end:
///
///   Mini-C -> IR -> mem2reg -> CFG canonicalisation -> memory SSA
///          -> profile run (interpreter) -> register promotion -> counts
///
/// plus the baseline variant (Lu-Cooper-style loop promotion) and the
/// no-promotion control. Static memory-operation counting lives here too.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_PIPELINE_H
#define SRP_PIPELINE_PIPELINE_H

#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "pipeline/PassManager.h"
#include "promotion/LoopPromotion.h"
#include "promotion/SuperblockPromotion.h"
#include "promotion/PromotionOptions.h"
#include "regalloc/Coloring.h"
#include <memory>
#include <string>
#include <vector>

namespace srp {


/// Static (textual) counts of memory operations in a module or function.
struct StaticCounts {
  unsigned Loads = 0;   ///< singleton loads
  unsigned Stores = 0;  ///< singleton stores
  unsigned AliasedOps = 0;

  unsigned total() const { return Loads + Stores; }
};

StaticCounts countStaticMemOps(const Module &M);
StaticCounts countStaticMemOps(const Function &F);

/// How to transform the program between the profile run and measurement.
enum class PromotionMode {
  None,          ///< control: mem2reg only
  Paper,         ///< the paper's SSA/interval/profile promoter
  PaperNoProfile,///< paper promoter driven by static frequency estimates
  LoopBaseline,  ///< Lu-Cooper-style loop promotion
  Superblock,    ///< Mahlke-style superblock (hot trace) migration
  MemOptOnly,    ///< classic memory-SSA RLE + DSE, no promotion
};

/// Spelling used by -mode= flags, test names and JSON output.
const char *promotionModeName(PromotionMode Mode);

struct PipelineOptions {
  PromotionMode Mode = PromotionMode::Paper;
  PromotionOptions Promo;
  std::string EntryFunction = "main";
  /// Run the IR verifier after every pass; failures are attributed to the
  /// pass that introduced them.
  bool VerifyEachStep = true;
  /// Measure post-promotion register pressure (Table 3's coloring) as a
  /// final pipeline pass.
  bool MeasurePressure = true;
};

/// Everything a pipeline run produces.
struct PipelineResult {
  bool Ok = false;
  std::vector<std::string> Errors;

  std::unique_ptr<Module> M;

  StaticCounts StaticBefore, StaticAfter;
  ExecutionResult RunBefore, RunAfter;
  PromotionStats Promo;
  LoopPromotionStats Baseline;
  SuperblockStats Superblock;

  /// Per-pass wall times and verification outcomes, in execution order
  /// (see pipeline/PassManager.h).
  std::vector<PassRecord> Passes;
  /// Module-wide register pressure after promotion: NumValues/Edges are
  /// summed over functions, ColorsNeeded/MaxLive are per-function maxima.
  PressureReport Pressure;
};

/// Runs the full pipeline over Mini-C \p Source.
PipelineResult runPipeline(const std::string &Source,
                           const PipelineOptions &Opts = {});

/// Runs the pipeline stages on an already-built module (consumed). The
/// "before" run/counts are taken after mem2reg + canonicalisation (the
/// common baseline every mode shares).
PipelineResult runPipeline(std::unique_ptr<Module> M,
                           const PipelineOptions &Opts = {});

/// One unit of work for the parallel workload driver.
struct PipelineJob {
  std::string Name;   ///< label for reports ("compress.mc/paper")
  std::string Source; ///< Mini-C source
  PipelineOptions Opts;
};

/// Runs every job through runPipeline on a pool of \p Threads worker
/// threads (0 = hardware concurrency, clamped to the job count;
/// 1 = sequential in the calling thread). Results are returned in job
/// order and are identical to running the jobs sequentially: jobs share
/// no mutable state except the statistics registry, whose counters are
/// atomic and accumulate order-independently.
std::vector<PipelineResult>
runPipelineParallel(const std::vector<PipelineJob> &Jobs,
                    unsigned Threads = 0);

} // namespace srp

#endif // SRP_PIPELINE_PIPELINE_H
