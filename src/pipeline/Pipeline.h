//===- pipeline/Pipeline.h - End-to-end compilation driver -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement pipeline of the paper's evaluation, end to end:
///
///   Mini-C -> IR -> mem2reg -> CFG canonicalisation -> memory SSA
///          -> profile run (interpreter) -> register promotion -> counts
///
/// plus the baseline variant (Lu-Cooper-style loop promotion) and the
/// no-promotion control. Static memory-operation counting lives here too.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_PIPELINE_H
#define SRP_PIPELINE_PIPELINE_H

#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "promotion/LoopPromotion.h"
#include "promotion/SuperblockPromotion.h"
#include "promotion/PromotionOptions.h"
#include <memory>
#include <string>
#include <vector>

namespace srp {


/// Static (textual) counts of memory operations in a module or function.
struct StaticCounts {
  unsigned Loads = 0;   ///< singleton loads
  unsigned Stores = 0;  ///< singleton stores
  unsigned AliasedOps = 0;

  unsigned total() const { return Loads + Stores; }
};

StaticCounts countStaticMemOps(const Module &M);
StaticCounts countStaticMemOps(const Function &F);

/// How to transform the program between the profile run and measurement.
enum class PromotionMode {
  None,          ///< control: mem2reg only
  Paper,         ///< the paper's SSA/interval/profile promoter
  PaperNoProfile,///< paper promoter driven by static frequency estimates
  LoopBaseline,  ///< Lu-Cooper-style loop promotion
  Superblock,    ///< Mahlke-style superblock (hot trace) migration
  MemOptOnly,    ///< classic memory-SSA RLE + DSE, no promotion
};

struct PipelineOptions {
  PromotionMode Mode = PromotionMode::Paper;
  PromotionOptions Promo;
  std::string EntryFunction = "main";
  bool VerifyEachStep = true;
};

/// Everything a pipeline run produces.
struct PipelineResult {
  bool Ok = false;
  std::vector<std::string> Errors;

  std::unique_ptr<Module> M;

  StaticCounts StaticBefore, StaticAfter;
  ExecutionResult RunBefore, RunAfter;
  PromotionStats Promo;
  LoopPromotionStats Baseline;
  SuperblockStats Superblock;
};

/// Runs the full pipeline over Mini-C \p Source.
PipelineResult runPipeline(const std::string &Source,
                           const PipelineOptions &Opts = {});

/// Runs the pipeline stages on an already-built module (consumed). The
/// "before" run/counts are taken after mem2reg + canonicalisation (the
/// common baseline every mode shares).
PipelineResult runPipeline(std::unique_ptr<Module> M,
                           const PipelineOptions &Opts = {});

} // namespace srp

#endif // SRP_PIPELINE_PIPELINE_H
