//===- pipeline/Pipeline.h - End-to-end compilation driver -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement pipeline of the paper's evaluation, end to end:
///
///   Mini-C -> IR -> mem2reg -> CFG canonicalisation -> memory SSA
///          -> profile run (interpreter) -> register promotion -> counts
///
/// plus the baseline variant (Lu-Cooper-style loop promotion) and the
/// no-promotion control. Static memory-operation counting lives here too.
///
/// The primary entry point is PipelineBuilder, a fluent configuration
/// API that owns the run's AnalysisManager:
///
///   PipelineResult R = PipelineBuilder()
///                          .mode(PromotionMode::Paper)
///                          .entry("main")
///                          .run(Source);
///
/// Job-granular entry points (CompileJob / runCompileJob /
/// runPipelineParallel) live in pipeline/Job.h; the historical free
/// runPipeline wrappers are gone.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PIPELINE_PIPELINE_H
#define SRP_PIPELINE_PIPELINE_H

#include "analysis/AnalysisManager.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "pipeline/PassManager.h"
#include "pipeline/PipelineConfig.h"
#include "promotion/LoopPromotion.h"
#include "promotion/SuperblockPromotion.h"
#include "promotion/PromotionOptions.h"
#include "regalloc/Coloring.h"
#include "support/Remarks.h"
#include <memory>
#include <string>
#include <vector>

namespace srp {


/// Static (textual) counts of memory operations in a module or function.
struct StaticCounts {
  unsigned Loads = 0;   ///< singleton loads
  unsigned Stores = 0;  ///< singleton stores
  unsigned AliasedOps = 0;

  unsigned total() const { return Loads + Stores; }
};

StaticCounts countStaticMemOps(const Module &M);
StaticCounts countStaticMemOps(const Function &F);

/// Everything a pipeline run produces.
struct PipelineResult {
  bool Ok = false;
  std::vector<std::string> Errors;

  std::unique_ptr<Module> M;

  StaticCounts StaticBefore, StaticAfter;
  ExecutionResult RunBefore, RunAfter;
  PromotionStats Promo;
  LoopPromotionStats Baseline;
  SuperblockStats Superblock;

  /// Per-pass wall times and verification outcomes, in execution order
  /// (see pipeline/PassManager.h).
  std::vector<PassRecord> Passes;
  /// Module-wide register pressure after promotion: NumValues/Edges are
  /// summed over functions, ColorsNeeded/MaxLive are per-function maxima.
  PressureReport Pressure;
  /// Analysis-cache accounting for this run (hits, misses, invalidations,
  /// per-kind build counts). Feeds the `analysis` section of --stats-json.
  AnalysisCacheStats Analysis;
  /// Between-pass verification accounting (checks run, diagnostics,
  /// wall time). Feeds the `verification` section of --stats-json.
  VerifyRunStats Verify;
  /// End-to-end wall time of this run (compile + passes + measure runs).
  /// Feeds the per-job `wall_seconds` of bench_workload_matrix.
  double WallSeconds = 0;

  /// Per-job observability capture (CompileJob::WantRemarks/WantTrace).
  /// Remarks holds the run's remarks in emission order when
  /// RemarksCaptured is set (an empty capture is distinct from "not
  /// requested"); TraceJson holds the run's single-track Chrome trace
  /// document, "" when tracing was not requested. Both are captured
  /// per-thread, so concurrent jobs never interleave (docs/SERVER.md).
  std::vector<Remark> Remarks;
  bool RemarksCaptured = false;
  std::string TraceJson;
};

/// Fluent pipeline configuration and driver. A builder owns the
/// AnalysisManager its runs execute against: each run() constructs a
/// fresh manager bound to the compiled module and leaves it accessible
/// through analysisManager() until the next run, so tests can inspect
/// cache state post-mortem. Builders are reusable but single-threaded;
/// the parallel workload driver uses one builder per worker job.
class PipelineBuilder {
  PipelineOptions Opts;
  std::unique_ptr<AnalysisManager> AM;

public:
  PipelineBuilder() = default;

  PipelineBuilder &mode(PromotionMode M) {
    Opts.Mode = M;
    return *this;
  }
  PipelineBuilder &entry(std::string Name) {
    Opts.EntryFunction = std::move(Name);
    return *this;
  }
  PipelineBuilder &promotion(const PromotionOptions &P) {
    Opts.Promo = P;
    return *this;
  }
  PipelineBuilder &verifyEachStep(bool On) {
    Opts.VerifyEachStep = On;
    return *this;
  }
  PipelineBuilder &verifyStrictness(Strictness S) {
    Opts.VerifyStrictness = S;
    return *this;
  }
  PipelineBuilder &measurePressure(bool On) {
    Opts.MeasurePressure = On;
    return *this;
  }
  PipelineBuilder &disableAnalysisCache(bool On) {
    Opts.DisableAnalysisCache = On;
    return *this;
  }
  /// Replaces the whole option set (for callers that already hold one).
  PipelineBuilder &options(const PipelineOptions &O) {
    Opts = O;
    return *this;
  }
  const PipelineOptions &options() const { return Opts; }

  /// Compiles and runs Mini-C source. SourceText converts implicitly from
  /// std::string / string literals.
  PipelineResult run(const SourceText &Source);

  /// Runs the pipeline stages on an already-built module (consumed). The
  /// "before" run/counts are taken after mem2reg + canonicalisation (the
  /// common baseline every mode shares).
  PipelineResult run(std::unique_ptr<Module> M);

  /// The manager of the most recent run (null before the first). Valid
  /// until the next run() or the builder's destruction; its references
  /// point into the module owned by that run's PipelineResult.
  AnalysisManager *analysisManager() { return AM.get(); }
};

} // namespace srp

#endif // SRP_PIPELINE_PIPELINE_H
