//===- ir/BasicBlock.cpp - Basic block implementation --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include <algorithm>

using namespace srp;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "null instruction");
  Instruction *Raw = I.get();
  Insts.push_back(std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = std::prev(Insts.end());
  OrderValid = false;
  return Raw;
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(Pos && Pos->Parent == this && "position not in this block");
  Instruction *Raw = I.get();
  auto It = Insts.insert(Pos->SelfIt, std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = It;
  OrderValid = false;
  return Raw;
}

Instruction *BasicBlock::insertAfter(Instruction *Pos,
                                     std::unique_ptr<Instruction> I) {
  assert(Pos && Pos->Parent == this && "position not in this block");
  Instruction *Raw = I.get();
  auto It = Insts.insert(std::next(Pos->SelfIt), std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = It;
  OrderValid = false;
  return Raw;
}

Instruction *BasicBlock::prepend(std::unique_ptr<Instruction> I) {
  Instruction *Raw = I.get();
  Insts.push_front(std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = Insts.begin();
  OrderValid = false;
  return Raw;
}

Instruction *BasicBlock::insertBeforeTerminator(std::unique_ptr<Instruction> I) {
  Instruction *T = terminator();
  assert(T && "block has no terminator");
  return insertBefore(T, std::move(I));
}

Instruction *BasicBlock::insertAfterPhis(std::unique_ptr<Instruction> I) {
  for (auto &Inst : Insts) {
    if (Inst->kind() != Value::Kind::Phi &&
        Inst->kind() != Value::Kind::MemPhi)
      return insertBefore(Inst.get(), std::move(I));
  }
  return append(std::move(I));
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  assert(I && I->Parent == this && "instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*I->SelfIt);
  Insts.erase(I->SelfIt);
  I->Parent = nullptr;
  OrderValid = false;
  return Owned;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing an instruction that still has uses");
  remove(I); // unique_ptr destroys it
}

bool BasicBlock::comesBefore(const Instruction *A,
                             const Instruction *B) const {
  return indexOf(A) < indexOf(B);
}

unsigned BasicBlock::indexOf(const Instruction *I) const {
  assert(I->parent() == this && "instruction not in this block");
  if (!OrderValid) {
    OrderSnapshot.clear();
    OrderSnapshot.reserve(Insts.size());
    for (const auto &Inst : Insts)
      OrderSnapshot.push_back(Inst.get());
    OrderValid = true;
  }
  auto It = std::find(OrderSnapshot.begin(), OrderSnapshot.end(), I);
  assert(It != OrderSnapshot.end() && "stale ordering snapshot");
  return static_cast<unsigned>(It - OrderSnapshot.begin());
}

void BasicBlock::removePred(BasicBlock *BB) {
  auto It = std::find(Preds.begin(), Preds.end(), BB);
  assert(It != Preds.end() && "predecessor not found");
  Preds.erase(It);
}

void BasicBlock::replacePred(BasicBlock *Old, BasicBlock *New) {
  auto It = std::find(Preds.begin(), Preds.end(), Old);
  assert(It != Preds.end() && "predecessor not found");
  *It = New;
}
