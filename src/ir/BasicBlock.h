//===- ir/BasicBlock.h - Basic block ---------------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-entry single-exit sequence of instructions ending in exactly one
/// terminator. Successors derive from the terminator; predecessor lists are
/// maintained by the CFG editing utilities (ir/CFGEdit.h).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_BASICBLOCK_H
#define SRP_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include <list>
#include <memory>

namespace srp {

class Function;

class BasicBlock {
  friend class Function;

  std::string Name;
  Function *Parent = nullptr;
  std::list<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;

  /// Lazy intra-block ordering cache: Order[i] is valid while OrderEpoch
  /// matches the instruction's cached epoch. Rebuilt on demand after
  /// insertions.
  mutable std::vector<const Instruction *> OrderSnapshot;
  mutable bool OrderValid = false;

public:
  using iterator = std::list<std::unique_ptr<Instruction>>::iterator;
  using const_iterator = std::list<std::unique_ptr<Instruction>>::const_iterator;

  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Function *parent() const { return Parent; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  unsigned size() const { return static_cast<unsigned>(Insts.size()); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block terminator, or null if the block is not yet terminated.
  Instruction *terminator() const {
    return !Insts.empty() && Insts.back()->isTerminator() ? back() : nullptr;
  }

  //===--------------------------------------------------------------------===
  // Instruction list mutation. All take ownership of \p I.
  //===--------------------------------------------------------------------===

  Instruction *append(std::unique_ptr<Instruction> I);
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);
  Instruction *insertAfter(Instruction *Pos, std::unique_ptr<Instruction> I);
  /// Inserts at the start of the block.
  Instruction *prepend(std::unique_ptr<Instruction> I);
  /// Inserts immediately before the terminator (which must exist).
  Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> I);
  /// Inserts after the (leading) phi and memory-phi instructions.
  Instruction *insertAfterPhis(std::unique_ptr<Instruction> I);

  std::unique_ptr<Instruction> remove(Instruction *I);
  void erase(Instruction *I);

  /// Intra-block ordering: true if \p A appears strictly before \p B. Both
  /// must belong to this block. Amortised O(1) via a lazily rebuilt
  /// position snapshot.
  bool comesBefore(const Instruction *A, const Instruction *B) const;
  /// Index of \p I within this block (for ordering and diagnostics).
  unsigned indexOf(const Instruction *I) const;

  //===--------------------------------------------------------------------===
  // CFG.
  //===--------------------------------------------------------------------===

  const std::vector<BasicBlock *> &preds() const { return Preds; }
  std::vector<BasicBlock *> succs() const {
    Instruction *T = terminator();
    return T ? T->successors() : std::vector<BasicBlock *>();
  }
  unsigned numPreds() const { return static_cast<unsigned>(Preds.size()); }

  /// Predecessor list maintenance; used by CFG edit utilities only.
  void addPred(BasicBlock *BB) { Preds.push_back(BB); }
  void removePred(BasicBlock *BB);
  void replacePred(BasicBlock *Old, BasicBlock *New);

  /// Recomputes phi/memphi incoming lists and Preds invariants after edge
  /// edits is the caller's job; this only invalidates the ordering cache.
  void invalidateOrder() { OrderValid = false; }
};

} // namespace srp

#endif // SRP_IR_BASICBLOCK_H
