//===- ir/Value.h - Value hierarchy root -----------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Root of the value hierarchy: every SSA name in the IR (constants,
/// arguments, instruction results, and memory SSA names) is a Value. Values
/// track their users so transformations can RAUW and find dead definitions.
///
/// Following the paper's model (Sastry & Ju, PLDI'98 §3), memory locations
/// are tagged with resources that are themselves put in SSA form and treated
/// uniformly with register values; see MemoryName in ir/Memory.h.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_VALUE_H
#define SRP_IR_VALUE_H

#include "support/Casting.h"
#include <cstdint>
#include <string>
#include <vector>

namespace srp {

class Instruction;

/// Scalar type of a value. The IR is deliberately minimal: 64-bit integers,
/// pointers (addresses of memory objects / array cells) and void.
enum class Type : uint8_t { Void, Int, Ptr };

/// Returns a printable spelling of \p Ty.
const char *typeName(Type Ty);

/// A single use of a Value by an Instruction. \p IsMem distinguishes memory
/// operands (uses of MemoryName versions: mu-operands, phi sources) from
/// register operands.
struct Use {
  Instruction *User;
  unsigned Index;
  bool IsMem;

  bool operator==(const Use &RHS) const {
    return User == RHS.User && Index == RHS.Index && IsMem == RHS.IsMem;
  }
};

class Value {
public:
  /// Discriminator for the value hierarchy (LLVM-style closed hierarchy with
  /// manual RTTI). Instruction opcodes live in [FirstInst, LastInst].
  enum class Kind : uint8_t {
    ConstantInt,
    Undef,
    Argument,
    MemoryName,
    // Instructions. Keep this range contiguous; Instruction::classof relies
    // on it.
    FirstInst,
    BinOp = FirstInst,
    Copy,
    Phi,
    Load,
    Store,
    AddrOf,
    PtrLoad,
    PtrStore,
    ArrayLoad,
    ArrayStore,
    Call,
    Print,
    Br,
    CondBr,
    Ret,
    MemPhi,
    DummyLoad,
    LastInst = DummyLoad,
  };

private:
  const Kind K;
  Type Ty;
  std::string Name;
  std::vector<Use> Uses;

protected:
  Value(Kind K, Type Ty, std::string Name = "")
      : K(K), Ty(Ty), Name(std::move(Name)) {}

public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  Kind kind() const { return K; }
  Type type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// All uses of this value. Order is insertion order; do not rely on it for
  /// semantics.
  const std::vector<Use> &uses() const { return Uses; }
  bool hasUses() const { return !Uses.empty(); }
  unsigned numUses() const { return static_cast<unsigned>(Uses.size()); }

  /// Use-list maintenance; called by Instruction operand setters only.
  void addUse(const Use &U) { Uses.push_back(U); }
  void removeUse(const Use &U);

  /// Rewrites every use of this value to refer to \p New instead. \p New
  /// must be type- and category-compatible (memory names only replace memory
  /// names).
  void replaceAllUsesWith(Value *New);

  /// Renders the value reference (e.g. "%t3", "42", "x.2") to a string.
  std::string referenceString() const;
};

/// An integer literal. Uniqued and owned by the Module.
class ConstantInt : public Value {
  int64_t V;

public:
  explicit ConstantInt(int64_t V) : Value(Kind::ConstantInt, Type::Int), V(V) {}

  int64_t value() const { return V; }

  static bool classof(const Value *V) {
    return V->kind() == Kind::ConstantInt;
  }
};

/// The undefined value (value of an uninitialized local). Owned by Module.
class UndefValue : public Value {
public:
  UndefValue() : Value(Kind::Undef, Type::Int) {}

  static bool classof(const Value *V) { return V->kind() == Kind::Undef; }
};

class Function;

/// An incoming formal argument of a Function.
class Argument : public Value {
  Function *Parent;
  unsigned Index;

public:
  Argument(Function *Parent, unsigned Index, std::string Name)
      : Value(Kind::Argument, Type::Int, std::move(Name)), Parent(Parent),
        Index(Index) {}

  Function *parent() const { return Parent; }
  unsigned index() const { return Index; }

  static bool classof(const Value *V) { return V->kind() == Kind::Argument; }
};

} // namespace srp

#endif // SRP_IR_VALUE_H
