//===- ir/CFGEdit.h - CFG editing utilities --------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-level CFG surgery that keeps predecessor lists and (memory) phi
/// incoming lists consistent: edge splitting (for critical edges and
/// interval tails) and preheader insertion.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_CFGEDIT_H
#define SRP_IR_CFGEDIT_H

#include <vector>

namespace srp {

class BasicBlock;
class Function;

/// Observer for in-place IR mutations performed by the editing utilities.
/// The cached-analysis layer (analysis/AnalysisManager.h) subscribes so
/// that CFG surgery invalidates exactly the analyses it makes stale,
/// instead of clients conservatively recomputing everything.
///
/// The listener registry is thread-local: a listener only sees edits made
/// on the thread that registered it. This matches the pipeline's threading
/// model (one pipeline, one analysis manager, one thread) and makes
/// notification lock-free under the parallel workload driver.
class IRChangeListener {
public:
  virtual ~IRChangeListener();
  /// The CFG shape of \p F changed: a block was inserted on an edge,
  /// predecessors were redirected, or the entry was replaced.
  virtual void cfgChanged(Function &F) = 0;
  /// SSA form of \p F was edited in place (phis inserted or removed, uses
  /// renamed) without touching any CFG edge. Fired by the SSA updater.
  virtual void ssaEdited(Function &F);
};

/// Registers / unregisters \p L on the current thread's listener list.
void addIRChangeListener(IRChangeListener *L);
void removeIRChangeListener(IRChangeListener *L);

/// Reports an edit to every listener registered on this thread. The CFG
/// editing utilities below call notifyCFGChanged themselves; transforms
/// that mutate the CFG through raw Function/BasicBlock surgery must call
/// it manually.
void notifyCFGChanged(Function &F);
void notifySSAEdited(Function &F);

/// True if From->To has multiple successors at the source and multiple
/// predecessors at the target (§4.1's critical edge definition).
bool isCriticalEdge(const BasicBlock *From, const BasicBlock *To);

/// Inserts a new block on the edge From->To and returns it. Phi and memory
/// phi incoming blocks in \p To are redirected to the new block. The new
/// block ends in an unconditional branch to \p To.
BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To);

/// Splits every critical edge in \p F. Returns the number of edges split.
unsigned splitAllCriticalEdges(Function &F);

/// Redirects the subset \p Preds of To's predecessors to a fresh block that
/// falls through to \p To (used to create loop preheaders). Returns the new
/// block. Phis in \p To are updated: incoming entries from the redirected
/// predecessors are merged into a single entry whose value is a new phi in
/// the new block (or the single value when all agree).
BasicBlock *redirectPredsToNewBlock(BasicBlock *To,
                                    const std::vector<BasicBlock *> &Preds,
                                    const char *NameHint);

} // namespace srp

#endif // SRP_IR_CFGEDIT_H
