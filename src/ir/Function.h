//===- ir/Function.h - Function --------------------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its basic blocks, formal arguments, address-exposed local
/// memory objects, and all MemoryName versions created for objects inside
/// it. The first block is the entry; it must not have predecessors.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_FUNCTION_H
#define SRP_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include <list>
#include <memory>
#include <unordered_map>

namespace srp {

class Module;

class Function {
  std::string Name;
  Type RetTy;
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::list<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<std::unique_ptr<MemoryObject>> Locals;
  std::vector<std::unique_ptr<MemoryName>> MemNames;
  /// Live-in SSA version of each memory object at function entry. Kept on
  /// the Function (not the MemoryObject) because globals are shared across
  /// functions but memory SSA is per-function.
  std::unordered_map<const MemoryObject *, MemoryName *> EntryNames;
  unsigned NextValueNumber = 0;
  unsigned NextBlockNumber = 0;

public:
  using iterator = std::list<std::unique_ptr<BasicBlock>>::iterator;
  using const_iterator = std::list<std::unique_ptr<BasicBlock>>::const_iterator;

  Function(std::string Name, Type RetTy, Module *Parent)
      : Name(std::move(Name)), RetTy(RetTy), Parent(Parent) {}
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;
  /// Drops all cross-instruction references before destruction so values
  /// may die in any order.
  ~Function();

  const std::string &name() const { return Name; }
  Type returnType() const { return RetTy; }
  Module *parent() const { return Parent; }

  //===--------------------------------------------------------------------===
  // Arguments.
  //===--------------------------------------------------------------------===

  Argument *addArgument(std::string ArgName) {
    Args.push_back(std::make_unique<Argument>(
        this, static_cast<unsigned>(Args.size()), std::move(ArgName)));
    return Args.back().get();
  }
  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *arg(unsigned I) const { return Args[I].get(); }

  //===--------------------------------------------------------------------===
  // Blocks.
  //===--------------------------------------------------------------------===

  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  const_iterator begin() const { return Blocks.begin(); }
  const_iterator end() const { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  unsigned size() const { return static_cast<unsigned>(Blocks.size()); }

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Creates and appends a new block. An empty \p BBName gets a unique
  /// "bb<N>" name.
  BasicBlock *createBlock(std::string BBName = "");
  /// Creates a block and inserts it immediately after \p After.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BBName = "");
  /// Removes and destroys \p BB. The block must have no predecessors and its
  /// instructions no remaining uses.
  void eraseBlock(BasicBlock *BB);
  /// Moves \p BB to the front of the block list, making it the entry.
  void makeEntry(BasicBlock *BB);

  /// Stable snapshot of block pointers in layout order.
  std::vector<BasicBlock *> blocks() const;

  //===--------------------------------------------------------------------===
  // Locals and memory SSA names.
  //===--------------------------------------------------------------------===

  MemoryObject *createLocal(std::string LocalName, MemoryObject::Kind K,
                            unsigned Size = 1, int64_t Init = 0);
  const std::vector<std::unique_ptr<MemoryObject>> &locals() const {
    return Locals;
  }

  /// Creates a fresh SSA version of \p Obj, owned by this function.
  MemoryName *createMemoryName(MemoryObject *Obj);

  /// The live-in version of \p Obj at function entry (null before memory
  /// SSA construction).
  MemoryName *entryMemoryName(const MemoryObject *Obj) const {
    auto It = EntryNames.find(Obj);
    return It == EntryNames.end() ? nullptr : It->second;
  }
  void setEntryMemoryName(const MemoryObject *Obj, MemoryName *N) {
    EntryNames[Obj] = N;
  }
  const std::vector<std::unique_ptr<MemoryName>> &memoryNames() const {
    return MemNames;
  }
  /// Destroys memory names that have no uses and no defining instruction
  /// reference (housekeeping; safe to skip).
  void purgeDeadMemoryNames();
  /// Drops all memory names and resets per-object version counters (used
  /// when rebuilding memory SSA from scratch).
  void clearMemorySSA();

  /// Returns a fresh unique value name with the given prefix ("%t42").
  std::string uniqueValueName(const char *Prefix = "t");
};

} // namespace srp

#endif // SRP_IR_FUNCTION_H
