//===- ir/Instruction.cpp - Instruction implementation -------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include <algorithm>

using namespace srp;

const char *srp::binOpName(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return "add";
  case BinOpKind::Sub:
    return "sub";
  case BinOpKind::Mul:
    return "mul";
  case BinOpKind::Div:
    return "div";
  case BinOpKind::Rem:
    return "rem";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  case BinOpKind::Xor:
    return "xor";
  case BinOpKind::Shl:
    return "shl";
  case BinOpKind::Shr:
    return "shr";
  case BinOpKind::CmpEQ:
    return "cmpeq";
  case BinOpKind::CmpNE:
    return "cmpne";
  case BinOpKind::CmpLT:
    return "cmplt";
  case BinOpKind::CmpLE:
    return "cmple";
  case BinOpKind::CmpGT:
    return "cmpgt";
  case BinOpKind::CmpGE:
    return "cmpge";
  }
  return "?";
}

Instruction::~Instruction() {
  // Drop our uses of operands. MemDefs are owned by the Function; the
  // defining-instruction back pointer is cleared so the verifier does not
  // see dangling defs.
  for (unsigned I = 0, E = numOperands(); I != E; ++I)
    if (Ops[I])
      Ops[I]->removeUse(Use{this, I, /*IsMem=*/false});
  for (unsigned I = 0, E = numMemOperands(); I != E; ++I)
    if (MemOps[I])
      MemOps[I]->removeUse(Use{this, I, /*IsMem=*/true});
  for (MemoryName *D : MemDefs)
    if (D && D->def() == this)
      D->setDef(nullptr);
}

Function *Instruction::function() const {
  return Parent ? Parent->parent() : nullptr;
}

void Instruction::addOperand(Value *V) {
  assert(V && "null operand");
  Ops.push_back(V);
  V->addUse(Use{this, static_cast<unsigned>(Ops.size() - 1), false});
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Ops.size() && "operand index out of range");
  assert(V && "null operand");
  if (Ops[I] == V)
    return;
  Ops[I]->removeUse(Use{this, I, false});
  Ops[I] = V;
  V->addUse(Use{this, I, false});
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Ops.size() && "operand index out of range");
  Ops[I]->removeUse(Use{this, I, false});
  for (unsigned J = I + 1, E = static_cast<unsigned>(Ops.size()); J != E;
       ++J) {
    Ops[J]->removeUse(Use{this, J, false});
    Ops[J - 1] = Ops[J];
    Ops[J - 1]->addUse(Use{this, J - 1, false});
  }
  Ops.pop_back();
}

void Instruction::setMemOperand(unsigned I, MemoryName *N) {
  assert(I < MemOps.size() && "memory operand index out of range");
  assert(N && "null memory operand");
  if (MemOps[I] == N)
    return;
  MemOps[I]->removeUse(Use{this, I, true});
  MemOps[I] = N;
  N->addUse(Use{this, I, true});
}

void Instruction::addMemOperand(MemoryName *N) {
  assert(N && "null memory operand");
  MemOps.push_back(N);
  N->addUse(Use{this, static_cast<unsigned>(MemOps.size() - 1), true});
}

void Instruction::removeMemOperand(unsigned I) {
  assert(I < MemOps.size() && "memory operand index out of range");
  MemOps[I]->removeUse(Use{this, I, true});
  // Shift the tail down, updating recorded use indices.
  for (unsigned J = I + 1, E = static_cast<unsigned>(MemOps.size()); J != E;
       ++J) {
    MemOps[J]->removeUse(Use{this, J, true});
    MemOps[J - 1] = MemOps[J];
    MemOps[J - 1]->addUse(Use{this, J - 1, true});
  }
  MemOps.pop_back();
}

void Instruction::clearMemOperands() {
  for (unsigned I = 0, E = numMemOperands(); I != E; ++I)
    MemOps[I]->removeUse(Use{this, I, true});
  MemOps.clear();
}

MemoryName *Instruction::memOperandFor(const MemoryObject *Obj) const {
  for (MemoryName *N : MemOps)
    if (N->object() == Obj)
      return N;
  return nullptr;
}

void Instruction::addMemDef(MemoryName *N) {
  assert(N && "null memory def");
  assert(!N->def() && "memory name already has a definition");
  MemDefs.push_back(N);
  N->setDef(this);
}

void Instruction::removeMemDef(unsigned I) {
  assert(I < MemDefs.size() && "memory def index out of range");
  if (MemDefs[I]->def() == this)
    MemDefs[I]->setDef(nullptr);
  MemDefs.erase(MemDefs.begin() + I);
}

void Instruction::clearMemDefs() {
  for (MemoryName *D : MemDefs)
    if (D->def() == this)
      D->setDef(nullptr);
  MemDefs.clear();
}

MemoryName *Instruction::memDefFor(const MemoryObject *Obj) const {
  for (MemoryName *N : MemDefs)
    if (N->object() == Obj)
      return N;
  return nullptr;
}

bool Instruction::isRemovableIfUnused() const {
  switch (kind()) {
  case Kind::BinOp:
  case Kind::Copy:
  case Kind::Phi:
  case Kind::Load:
  case Kind::AddrOf:
  case Kind::PtrLoad:
  case Kind::ArrayLoad:
  case Kind::MemPhi:
  case Kind::DummyLoad:
    return true;
  default:
    return false;
  }
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction has no parent");
  Parent->erase(this);
}

std::unique_ptr<Instruction> Instruction::removeFromParent() {
  assert(Parent && "instruction has no parent");
  return Parent->remove(this);
}

void Instruction::replaceSuccessor(BasicBlock *, BasicBlock *) {
  assert(false && "instruction has no successors");
}

void PhiInst::removeIncoming(unsigned I) {
  assert(I < Blocks.size() && "incoming index out of range");
  removeOperand(I);
  Blocks.erase(Blocks.begin() + I);
}

Value *PhiInst::incomingValueFor(const BasicBlock *BB) const {
  int I = indexOfBlock(BB);
  assert(I >= 0 && "no incoming value for block");
  return incomingValue(static_cast<unsigned>(I));
}

int PhiInst::indexOfBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = static_cast<unsigned>(Blocks.size()); I != E; ++I)
    if (Blocks[I] == BB)
      return static_cast<int>(I);
  return -1;
}

void BrInst::replaceSuccessor([[maybe_unused]] BasicBlock *Old,
                              BasicBlock *New) {
  assert(Target == Old && "successor not found");
  Target = New;
}

void CondBrInst::replaceSuccessor(BasicBlock *Old, BasicBlock *New) {
  assert((TrueBB == Old || FalseBB == Old) && "successor not found");
  if (TrueBB == Old)
    TrueBB = New;
  if (FalseBB == Old)
    FalseBB = New;
}

void MemPhiInst::removeIncoming(unsigned I) {
  removeMemOperand(I);
  Blocks.erase(Blocks.begin() + I);
}

int MemPhiInst::indexOfBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = static_cast<unsigned>(Blocks.size()); I != E; ++I)
    if (Blocks[I] == BB)
      return static_cast<int>(I);
  return -1;
}
