//===- ir/Printer.cpp - Textual IR dump -----------------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "ir/Module.h"
#include <sstream>

using namespace srp;

namespace {

void printOperandList(std::ostringstream &OS, const Instruction &I,
                      unsigned Begin = 0) {
  for (unsigned Idx = Begin, E = I.numOperands(); Idx != E; ++Idx) {
    if (Idx != Begin)
      OS << ", ";
    OS << I.operand(Idx)->referenceString();
  }
}

void printMuChi(std::ostringstream &OS, const Instruction &I) {
  if (I.numMemOperands()) {
    OS << " mu(";
    for (unsigned Idx = 0, E = I.numMemOperands(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << I.memOperand(Idx)->name();
    }
    OS << ")";
  }
  if (I.numMemDefs()) {
    OS << " chi(";
    for (unsigned Idx = 0, E = I.numMemDefs(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << I.memDef(Idx)->name();
    }
    OS << ")";
  }
}

void printInstruction(std::ostringstream &OS, const Instruction &I) {
  if (I.type() != Type::Void)
    OS << I.referenceString() << " = ";
  switch (I.kind()) {
  case Value::Kind::BinOp: {
    const auto &B = static_cast<const BinOpInst &>(I);
    OS << binOpName(B.op()) << " " << B.lhs()->referenceString() << ", "
       << B.rhs()->referenceString();
    break;
  }
  case Value::Kind::Copy:
    OS << static_cast<const CopyInst &>(I).source()->referenceString();
    break;
  case Value::Kind::Phi: {
    const auto &P = static_cast<const PhiInst &>(I);
    OS << "phi(";
    for (unsigned Idx = 0, E = P.numIncoming(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << P.incomingValue(Idx)->referenceString() << ":"
         << P.incomingBlock(Idx)->name();
    }
    OS << ")";
    break;
  }
  case Value::Kind::Load: {
    const auto &L = static_cast<const LoadInst &>(I);
    OS << "ld [" << L.object()->name() << "]";
    if (L.memUse())
      OS << " mu(" << L.memUse()->name() << ")";
    break;
  }
  case Value::Kind::Store: {
    const auto &S = static_cast<const StoreInst &>(I);
    if (S.memDefName())
      OS << S.memDefName()->name() << " = ";
    OS << "st [" << S.object()->name() << "], "
       << S.storedValue()->referenceString();
    break;
  }
  case Value::Kind::AddrOf:
    OS << "&" << static_cast<const AddrOfInst &>(I).object()->name();
    break;
  case Value::Kind::PtrLoad:
    OS << "ptrload "
       << static_cast<const PtrLoadInst &>(I).address()->referenceString();
    printMuChi(OS, I);
    break;
  case Value::Kind::PtrStore: {
    const auto &S = static_cast<const PtrStoreInst &>(I);
    OS << "ptrstore " << S.address()->referenceString() << ", "
       << S.storedValue()->referenceString();
    printMuChi(OS, I);
    break;
  }
  case Value::Kind::ArrayLoad: {
    const auto &L = static_cast<const ArrayLoadInst &>(I);
    OS << L.object()->name() << "[" << L.index()->referenceString() << "]";
    printMuChi(OS, I);
    break;
  }
  case Value::Kind::ArrayStore: {
    const auto &S = static_cast<const ArrayStoreInst &>(I);
    OS << S.object()->name() << "[" << S.index()->referenceString()
       << "] = " << S.storedValue()->referenceString();
    printMuChi(OS, I);
    break;
  }
  case Value::Kind::Call: {
    const auto &C = static_cast<const CallInst &>(I);
    OS << "call " << C.callee()->name() << "(";
    printOperandList(OS, I);
    OS << ")";
    printMuChi(OS, I);
    break;
  }
  case Value::Kind::Print:
    OS << "print "
       << static_cast<const PrintInst &>(I).value()->referenceString();
    break;
  case Value::Kind::Br:
    OS << "br " << static_cast<const BrInst &>(I).target()->name();
    break;
  case Value::Kind::CondBr: {
    const auto &B = static_cast<const CondBrInst &>(I);
    OS << "condbr " << B.condition()->referenceString() << ", "
       << B.trueTarget()->name() << ", " << B.falseTarget()->name();
    break;
  }
  case Value::Kind::Ret: {
    const auto &R = static_cast<const RetInst &>(I);
    OS << "ret";
    if (R.returnValue())
      OS << " " << R.returnValue()->referenceString();
    printMuChi(OS, I);
    break;
  }
  case Value::Kind::MemPhi: {
    const auto &P = static_cast<const MemPhiInst &>(I);
    OS << (P.target() ? P.target()->name() : std::string("<none>"))
       << " = memphi(";
    for (unsigned Idx = 0, E = P.numIncoming(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << P.incomingName(Idx)->name() << ":"
         << P.incomingBlock(Idx)->name();
    }
    OS << ")";
    break;
  }
  case Value::Kind::DummyLoad: {
    const auto &D = static_cast<const DummyLoadInst &>(I);
    OS << "dummyload [" << D.object()->name() << "]";
    printMuChi(OS, I);
    break;
  }
  default:
    OS << "<unknown>";
    break;
  }
}

} // namespace

std::string srp::toString(const Instruction &I) {
  std::ostringstream OS;
  printInstruction(OS, I);
  return OS.str();
}

std::string srp::toString(const BasicBlock &BB) {
  std::ostringstream OS;
  OS << BB.name() << ":";
  if (!BB.preds().empty()) {
    OS << "  ; preds:";
    for (BasicBlock *P : BB.preds())
      OS << " " << P->name();
  }
  OS << "\n";
  for (const auto &I : BB)
    OS << "  " << toString(*I) << "\n";
  return OS.str();
}

std::string srp::toString(const Function &F) {
  std::ostringstream OS;
  OS << "func " << typeName(F.returnType()) << " @" << F.name() << "(";
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << F.arg(I)->referenceString();
  }
  OS << ") {\n";
  for (const auto &BB : F)
    OS << toString(*BB);
  OS << "}\n";
  return OS.str();
}

std::string srp::toString(const Module &M) {
  std::ostringstream OS;
  OS << "; module " << M.name() << "\n";
  for (const auto &G : M.globals()) {
    OS << "global " << G->name();
    if (G->kind() == MemoryObject::Kind::Array)
      OS << "[" << G->size() << "]";
    else
      OS << " = " << G->initialValue();
    OS << "\n";
  }
  for (const auto &F : M.functions())
    OS << "\n" << toString(*F);
  return OS.str();
}
