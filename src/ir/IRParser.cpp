//===- ir/IRParser.cpp - Textual IR parser --------------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/Module.h"
#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>

using namespace srp;

namespace {

/// One token of a line: a word (identifier, possibly dotted), a %value
/// reference, an integer, or a single punctuation character.
struct Tok {
  enum Kind { Word, ValueRef, Int, Punct, End } K = End;
  std::string Text;
  int64_t IntVal = 0;
  char P = 0;
};

class LineLexer {
  const std::string S; // owned: callers often pass temporaries
  size_t I = 0;

public:
  explicit LineLexer(std::string S) : S(std::move(S)) {}

  Tok next() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    if (I >= S.size() || S[I] == ';')
      return {};
    char C = S[I];
    Tok T;
    if (C == '%') {
      ++I;
      size_t Start = I;
      while (I < S.size() && (std::isalnum(static_cast<unsigned char>(S[I])) ||
                              S[I] == '_' || S[I] == '.' || S[I] == '#'))
        ++I;
      T.K = Tok::ValueRef;
      T.Text = S.substr(Start, I - Start);
      return T;
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      if (C == '-')
        ++I;
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I]))) {
        // A lone '-' is punctuation (does not occur in valid IR).
        I = Start + 1;
        T.K = Tok::Punct;
        T.P = '-';
        return T;
      }
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
      T.K = Tok::Int;
      T.IntVal = std::stoll(S.substr(Start, I - Start));
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < S.size() && (std::isalnum(static_cast<unsigned char>(S[I])) ||
                              S[I] == '_' || S[I] == '.' || S[I] == '#'))
        ++I;
      T.K = Tok::Word;
      T.Text = S.substr(Start, I - Start);
      return T;
    }
    ++I;
    T.K = Tok::Punct;
    T.P = C;
    return T;
  }

  /// All tokens of the line.
  std::vector<Tok> all() {
    std::vector<Tok> Out;
    for (Tok T = next(); T.K != Tok::End; T = next())
      Out.push_back(T);
    return Out;
  }
};

class IRParserImpl {
  std::unique_ptr<Module> M = std::make_unique<Module>("parsed");
  std::vector<std::string> &Errors;
  std::vector<std::string> Lines;
  unsigned LineNo = 0;

  // Per-function state.
  Function *F = nullptr;
  std::unordered_map<std::string, Value *> Values;
  std::unordered_map<std::string, BasicBlock *> BlocksByName;
  struct Fixup {
    Instruction *I;
    unsigned OpIdx;
    std::string Name;
    unsigned Line;
  };
  std::vector<Fixup> Fixups;

  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(LineNo) + ": " + Msg);
  }

public:
  explicit IRParserImpl(const std::string &Source,
                        std::vector<std::string> &Errors)
      : Errors(Errors) {
    std::istringstream In(Source);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
  }

  std::unique_ptr<Module> run() {
    prescanFunctions();
    if (!Errors.empty())
      return nullptr;
    parseTopLevel();
    if (!Errors.empty())
      return nullptr;
    return std::move(M);
  }

private:
  static bool startsWith(const std::string &S, const char *Prefix) {
    return S.rfind(Prefix, 0) == 0;
  }

  static std::string stripped(const std::string &S) {
    size_t B = S.find_first_not_of(" \t");
    if (B == std::string::npos)
      return "";
    size_t E = S.find_last_not_of(" \t\r");
    return S.substr(B, E - B + 1);
  }

  /// First pass: declare every function so calls can reference them in any
  /// order.
  void prescanFunctions() {
    for (LineNo = 1; LineNo <= Lines.size(); ++LineNo) {
      std::string L = stripped(Lines[LineNo - 1]);
      if (!startsWith(L, "func "))
        continue;
      LineLexer Lex(L);
      std::vector<Tok> T = Lex.all();
      // func <type> @ <name> ( %a , %b ) {
      if (T.size() < 4 || T[1].K != Tok::Word) {
        error("malformed function header");
        continue;
      }
      Type RetTy;
      if (T[1].Text == "int")
        RetTy = Type::Int;
      else if (T[1].Text == "void")
        RetTy = Type::Void;
      else {
        error("unknown return type '" + T[1].Text + "'");
        continue;
      }
      size_t Idx = 2;
      if (T[Idx].K == Tok::Punct && T[Idx].P == '@')
        ++Idx;
      if (Idx >= T.size() || T[Idx].K != Tok::Word) {
        error("expected function name");
        continue;
      }
      std::string Name = T[Idx].Text;
      if (M->getFunction(Name)) {
        error("duplicate function '" + Name + "'");
        continue;
      }
      Function *Fn = M->createFunction(Name, RetTy);
      // Parameters: %a, %b between parens.
      for (++Idx; Idx < T.size(); ++Idx)
        if (T[Idx].K == Tok::ValueRef)
          Fn->addArgument(T[Idx].Text);
    }
  }

  void parseTopLevel() {
    for (LineNo = 1; LineNo <= Lines.size(); ++LineNo) {
      std::string L = stripped(Lines[LineNo - 1]);
      if (L.empty() || L[0] == ';')
        continue;
      if (startsWith(L, "global ")) {
        parseGlobal(L);
      } else if (startsWith(L, "func ")) {
        parseFunctionBody();
      } else {
        error("expected 'global' or 'func', found: " + L);
        return;
      }
    }
  }

  void parseGlobal(const std::string &L) {
    LineLexer Lex(L);
    std::vector<Tok> T = Lex.all();
    // global <name> = <int>   |   global <name> [ <int> ]
    if (T.size() < 2 || T[1].K != Tok::Word) {
      error("malformed global");
      return;
    }
    std::string Name = T[1].Text;
    if (M->getGlobal(Name)) {
      error("duplicate global '" + Name + "'");
      return;
    }
    if (T.size() >= 4 && T[2].K == Tok::Punct && T[2].P == '[') {
      if (T[3].K != Tok::Int || T[3].IntVal <= 0) {
        error("bad array size");
        return;
      }
      M->createGlobalArray(Name, static_cast<unsigned>(T[3].IntVal));
      return;
    }
    int64_t Init = 0;
    if (T.size() >= 4 && T[2].K == Tok::Punct && T[2].P == '=' &&
        T[3].K == Tok::Int)
      Init = T[3].IntVal;
    // Dotted names are struct components.
    if (Name.find('.') != std::string::npos)
      M->createField(Name, Init);
    else
      M->createGlobal(Name, Init);
  }

  /// Parses the body between the current "func ... {" line and its "}".
  void parseFunctionBody() {
    // Re-lex the header to find the function (already declared).
    LineLexer Lex(stripped(Lines[LineNo - 1]));
    std::vector<Tok> T = Lex.all();
    size_t Idx = 2;
    if (T[Idx].K == Tok::Punct && T[Idx].P == '@')
      ++Idx;
    F = M->getFunction(T[Idx].Text);
    Values.clear();
    BlocksByName.clear();
    Fixups.clear();
    for (unsigned A = 0; A != F->numArgs(); ++A)
      Values[F->arg(A)->name()] = F->arg(A);

    // Find the body extent and pre-create the labelled blocks.
    unsigned BodyStart = LineNo + 1;
    unsigned BodyEnd = BodyStart;
    for (unsigned I = BodyStart; I <= Lines.size(); ++I) {
      std::string L = stripped(Lines[I - 1]);
      if (L == "}") {
        BodyEnd = I;
        break;
      }
      if (I == Lines.size()) {
        error("missing '}' at end of function");
        return;
      }
    }
    for (unsigned I = BodyStart; I < BodyEnd; ++I) {
      std::string L = stripped(Lines[I - 1]);
      if (std::optional<std::string> Label = blockLabel(L)) {
        if (BlocksByName.count(*Label)) {
          LineNo = I;
          error("duplicate block label '" + *Label + "'");
          return;
        }
        BlocksByName[*Label] = F->createBlock(*Label);
      }
    }

    BasicBlock *Cur = nullptr;
    for (LineNo = BodyStart; LineNo < BodyEnd; ++LineNo) {
      std::string L = stripped(Lines[LineNo - 1]);
      if (L.empty() || L[0] == ';')
        continue;
      if (std::optional<std::string> Label = blockLabel(L)) {
        Cur = BlocksByName[*Label];
        continue;
      }
      if (!Cur) {
        error("instruction before first block label");
        return;
      }
      parseInstruction(L, Cur);
      if (!Errors.empty())
        return;
    }
    LineNo = BodyEnd;

    resolveFixups();
    // Every reachable block must be terminated for the CFG to make sense.
    for (BasicBlock *BB : F->blocks())
      if (!BB->terminator()) {
        error("block '" + BB->name() + "' has no terminator");
        return;
      }
  }

  /// "label:" optionally followed by a comment.
  std::optional<std::string> blockLabel(const std::string &L) {
    if (L.empty() || L[0] == ';' || startsWith(L, "func"))
      return std::nullopt;
    size_t Colon = L.find(':');
    if (Colon == std::string::npos || Colon == 0)
      return std::nullopt;
    std::string Head = L.substr(0, Colon);
    for (char C : Head)
      if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == '.' || C == '#'))
        return std::nullopt;
    // The rest must be empty or a comment.
    std::string Rest = stripped(L.substr(Colon + 1));
    if (!Rest.empty() && Rest[0] != ';')
      return std::nullopt;
    return Head;
  }

  /// Resolves a value operand token; forward references get a placeholder
  /// patched later.
  Value *valueOperand(const Tok &T, Instruction *User, unsigned OpIdx) {
    switch (T.K) {
    case Tok::Int:
      return M->constant(T.IntVal);
    case Tok::Word:
      if (T.Text == "undef")
        return M->undef();
      error("expected value, found '" + T.Text + "'");
      return M->undef();
    case Tok::ValueRef: {
      auto It = Values.find(T.Text);
      if (It != Values.end())
        return It->second;
      Fixups.push_back({User, OpIdx, T.Text, LineNo});
      return M->undef(); // placeholder
    }
    default:
      error("expected value operand");
      return M->undef();
    }
  }

  BasicBlock *blockOperand(const Tok &T) {
    if (T.K != Tok::Word) {
      error("expected block label");
      return nullptr;
    }
    auto It = BlocksByName.find(T.Text);
    if (It == BlocksByName.end()) {
      error("unknown block '" + T.Text + "'");
      return nullptr;
    }
    return It->second;
  }

  MemoryObject *objectOperand(const Tok &T) {
    if (T.K != Tok::Word) {
      error("expected memory object name");
      return nullptr;
    }
    if (MemoryObject *Obj = M->getGlobal(T.Text))
      return Obj;
    error("unknown memory object '" + T.Text + "'");
    return nullptr;
  }

  /// Removes trailing mu(...) / chi(...) annotations from a token list.
  static void dropMuChi(std::vector<Tok> &T) {
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].K == Tok::Word && (T[I].Text == "mu" || T[I].Text == "chi")) {
        T.resize(I);
        return;
      }
    }
  }

  static std::optional<BinOpKind> binOpFromName(const std::string &Name) {
    static const std::unordered_map<std::string, BinOpKind> Map = {
        {"add", BinOpKind::Add},     {"sub", BinOpKind::Sub},
        {"mul", BinOpKind::Mul},     {"div", BinOpKind::Div},
        {"rem", BinOpKind::Rem},     {"and", BinOpKind::And},
        {"or", BinOpKind::Or},       {"xor", BinOpKind::Xor},
        {"shl", BinOpKind::Shl},     {"shr", BinOpKind::Shr},
        {"cmpeq", BinOpKind::CmpEQ}, {"cmpne", BinOpKind::CmpNE},
        {"cmplt", BinOpKind::CmpLT}, {"cmple", BinOpKind::CmpLE},
        {"cmpgt", BinOpKind::CmpGT}, {"cmpge", BinOpKind::CmpGE},
    };
    auto It = Map.find(Name);
    return It == Map.end() ? std::nullopt : std::optional(It->second);
  }

  void defineValue(const std::string &Name, Instruction *I) {
    I->setName(Name);
    if (Values.count(Name)) {
      error("redefinition of %" + Name);
      return;
    }
    Values[Name] = I;
  }

  Instruction *append(BasicBlock *BB, std::unique_ptr<Instruction> I) {
    Instruction *Raw = BB->append(std::move(I));
    // Terminators maintain predecessor lists.
    for (BasicBlock *S : Raw->successors())
      S->addPred(BB);
    return Raw;
  }

  void parseInstruction(const std::string &L, BasicBlock *BB) {
    LineLexer Lex(L);
    std::vector<Tok> T = Lex.all();
    dropMuChi(T);
    if (T.empty())
      return; // pure annotation line
    size_t I = 0;

    // Optional result prefix: "%name =" (register) or "name =" where the
    // following opcode is st/memphi (memory-version prefix: ignored).
    std::string ResultName;
    bool HasResult = false;
    if (T.size() >= 2 && T[1].K == Tok::Punct && T[1].P == '=' &&
        T[0].K == Tok::ValueRef) {
      // Could still be an array store "arr[i] = v"; ValueRef excludes it.
      ResultName = T[0].Text;
      HasResult = true;
      I = 2;
    } else if (T.size() >= 2 && T[0].K == Tok::Word && T[1].K == Tok::Punct &&
               T[1].P == '=' && T.size() >= 3 && T[2].K == Tok::Word &&
               (T[2].Text == "st" || T[2].Text == "memphi")) {
      I = 2; // memory-version prefix like "x.2 = st ..."
    }

    if (I >= T.size()) {
      error("empty instruction");
      return;
    }

    // Dispatch on the opcode token.
    if (T[I].K == Tok::Word) {
      const std::string &Op = T[I].Text;

      if (Op == "memphi") // memory-SSA construct: ignored
        return;

      if (auto BK = binOpFromName(Op)) {
        // add <a>, <b>
        if (I + 3 >= T.size()) {
          error("binary operator needs two operands");
          return;
        }
        auto Inst = std::make_unique<BinOpInst>(*BK, M->undef(), M->undef());
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        Raw->setOperand(1, valueOperand(T[I + 3], Raw, 1));
        if (HasResult)
          defineValue(ResultName, Raw);
        return;
      }
      if (Op == "ld") {
        // ld [ obj ]
        MemoryObject *Obj =
            I + 2 < T.size() ? objectOperand(T[I + 2]) : nullptr;
        if (!Obj)
          return;
        Instruction *Raw = append(BB, std::make_unique<LoadInst>(Obj));
        if (HasResult)
          defineValue(ResultName, Raw);
        return;
      }
      if (Op == "st") {
        // st [ obj ] , val
        MemoryObject *Obj =
            I + 2 < T.size() ? objectOperand(T[I + 2]) : nullptr;
        if (!Obj || I + 5 >= T.size()) {
          if (Obj)
            error("store needs a value");
          return;
        }
        auto Inst = std::make_unique<StoreInst>(Obj, M->undef());
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 5], Raw, 0));
        return;
      }
      if (Op == "ptrload") {
        if (I + 1 >= T.size()) {
          error("ptrload needs an address");
          return;
        }
        auto Inst = std::make_unique<PtrLoadInst>(M->undef());
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        if (HasResult)
          defineValue(ResultName, Raw);
        return;
      }
      if (Op == "ptrstore") {
        if (I + 3 >= T.size()) {
          error("ptrstore needs address and value");
          return;
        }
        auto Inst = std::make_unique<PtrStoreInst>(M->undef(), M->undef());
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        Raw->setOperand(1, valueOperand(T[I + 3], Raw, 1));
        return;
      }
      if (Op == "call") {
        // call [@] f ( args )
        size_t J = I + 1;
        if (J < T.size() && T[J].K == Tok::Punct && T[J].P == '@')
          ++J;
        if (J >= T.size() || T[J].K != Tok::Word) {
          error("call needs a function name");
          return;
        }
        Function *Callee = M->getFunction(T[J].Text);
        if (!Callee) {
          error("call to unknown function '" + T[J].Text + "'");
          return;
        }
        std::vector<Tok> Args;
        for (size_t K = J + 1; K < T.size(); ++K)
          if (T[K].K == Tok::Int || T[K].K == Tok::ValueRef ||
              (T[K].K == Tok::Word && T[K].Text == "undef"))
            Args.push_back(T[K]);
        if (Args.size() != Callee->numArgs()) {
          error("call arity mismatch for '" + Callee->name() + "'");
          return;
        }
        std::vector<Value *> Placeholder(Args.size(), M->undef());
        auto Inst = std::make_unique<CallInst>(Callee, Placeholder,
                                               Callee->returnType());
        Instruction *Raw = append(BB, std::move(Inst));
        for (unsigned A = 0; A != Args.size(); ++A)
          Raw->setOperand(A, valueOperand(Args[A], Raw, A));
        if (HasResult)
          defineValue(ResultName, Raw);
        return;
      }
      if (Op == "print") {
        if (I + 1 >= T.size()) {
          error("print needs a value");
          return;
        }
        auto Inst = std::make_unique<PrintInst>(M->undef());
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        return;
      }
      if (Op == "br") {
        BasicBlock *Target =
            I + 1 < T.size() ? blockOperand(T[I + 1]) : nullptr;
        if (!Target)
          return;
        append(BB, std::make_unique<BrInst>(Target));
        return;
      }
      if (Op == "condbr") {
        // condbr v , l1 , l2
        if (I + 5 >= T.size()) {
          error("condbr needs condition and two labels");
          return;
        }
        BasicBlock *L1 = blockOperand(T[I + 3]);
        BasicBlock *L2 = blockOperand(T[I + 5]);
        if (!L1 || !L2)
          return;
        auto Inst = std::make_unique<CondBrInst>(M->undef(), L1, L2);
        Instruction *Raw = append(BB, std::move(Inst));
        Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        return;
      }
      if (Op == "ret") {
        if (I + 1 < T.size()) {
          auto Inst = std::make_unique<RetInst>(M->undef());
          Instruction *Raw = append(BB, std::move(Inst));
          Raw->setOperand(0, valueOperand(T[I + 1], Raw, 0));
        } else {
          append(BB, std::make_unique<RetInst>());
        }
        return;
      }
      if (Op == "phi") {
        // phi ( v : label , v : label , ... )
        auto Inst = std::make_unique<PhiInst>(Type::Int);
        auto *Phi = static_cast<PhiInst *>(append(BB, std::move(Inst)));
        unsigned OpIdx = 0;
        for (size_t K = I + 1; K < T.size(); ++K) {
          bool IsVal = T[K].K == Tok::Int || T[K].K == Tok::ValueRef ||
                       (T[K].K == Tok::Word && T[K].Text == "undef");
          if (!IsVal)
            continue;
          // v : label
          if (K + 2 >= T.size() || T[K + 1].P != ':') {
            error("phi operand needs ':label'");
            return;
          }
          BasicBlock *In = blockOperand(T[K + 2]);
          if (!In)
            return;
          Phi->addIncoming(M->undef(), In);
          Phi->setOperand(OpIdx, valueOperand(T[K], Phi, OpIdx));
          ++OpIdx;
          K += 2;
        }
        if (HasResult)
          defineValue(ResultName, Phi);
        return;
      }
      if (Op == "dummyload") {
        MemoryObject *Obj =
            I + 2 < T.size() ? objectOperand(T[I + 2]) : nullptr;
        if (!Obj)
          return;
        append(BB, std::make_unique<DummyLoadInst>(Obj));
        return;
      }
      // "arr [ idx ]" load or "arr [ idx ] = v" store.
      if (I + 1 < T.size() && T[I + 1].K == Tok::Punct && T[I + 1].P == '[') {
        MemoryObject *Obj = objectOperand(T[I]);
        if (!Obj)
          return;
        if (I + 3 >= T.size()) {
          error("array access needs an index");
          return;
        }
        // Find '=' after ']' to distinguish store from load.
        size_t AfterBracket = I + 4; // obj [ idx ] -> next token
        bool IsStore = AfterBracket < T.size() &&
                       T[AfterBracket].K == Tok::Punct &&
                       T[AfterBracket].P == '=';
        if (IsStore) {
          if (AfterBracket + 1 >= T.size()) {
            error("array store needs a value");
            return;
          }
          auto Inst =
              std::make_unique<ArrayStoreInst>(Obj, M->undef(), M->undef());
          Instruction *Raw = append(BB, std::move(Inst));
          Raw->setOperand(0, valueOperand(T[I + 2], Raw, 0));
          Raw->setOperand(1, valueOperand(T[AfterBracket + 1], Raw, 1));
        } else {
          auto Inst = std::make_unique<ArrayLoadInst>(Obj, M->undef());
          Instruction *Raw = append(BB, std::move(Inst));
          Raw->setOperand(0, valueOperand(T[I + 2], Raw, 0));
          if (HasResult)
            defineValue(ResultName, Raw);
        }
        return;
      }
      error("unknown instruction '" + Op + "'");
      return;
    }

    // "&obj" address-of.
    if (T[I].K == Tok::Punct && T[I].P == '&') {
      MemoryObject *Obj =
          I + 1 < T.size() ? objectOperand(T[I + 1]) : nullptr;
      if (!Obj)
        return;
      Obj->setAddressTaken();
      Instruction *Raw = append(BB, std::make_unique<AddrOfInst>(Obj));
      if (HasResult)
        defineValue(ResultName, Raw);
      return;
    }

    // Bare value after '=': a copy. "%t = %v" / "%t = 5".
    if (HasResult &&
        (T[I].K == Tok::Int || T[I].K == Tok::ValueRef ||
         (T[I].K == Tok::Word && T[I].Text == "undef"))) {
      auto Inst = std::make_unique<CopyInst>(M->undef());
      Instruction *Raw = append(BB, std::move(Inst));
      Raw->setOperand(0, valueOperand(T[I], Raw, 0));
      defineValue(ResultName, Raw);
      return;
    }

    error("cannot parse instruction: " + L);
  }

  void resolveFixups() {
    for (const Fixup &Fx : Fixups) {
      auto It = Values.find(Fx.Name);
      if (It == Values.end()) {
        Errors.push_back("line " + std::to_string(Fx.Line) +
                         ": undefined value %" + Fx.Name);
        continue;
      }
      Fx.I->setOperand(Fx.OpIdx, It->second);
    }
  }
};

} // namespace

std::unique_ptr<Module> srp::parseIR(const std::string &Source,
                                     std::vector<std::string> &Errors) {
  return IRParserImpl(Source, Errors).run();
}
