//===- ir/IRParser.h - Textual IR parser -----------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format the printer emits, enabling round-trips
/// (print -> parse -> print) and letting tests and tools write IR
/// directly. The accepted grammar covers the full instruction set in
/// pre-memory-SSA form:
///
///   ; comment
///   global x = 5
///   global arr[16]
///   global s.f = 1            ; dotted names become struct fields
///
///   func int @main(%a, %b) {
///   entry:
///     %t0 = ld [x]
///     %t1 = add %t0, 1
///     st [x], %t1
///     %p = &x
///     %v = ptrload %p
///     ptrstore %p, 3
///     %e = arr[%t1]
///     arr[0] = %e
///     %r = call @f(%t0, 7)
///     print %r
///     %m = phi(%t0:entry, 4:loop)
///     %c = %m                 ; copy
///     condbr %c, then, else
///     br join
///     ret %r
///   }
///
/// Memory SSA annotations (mu/chi lists, version prefixes on stores,
/// memphi lines) are accepted and *ignored* so printer output of
/// memory-SSA form parses too; rebuild memory SSA after parsing when it
/// is needed. Forward references to values and blocks are allowed (SSA
/// phis require them).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_IRPARSER_H
#define SRP_IR_IRPARSER_H

#include <memory>
#include <string>
#include <vector>

namespace srp {

class Module;

/// Parses \p Source into a fresh module. On error returns null and fills
/// \p Errors with "line N: message" diagnostics.
std::unique_ptr<Module> parseIR(const std::string &Source,
                                std::vector<std::string> &Errors);

} // namespace srp

#endif // SRP_IR_IRPARSER_H
