//===- ir/Printer.h - Textual IR dump --------------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules/functions/instructions in a textual form close to the
/// paper's examples: "x.2 = st [x], %t2", "x.1 = phi(x.0:b0, x.4:b3)".
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_PRINTER_H
#define SRP_IR_PRINTER_H

#include <string>

namespace srp {

class BasicBlock;
class Function;
class Instruction;
class Module;

std::string toString(const Instruction &I);
std::string toString(const BasicBlock &BB);
std::string toString(const Function &F);
std::string toString(const Module &M);

} // namespace srp

#endif // SRP_IR_PRINTER_H
