//===- ir/Instruction.h - Instruction hierarchy ----------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set. Each instruction carries three operand lists:
///   - Ops:     register operands (Values produced by instructions etc.)
///   - MemOps:  memory uses (MemoryName versions: load tags, mu-operands of
///              calls/pointer loads, memory-phi sources)
///   - MemDefs: memory definitions (new MemoryName versions: store targets,
///              chi-definitions of calls/pointer stores, memory-phi targets)
///
/// Phi instructions (register and memory) additionally carry incoming block
/// lists parallel to their operand lists.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_INSTRUCTION_H
#define SRP_IR_INSTRUCTION_H

#include "ir/Memory.h"
#include "ir/Value.h"
#include <list>
#include <memory>

namespace srp {

class BasicBlock;
class Function;

/// Binary operator kinds (arithmetic, bitwise, and comparisons; comparisons
/// yield 0/1 ints).
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
};

/// Returns the source spelling of \p K (e.g. "add", "cmplt").
const char *binOpName(BinOpKind K);

class Instruction : public Value {
  friend class BasicBlock;

  BasicBlock *Parent = nullptr;
  /// Position within the parent's instruction list; valid iff Parent != null.
  std::list<std::unique_ptr<Instruction>>::iterator SelfIt;

  std::vector<Value *> Ops;
  std::vector<MemoryName *> MemOps;
  std::vector<MemoryName *> MemDefs;

protected:
  Instruction(Kind K, Type Ty, std::string Name = "")
      : Value(K, Ty, std::move(Name)) {}

  /// Appends a register operand, registering the use.
  void addOperand(Value *V);

  /// Removes the register operand at index \p I (shifts the rest down).
  void removeOperand(unsigned I);

public:
  ~Instruction() override;

  BasicBlock *parent() const { return Parent; }
  Function *function() const;

  static bool classof(const Value *V) {
    return V->kind() >= Kind::FirstInst && V->kind() <= Kind::LastInst;
  }

  //===--------------------------------------------------------------------===
  // Register operands.
  //===--------------------------------------------------------------------===

  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }
  Value *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  const std::vector<Value *> &operands() const { return Ops; }
  void setOperand(unsigned I, Value *V);

  //===--------------------------------------------------------------------===
  // Memory operands (uses of MemoryName versions).
  //===--------------------------------------------------------------------===

  unsigned numMemOperands() const {
    return static_cast<unsigned>(MemOps.size());
  }
  MemoryName *memOperand(unsigned I) const {
    assert(I < MemOps.size() && "memory operand index out of range");
    return MemOps[I];
  }
  const std::vector<MemoryName *> &memOperands() const { return MemOps; }
  void setMemOperand(unsigned I, MemoryName *N);
  /// Appends a memory use. Subclasses and memory-SSA construction use this.
  void addMemOperand(MemoryName *N);
  /// Removes the memory use at index \p I (shifts the rest down).
  void removeMemOperand(unsigned I);
  void clearMemOperands();
  /// Returns the mu-operand for \p Obj, or null if there is none.
  MemoryName *memOperandFor(const MemoryObject *Obj) const;

  //===--------------------------------------------------------------------===
  // Memory definitions (new MemoryName versions this instruction creates).
  //===--------------------------------------------------------------------===

  unsigned numMemDefs() const { return static_cast<unsigned>(MemDefs.size()); }
  MemoryName *memDef(unsigned I) const {
    assert(I < MemDefs.size() && "memory def index out of range");
    return MemDefs[I];
  }
  const std::vector<MemoryName *> &memDefs() const { return MemDefs; }
  void addMemDef(MemoryName *N);
  void removeMemDef(unsigned I);
  void clearMemDefs();
  /// Returns the chi-definition for \p Obj, or null if there is none.
  MemoryName *memDefFor(const MemoryObject *Obj) const;

  //===--------------------------------------------------------------------===
  // Classification helpers used throughout the promoter.
  //===--------------------------------------------------------------------===

  bool isTerminator() const {
    return kind() == Kind::Br || kind() == Kind::CondBr || kind() == Kind::Ret;
  }

  /// Singleton load/store of a scalar resource (the memory operations the
  /// paper counts and promotes).
  bool isSingletonLoad() const { return kind() == Kind::Load; }
  bool isSingletonStore() const { return kind() == Kind::Store; }

  /// Aliased loads "include function calls and pointer references" (§3):
  /// instructions that may read a set of memory resources.
  bool isAliasedLoad() const {
    return kind() == Kind::Call || kind() == Kind::PtrLoad ||
           kind() == Kind::ArrayLoad || kind() == Kind::DummyLoad ||
           kind() == Kind::Ret; // Returns virtually read escaping memory.
  }

  /// Aliased stores: instructions that may define a set of memory resources.
  bool isAliasedStore() const {
    return kind() == Kind::Call || kind() == Kind::PtrStore ||
           kind() == Kind::ArrayStore;
  }

  /// True if removing this instruction requires no other justification than
  /// its result being unused.
  bool isRemovableIfUnused() const;

  /// Tear-down helper: forgets all operands without updating use lists.
  /// Only valid while destroying a whole function, where every value dies
  /// anyway and destruction order is arbitrary.
  void dropAllReferences() {
    Ops.clear();
    MemOps.clear();
    MemDefs.clear();
  }

  /// Unlinks this instruction from its parent block and destroys it. All
  /// operand uses are dropped; memory defs must already be dead or detached.
  void eraseFromParent();

  /// Unlinks from the parent block without destroying; returns ownership.
  std::unique_ptr<Instruction> removeFromParent();

  /// Successor blocks (terminators only; empty otherwise).
  virtual std::vector<BasicBlock *> successors() const { return {}; }
  virtual void replaceSuccessor(BasicBlock *Old, BasicBlock *New);
};

//===----------------------------------------------------------------------===
// Arithmetic and data movement.
//===----------------------------------------------------------------------===

class BinOpInst : public Instruction {
  BinOpKind Op;

public:
  BinOpInst(BinOpKind Op, Value *L, Value *R, std::string Name = "")
      : Instruction(Kind::BinOp, Type::Int, std::move(Name)), Op(Op) {
    addOperand(L);
    addOperand(R);
  }

  BinOpKind op() const { return Op; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::BinOp; }
};

/// t = v. Produced by load replacement during promotion; removed by copy
/// propagation in cleanup.
class CopyInst : public Instruction {
public:
  explicit CopyInst(Value *Src, std::string Name = "")
      : Instruction(Kind::Copy, Src->type(), std::move(Name)) {
    addOperand(Src);
  }

  Value *source() const { return operand(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::Copy; }
};

/// Register phi. Operand i flows in from incomingBlock(i).
class PhiInst : public Instruction {
  std::vector<BasicBlock *> Blocks;

public:
  explicit PhiInst(Type Ty, std::string Name = "")
      : Instruction(Kind::Phi, Ty, std::move(Name)) {}

  unsigned numIncoming() const { return numOperands(); }
  Value *incomingValue(unsigned I) const { return operand(I); }
  BasicBlock *incomingBlock(unsigned I) const {
    assert(I < Blocks.size() && "incoming index out of range");
    return Blocks[I];
  }
  void addIncoming(Value *V, BasicBlock *BB) {
    addOperand(V);
    Blocks.push_back(BB);
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "incoming index out of range");
    Blocks[I] = BB;
  }
  /// Removes the incoming pair at index \p I.
  void removeIncoming(unsigned I);
  /// Returns the value flowing in from \p BB (asserts it exists).
  Value *incomingValueFor(const BasicBlock *BB) const;
  /// Returns the index of \p BB among the incoming blocks, or -1.
  int indexOfBlock(const BasicBlock *BB) const;

  static bool classof(const Value *V) { return V->kind() == Kind::Phi; }
};

//===----------------------------------------------------------------------===
// Memory operations.
//===----------------------------------------------------------------------===

/// t = ld [obj]. The singleton use is MemOps[0] once memory SSA is built.
class LoadInst : public Instruction {
  MemoryObject *Obj;

public:
  explicit LoadInst(MemoryObject *Obj, std::string Name = "")
      : Instruction(Kind::Load, Type::Int, std::move(Name)), Obj(Obj) {}

  MemoryObject *object() const { return Obj; }
  /// The SSA version this load reads (null before memory SSA construction).
  MemoryName *memUse() const {
    return numMemOperands() ? memOperand(0) : nullptr;
  }

  static bool classof(const Value *V) { return V->kind() == Kind::Load; }
};

/// st [obj] = v. Defines a new version of obj (MemDefs[0]).
class StoreInst : public Instruction {
  MemoryObject *Obj;

public:
  StoreInst(MemoryObject *Obj, Value *V)
      : Instruction(Kind::Store, Type::Void), Obj(Obj) {
    addOperand(V);
  }

  MemoryObject *object() const { return Obj; }
  Value *storedValue() const { return operand(0); }
  MemoryName *memDefName() const {
    return numMemDefs() ? memDef(0) : nullptr;
  }

  static bool classof(const Value *V) { return V->kind() == Kind::Store; }
};

/// t = &obj (address of a memory object; for arrays, address of cell 0).
class AddrOfInst : public Instruction {
  MemoryObject *Obj;

public:
  explicit AddrOfInst(MemoryObject *Obj, std::string Name = "")
      : Instruction(Kind::AddrOf, Type::Ptr, std::move(Name)), Obj(Obj) {}

  MemoryObject *object() const { return Obj; }

  static bool classof(const Value *V) { return V->kind() == Kind::AddrOf; }
};

/// t = *(addr). An aliased load: MemOps are mu-uses of every resource the
/// pointer may reference.
class PtrLoadInst : public Instruction {
public:
  explicit PtrLoadInst(Value *Addr, std::string Name = "")
      : Instruction(Kind::PtrLoad, Type::Int, std::move(Name)) {
    addOperand(Addr);
  }

  Value *address() const { return operand(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::PtrLoad; }
};

/// *(addr) = v. An aliased store: MemOps are mu-uses of the old versions and
/// MemDefs are chi-definitions of every resource the pointer may reference.
class PtrStoreInst : public Instruction {
public:
  PtrStoreInst(Value *Addr, Value *V)
      : Instruction(Kind::PtrStore, Type::Void) {
    addOperand(Addr);
    addOperand(V);
  }

  Value *address() const { return operand(0); }
  Value *storedValue() const { return operand(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::PtrStore; }
};

/// t = arr[idx]. Reads the array object only (arrays never alias scalars).
class ArrayLoadInst : public Instruction {
  MemoryObject *Obj;

public:
  ArrayLoadInst(MemoryObject *Obj, Value *Idx, std::string Name = "")
      : Instruction(Kind::ArrayLoad, Type::Int, std::move(Name)), Obj(Obj) {
    addOperand(Idx);
  }

  MemoryObject *object() const { return Obj; }
  Value *index() const { return operand(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::ArrayLoad; }
};

/// arr[idx] = v. Defines a new version of the array object.
class ArrayStoreInst : public Instruction {
  MemoryObject *Obj;

public:
  ArrayStoreInst(MemoryObject *Obj, Value *Idx, Value *V)
      : Instruction(Kind::ArrayStore, Type::Void), Obj(Obj) {
    addOperand(Idx);
    addOperand(V);
  }

  MemoryObject *object() const { return Obj; }
  Value *index() const { return operand(0); }
  Value *storedValue() const { return operand(1); }

  static bool classof(const Value *V) {
    return V->kind() == Kind::ArrayStore;
  }
};

/// t = call f(args). May use and define every escaping memory resource
/// (§3: "a function call may modify and use all memory singleton resources
/// from global variables"): MemOps carry the mu-uses, MemDefs the
/// chi-definitions.
class CallInst : public Instruction {
  Function *Callee;

public:
  CallInst(Function *Callee, std::vector<Value *> Args, Type RetTy,
           std::string Name = "")
      : Instruction(Kind::Call, RetTy, std::move(Name)), Callee(Callee) {
    for (Value *A : Args)
      addOperand(A);
  }

  Function *callee() const { return Callee; }

  static bool classof(const Value *V) { return V->kind() == Kind::Call; }
};

/// print(v): appends v to the program's observable output. No memory
/// effects; used by the equivalence property tests.
class PrintInst : public Instruction {
public:
  explicit PrintInst(Value *V) : Instruction(Kind::Print, Type::Void) {
    addOperand(V);
  }

  Value *value() const { return operand(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::Print; }
};

//===----------------------------------------------------------------------===
// Terminators.
//===----------------------------------------------------------------------===

class BrInst : public Instruction {
  BasicBlock *Target;

public:
  explicit BrInst(BasicBlock *Target)
      : Instruction(Kind::Br, Type::Void), Target(Target) {}

  BasicBlock *target() const { return Target; }

  std::vector<BasicBlock *> successors() const override { return {Target}; }
  void replaceSuccessor(BasicBlock *Old, BasicBlock *New) override;

  static bool classof(const Value *V) { return V->kind() == Kind::Br; }
};

class CondBrInst : public Instruction {
  BasicBlock *TrueBB, *FalseBB;

public:
  CondBrInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(Kind::CondBr, Type::Void), TrueBB(TrueBB),
        FalseBB(FalseBB) {
    addOperand(Cond);
  }

  Value *condition() const { return operand(0); }
  BasicBlock *trueTarget() const { return TrueBB; }
  BasicBlock *falseTarget() const { return FalseBB; }

  std::vector<BasicBlock *> successors() const override {
    return {TrueBB, FalseBB};
  }
  void replaceSuccessor(BasicBlock *Old, BasicBlock *New) override;

  static bool classof(const Value *V) { return V->kind() == Kind::CondBr; }
};

/// ret [v]. Carries mu-uses of every escaping memory resource so that
/// memory modified before return is live-out of every enclosing interval
/// (the caller observes it).
class RetInst : public Instruction {
public:
  explicit RetInst(Value *V = nullptr) : Instruction(Kind::Ret, Type::Void) {
    if (V)
      addOperand(V);
  }

  Value *returnValue() const {
    return numOperands() ? operand(0) : nullptr;
  }

  static bool classof(const Value *V) { return V->kind() == Kind::Ret; }
};

//===----------------------------------------------------------------------===
// Memory SSA pseudo-instructions.
//===----------------------------------------------------------------------===

/// Memory phi: x_n = phi(x_a:L1, ..., x_z:Lk) for one MemoryObject. The
/// target version is MemDefs[0]; sources are MemOps, parallel to Blocks.
class MemPhiInst : public Instruction {
  MemoryObject *Obj;
  std::vector<BasicBlock *> Blocks;

public:
  explicit MemPhiInst(MemoryObject *Obj)
      : Instruction(Kind::MemPhi, Type::Void), Obj(Obj) {}

  MemoryObject *object() const { return Obj; }
  MemoryName *target() const { return numMemDefs() ? memDef(0) : nullptr; }

  unsigned numIncoming() const { return numMemOperands(); }
  MemoryName *incomingName(unsigned I) const { return memOperand(I); }
  BasicBlock *incomingBlock(unsigned I) const {
    assert(I < Blocks.size() && "incoming index out of range");
    return Blocks[I];
  }
  void addIncoming(MemoryName *N, BasicBlock *BB) {
    addMemOperand(N);
    Blocks.push_back(BB);
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "incoming index out of range");
    Blocks[I] = BB;
  }
  void removeIncoming(unsigned I);
  int indexOfBlock(const BasicBlock *BB) const;

  static bool classof(const Value *V) { return V->kind() == Kind::MemPhi; }
};

/// Dummy aliased load of one resource. Inserted in interval preheaders to
/// summarise, for the parent interval, that the promoted inner interval
/// requires the resource's value to be valid in memory on entry (§4.4).
/// Deleted once promotion finishes.
class DummyLoadInst : public Instruction {
  MemoryObject *Obj;

public:
  explicit DummyLoadInst(MemoryObject *Obj)
      : Instruction(Kind::DummyLoad, Type::Void), Obj(Obj) {}

  MemoryObject *object() const { return Obj; }

  static bool classof(const Value *V) { return V->kind() == Kind::DummyLoad; }
};

} // namespace srp

#endif // SRP_IR_INSTRUCTION_H
