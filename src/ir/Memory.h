//===- ir/Memory.h - Memory resources and memory SSA names -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's memory-resource model (§3): every scalar memory location
/// (global variable, address-exposed local, scalar struct component, array)
/// is tagged with a unique identifier, a MemoryObject. Memory SSA puts the
/// singleton resources in SSA form: each MemoryObject gets a chain of
/// MemoryName versions (x0, x1, ...) defined by stores, memory phis, or
/// aliased definitions (calls and pointer stores, which define a new version
/// of every object in their alias set).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_MEMORY_H
#define SRP_IR_MEMORY_H

#include "ir/Value.h"
#include <cstdint>

namespace srp {

class Function;
class Instruction;
class MemoryName;

/// A memory location known to the compiler: a singleton resource (scalar
/// global, address-taken local, struct field) or an array (aggregate of
/// cells; never promotable, but still versioned so stores to it are ordered).
class MemoryObject {
public:
  enum class Kind : uint8_t {
    Global, ///< File-scope scalar variable.
    Local,  ///< Address-exposed local scalar (has memory semantics).
    Field,  ///< Scalar component of a (global) struct variable.
    Array,  ///< Array of cells; aliased refs only, never promoted.
  };

private:
  unsigned Id;
  std::string Name;
  Kind K;
  Function *Owner;     ///< Null for module-scope objects.
  unsigned Size;       ///< Number of int cells (1 for scalars).
  int64_t Init;        ///< Initial value of cell 0 (scalars).
  bool AddressTaken = false;
  unsigned NextVersion = 0;

public:
  MemoryObject(unsigned Id, std::string Name, Kind K, Function *Owner,
               unsigned Size = 1, int64_t Init = 0)
      : Id(Id), Name(std::move(Name)), K(K), Owner(Owner), Size(Size),
        Init(Init) {}

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }
  Kind kind() const { return K; }
  Function *owner() const { return Owner; }
  unsigned size() const { return Size; }
  int64_t initialValue() const { return Init; }

  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  /// A promotable resource is a scalar whose value can live in a virtual
  /// register: anything but an array.
  bool isPromotable() const { return K != Kind::Array; }

  /// Objects whose value escapes the function (globals, fields, and
  /// address-taken anything) are in the mod/ref set of calls.
  bool isVisibleToCalls() const {
    return K == Kind::Global || K == Kind::Field || AddressTaken;
  }

  unsigned takeVersionNumber() { return NextVersion++; }
  void resetVersions() { NextVersion = 0; }
};

/// One SSA version of a MemoryObject (the paper's x0, x1, ...). Defined
/// either by an instruction (Store, MemPhi, or an aliased store: Call,
/// PtrStore, ArrayStore) or by nothing at all, in which case it is the
/// function-entry (live-in) version.
class MemoryName : public Value {
  MemoryObject *Obj;
  Instruction *Def; ///< Defining instruction; null for the entry version.
  unsigned Version;

public:
  MemoryName(MemoryObject *Obj, unsigned Version)
      : Value(Kind::MemoryName, Type::Void,
              Obj->name() + "." + std::to_string(Version)),
        Obj(Obj), Def(nullptr), Version(Version) {}

  MemoryObject *object() const { return Obj; }
  unsigned version() const { return Version; }

  Instruction *def() const { return Def; }
  void setDef(Instruction *I) { Def = I; }
  bool isEntryVersion() const { return Def == nullptr; }

  static bool classof(const Value *V) {
    return V->kind() == Kind::MemoryName;
  }
};

} // namespace srp

#endif // SRP_IR_MEMORY_H
