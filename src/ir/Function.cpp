//===- ir/Function.cpp - Function implementation -------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Module.h"
#include <algorithm>

using namespace srp;

Function::~Function() {
  for (auto &BB : Blocks)
    for (auto &I : *BB)
      I->dropAllReferences();
}

BasicBlock *Function::createBlock(std::string BBName) {
  if (BBName.empty())
    BBName = "bb" + std::to_string(NextBlockNumber++);
  Blocks.push_back(std::make_unique<BasicBlock>(std::move(BBName)));
  Blocks.back()->Parent = this;
  return Blocks.back().get();
}

BasicBlock *Function::createBlockAfter(BasicBlock *After, std::string BBName) {
  if (BBName.empty())
    BBName = "bb" + std::to_string(NextBlockNumber++);
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &B) { return B.get() == After; });
  assert(It != Blocks.end() && "block not in this function");
  auto New = std::make_unique<BasicBlock>(std::move(BBName));
  New->Parent = this;
  BasicBlock *Raw = New.get();
  Blocks.insert(std::next(It), std::move(New));
  return Raw;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->preds().empty() && "erasing a block that still has predecessors");
  // Destroy instructions back-to-front so operand uses unwind cleanly.
  while (!BB->empty()) {
    Instruction *I = BB->back();
    assert(!I->hasUses() && "erased block instruction still has uses");
    BB->erase(I);
  }
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &B) { return B.get() == BB; });
  assert(It != Blocks.end() && "block not in this function");
  Blocks.erase(It);
}

void Function::makeEntry(BasicBlock *BB) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &B) { return B.get() == BB; });
  assert(It != Blocks.end() && "block not in this function");
  Blocks.splice(Blocks.begin(), Blocks, It);
}

std::vector<BasicBlock *> Function::blocks() const {
  std::vector<BasicBlock *> Result;
  Result.reserve(Blocks.size());
  for (const auto &B : Blocks)
    Result.push_back(B.get());
  return Result;
}

MemoryObject *Function::createLocal(std::string LocalName,
                                    MemoryObject::Kind K, unsigned Size,
                                    int64_t Init) {
  Locals.push_back(std::make_unique<MemoryObject>(
      Parent->takeObjectId(), std::move(LocalName), K, this, Size, Init));
  return Locals.back().get();
}

MemoryName *Function::createMemoryName(MemoryObject *Obj) {
  MemNames.push_back(
      std::make_unique<MemoryName>(Obj, Obj->takeVersionNumber()));
  return MemNames.back().get();
}

void Function::purgeDeadMemoryNames() {
  auto IsDead = [&](const std::unique_ptr<MemoryName> &N) {
    return !N->hasUses() && N->def() == nullptr &&
           entryMemoryName(N->object()) != N.get();
  };
  MemNames.erase(std::remove_if(MemNames.begin(), MemNames.end(), IsDead),
                 MemNames.end());
}

void Function::clearMemorySSA() {
  // Detach all memory operands/defs first so use lists unwind.
  for (auto &BB : Blocks) {
    std::vector<Instruction *> MemPhis;
    for (auto &I : *BB) {
      I->clearMemOperands();
      I->clearMemDefs();
      if (isa<MemPhiInst>(I.get()))
        MemPhis.push_back(I.get());
    }
    for (Instruction *P : MemPhis)
      BB->erase(P);
  }
  for ([[maybe_unused]] auto &N : MemNames)
    assert(!N->hasUses() && "memory name still used");
  MemNames.clear();
  EntryNames.clear();
  for (auto &L : Locals)
    L->resetVersions();
}

std::string Function::uniqueValueName(const char *Prefix) {
  return std::string(Prefix) + std::to_string(NextValueNumber++);
}
