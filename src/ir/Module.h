//===- ir/Module.h - Module ------------------------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level container: functions, module-scope memory objects (globals,
/// arrays, struct fields) and the uniqued constant pool.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_MODULE_H
#define SRP_IR_MODULE_H

#include "ir/Function.h"
#include <map>
#include <memory>

namespace srp {

class Module {
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<MemoryObject>> Globals;
  std::map<int64_t, std::unique_ptr<ConstantInt>> IntPool;
  std::unique_ptr<UndefValue> Undef;
  unsigned NextObjectId = 0;

public:
  explicit Module(std::string Name = "module")
      : Name(std::move(Name)), Undef(std::make_unique<UndefValue>()) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }

  //===--------------------------------------------------------------------===
  // Functions.
  //===--------------------------------------------------------------------===

  Function *createFunction(std::string FnName, Type RetTy);
  Function *getFunction(const std::string &FnName) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  //===--------------------------------------------------------------------===
  // Module-scope memory objects.
  //===--------------------------------------------------------------------===

  MemoryObject *createGlobal(std::string GName, int64_t Init = 0);
  MemoryObject *createGlobalArray(std::string AName, unsigned Size);
  /// Scalar component of a struct variable; behaves like a global scalar
  /// with its own singleton resource (promotable individually, §1).
  MemoryObject *createField(std::string FName, int64_t Init = 0);
  MemoryObject *getGlobal(const std::string &GName) const;
  const std::vector<std::unique_ptr<MemoryObject>> &globals() const {
    return Globals;
  }

  /// Used by Function::createLocal so local object ids share the module
  /// numbering space (the interpreter indexes memory by object id).
  unsigned takeObjectId() { return NextObjectId++; }
  unsigned numObjectIds() const { return NextObjectId; }

  //===--------------------------------------------------------------------===
  // Constants.
  //===--------------------------------------------------------------------===

  ConstantInt *constant(int64_t V);
  UndefValue *undef() const { return Undef.get(); }
};

} // namespace srp

#endif // SRP_IR_MODULE_H
