//===- ir/Module.cpp - Module implementation -----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace srp;

Function *Module::createFunction(std::string FnName, Type RetTy) {
  assert(!getFunction(FnName) && "function already exists");
  Functions.push_back(
      std::make_unique<Function>(std::move(FnName), RetTy, this));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}

MemoryObject *Module::createGlobal(std::string GName, int64_t Init) {
  Globals.push_back(std::make_unique<MemoryObject>(
      takeObjectId(), std::move(GName), MemoryObject::Kind::Global,
      /*Owner=*/nullptr, /*Size=*/1, Init));
  return Globals.back().get();
}

MemoryObject *Module::createGlobalArray(std::string AName, unsigned Size) {
  assert(Size > 0 && "array must have at least one cell");
  Globals.push_back(std::make_unique<MemoryObject>(
      takeObjectId(), std::move(AName), MemoryObject::Kind::Array,
      /*Owner=*/nullptr, Size, /*Init=*/0));
  return Globals.back().get();
}

MemoryObject *Module::createField(std::string FName, int64_t Init) {
  Globals.push_back(std::make_unique<MemoryObject>(
      takeObjectId(), std::move(FName), MemoryObject::Kind::Field,
      /*Owner=*/nullptr, /*Size=*/1, Init));
  return Globals.back().get();
}

MemoryObject *Module::getGlobal(const std::string &GName) const {
  for (const auto &G : Globals)
    if (G->name() == GName)
      return G.get();
  return nullptr;
}

ConstantInt *Module::constant(int64_t V) {
  auto It = IntPool.find(V);
  if (It != IntPool.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(V);
  ConstantInt *Raw = C.get();
  IntPool.emplace(V, std::move(C));
  return Raw;
}
