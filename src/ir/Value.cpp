//===- ir/Value.cpp - Value hierarchy root implementation ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"
#include "ir/Instruction.h"
#include "ir/Memory.h"
#include <algorithm>

using namespace srp;

const char *srp::typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::Int:
    return "int";
  case Type::Ptr:
    return "ptr";
  }
  return "?";
}

void Value::removeUse(const Use &U) {
  auto It = std::find(Uses.begin(), Uses.end(), U);
  assert(It != Uses.end() && "use not found on value");
  *It = Uses.back();
  Uses.pop_back();
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  // Setting an operand mutates our use list, so drain from a snapshot.
  std::vector<Use> Snapshot = Uses;
  for (const Use &U : Snapshot) {
    if (U.IsMem) {
      assert(isa<MemoryName>(New) &&
             "memory operand replaced by non-memory value");
      U.User->setMemOperand(U.Index, cast<MemoryName>(New));
    } else {
      U.User->setOperand(U.Index, New);
    }
  }
  assert(Uses.empty() && "stale uses after RAUW");
}

std::string Value::referenceString() const {
  switch (K) {
  case Kind::ConstantInt:
    return std::to_string(static_cast<const ConstantInt *>(this)->value());
  case Kind::Undef:
    return "undef";
  case Kind::MemoryName:
    return Name;
  default:
    return "%" + Name;
  }
}
