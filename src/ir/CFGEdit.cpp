//===- ir/CFGEdit.cpp - CFG editing utilities -----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include <algorithm>

using namespace srp;

namespace {
/// Per-thread listener list (see the threading note in CFGEdit.h). Kept as
/// a plain vector: registration is rare and notification walks it in
/// registration order.
thread_local std::vector<IRChangeListener *> Listeners;
} // namespace

IRChangeListener::~IRChangeListener() = default;

void IRChangeListener::ssaEdited(Function &) {}

void srp::addIRChangeListener(IRChangeListener *L) {
  Listeners.push_back(L);
}

void srp::removeIRChangeListener(IRChangeListener *L) {
  Listeners.erase(std::remove(Listeners.begin(), Listeners.end(), L),
                  Listeners.end());
}

void srp::notifyCFGChanged(Function &F) {
  for (IRChangeListener *L : Listeners)
    L->cfgChanged(F);
}

void srp::notifySSAEdited(Function &F) {
  for (IRChangeListener *L : Listeners)
    L->ssaEdited(F);
}

bool srp::isCriticalEdge(const BasicBlock *From, const BasicBlock *To) {
  const Instruction *T = From->terminator();
  assert(T && "source block not terminated");
  return T->successors().size() > 1 && To->numPreds() > 1;
}

BasicBlock *srp::splitEdge(BasicBlock *From, BasicBlock *To) {
  Function *F = From->parent();
  BasicBlock *Mid = F->createBlockAfter(From, From->name() + "." + To->name());

  // From now branches to Mid...
  From->terminator()->replaceSuccessor(To, Mid);
  // ...which falls through to To.
  Mid->append(std::make_unique<BrInst>(To));

  To->replacePred(From, Mid);
  Mid->addPred(From);

  // Phis and memory phis in To see the edge arriving from Mid now.
  for (auto &I : *To) {
    if (auto *P = dyn_cast<PhiInst>(I.get())) {
      int Idx = P->indexOfBlock(From);
      if (Idx >= 0)
        P->setIncomingBlock(static_cast<unsigned>(Idx), Mid);
    } else if (auto *MP = dyn_cast<MemPhiInst>(I.get())) {
      int Idx = MP->indexOfBlock(From);
      if (Idx >= 0)
        MP->setIncomingBlock(static_cast<unsigned>(Idx), Mid);
    }
  }
  notifyCFGChanged(*F);
  return Mid;
}

unsigned srp::splitAllCriticalEdges(Function &F) {
  unsigned NumSplit = 0;
  for (BasicBlock *BB : F.blocks()) { // snapshot: we add blocks while iterating
    Instruction *T = BB->terminator();
    if (!T)
      continue;
    std::vector<BasicBlock *> Succs = T->successors();
    if (Succs.size() < 2)
      continue;
    for (BasicBlock *S : Succs) {
      if (isCriticalEdge(BB, S)) {
        splitEdge(BB, S);
        ++NumSplit;
      }
    }
  }
  return NumSplit;
}

BasicBlock *
srp::redirectPredsToNewBlock(BasicBlock *To,
                             const std::vector<BasicBlock *> &Preds,
                             const char *NameHint) {
  assert(!Preds.empty() && "nothing to redirect");
  Function *F = To->parent();
  BasicBlock *New = F->createBlock(To->name() + "." + NameHint);

  for (BasicBlock *P : Preds) {
    P->terminator()->replaceSuccessor(To, New);
    To->removePred(P);
    New->addPred(P);
  }
  New->append(std::make_unique<BrInst>(To));
  To->addPred(New);

  // Fold the redirected incoming phi entries into one entry from New.
  for (auto &I : *To) {
    if (auto *P = dyn_cast<PhiInst>(I.get())) {
      // Collect the values arriving over redirected edges, then rebuild.
      std::vector<Value *> Vals;
      for (BasicBlock *Pred : Preds) {
        int Idx = P->indexOfBlock(Pred);
        assert(Idx >= 0 && "phi missing incoming entry");
        Vals.push_back(P->incomingValue(static_cast<unsigned>(Idx)));
        P->removeIncoming(static_cast<unsigned>(Idx));
      }
      bool AllSame = std::all_of(Vals.begin(), Vals.end(),
                                 [&](Value *V) { return V == Vals[0]; });
      if (AllSame) {
        P->addIncoming(Vals[0], New);
      } else {
        auto Merge = std::make_unique<PhiInst>(
            P->type(), F->uniqueValueName("merge"));
        PhiInst *MergeRaw = Merge.get();
        for (unsigned Idx = 0; Idx != Vals.size(); ++Idx)
          MergeRaw->addIncoming(Vals[Idx], Preds[Idx]);
        New->prepend(std::move(Merge));
        P->addIncoming(MergeRaw, New);
      }
    } else if (auto *MP = dyn_cast<MemPhiInst>(I.get())) {
      std::vector<MemoryName *> Names;
      for (BasicBlock *Pred : Preds) {
        int Idx = MP->indexOfBlock(Pred);
        assert(Idx >= 0 && "memphi missing incoming entry");
        Names.push_back(MP->incomingName(static_cast<unsigned>(Idx)));
        MP->removeIncoming(static_cast<unsigned>(Idx));
      }
      bool AllSame =
          std::all_of(Names.begin(), Names.end(),
                      [&](MemoryName *N) { return N == Names[0]; });
      if (AllSame) {
        MP->addIncoming(Names[0], New);
      } else {
        auto Merge = std::make_unique<MemPhiInst>(MP->object());
        MemPhiInst *MergeRaw = Merge.get();
        MergeRaw->addMemDef(F->createMemoryName(MP->object()));
        for (unsigned Idx = 0; Idx != Names.size(); ++Idx)
          MergeRaw->addIncoming(Names[Idx], Preds[Idx]);
        New->prepend(std::move(Merge));
        MP->addIncoming(MergeRaw->target(), New);
      }
    }
  }
  notifyCFGChanged(*F);
  return New;
}
