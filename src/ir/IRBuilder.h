//===- ir/IRBuilder.h - Instruction creation convenience -------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions to a block (or before a given
/// instruction) and names results automatically.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_IRBUILDER_H
#define SRP_IR_IRBUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

namespace srp {

class IRBuilder {
  BasicBlock *BB = nullptr;
  Instruction *Before = nullptr; ///< If set, insert before this instruction.

  Instruction *place(std::unique_ptr<Instruction> I) {
    assert(BB && "builder has no insertion block");
    if (I->name().empty() && I->type() != Type::Void)
      I->setName(BB->parent()->uniqueValueName());
    return Before ? BB->insertBefore(Before, std::move(I))
                  : BB->append(std::move(I));
  }

public:
  IRBuilder() = default;
  explicit IRBuilder(BasicBlock *BB) : BB(BB) {}

  void setInsertPoint(BasicBlock *B) {
    BB = B;
    Before = nullptr;
  }
  void setInsertPoint(Instruction *I) {
    BB = I->parent();
    Before = I;
  }
  BasicBlock *block() const { return BB; }

  Module *module() const { return BB->parent()->parent(); }
  ConstantInt *constant(int64_t V) { return module()->constant(V); }

  Value *binop(BinOpKind K, Value *L, Value *R, std::string Name = "") {
    return place(std::make_unique<BinOpInst>(K, L, R, std::move(Name)));
  }
  Value *add(Value *L, Value *R) { return binop(BinOpKind::Add, L, R); }
  Value *sub(Value *L, Value *R) { return binop(BinOpKind::Sub, L, R); }
  Value *mul(Value *L, Value *R) { return binop(BinOpKind::Mul, L, R); }
  Value *cmpLT(Value *L, Value *R) { return binop(BinOpKind::CmpLT, L, R); }
  Value *cmpEQ(Value *L, Value *R) { return binop(BinOpKind::CmpEQ, L, R); }

  Value *copy(Value *Src, std::string Name = "") {
    return place(std::make_unique<CopyInst>(Src, std::move(Name)));
  }

  PhiInst *phi(Type Ty, std::string Name = "") {
    return static_cast<PhiInst *>(
        place(std::make_unique<PhiInst>(Ty, std::move(Name))));
  }

  LoadInst *load(MemoryObject *Obj, std::string Name = "") {
    return static_cast<LoadInst *>(
        place(std::make_unique<LoadInst>(Obj, std::move(Name))));
  }

  StoreInst *store(MemoryObject *Obj, Value *V) {
    return static_cast<StoreInst *>(
        place(std::make_unique<StoreInst>(Obj, V)));
  }

  Value *addrOf(MemoryObject *Obj) {
    Obj->setAddressTaken();
    return place(std::make_unique<AddrOfInst>(Obj));
  }

  Value *ptrLoad(Value *Addr) {
    return place(std::make_unique<PtrLoadInst>(Addr));
  }

  Instruction *ptrStore(Value *Addr, Value *V) {
    return place(std::make_unique<PtrStoreInst>(Addr, V));
  }

  Value *arrayLoad(MemoryObject *Obj, Value *Idx) {
    return place(std::make_unique<ArrayLoadInst>(Obj, Idx));
  }

  Instruction *arrayStore(MemoryObject *Obj, Value *Idx, Value *V) {
    return place(std::make_unique<ArrayStoreInst>(Obj, Idx, V));
  }

  CallInst *call(Function *Callee, std::vector<Value *> Args,
                 std::string Name = "") {
    return static_cast<CallInst *>(place(std::make_unique<CallInst>(
        Callee, std::move(Args), Callee->returnType(), std::move(Name))));
  }

  Instruction *print(Value *V) {
    return place(std::make_unique<PrintInst>(V));
  }

  /// Terminators. These also maintain the predecessor lists of the targets.
  Instruction *br(BasicBlock *Target) {
    Instruction *I = place(std::make_unique<BrInst>(Target));
    Target->addPred(BB);
    return I;
  }

  Instruction *condBr(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    Instruction *I =
        place(std::make_unique<CondBrInst>(Cond, TrueBB, FalseBB));
    TrueBB->addPred(BB);
    FalseBB->addPred(BB);
    return I;
  }

  Instruction *ret(Value *V = nullptr) {
    return place(std::make_unique<RetInst>(V));
  }
};

} // namespace srp

#endif // SRP_IR_IRBUILDER_H
