//===- interp/Bytecode.h - Decoded interpreter tier ------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode compilation tier of the interpreter (docs/INTERPRETER.md).
/// A one-shot decoder numbers every SSA value of a function into a dense
/// frame slot and flattens its reachable blocks into one contiguous array
/// of pre-decoded instructions: opcode, resolved operand slots, memory
/// object id + size, branch targets as edge indices. Constants are folded
/// into the frame template (a constant operand is just a pre-filled slot),
/// phi moves are pre-resolved per CFG edge into parallel-copy lists, and
/// block/edge execution counts become dense per-function vectors that the
/// engine converts back to the pointer-keyed ExecutionResult maps at the
/// end of a run.
///
/// Decoding is registered as an AnalysisManager analysis
/// (AnalysisKind::Bytecode), so the profile run and the post-promotion
/// measurement of an *unchanged* function share one decode; any CFG or SSA
/// edit notification retires the decoded form.
///
/// The decoder also proves, via the dominator tree, that every register
/// use is reached by its definition. Functions that fail the proof (only
/// hand-built invalid IR does) are flagged NeedsWalk and executed by the
/// reference tree-walker, which traps use-before-def dynamically —
/// keeping the two engines observationally identical.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_BYTECODE_H
#define SRP_INTERP_BYTECODE_H

#include "analysis/AnalysisManager.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace srp {

class BasicBlock;
class DominatorTree;
class Function;
class MemoryObject;

/// Decoded opcodes. The first 16 entries mirror BinOpKind in order so a
/// binary operator decodes with one cast.
enum class BOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  Copy,
  Load,       ///< Singleton load, static storage (Obj = object id).
  Store,      ///< Singleton store, static storage.
  LoadLocal,  ///< Singleton load, frame-local storage (Obj = arena offset).
  StoreLocal, ///< Singleton store, frame-local storage.
  AddrOf,
  PtrLoad,
  PtrStore,
  ArrayLoad,       ///< Aliased array read, static storage.
  ArrayStore,      ///< Aliased array write, static storage.
  ArrayLoadLocal,  ///< Aliased array read, frame-local storage.
  ArrayStoreLocal, ///< Aliased array write, frame-local storage.
  Call,
  Print,
  Jmp,
  JmpIf,
  Ret,  ///< A = value slot, or -1 for void returns.
  Trap, ///< Decode-time-known trap (T0 indexes DecodedFunction::TrapMsgs).
};

/// One decoded instruction. Fixed layout; field meaning depends on Op (see
/// the opcode comments above and the executor in Interpreter.cpp).
struct BInst {
  BOp Op;
  int32_t Dst = -1; ///< Result slot, -1 when the instruction produces none.
  int32_t A = -1;   ///< First operand slot (lhs / source / address / cond).
  int32_t B = -1;   ///< Second operand slot (rhs / stored value).
  uint32_t Obj = 0; ///< Memory ops: object id (static) or arena offset
                    ///< (frame-local).
  uint32_t Size = 0; ///< Memory ops: object size in cells (bounds check).
  int32_t T0 = -1;   ///< Jmp/JmpIf: edge index; Call: callee index;
                     ///< Trap: message index.
  int32_t T1 = -1;   ///< JmpIf: false-edge index.
  uint32_t ArgsBegin = 0; ///< Call: argument slot range in CallArgSlots.
  uint32_t ArgsEnd = 0;
  uint32_t ResumeCost = 0; ///< Call: fuel cost of the segment that resumes
                           ///< after the callee returns.
  /// Array ops: the accessed object, for out-of-bounds trap messages only
  /// (hot-path fields are the pre-resolved Obj/Size above).
  const MemoryObject *MObj = nullptr;
};

/// A decoded CFG edge: where it goes, its dense id (EdgeCounts index), and
/// the parallel phi copies the transition performs.
struct BEdge {
  uint32_t To = 0;     ///< Target block index.
  uint32_t Id = 0;     ///< Dense edge id within the function.
  uint32_t CopyBegin = 0, CopyEnd = 0; ///< Range in PhiCopies.
};

/// One pre-resolved phi move (executed in parallel with its edge-mates).
struct PhiCopy {
  int32_t Dst;
  int32_t Src;
};

/// A decoded block: where its instruction run starts in Code, and the fuel
/// cost of its leading segment (instructions up to and including the first
/// call, or the whole block). The executor charges a segment's cost in one
/// subtraction when enough fuel remains and falls back to per-instruction
/// accounting otherwise, so fuel traps fire at exactly the same
/// instruction as in the tree-walker.
struct BBlock {
  uint32_t First = 0;
  uint32_t SegCost = 0;
};

/// A function decoded for the bytecode engine. Immutable after decoding;
/// owned by the AnalysisManager cache (or by the engine when no manager is
/// supplied). Holds no absolute memory addresses and no execution counts,
/// so one decode is valid across runs until the IR changes.
struct DecodedFunction {
  Function *F = nullptr;

  /// Degenerate shapes the executor handles up front.
  bool Empty = false;     ///< Function has no blocks; calling it traps.
  bool NeedsWalk = false; ///< Failed static validation; run via the walker.

  uint32_t NumSlots = 0;
  uint32_t NumArgs = 0;
  /// Sparse frame initialisation: constant/undef slots only. No other
  /// slot needs clearing — the decoder's dominance proof guarantees every
  /// remaining slot is written before it is read, so activations run on
  /// an uninitialised arena.
  struct SlotInit {
    int32_t Slot;
    int64_t Val;
  };
  std::vector<SlotInit> ConstInits;

  std::vector<BInst> Code;
  std::vector<BBlock> Blocks;          ///< Index 0 is the entry block.
  std::vector<BasicBlock *> BlockPtrs; ///< Dense index -> IR block.
  std::vector<BEdge> Edges;
  std::vector<uint32_t> EdgeFrom, EdgeTo; ///< Per edge id: block indices.
  std::vector<PhiCopy> PhiCopies;
  uint32_t MaxPhiCopies = 0; ///< Largest per-edge copy list (scratch size).
  std::vector<int32_t> CallArgSlots;
  std::vector<Function *> Callees;
  std::vector<std::string> TrapMsgs;

  /// Frame-local storage (non-address-taken locals): arena offsets.
  struct LocalSlot {
    uint32_t Off;
    uint32_t Size;
    int64_t Init;
  };
  std::vector<LocalSlot> Locals;
  uint32_t LocalArenaSize = 0;

  uint32_t numEdges() const { return static_cast<uint32_t>(Edges.size()); }
};

/// Decodes \p F. \p DT may be null only for empty functions; for the rest
/// it supplies reachability and the dominance facts backing the
/// use-before-def proof.
std::unique_ptr<DecodedFunction> decodeFunction(Function &F,
                                                const DominatorTree *DT);

template <> struct AnalysisTraits<DecodedFunction> {
  static constexpr AnalysisKind Kind = AnalysisKind::Bytecode;
  /// Defined in Bytecode.cpp: decodes \p F against the manager's cached
  /// dominator tree (none needed for empty functions).
  static std::unique_ptr<DecodedFunction> build(Function &F,
                                                AnalysisManager &AM);
};

} // namespace srp

#endif // SRP_INTERP_BYTECODE_H
