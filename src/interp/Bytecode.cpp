//===- interp/Bytecode.cpp - One-shot interpreter decoder ------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"
#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include <unordered_map>

using namespace srp;

namespace {
SRP_STATISTIC(NumFunctionsDecoded, "interp", "decodes",
              "Functions decoded to bytecode");
SRP_STATISTIC(NumInstsDecoded, "interp", "decoded-insts",
              "Instructions decoded to bytecode across all decodes");
SRP_STATISTIC(NumWalkFallbackDecodes, "interp", "decode-walk-fallbacks",
              "Decodes that failed static validation (run via the walker)");
SRP_STATISTIC(DecodeMicros, "interp", "decode-micros",
              "Wall time spent decoding functions, in microseconds");
} // namespace

namespace {

/// Decode state for one function; collapses into the DecodedFunction on
/// success or flags it NeedsWalk on the first validation failure.
class Decoder {
  Function &F;
  const DominatorTree &DT;
  DecodedFunction &DF;

  std::unordered_map<const Value *, int32_t> SlotMap;
  std::vector<std::pair<int32_t, int64_t>> ConstInits;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIndex;
  std::unordered_map<const MemoryObject *, uint32_t> LocalOffset;
  int32_t NextSlot = 0;

  int32_t slotOf(const Value *V) {
    auto [It, Inserted] = SlotMap.try_emplace(V, NextSlot);
    if (Inserted) {
      ++NextSlot;
      // Frames are not zeroed (every plain slot is provably written
      // before read), so both constants and the deterministic-zero undef
      // need an explicit initialiser.
      if (auto *C = dyn_cast<ConstantInt>(V))
        ConstInits.emplace_back(It->second, C->value());
      else if (isa<UndefValue>(V))
        ConstInits.emplace_back(It->second, 0);
    }
    return It->second;
  }

  /// True if \p V is legal as an operand of \p U: a constant, undef, an
  /// argument of this function, or an instruction whose definition
  /// dominates the use. Anything else is use-before-def territory and
  /// defers the function to the tree-walker.
  bool validUse(const Value *V, const Instruction *U) const {
    switch (V->kind()) {
    case Value::Kind::ConstantInt:
    case Value::Kind::Undef:
      return true;
    case Value::Kind::Argument:
      return cast<Argument>(V)->parent() == &F;
    case Value::Kind::MemoryName:
      return false;
    default: {
      auto *D = cast<Instruction>(V);
      BasicBlock *DB = D->parent();
      if (!DB || !DT.contains(DB))
        return false;
      if (DB == U->parent())
        return DB->comesBefore(D, U);
      return DT.dominates(DB, U->parent());
    }
    }
  }

  /// Phi-edge variant: \p V must be available at the *end* of the incoming
  /// block \p P (the classic SSA phi-operand dominance rule).
  bool validPhiIncoming(const Value *V, const BasicBlock *P) const {
    switch (V->kind()) {
    case Value::Kind::ConstantInt:
    case Value::Kind::Undef:
      return true;
    case Value::Kind::Argument:
      return cast<Argument>(V)->parent() == &F;
    case Value::Kind::MemoryName:
      return false;
    default: {
      auto *D = cast<Instruction>(V);
      BasicBlock *DB = D->parent();
      if (!DB || !DT.contains(DB))
        return false;
      return DB == P || DT.dominates(DB, P);
    }
    }
  }

  /// Static storage = globals and address-taken locals (mirrors the
  /// MemoryImage the engine builds); this function's other locals live in
  /// the frame arena. Anything else is invalid IR.
  bool classifyObject(const MemoryObject *Obj, bool &IsStatic,
                      uint32_t &ObjField) {
    if (!Obj->owner() || Obj->isAddressTaken()) {
      IsStatic = true;
      ObjField = Obj->id();
      return true;
    }
    if (Obj->owner() != &F)
      return false;
    IsStatic = false;
    ObjField = LocalOffset.at(Obj);
    return true;
  }

  /// Builds the edge (and its parallel-copy list) for the transition
  /// \p From -> \p To; returns the edge index, or -1 on invalid phi state.
  int32_t makeEdge(uint32_t FromIdx, BasicBlock *From, BasicBlock *To) {
    auto It = BlockIndex.find(To);
    if (It == BlockIndex.end())
      return -1;
    BEdge E;
    E.To = It->second;
    E.Id = static_cast<uint32_t>(DF.EdgeFrom.size());
    DF.EdgeFrom.push_back(FromIdx);
    DF.EdgeTo.push_back(E.To);
    E.CopyBegin = static_cast<uint32_t>(DF.PhiCopies.size());
    for (const auto &IP : *To) {
      Instruction *I = IP.get();
      if (auto *P = dyn_cast<PhiInst>(I)) {
        int Idx = P->indexOfBlock(From);
        if (Idx < 0)
          return -1;
        Value *V = P->incomingValue(static_cast<unsigned>(Idx));
        if (!validPhiIncoming(V, From))
          return -1;
        DF.PhiCopies.push_back({slotOf(P), slotOf(V)});
      } else if (!isa<MemPhiInst>(I)) {
        break;
      }
    }
    E.CopyEnd = static_cast<uint32_t>(DF.PhiCopies.size());
    DF.MaxPhiCopies = std::max(DF.MaxPhiCopies, E.CopyEnd - E.CopyBegin);
    DF.Edges.push_back(E);
    return static_cast<int32_t>(DF.Edges.size() - 1);
  }

  bool decodeInst(Instruction *I, uint32_t BlockIdx, BasicBlock *BB) {
    BInst X;
    switch (I->kind()) {
    case Value::Kind::BinOp: {
      auto *Bo = cast<BinOpInst>(I);
      if (!validUse(Bo->lhs(), I) || !validUse(Bo->rhs(), I))
        return false;
      X.Op = static_cast<BOp>(static_cast<uint8_t>(Bo->op()));
      X.A = slotOf(Bo->lhs());
      X.B = slotOf(Bo->rhs());
      X.Dst = slotOf(Bo);
      break;
    }
    case Value::Kind::Copy: {
      auto *C = cast<CopyInst>(I);
      if (!validUse(C->source(), I))
        return false;
      X.Op = BOp::Copy;
      X.A = slotOf(C->source());
      X.Dst = slotOf(C);
      break;
    }
    case Value::Kind::Load: {
      auto *L = cast<LoadInst>(I);
      bool IsStatic;
      if (!classifyObject(L->object(), IsStatic, X.Obj))
        return false;
      X.Op = IsStatic ? BOp::Load : BOp::LoadLocal;
      X.Size = L->object()->size();
      X.Dst = slotOf(L);
      break;
    }
    case Value::Kind::Store: {
      auto *S = cast<StoreInst>(I);
      if (!validUse(S->storedValue(), I))
        return false;
      bool IsStatic;
      if (!classifyObject(S->object(), IsStatic, X.Obj))
        return false;
      X.Op = IsStatic ? BOp::Store : BOp::StoreLocal;
      X.Size = S->object()->size();
      X.A = slotOf(S->storedValue());
      break;
    }
    case Value::Kind::AddrOf: {
      auto *A = cast<AddrOfInst>(I);
      const MemoryObject *Obj = A->object();
      if (Obj->owner() && !Obj->isAddressTaken()) {
        // The walker traps when it reaches this; preserve the behaviour
        // (and the message) without penalising the whole function.
        X.Op = BOp::Trap;
        X.T0 = static_cast<int32_t>(DF.TrapMsgs.size());
        DF.TrapMsgs.push_back("address of object without static storage: " +
                              Obj->name());
        X.Dst = slotOf(A);
        break;
      }
      X.Op = BOp::AddrOf;
      X.Obj = Obj->id();
      X.Dst = slotOf(A);
      break;
    }
    case Value::Kind::PtrLoad: {
      auto *P = cast<PtrLoadInst>(I);
      if (!validUse(P->address(), I))
        return false;
      X.Op = BOp::PtrLoad;
      X.A = slotOf(P->address());
      X.Dst = slotOf(P);
      break;
    }
    case Value::Kind::PtrStore: {
      auto *P = cast<PtrStoreInst>(I);
      if (!validUse(P->address(), I) || !validUse(P->storedValue(), I))
        return false;
      X.Op = BOp::PtrStore;
      X.A = slotOf(P->address());
      X.B = slotOf(P->storedValue());
      break;
    }
    case Value::Kind::ArrayLoad: {
      auto *A = cast<ArrayLoadInst>(I);
      if (!validUse(A->index(), I))
        return false;
      bool IsStatic;
      if (!classifyObject(A->object(), IsStatic, X.Obj))
        return false;
      X.Op = IsStatic ? BOp::ArrayLoad : BOp::ArrayLoadLocal;
      X.Size = A->object()->size();
      X.MObj = A->object();
      X.A = slotOf(A->index());
      X.Dst = slotOf(A);
      break;
    }
    case Value::Kind::ArrayStore: {
      auto *A = cast<ArrayStoreInst>(I);
      if (!validUse(A->index(), I) || !validUse(A->storedValue(), I))
        return false;
      bool IsStatic;
      if (!classifyObject(A->object(), IsStatic, X.Obj))
        return false;
      X.Op = IsStatic ? BOp::ArrayStore : BOp::ArrayStoreLocal;
      X.Size = A->object()->size();
      X.MObj = A->object();
      X.A = slotOf(A->index());
      X.B = slotOf(A->storedValue());
      break;
    }
    case Value::Kind::Call: {
      auto *C = cast<CallInst>(I);
      if (!C->callee())
        return false;
      X.Op = BOp::Call;
      X.ArgsBegin = static_cast<uint32_t>(DF.CallArgSlots.size());
      for (Value *A : C->operands()) {
        if (!validUse(A, I))
          return false;
        DF.CallArgSlots.push_back(slotOf(A));
      }
      X.ArgsEnd = static_cast<uint32_t>(DF.CallArgSlots.size());
      X.T0 = static_cast<int32_t>(DF.Callees.size());
      DF.Callees.push_back(C->callee());
      if (C->type() != Type::Void)
        X.Dst = slotOf(C);
      break;
    }
    case Value::Kind::Print: {
      auto *P = cast<PrintInst>(I);
      if (!validUse(P->value(), I))
        return false;
      X.Op = BOp::Print;
      X.A = slotOf(P->value());
      break;
    }
    case Value::Kind::Br: {
      auto *Br = cast<BrInst>(I);
      X.Op = BOp::Jmp;
      X.T0 = makeEdge(BlockIdx, BB, Br->target());
      if (X.T0 < 0)
        return false;
      break;
    }
    case Value::Kind::CondBr: {
      auto *C = cast<CondBrInst>(I);
      if (!validUse(C->condition(), I))
        return false;
      X.Op = BOp::JmpIf;
      X.A = slotOf(C->condition());
      X.T0 = makeEdge(BlockIdx, BB, C->trueTarget());
      X.T1 = makeEdge(BlockIdx, BB, C->falseTarget());
      if (X.T0 < 0 || X.T1 < 0)
        return false;
      break;
    }
    case Value::Kind::Ret: {
      auto *Rt = cast<RetInst>(I);
      X.Op = BOp::Ret;
      if (Value *V = Rt->returnValue()) {
        if (!validUse(V, I))
          return false;
        X.A = slotOf(V);
      }
      break;
    }
    default:
      return false; // Phi/MemPhi/DummyLoad are filtered by the caller.
    }
    DF.Code.push_back(X);
    return true;
  }

  /// Splits the instruction run [\p First, Code.end()) into fuel segments
  /// at call boundaries: the leading cost lands on the block, each call
  /// carries the cost of the run that resumes after it.
  void assignSegmentCosts(BBlock &Blk) {
    uint32_t Acc = 0;
    BInst *LastCall = nullptr;
    for (uint32_t J = Blk.First; J != DF.Code.size(); ++J) {
      ++Acc;
      if (DF.Code[J].Op == BOp::Call) {
        if (LastCall)
          LastCall->ResumeCost = Acc;
        else
          Blk.SegCost = Acc;
        LastCall = &DF.Code[J];
        Acc = 0;
      }
    }
    if (LastCall)
      LastCall->ResumeCost = Acc;
    else
      Blk.SegCost = Acc;
  }

public:
  Decoder(Function &F, const DominatorTree &DT, DecodedFunction &DF)
      : F(F), DT(DT), DF(DF) {}

  bool run() {
    DF.NumArgs = F.numArgs();
    for (unsigned I = 0; I != F.numArgs(); ++I)
      slotOf(F.arg(I)); // args occupy slots [0, NumArgs)

    for (const auto &L : F.locals())
      if (!L->isAddressTaken()) {
        LocalOffset[L.get()] = DF.LocalArenaSize;
        DF.Locals.push_back({DF.LocalArenaSize, L->size(), L->initialValue()});
        DF.LocalArenaSize += L->size();
      }

    // Dense block numbering over the reachable set, entry first (the
    // entry is the first block in layout order and always reachable).
    for (BasicBlock *BB : F.blocks()) {
      if (!DT.contains(BB))
        continue;
      // A branch into a block with no terminator traps in the walker
      // *before* the block runs; keep that quirk by deferring wholesale.
      if (!BB->terminator())
        return false;
      BlockIndex[BB] = static_cast<uint32_t>(DF.BlockPtrs.size());
      DF.BlockPtrs.push_back(BB);
    }
    DF.Blocks.resize(DF.BlockPtrs.size());

    for (uint32_t BI = 0; BI != DF.BlockPtrs.size(); ++BI) {
      BasicBlock *BB = DF.BlockPtrs[BI];
      BBlock &Blk = DF.Blocks[BI];
      Blk.First = static_cast<uint32_t>(DF.Code.size());
      for (const auto &IP : *BB) {
        Instruction *I = IP.get();
        if (isa<PhiInst>(I)) {
          slotOf(I); // materialised by the per-edge copy lists
          continue;
        }
        if (isa<MemPhiInst>(I) || isa<DummyLoadInst>(I))
          continue; // free in the walker too
        if (!decodeInst(I, BI, BB))
          return false;
        if (I->isTerminator())
          break;
      }
      assignSegmentCosts(Blk);
    }

    DF.NumSlots = static_cast<uint32_t>(NextSlot);
    DF.ConstInits.reserve(ConstInits.size());
    for (auto &[Slot, V] : ConstInits)
      DF.ConstInits.push_back({Slot, V});
    return true;
  }
};

} // namespace

std::unique_ptr<DecodedFunction>
AnalysisTraits<DecodedFunction>::build(Function &F, AnalysisManager &AM) {
  if (F.empty())
    return decodeFunction(F, nullptr);
  return decodeFunction(F, &AM.get<DominatorTree>(F));
}

std::unique_ptr<DecodedFunction> srp::decodeFunction(Function &F,
                                                     const DominatorTree *DT) {
  double T0 = monotonicSeconds();
  auto DF = std::make_unique<DecodedFunction>();
  DF->F = &F;
  if (F.empty()) {
    DF->Empty = true;
    ++NumFunctionsDecoded;
    return DF;
  }
  assert(DT && "non-empty functions need a dominator tree to decode");
  if (!Decoder(F, *DT, *DF).run()) {
    // Failed static validation (use-before-def, foreign locals, malformed
    // phis/blocks): hand the whole function to the reference walker, which
    // reproduces the exact dynamic trap behaviour.
    *DF = DecodedFunction();
    DF->F = &F;
    DF->NeedsWalk = true;
    ++NumWalkFallbackDecodes;
  }
  ++NumFunctionsDecoded;
  NumInstsDecoded += DF->Code.size();
  DecodeMicros += static_cast<uint64_t>((monotonicSeconds() - T0) * 1e6);
  return DF;
}
