//===- interp/Interpreter.h - IR interpreter -------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Module directly. Serves three roles in the reproduction:
///  1. collects block/edge execution frequencies (the paper's profile
///     feedback),
///  2. measures dynamic counts of singleton loads/stores before and after
///     promotion (Table 2),
///  3. provides the observable-behaviour oracle for the equivalence
///     property tests (printed output + final memory state).
///
/// Memory is a flat cell array indexed by object id / array offset, so
/// pointer values are plain cell addresses and pointer arithmetic works.
/// Address-taken locals get static storage (one activation at a time), a
/// documented simplification; the Mini-C workloads comply.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_INTERPRETER_H
#define SRP_INTERP_INTERPRETER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace srp {

class BasicBlock;
class Function;
class Module;

/// Dynamic operation counters. "Singleton" loads/stores are the paper's
/// promotion targets; aliased operations are calls/pointer/array accesses.
struct DynamicCounts {
  uint64_t SingletonLoads = 0;
  uint64_t SingletonStores = 0;
  uint64_t AliasedLoads = 0;
  uint64_t AliasedStores = 0;
  uint64_t Copies = 0;
  uint64_t Instructions = 0;

  uint64_t memOps() const { return SingletonLoads + SingletonStores; }
};

/// Result of one execution.
struct ExecutionResult {
  bool Ok = false;
  std::string Error;        ///< Set when Ok is false (trap, fuel, ...).
  int64_t ExitValue = 0;    ///< Return value of main().
  std::vector<int64_t> Output; ///< Values printed, in order.
  DynamicCounts Counts;
  /// Final contents of module-scope memory (object id -> cells).
  std::unordered_map<unsigned, std::vector<int64_t>> FinalMemory;
  /// Execution count per basic block.
  std::unordered_map<const BasicBlock *, uint64_t> BlockCounts;
  /// Execution count per CFG edge (from, to).
  std::unordered_map<const BasicBlock *,
                     std::unordered_map<const BasicBlock *, uint64_t>>
      EdgeCounts;
};

class Interpreter {
  Module &M;
  uint64_t Fuel;

public:
  /// \p Fuel bounds the number of executed instructions (default generous;
  /// protects tests against accidental infinite loops).
  explicit Interpreter(Module &M, uint64_t Fuel = 200'000'000)
      : M(M), Fuel(Fuel) {}

  /// Runs \p EntryName (default "main") with the given arguments.
  ExecutionResult run(const std::string &EntryName = "main",
                      const std::vector<int64_t> &Args = {});
};

} // namespace srp

#endif // SRP_INTERP_INTERPRETER_H
