//===- interp/Interpreter.h - IR interpreter -------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Module directly. Serves three roles in the reproduction:
///  1. collects block/edge execution frequencies (the paper's profile
///     feedback),
///  2. measures dynamic counts of singleton loads/stores before and after
///     promotion (Table 2),
///  3. provides the observable-behaviour oracle for the equivalence
///     property tests (printed output + final memory state).
///
/// Memory is a flat cell array indexed by object id / array offset, so
/// pointer values are plain cell addresses and pointer arithmetic works.
/// Address-taken locals get static storage (one activation at a time), a
/// documented simplification; the Mini-C workloads comply.
///
/// Three engines share these semantics (docs/INTERPRETER.md):
///  - the *tree-walker*, the reference engine: interprets the IR in place,
///    one hash lookup per operand;
///  - the *bytecode* engine (default): functions are decoded once into
///    dense slot-numbered instruction streams (interp/Bytecode.h) and run
///    by a flat register-file dispatch loop with per-block fuel accounting
///    and dense block/edge counters;
///  - the *native* engine: bytecode plus a hotness-tiered x86-64 template
///    JIT (jit/NativeJIT.h) that compiles functions from their decoded
///    BInst arrays once a call-count threshold is crossed, deopting back
///    into the bytecode loop at the exact instruction for traps and fuel
///    exhaustion. On non-x86-64 hosts it degrades to the bytecode engine.
/// Results are required to be identical field by field; the parity suite
/// (tests/InterpParityTest.cpp) and the srp_oracle_walk / srp_native_parity
/// ctest gates enforce it. Functions the decoder cannot statically validate
/// fall back to the walker per call, so mixed execution is still exact.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_INTERPRETER_H
#define SRP_INTERP_INTERPRETER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace srp {

class AnalysisManager;
class BasicBlock;
class Function;
class Module;

/// Which execution engine an Interpreter uses.
enum class InterpEngine : uint8_t {
  Walk,     ///< Reference tree-walker (slow, obviously correct).
  Bytecode, ///< Decoded dispatch loop (default).
  Native,   ///< Bytecode + hotness-tiered x86-64 baseline JIT.
};

/// Stable spelling for flags/JSON: "walk" / "bytecode" / "native".
const char *interpEngineName(InterpEngine E);

/// Inverse of interpEngineName; returns false for unknown spellings.
bool parseInterpEngine(const std::string &Name, InterpEngine &Out);

/// The build-default engine (Bytecode), overridable per process with
/// SRP_INTERP=walk|bytecode|native — the hook the srp_oracle_walk and
/// native-engine ctest gates use to re-run suites on another engine.
InterpEngine defaultInterpEngine();

/// Dynamic operation counters. "Singleton" loads/stores are the paper's
/// promotion targets; aliased operations are calls/pointer/array accesses.
struct DynamicCounts {
  uint64_t SingletonLoads = 0;
  uint64_t SingletonStores = 0;
  uint64_t AliasedLoads = 0;
  uint64_t AliasedStores = 0;
  uint64_t Copies = 0;
  uint64_t Instructions = 0;

  uint64_t memOps() const { return SingletonLoads + SingletonStores; }
};

/// Per-run engine accounting (not part of the observable behaviour the
/// parity suite compares; feeds the `interp` section of --stats-json).
struct InterpRunStats {
  InterpEngine Engine = InterpEngine::Bytecode;
  uint64_t FunctionsDecoded = 0;  ///< Decodes performed during this run.
  uint64_t DecodeCacheHits = 0;   ///< Decodes served from the manager cache.
  uint64_t WalkFallbackCalls = 0; ///< Calls executed by the walker fallback.
  uint64_t FunctionsCompiled = 0; ///< Native-tier compiles this run.
  uint64_t NativeCalls = 0;       ///< Calls executed by JIT-compiled code.
  uint64_t Deopts = 0;            ///< Native frames resumed in bytecode.
  double DecodeSeconds = 0;
  double CompileSeconds = 0; ///< Native-tier compile time this run.
  double ExecSeconds = 0;    ///< Whole run, decode included.
};

/// Result of one execution.
struct ExecutionResult {
  bool Ok = false;
  std::string Error;        ///< Set when Ok is false (trap, fuel, ...).
  int64_t ExitValue = 0;    ///< Return value of main().
  std::vector<int64_t> Output; ///< Values printed, in order.
  DynamicCounts Counts;
  /// Final contents of module-scope memory (object id -> cells).
  std::unordered_map<unsigned, std::vector<int64_t>> FinalMemory;
  /// Execution count per basic block.
  std::unordered_map<const BasicBlock *, uint64_t> BlockCounts;
  /// Execution count per CFG edge (from, to).
  std::unordered_map<const BasicBlock *,
                     std::unordered_map<const BasicBlock *, uint64_t>>
      EdgeCounts;
  /// Engine accounting for this run (excluded from parity comparisons).
  InterpRunStats Interp;
};

class Interpreter {
  Module &M;
  uint64_t Fuel;
  InterpEngine Engine;
  AnalysisManager *AM;
  uint64_t JitThreshold = 0; ///< 0 = jit::defaultJitThreshold().

public:
  /// \p Fuel bounds the number of executed instructions (default generous;
  /// protects tests against accidental infinite loops). \p AM, when given,
  /// caches decoded functions and native code across runs
  /// (AnalysisKind::Bytecode / NativeCode) so an unchanged function is
  /// decoded once — and its JIT hotness accumulates — across profile +
  /// measurement; without a manager the interpreter caches privately per
  /// instance.
  explicit Interpreter(Module &M, uint64_t Fuel = 200'000'000,
                       InterpEngine Engine = defaultInterpEngine(),
                       AnalysisManager *AM = nullptr)
      : M(M), Fuel(Fuel), Engine(Engine), AM(AM) {}

  InterpEngine engine() const { return Engine; }

  /// Native engine only: call count at which a function is JIT-compiled.
  /// 0 keeps the process default (SRP_JIT_THRESHOLD, else 2); 1 compiles
  /// on first call — what the parity suites use to force the JIT path.
  void setJitThreshold(uint64_t T) { JitThreshold = T; }

  /// Runs \p EntryName (default "main") with the given arguments.
  ExecutionResult run(const std::string &EntryName = "main",
                      const std::vector<int64_t> &Args = {});
};

} // namespace srp

#endif // SRP_INTERP_INTERPRETER_H
