//===- interp/Interpreter.cpp - IR interpreter -----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
// Three engines, one observable behaviour (docs/INTERPRETER.md):
//  - callWalk: the reference tree-walker. Interprets the IR in place with a
//    hash-map frame; every register read is checked, so use-before-def is a
//    trap (UndefValue stays a deterministic 0).
//  - execDecoded/execLoop: the bytecode engine. Runs the decoded stream
//    from interp/Bytecode.h over a flat register stack; fuel is charged per
//    segment (block prefix / post-call run) in one subtraction, with a
//    per-instruction slow path once fuel runs low so exhaustion traps at
//    exactly the same instruction as the walker.
//  - nativeInvoke: the native tier (jit/NativeJIT.h). Hot functions run as
//    JIT-compiled x86-64 on the same frame arenas; traps and fuel
//    exhaustion deopt into execLoop mid-frame at the faulting instruction.
// All engines share the memory image, the trap plumbing and the result
// object, and may interleave within one run: functions the decoder rejects
// (use-before-def it cannot disprove, malformed blocks) execute via the
// walker call by call, and native frames hand unencodable events to the
// bytecode loop.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "analysis/Dominators.h"
#include "interp/Bytecode.h"
#include "jit/NativeJIT.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace srp;

namespace {
SRP_STATISTIC(NumExecutions, "interp", "runs",
              "Interpreter executions (profile + measurement)");
SRP_STATISTIC(NumInstsExecuted, "interp", "instructions-executed",
              "Dynamic instructions interpreted across all runs");
SRP_STATISTIC(NumBytecodeRuns, "interp", "bytecode-runs",
              "Runs executed by the bytecode engine");
SRP_STATISTIC(NumWalkRuns, "interp", "walk-runs",
              "Runs executed by the reference tree-walker");
SRP_STATISTIC(NumDecodeCacheHits, "interp", "decode-cache-hits",
              "Function decodes served from the analysis-manager cache");
SRP_STATISTIC(NumWalkFallbackCalls, "interp", "walk-fallback-calls",
              "Calls executed by the walker because decoding was refused");
SRP_STATISTIC(ExecMicros, "interp", "exec-micros",
              "Wall time spent in interpreter runs, in microseconds");
SRP_STATISTIC(NumNativeRuns, "interp", "native-runs",
              "Runs executed by the native (JIT) engine");
SRP_STATISTIC(NumNativeCompiles, "interp", "native-compiles",
              "Functions compiled by the baseline JIT");
SRP_STATISTIC(NumNativeCalls, "interp", "native-calls",
              "Calls executed by JIT-compiled code");
SRP_STATISTIC(NumNativeDeopts, "interp", "native-deopts",
              "Native frames that deopted into the bytecode loop");
SRP_HISTOGRAM(JitCompileMicros, "interp", "jit-compile-micros",
              "Wall time of one baseline-JIT function compile (us)");
} // namespace

const char *srp::interpEngineName(InterpEngine E) {
  switch (E) {
  case InterpEngine::Walk:
    return "walk";
  case InterpEngine::Native:
    return "native";
  case InterpEngine::Bytecode:
    break;
  }
  return "bytecode";
}

bool srp::parseInterpEngine(const std::string &Name, InterpEngine &Out) {
  if (Name == "walk") {
    Out = InterpEngine::Walk;
    return true;
  }
  if (Name == "bytecode") {
    Out = InterpEngine::Bytecode;
    return true;
  }
  if (Name == "native") {
    Out = InterpEngine::Native;
    return true;
  }
  return false;
}

InterpEngine srp::defaultInterpEngine() {
  if (const char *V = std::getenv("SRP_INTERP")) {
    InterpEngine E;
    if (parseInterpEngine(V, E))
      return E;
  }
  return InterpEngine::Bytecode;
}

namespace {

/// Flat memory image: every object gets a contiguous range of cells;
/// pointers are absolute cell indices. Bases are a dense per-object-id
/// vector so the bytecode engine resolves them without hashing.
class MemoryImage {
  std::vector<int64_t> BaseById; ///< object id -> base, -1 = not static
  std::vector<int64_t> Cells;
  std::vector<const MemoryObject *> Objects;

public:
  explicit MemoryImage(const Module &M) : BaseById(M.numObjectIds(), -1) {}

  void add(const MemoryObject &Obj) {
    BaseById[Obj.id()] = static_cast<int64_t>(Cells.size());
    Objects.push_back(&Obj);
    for (unsigned I = 0; I != Obj.size(); ++I)
      Cells.push_back(I == 0 ? Obj.initialValue() : 0);
  }

  bool knows(const MemoryObject &Obj) const {
    return BaseById[Obj.id()] >= 0;
  }

  uint64_t base(const MemoryObject &Obj) const {
    return static_cast<uint64_t>(BaseById[Obj.id()]);
  }
  uint64_t baseOfId(unsigned Id) const {
    return static_cast<uint64_t>(BaseById[Id]);
  }

  bool validAddress(uint64_t Addr) const { return Addr < Cells.size(); }

  int64_t read(uint64_t Addr) const { return Cells[Addr]; }
  void write(uint64_t Addr, int64_t V) { Cells[Addr] = V; }

  const std::vector<const MemoryObject *> &objects() const { return Objects; }

  /// Raw geometry for the native tier: compiled code addresses cells
  /// directly and bakes bases as immediates. Stable once construction
  /// (the add() sequence) is done.
  int64_t *cellsData() { return Cells.data(); }
  size_t cellsSize() const { return Cells.size(); }
  const std::vector<int64_t> &baseTable() const { return BaseById; }

  /// Layout identity: compiled code is only valid against the exact image
  /// geometry it was baked for (FNV-1a over bases + size).
  uint64_t signature() const {
    uint64_t H = 1469598103934665603ull;
    auto Mix = [&H](uint64_t V) {
      for (int I = 0; I != 8; ++I) {
        H ^= (V >> (8 * I)) & 0xff;
        H *= 1099511628211ull;
      }
    };
    Mix(Cells.size());
    for (int64_t B : BaseById)
      Mix(static_cast<uint64_t>(B));
    return H;
  }
};

/// Tree-walker register frame. get() distinguishes "never written" from
/// zero so the engine can trap use-before-def instead of minting silent
/// zeros; constants and the deterministic undef read without a frame entry.
class Frame {
public:
  std::unordered_map<const Value *, int64_t> Regs;

  bool get(const Value *V, int64_t &Out) const {
    if (auto *C = dyn_cast<ConstantInt>(V)) {
      Out = C->value();
      return true;
    }
    if (isa<UndefValue>(V)) {
      Out = 0; // deterministic "undefined"
      return true;
    }
    auto It = Regs.find(V);
    if (It == Regs.end())
      return false;
    Out = It->second;
    return true;
  }
  void set(const Value *V, int64_t X) { Regs[V] = X; }
};

class ExecEngine {
  Module &M;
  uint64_t FuelLeft;
  ExecutionResult &R;
  MemoryImage Mem;
  const bool UseBytecode; ///< Bytecode or Native engine selected.
  const bool UseNative;   ///< Native engine selected (implies UseBytecode).
  AnalysisManager *AM;

  /// Private decode cache when no AnalysisManager is supplied.
  std::unordered_map<const Function *, std::unique_ptr<DecodedFunction>>
      LocalDecoded;
  /// Private native-code cache when no AnalysisManager is supplied (no
  /// cross-run hotness then: each engine instance starts cold).
  std::unordered_map<const Function *, std::unique_ptr<jit::NativeCode>>
      LocalNative;

  /// Dense per-function execution counters, converted to the pointer-keyed
  /// result maps by finish(). The walker fallback writes the maps
  /// directly; finish() merges with +=, so mixed runs stay exact.
  struct FnState {
    const DecodedFunction *DF = nullptr;
    /// Merged block+edge counters: blocks at [0, NumBlocks), edges at
    /// [NumBlocks, NumBlocks+NumEdges). One flat array so compiled code
    /// addresses both through a single pinned register.
    std::vector<uint64_t> Cnt;
    jit::NativeCode *NC = nullptr; ///< Native tier entry (native mode only).
    /// Per-callee-index resolved state (parallel to DF->Callees), filled
    /// lazily so hot call sites skip the States hash lookup entirely.
    /// FnState references are stable across States rehashes, so the raw
    /// pointers stay valid for the whole run.
    std::vector<FnState *> CalleeStates;
  };
  std::unordered_map<const Function *, FnState> States;

  /// Native-tier state: the engine<->code context (one per engine; nested
  /// native frames share it, saving/restoring Depth around calls), the
  /// memory-image identity compiled code must match, and the call-count
  /// tier threshold.
  jit::NativeCtx Ctx;
  uint64_t ImageSig = 0;
  uint64_t JitThreshold = 2;

  /// Register / frame-local-memory stacks shared by all bytecode frames
  /// (one contiguous arena each instead of a malloc per call). Grown
  /// manually through Top watermarks: frames are NOT zeroed on entry —
  /// the decoder proves every plain slot is written before read, and
  /// constant/undef slots come from DecodedFunction::ConstInits.
  std::vector<int64_t> RegStack;
  std::vector<int64_t> LocalStack;
  size_t RegTop = 0;
  size_t LocalTop = 0;
  std::vector<int64_t> PhiScratch; ///< Parallel-copy staging buffer.
  std::vector<int64_t> ArgStack;   ///< Call-argument staging stack.

public:
  ExecEngine(Module &M, uint64_t Fuel, ExecutionResult &R, InterpEngine E,
             AnalysisManager *AM, uint64_t Threshold)
      : M(M), FuelLeft(Fuel), R(R), Mem(M),
        UseBytecode(E != InterpEngine::Walk),
        UseNative(E == InterpEngine::Native), AM(AM) {
    for (const auto &G : M.globals())
      Mem.add(*G);
    // Address-taken locals get static storage (single activation).
    for (const auto &F : M.functions())
      for (const auto &L : F->locals())
        if (L->isAddressTaken())
          Mem.add(*L);
    if (UseNative) {
      JitThreshold = Threshold ? Threshold : jit::defaultJitThreshold();
      ImageSig = Mem.signature();
      Ctx.MemCells = Mem.cellsData(); // stable: no add() after this point
      Ctx.CallHelper = &callThunk;
      Ctx.PrintHelper = &printThunk;
      Ctx.Engine = this;
    }
  }

  bool trap(const std::string &Msg) {
    R.Ok = false;
    R.Error = Msg;
    return false;
  }

  /// One decode resolution (and one cache-hit/miss count) per function
  /// per run; later calls reuse the state through CalleeStates pointers.
  FnState &stateFor(Function &F) {
    auto [It, Inserted] = States.try_emplace(&F);
    FnState &FS = It->second;
    if (Inserted) {
      FS.DF = &getDecoded(F);
      FS.Cnt.assign(FS.DF->Blocks.size() + FS.DF->numEdges(), 0);
      FS.CalleeStates.assign(FS.DF->Callees.size(), nullptr);
      if (UseNative)
        FS.NC = &getNativeCode(F);
    }
    return FS;
  }

  /// Per-call engine dispatch: decoded fast path when the bytecode tier is
  /// on and the decoder accepted the function, reference walker otherwise.
  /// Arguments are passed as a raw span so callers can stage them in
  /// ArgStack without a per-call allocation.
  bool call(Function &F, const int64_t *Args, size_t NArgs, int64_t &RetVal,
            unsigned Depth) {
    if (Depth > 400)
      return trap("call stack overflow in " + F.name());
    if (UseBytecode) {
      FnState &FS = stateFor(F);
      const DecodedFunction &DF = *FS.DF;
      if (!DF.NeedsWalk) {
        if (DF.Empty)
          return trap("call to empty function " + F.name());
        if (NArgs != DF.NumArgs)
          return trap("arity mismatch calling " + F.name());
        return dispatchDecoded(DF, FS, Args, RetVal, Depth);
      }
      ++R.Interp.WalkFallbackCalls;
      ++NumWalkFallbackCalls;
    }
    return callWalk(F, Args, NArgs, RetVal, Depth);
  }

  /// Converts dense counters into the result maps and snapshots final
  /// memory. Must run exactly once, after the outermost call returns
  /// (including on traps: partial counts are part of the observable
  /// behaviour the parity suite compares).
  void finish() {
    for (auto &[F, FS] : States) {
      (void)F;
      const DecodedFunction &DF = *FS.DF;
      const size_t NB = DF.Blocks.size();
      for (size_t I = 0; I != NB; ++I)
        if (FS.Cnt[I])
          R.BlockCounts[DF.BlockPtrs[I]] += FS.Cnt[I];
      for (size_t E = 0; E != DF.numEdges(); ++E)
        if (FS.Cnt[NB + E])
          R.EdgeCounts[DF.BlockPtrs[DF.EdgeFrom[E]]]
                      [DF.BlockPtrs[DF.EdgeTo[E]]] += FS.Cnt[NB + E];
    }
    for (const MemoryObject *Obj : Mem.objects()) {
      // Only module-scope memory is observable after exit; locals (even
      // address-taken ones with static storage) are dead, and dead-store
      // elimination may legitimately leave different garbage in them.
      if (Obj->owner())
        continue;
      std::vector<int64_t> Cells(Obj->size());
      for (unsigned I = 0; I != Obj->size(); ++I)
        Cells[I] = Mem.read(Mem.base(*Obj) + I);
      R.FinalMemory[Obj->id()] = std::move(Cells);
    }
  }

private:
  const DecodedFunction &getDecoded(Function &F) {
    if (AM) {
      if (AM->cachingEnabled() && AM->isCached(F, AnalysisKind::Bytecode)) {
        ++R.Interp.DecodeCacheHits;
        ++NumDecodeCacheHits;
        return AM->get<DecodedFunction>(F);
      }
      double T0 = monotonicSeconds();
      TraceSpan Span;
      if (trace::enabled())
        Span.begin("interp", "decode:" + F.name());
      const DecodedFunction &DF = AM->get<DecodedFunction>(F);
      Span.end();
      R.Interp.DecodeSeconds += monotonicSeconds() - T0;
      ++R.Interp.FunctionsDecoded;
      return DF;
    }
    auto It = LocalDecoded.find(&F);
    if (It != LocalDecoded.end())
      return *It->second;
    double T0 = monotonicSeconds();
    TraceSpan Span;
    if (trace::enabled())
      Span.begin("interp", "decode:" + F.name());
    std::unique_ptr<DominatorTree> DT;
    if (!F.empty())
      DT = std::make_unique<DominatorTree>(F);
    auto DF = decodeFunction(F, DT.get());
    Span.end();
    R.Interp.DecodeSeconds += monotonicSeconds() - T0;
    ++R.Interp.FunctionsDecoded;
    return *(LocalDecoded[&F] = std::move(DF));
  }

  //===-- Native tier ------------------------------------------------------===

  /// Per-run native-code resolution; the AM-cached entry carries HotCount
  /// across runs, the private map starts cold per engine instance.
  jit::NativeCode &getNativeCode(Function &F) {
    if (AM)
      return AM->get<jit::NativeCode>(F);
    auto &P = LocalNative[&F];
    if (!P)
      P = std::make_unique<jit::NativeCode>();
    return *P;
  }

  /// Decoded-function dispatch below call(): native code when the function
  /// is hot (compiling it on the crossing call), bytecode otherwise. The
  /// caller has already validated Empty/NeedsWalk/arity.
  bool dispatchDecoded(const DecodedFunction &DF, FnState &FS,
                       const int64_t *Args, int64_t &RetVal, unsigned Depth) {
    if (UseNative)
      if (jit::NativeCode *NC = maybeNative(DF, FS))
        return nativeInvoke(*NC, DF, FS, Args, RetVal, Depth);
    return execDecoded(DF, FS, Args, RetVal, Depth);
  }

  /// The tier decision for one call: bump the hotness ledger, compile at
  /// the threshold, and return the entry when this call can run natively.
  jit::NativeCode *maybeNative(const DecodedFunction &DF, FnState &FS) {
    jit::NativeCode *NC = FS.NC;
    if (!NC)
      return nullptr;
    ++NC->HotCount;
    if (NC->Entry && NC->ImageSig == ImageSig)
      return NC;
    // A cached compile against a different memory-image layout (an object
    // was added or removed module-wide since) is stale even though this
    // function's IR is unchanged; recompile against the current image.
    if (NC->Attempted && NC->ImageSig == ImageSig)
      return nullptr; // compile already failed for this shape
    if (NC->HotCount < JitThreshold)
      return nullptr;
    double T0 = monotonicSeconds();
    TraceSpan Span;
    if (trace::enabled())
      Span.begin("jit", "compile:" + DF.F->name());
    NC->Attempted = true;
    NC->ImageSig = ImageSig;
    NC->Entry = nullptr; // never leave a stale entry if the compile fails
    jit::MemoryLayout L;
    L.BaseById = Mem.baseTable().data();
    L.NumIds = Mem.baseTable().size();
    L.NumCells = Mem.cellsSize();
    L.Sig = ImageSig;
    const bool Ok = jit::compileFunction(*NC, DF, L);
    Span.end();
    const double Elapsed = monotonicSeconds() - T0;
    R.Interp.CompileSeconds += Elapsed;
    JitCompileMicros.observeSeconds(Elapsed);
    if (!Ok)
      return nullptr;
    ++R.Interp.FunctionsCompiled;
    ++NumNativeCompiles;
    return NC;
  }

  /// Flushes the count deltas compiled code accumulated in the context
  /// into the run's counters. Must happen before any result is read —
  /// nativeInvoke does it on every exit path (return, trap, deopt).
  void flushNativeCounts() {
    DynamicCounts &C = R.Counts;
    C.Instructions += Ctx.Instructions;
    C.SingletonLoads += Ctx.SingletonLoads;
    C.SingletonStores += Ctx.SingletonStores;
    C.AliasedLoads += Ctx.AliasedLoads;
    C.AliasedStores += Ctx.AliasedStores;
    C.Copies += Ctx.Copies;
    Ctx.Instructions = Ctx.SingletonLoads = Ctx.SingletonStores =
        Ctx.AliasedLoads = Ctx.AliasedStores = Ctx.Copies = 0;
  }

  /// The block whose instruction range contains \p CodeIdx (deopt resume
  /// target). Blocks[i].First is ascending by construction.
  static uint32_t blockContaining(const DecodedFunction &DF,
                                  uint32_t CodeIdx) {
    uint32_t B = 0;
    while (B + 1 < DF.Blocks.size() && DF.Blocks[B + 1].First <= CodeIdx)
      ++B;
    return B;
  }

  /// Runs one call in compiled code: identical frame push to execDecoded,
  /// then the JIT entry. Status selects the exit: plain return, trap
  /// (recorded by a helper; unwind), or deopt — resume the bytecode loop
  /// on this very frame at the faulting instruction, with per-instruction
  /// fuel (the native tier never leaves a prepaid segment behind).
  bool nativeInvoke(jit::NativeCode &NC, const DecodedFunction &DF,
                    FnState &FS, const int64_t *Args, int64_t &RetVal,
                    unsigned Depth) {
    const size_t Base = RegTop;
    RegTop += DF.NumSlots;
    if (RegTop > RegStack.size())
      RegStack.resize(std::max(RegTop, RegStack.size() * 2));
    const size_t LocalBase = LocalTop;
    LocalTop += DF.LocalArenaSize;
    if (LocalTop > LocalStack.size())
      LocalStack.resize(std::max(LocalTop, LocalStack.size() * 2));
    int64_t *Rg = RegStack.data() + Base;
    int64_t *Lc = LocalStack.data() + LocalBase;
    for (const auto &CI : DF.ConstInits)
      Rg[CI.Slot] = CI.Val;
    for (uint32_t I = 0; I != DF.NumArgs; ++I)
      Rg[I] = Args[I];
    for (const auto &L : DF.Locals)
      std::fill_n(Lc + L.Off, L.Size, L.Init);

    ++R.Interp.NativeCalls;
    ++NumNativeCalls;
    Ctx.FuelLeft = FuelLeft;
    const uint32_t SavedDepth = Ctx.Depth;
    Ctx.Depth = Depth;
    Ctx.Status = jit::StatusOk;
    int64_t Ret = NC.Entry(&Ctx, Rg, Lc, FS.Cnt.data(), &FS);
    Ctx.Depth = SavedDepth;
    FuelLeft = Ctx.FuelLeft;
    flushNativeCounts();
    if (Ctx.Status == jit::StatusOk) {
      RetVal = Ret;
      RegTop = Base;
      LocalTop = LocalBase;
      return true;
    }
    if (Ctx.Status != jit::StatusDeopt)
      return false; // trap already recorded by the raising helper
    ++R.Interp.Deopts;
    ++NumNativeDeopts;
    Ctx.Status = jit::StatusOk;
    const uint32_t Idx = static_cast<uint32_t>(Ctx.DeoptIndex);
    return execLoop(DF, FS, Base, LocalBase, RetVal, Depth,
                    blockContaining(DF, Idx), Idx, /*Resume=*/true);
  }

  /// The BOp::Call helper compiled code calls out to. Mirrors the
  /// bytecode loop's Call case byte for byte: depth check, callee-state
  /// resolution, argument staging, tier dispatch, trap propagation — and
  /// re-anchors the caller's frame pointers since the callee may have
  /// grown the shared arenas.
  int64_t nativeCall(jit::NativeCtx *C, FnState *CallerFS, uint64_t CodeIdx,
                     int64_t *Rg, int64_t *Lc) {
    const DecodedFunction &DF = *CallerFS->DF;
    const BInst &X = DF.Code[CodeIdx];
    Function &Callee = *DF.Callees[X.T0];
    FuelLeft = C->FuelLeft;
    const unsigned Depth = C->Depth;
    const size_t RgOff = static_cast<size_t>(Rg - RegStack.data());
    const size_t LcOff = static_cast<size_t>(Lc - LocalStack.data());
    int64_t Out = 0;
    bool Ok;
    if (Depth >= 400) {
      Ok = trap("call stack overflow in " + Callee.name());
    } else {
      FnState *CS = CallerFS->CalleeStates[X.T0];
      if (!CS)
        CS = CallerFS->CalleeStates[X.T0] = &stateFor(Callee);
      const uint32_t NA = X.ArgsEnd - X.ArgsBegin;
      const size_t AB = ArgStack.size();
      ArgStack.resize(AB + NA);
      for (uint32_t I = 0; I != NA; ++I)
        ArgStack[AB + I] = Rg[DF.CallArgSlots[X.ArgsBegin + I]];
      const DecodedFunction &CDF = *CS->DF;
      if (!CDF.NeedsWalk) {
        if (CDF.Empty)
          Ok = trap("call to empty function " + Callee.name());
        else if (NA != CDF.NumArgs)
          Ok = trap("arity mismatch calling " + Callee.name());
        else
          Ok = dispatchDecoded(CDF, *CS, ArgStack.data() + AB, Out,
                               Depth + 1);
      } else {
        ++R.Interp.WalkFallbackCalls;
        ++NumWalkFallbackCalls;
        Ok = callWalk(Callee, ArgStack.data() + AB, NA, Out, Depth + 1);
      }
      ArgStack.resize(AB);
    }
    C->CurRg = RegStack.data() + RgOff;
    C->CurLc = LocalStack.data() + LcOff;
    C->FuelLeft = FuelLeft;
    C->Status = Ok ? jit::StatusOk : jit::StatusTrap;
    return Out;
  }

  static int64_t callThunk(jit::NativeCtx *C, void *CallerFS, uint64_t Idx,
                           int64_t *Rg, int64_t *Lc) {
    return static_cast<ExecEngine *>(C->Engine)
        ->nativeCall(C, static_cast<FnState *>(CallerFS), Idx, Rg, Lc);
  }

  static void printThunk(jit::NativeCtx *C, int64_t V) {
    static_cast<ExecEngine *>(C->Engine)->R.Output.push_back(V);
  }

  //===-- Bytecode engine --------------------------------------------------===

  bool execDecoded(const DecodedFunction &DF, FnState &FS,
                   const int64_t *Args, int64_t &RetVal, unsigned Depth) {
    // Frame push: bump the watermarks; beyond them the arenas hold stale
    // garbage, which is fine — the decoder's dominance proof guarantees
    // no plain slot is read before it is written, and constants/undef
    // are seeded from the sparse ConstInits list.
    const size_t Base = RegTop;
    RegTop += DF.NumSlots;
    if (RegTop > RegStack.size())
      RegStack.resize(std::max(RegTop, RegStack.size() * 2));
    const size_t LocalBase = LocalTop;
    LocalTop += DF.LocalArenaSize;
    if (LocalTop > LocalStack.size())
      LocalStack.resize(std::max(LocalTop, LocalStack.size() * 2));

    int64_t *Rg = RegStack.data() + Base;
    int64_t *Lc = LocalStack.data() + LocalBase;
    for (const auto &CI : DF.ConstInits)
      Rg[CI.Slot] = CI.Val;
    for (uint32_t I = 0; I != DF.NumArgs; ++I)
      Rg[I] = Args[I];
    // Frame-local memory does carry defined initial values.
    for (const auto &L : DF.Locals)
      std::fill_n(Lc + L.Off, L.Size, L.Init);
    return execLoop(DF, FS, Base, LocalBase, RetVal, Depth, 0,
                    DF.Blocks[0].First, /*Resume=*/false);
  }

  /// The dispatch loop over an already-pushed frame. A fresh call enters
  /// at block 0; a native deopt re-enters mid-block at \p StartIdx with
  /// \p Resume set — the block counter and every instruction before
  /// StartIdx were already accounted by the compiled code, so the resume
  /// path skips the block preamble and starts with per-instruction fuel.
  bool execLoop(const DecodedFunction &DF, FnState &FS, size_t Base,
                size_t LocalBase, int64_t &RetVal, unsigned Depth,
                uint32_t StartBI, uint32_t StartIdx, bool Resume) {
    if (PhiScratch.size() < DF.MaxPhiCopies)
      PhiScratch.resize(DF.MaxPhiCopies);
    int64_t *Rg = RegStack.data() + Base;
    int64_t *Lc = LocalStack.data() + LocalBase;
    DynamicCounts &Cnt = R.Counts;
    auto Wrap = [](uint64_t X) { return static_cast<int64_t>(X); };
    auto U = [](int64_t X) { return static_cast<uint64_t>(X); };

    uint64_t Prepaid = 0;
    uint32_t BI = StartBI;
    const BInst *IP = nullptr;
    const size_t NB = DF.Blocks.size();

    // Taking edge E: bump its counter, run its pre-resolved phi moves with
    // parallel-copy semantics (gather, then scatter), move to the target.
    auto TakeEdge = [&](int32_t EI) {
      const BEdge &E = DF.Edges[EI];
      ++FS.Cnt[NB + E.Id];
      const uint32_t N = E.CopyEnd - E.CopyBegin;
      if (N) {
        const PhiCopy *C = DF.PhiCopies.data() + E.CopyBegin;
        for (uint32_t I = 0; I != N; ++I)
          PhiScratch[I] = Rg[C[I].Src];
        for (uint32_t I = 0; I != N; ++I)
          Rg[C[I].Dst] = PhiScratch[I];
      }
      BI = E.To;
    };

    if (Resume) {
      // Deopt re-entry: the compiled code already counted this block and
      // every instruction before StartIdx; pay fuel per instruction from
      // here (Prepaid == 0) so exhaustion fires exactly where the JIT's
      // per-instruction ledger says it must.
      IP = DF.Code.data() + StartIdx;
      goto Dispatch;
    }

  NextBlock: {
    const BBlock &Blk = DF.Blocks[BI];
    ++FS.Cnt[BI];
    // Bulk fuel charge for the block's leading segment. When fuel is too
    // low for the whole segment, fall back to paying per instruction so
    // the exhaustion trap fires at exactly the walker's instruction.
    if (FuelLeft >= Blk.SegCost) {
      FuelLeft -= Blk.SegCost;
      Prepaid = Blk.SegCost;
    }
    IP = DF.Code.data() + Blk.First;
  }
  Dispatch:
    for (;;) {
      const BInst &X = *IP++;
      if (Prepaid)
        --Prepaid;
      else if (FuelLeft == 0)
        return trap("out of fuel (infinite loop?)");
      else
        --FuelLeft;
      ++Cnt.Instructions;

      switch (X.Op) {
      case BOp::Add:
        Rg[X.Dst] = Wrap(U(Rg[X.A]) + U(Rg[X.B]));
        break;
      case BOp::Sub:
        Rg[X.Dst] = Wrap(U(Rg[X.A]) - U(Rg[X.B]));
        break;
      case BOp::Mul:
        Rg[X.Dst] = Wrap(U(Rg[X.A]) * U(Rg[X.B]));
        break;
      case BOp::Div:
        if (Rg[X.B] == 0)
          return trap("division by zero");
        Rg[X.Dst] = Rg[X.A] / Rg[X.B];
        break;
      case BOp::Rem:
        if (Rg[X.B] == 0)
          return trap("remainder by zero");
        Rg[X.Dst] = Rg[X.A] % Rg[X.B];
        break;
      case BOp::And:
        Rg[X.Dst] = Rg[X.A] & Rg[X.B];
        break;
      case BOp::Or:
        Rg[X.Dst] = Rg[X.A] | Rg[X.B];
        break;
      case BOp::Xor:
        Rg[X.Dst] = Rg[X.A] ^ Rg[X.B];
        break;
      case BOp::Shl:
        Rg[X.Dst] = Wrap(U(Rg[X.A]) << (Rg[X.B] & 63));
        break;
      case BOp::Shr:
        Rg[X.Dst] = Rg[X.A] >> (Rg[X.B] & 63);
        break;
      case BOp::CmpEQ:
        Rg[X.Dst] = Rg[X.A] == Rg[X.B];
        break;
      case BOp::CmpNE:
        Rg[X.Dst] = Rg[X.A] != Rg[X.B];
        break;
      case BOp::CmpLT:
        Rg[X.Dst] = Rg[X.A] < Rg[X.B];
        break;
      case BOp::CmpLE:
        Rg[X.Dst] = Rg[X.A] <= Rg[X.B];
        break;
      case BOp::CmpGT:
        Rg[X.Dst] = Rg[X.A] > Rg[X.B];
        break;
      case BOp::CmpGE:
        Rg[X.Dst] = Rg[X.A] >= Rg[X.B];
        break;
      case BOp::Copy:
        ++Cnt.Copies;
        Rg[X.Dst] = Rg[X.A];
        break;
      case BOp::Load:
        ++Cnt.SingletonLoads;
        Rg[X.Dst] = Mem.read(Mem.baseOfId(X.Obj));
        break;
      case BOp::Store:
        ++Cnt.SingletonStores;
        Mem.write(Mem.baseOfId(X.Obj), Rg[X.A]);
        break;
      case BOp::LoadLocal:
        ++Cnt.SingletonLoads;
        Rg[X.Dst] = Lc[X.Obj];
        break;
      case BOp::StoreLocal:
        ++Cnt.SingletonStores;
        Lc[X.Obj] = Rg[X.A];
        break;
      case BOp::AddrOf:
        Rg[X.Dst] = static_cast<int64_t>(Mem.baseOfId(X.Obj));
        break;
      case BOp::PtrLoad: {
        ++Cnt.AliasedLoads;
        uint64_t Addr = U(Rg[X.A]);
        if (!Mem.validAddress(Addr))
          return trap("wild pointer read");
        Rg[X.Dst] = Mem.read(Addr);
        break;
      }
      case BOp::PtrStore: {
        ++Cnt.AliasedStores;
        uint64_t Addr = U(Rg[X.A]);
        if (!Mem.validAddress(Addr))
          return trap("wild pointer write");
        Mem.write(Addr, Rg[X.B]);
        break;
      }
      case BOp::ArrayLoad: {
        ++Cnt.AliasedLoads;
        uint64_t Idx = U(Rg[X.A]);
        if (Idx >= X.Size)
          return trap("out-of-bounds read of " + X.MObj->name());
        Rg[X.Dst] = Mem.read(Mem.baseOfId(X.Obj) + Idx);
        break;
      }
      case BOp::ArrayStore: {
        ++Cnt.AliasedStores;
        uint64_t Idx = U(Rg[X.A]);
        if (Idx >= X.Size)
          return trap("out-of-bounds write of " + X.MObj->name());
        Mem.write(Mem.baseOfId(X.Obj) + Idx, Rg[X.B]);
        break;
      }
      case BOp::ArrayLoadLocal: {
        ++Cnt.AliasedLoads;
        uint64_t Idx = U(Rg[X.A]);
        if (Idx >= X.Size)
          return trap("out-of-bounds read of " + X.MObj->name());
        Rg[X.Dst] = Lc[X.Obj + Idx];
        break;
      }
      case BOp::ArrayStoreLocal: {
        ++Cnt.AliasedStores;
        uint64_t Idx = U(Rg[X.A]);
        if (Idx >= X.Size)
          return trap("out-of-bounds write of " + X.MObj->name());
        Lc[X.Obj + Idx] = Rg[X.B];
        break;
      }
      case BOp::Call: {
        Function &Callee = *DF.Callees[X.T0];
        if (Depth >= 400)
          return trap("call stack overflow in " + Callee.name());
        // Resolve the callee's state once per call site per run; later
        // executions skip the States hash lookup.
        FnState *CS = FS.CalleeStates[X.T0];
        if (!CS)
          CS = FS.CalleeStates[X.T0] = &stateFor(Callee);
        const uint32_t NA = X.ArgsEnd - X.ArgsBegin;
        // Stage arguments on the shared stack (no per-call allocation);
        // the callee copies them into its frame before pushing any of its
        // own, so the span stays valid exactly long enough.
        const size_t AB = ArgStack.size();
        ArgStack.resize(AB + NA);
        for (uint32_t I = 0; I != NA; ++I)
          ArgStack[AB + I] = Rg[DF.CallArgSlots[X.ArgsBegin + I]];
        int64_t Out = 0;
        bool CallOk;
        const DecodedFunction &CDF = *CS->DF;
        if (!CDF.NeedsWalk) {
          if (CDF.Empty)
            return trap("call to empty function " + Callee.name());
          if (NA != CDF.NumArgs)
            return trap("arity mismatch calling " + Callee.name());
          CallOk =
              dispatchDecoded(CDF, *CS, ArgStack.data() + AB, Out, Depth + 1);
        } else {
          ++R.Interp.WalkFallbackCalls;
          ++NumWalkFallbackCalls;
          CallOk = callWalk(Callee, ArgStack.data() + AB, NA, Out, Depth + 1);
        }
        ArgStack.resize(AB);
        if (!CallOk)
          return false;
        // The callee may have grown the shared arenas; re-anchor.
        Rg = RegStack.data() + Base;
        Lc = LocalStack.data() + LocalBase;
        if (X.Dst >= 0)
          Rg[X.Dst] = Out;
        // Charge the segment that resumes after the call.
        if (FuelLeft >= X.ResumeCost) {
          FuelLeft -= X.ResumeCost;
          Prepaid = X.ResumeCost;
        }
        break;
      }
      case BOp::Print:
        R.Output.push_back(Rg[X.A]);
        break;
      case BOp::Jmp:
        TakeEdge(X.T0);
        goto NextBlock;
      case BOp::JmpIf:
        TakeEdge(Rg[X.A] != 0 ? X.T0 : X.T1);
        goto NextBlock;
      case BOp::Ret:
        RetVal = X.A >= 0 ? Rg[X.A] : 0;
        RegTop = Base;
        LocalTop = LocalBase;
        return true;
      case BOp::Trap:
        return trap(DF.TrapMsgs[X.T0]);
      }
    }
  }

  //===-- Reference tree-walker --------------------------------------------===

  /// Checked register read: traps on use of a never-written register
  /// (use-before-def). Constants and UndefValue always read.
  bool readReg(const Frame &Fr, const Value *V, int64_t &Out) {
    if (Fr.get(V, Out))
      return true;
    return trap("use of undefined value " + V->referenceString());
  }

  /// Executes \p F in the walker; the result lands in \p RetVal. Returns
  /// false on trap.
  bool callWalk(Function &F, const int64_t *Args, size_t NArgs,
                int64_t &RetVal, unsigned Depth) {
    if (F.empty())
      return trap("call to empty function " + F.name());
    if (NArgs != F.numArgs())
      return trap("arity mismatch calling " + F.name());

    Frame Fr;
    // Frame-local storage for non-address-taken locals that survived in
    // memory form (normally none after mem2reg, but raw IR may have them).
    std::unordered_map<const MemoryObject *, std::vector<int64_t>> LocalMem;
    for (const auto &L : F.locals())
      if (!L->isAddressTaken())
        LocalMem[L.get()].assign(L->size(), L->initialValue());

    for (unsigned I = 0; I != F.numArgs(); ++I)
      Fr.set(F.arg(I), Args[I]);

    auto readObject = [&](const MemoryObject *Obj, uint64_t Off,
                          int64_t &Out) {
      if (Off >= Obj->size())
        return trap("out-of-bounds read of " + Obj->name());
      if (Mem.knows(*Obj)) {
        Out = Mem.read(Mem.base(*Obj) + Off);
        return true;
      }
      Out = LocalMem[Obj][Off];
      return true;
    };
    auto writeObject = [&](const MemoryObject *Obj, uint64_t Off, int64_t V) {
      if (Off >= Obj->size())
        return trap("out-of-bounds write of " + Obj->name());
      if (Mem.knows(*Obj))
        Mem.write(Mem.base(*Obj) + Off, V);
      else
        LocalMem[Obj][Off] = V;
      return true;
    };

    BasicBlock *BB = F.entry();
    BasicBlock *PrevBB = nullptr;
    while (true) {
      ++R.BlockCounts[BB];
      if (PrevBB)
        ++R.EdgeCounts[PrevBB][BB];

      // Phi semantics: all phis in the block read their incoming values
      // simultaneously on entry.
      std::vector<std::pair<const Value *, int64_t>> PhiVals;
      for (auto &I : *BB) {
        if (auto *P = dyn_cast<PhiInst>(I.get())) {
          assert(PrevBB && "phi in entry block");
          int64_t V;
          if (!readReg(Fr, P->incomingValueFor(PrevBB), V))
            return false;
          PhiVals.emplace_back(P, V);
        } else if (!isa<MemPhiInst>(I.get())) {
          break;
        }
      }
      for (auto &[P, V] : PhiVals)
        Fr.set(P, V);

      for (auto &IPt : *BB) {
        Instruction *I = IPt.get();
        if (isa<PhiInst>(I) || isa<MemPhiInst>(I) || isa<DummyLoadInst>(I))
          continue;
        if (FuelLeft-- == 0)
          return trap("out of fuel (infinite loop?)");
        ++R.Counts.Instructions;

        switch (I->kind()) {
        case Value::Kind::BinOp: {
          auto *B = cast<BinOpInst>(I);
          int64_t L, Rv, Out = 0;
          if (!readReg(Fr, B->lhs(), L) || !readReg(Fr, B->rhs(), Rv))
            return false;
          // Wrapping arithmetic through uint64_t: random workloads may
          // overflow, which must stay well defined.
          auto Wrap = [](uint64_t X) { return static_cast<int64_t>(X); };
          switch (B->op()) {
          case BinOpKind::Add:
            Out = Wrap(static_cast<uint64_t>(L) + static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Sub:
            Out = Wrap(static_cast<uint64_t>(L) - static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Mul:
            Out = Wrap(static_cast<uint64_t>(L) * static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Div:
            if (Rv == 0)
              return trap("division by zero");
            Out = L / Rv;
            break;
          case BinOpKind::Rem:
            if (Rv == 0)
              return trap("remainder by zero");
            Out = L % Rv;
            break;
          case BinOpKind::And: Out = L & Rv; break;
          case BinOpKind::Or: Out = L | Rv; break;
          case BinOpKind::Xor: Out = L ^ Rv; break;
          case BinOpKind::Shl:
            Out = Wrap(static_cast<uint64_t>(L) << (Rv & 63));
            break;
          case BinOpKind::Shr: Out = L >> (Rv & 63); break;
          case BinOpKind::CmpEQ: Out = L == Rv; break;
          case BinOpKind::CmpNE: Out = L != Rv; break;
          case BinOpKind::CmpLT: Out = L < Rv; break;
          case BinOpKind::CmpLE: Out = L <= Rv; break;
          case BinOpKind::CmpGT: Out = L > Rv; break;
          case BinOpKind::CmpGE: Out = L >= Rv; break;
          }
          Fr.set(B, Out);
          break;
        }
        case Value::Kind::Copy: {
          ++R.Counts.Copies;
          int64_t V;
          if (!readReg(Fr, cast<CopyInst>(I)->source(), V))
            return false;
          Fr.set(I, V);
          break;
        }
        case Value::Kind::Load: {
          auto *L = cast<LoadInst>(I);
          ++R.Counts.SingletonLoads;
          int64_t V;
          if (!readObject(L->object(), 0, V))
            return false;
          Fr.set(L, V);
          break;
        }
        case Value::Kind::Store: {
          auto *S = cast<StoreInst>(I);
          ++R.Counts.SingletonStores;
          int64_t V;
          if (!readReg(Fr, S->storedValue(), V))
            return false;
          if (!writeObject(S->object(), 0, V))
            return false;
          break;
        }
        case Value::Kind::AddrOf: {
          auto *A = cast<AddrOfInst>(I);
          if (!Mem.knows(*A->object()))
            return trap("address of object without static storage: " +
                        A->object()->name());
          Fr.set(A, static_cast<int64_t>(Mem.base(*A->object())));
          break;
        }
        case Value::Kind::PtrLoad: {
          auto *P = cast<PtrLoadInst>(I);
          ++R.Counts.AliasedLoads;
          int64_t AddrV;
          if (!readReg(Fr, P->address(), AddrV))
            return false;
          uint64_t Addr = static_cast<uint64_t>(AddrV);
          if (!Mem.validAddress(Addr))
            return trap("wild pointer read");
          Fr.set(P, Mem.read(Addr));
          break;
        }
        case Value::Kind::PtrStore: {
          auto *P = cast<PtrStoreInst>(I);
          ++R.Counts.AliasedStores;
          int64_t AddrV, V;
          if (!readReg(Fr, P->address(), AddrV) ||
              !readReg(Fr, P->storedValue(), V))
            return false;
          uint64_t Addr = static_cast<uint64_t>(AddrV);
          if (!Mem.validAddress(Addr))
            return trap("wild pointer write");
          Mem.write(Addr, V);
          break;
        }
        case Value::Kind::ArrayLoad: {
          auto *A = cast<ArrayLoadInst>(I);
          ++R.Counts.AliasedLoads;
          int64_t Idx, V;
          if (!readReg(Fr, A->index(), Idx))
            return false;
          if (!readObject(A->object(), static_cast<uint64_t>(Idx), V))
            return false;
          Fr.set(A, V);
          break;
        }
        case Value::Kind::ArrayStore: {
          auto *A = cast<ArrayStoreInst>(I);
          ++R.Counts.AliasedStores;
          int64_t Idx, V;
          if (!readReg(Fr, A->index(), Idx) ||
              !readReg(Fr, A->storedValue(), V))
            return false;
          if (!writeObject(A->object(), static_cast<uint64_t>(Idx), V))
            return false;
          break;
        }
        case Value::Kind::Call: {
          auto *C = cast<CallInst>(I);
          std::vector<int64_t> CallArgs;
          CallArgs.reserve(C->operands().size());
          for (Value *A : C->operands()) {
            int64_t V;
            if (!readReg(Fr, A, V))
              return false;
            CallArgs.push_back(V);
          }
          int64_t Out = 0;
          if (!call(*C->callee(), CallArgs.data(), CallArgs.size(), Out,
                    Depth + 1))
            return false;
          if (C->type() != Type::Void)
            Fr.set(C, Out);
          break;
        }
        case Value::Kind::Print: {
          int64_t V;
          if (!readReg(Fr, cast<PrintInst>(I)->value(), V))
            return false;
          R.Output.push_back(V);
          break;
        }
        case Value::Kind::Br:
          PrevBB = BB;
          BB = cast<BrInst>(I)->target();
          break;
        case Value::Kind::CondBr: {
          auto *C = cast<CondBrInst>(I);
          int64_t V;
          if (!readReg(Fr, C->condition(), V))
            return false;
          PrevBB = BB;
          BB = V != 0 ? C->trueTarget() : C->falseTarget();
          break;
        }
        case Value::Kind::Ret: {
          auto *Rt = cast<RetInst>(I);
          if (Rt->returnValue()) {
            if (!readReg(Fr, Rt->returnValue(), RetVal))
              return false;
          } else {
            RetVal = 0;
          }
          return true;
        }
        default:
          return trap("cannot execute: " + toString(*I));
        }
        if (I->isTerminator())
          break; // continue outer loop with new BB
      }
      if (!BB->terminator())
        return trap("fell off the end of block " + BB->name());
    }
  }
};

} // namespace

ExecutionResult Interpreter::run(const std::string &EntryName,
                                 const std::vector<int64_t> &Args) {
  ExecutionResult R;
  R.Interp.Engine = Engine;
  Function *Entry = M.getFunction(EntryName);
  if (!Entry) {
    R.Error = "no function named " + EntryName;
    return R;
  }
  double T0 = monotonicSeconds();
  TraceSpan Span;
  if (trace::enabled())
    Span.begin("interp", "exec:" + EntryName);
  ExecEngine E(M, Fuel, R, Engine, AM, JitThreshold);
  int64_t Ret = 0;
  R.Ok = true;
  if (E.call(*Entry, Args.data(), Args.size(), Ret, 0))
    R.ExitValue = Ret;
  E.finish();
  Span.end();
  if (trace::enabled())
    trace::counter("interp", "interp-instructions", "instructions",
                   static_cast<int64_t>(R.Counts.Instructions));
  R.Interp.ExecSeconds = monotonicSeconds() - T0;
  ++NumExecutions;
  switch (Engine) {
  case InterpEngine::Bytecode:
    ++NumBytecodeRuns;
    break;
  case InterpEngine::Native:
    ++NumNativeRuns;
    break;
  case InterpEngine::Walk:
    ++NumWalkRuns;
    break;
  }
  NumInstsExecuted += R.Counts.Instructions;
  ExecMicros += static_cast<uint64_t>(R.Interp.ExecSeconds * 1e6);
  return R;
}
