//===- interp/Interpreter.cpp - IR interpreter -----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include <unordered_map>

using namespace srp;

namespace {

/// Flat memory image: every object gets a contiguous range of cells;
/// pointers are absolute cell indices.
class MemoryImage {
  std::unordered_map<unsigned, uint64_t> BaseOfObject; ///< object id -> base
  std::vector<int64_t> Cells;
  std::vector<const MemoryObject *> Objects;

public:
  void add(const MemoryObject &Obj) {
    BaseOfObject[Obj.id()] = Cells.size();
    Objects.push_back(&Obj);
    for (unsigned I = 0; I != Obj.size(); ++I)
      Cells.push_back(I == 0 ? Obj.initialValue() : 0);
  }

  bool knows(const MemoryObject &Obj) const {
    return BaseOfObject.count(Obj.id()) != 0;
  }

  uint64_t base(const MemoryObject &Obj) const {
    return BaseOfObject.at(Obj.id());
  }

  bool validAddress(uint64_t Addr) const { return Addr < Cells.size(); }

  int64_t read(uint64_t Addr) const { return Cells[Addr]; }
  void write(uint64_t Addr, int64_t V) { Cells[Addr] = V; }

  const std::vector<const MemoryObject *> &objects() const { return Objects; }
};

class Frame {
public:
  std::unordered_map<const Value *, int64_t> Regs;

  int64_t get(const Value *V) const {
    if (auto *C = dyn_cast<ConstantInt>(V))
      return C->value();
    if (isa<UndefValue>(V))
      return 0; // deterministic "undefined"
    auto It = Regs.find(V);
    return It == Regs.end() ? 0 : It->second;
  }
  void set(const Value *V, int64_t X) { Regs[V] = X; }
};

class Engine {
  Module &M;
  uint64_t FuelLeft;
  ExecutionResult &R;
  MemoryImage Mem;

public:
  Engine(Module &M, uint64_t Fuel, ExecutionResult &R)
      : M(M), FuelLeft(Fuel), R(R) {
    for (const auto &G : M.globals())
      Mem.add(*G);
    // Address-taken locals get static storage (single activation).
    for (const auto &F : M.functions())
      for (const auto &L : F->locals())
        if (L->isAddressTaken())
          Mem.add(*L);
  }

  bool trap(const std::string &Msg) {
    R.Ok = false;
    R.Error = Msg;
    return false;
  }

  /// Executes \p F; the result lands in \p RetVal. Returns false on trap.
  bool call(Function &F, const std::vector<int64_t> &Args, int64_t &RetVal,
            unsigned Depth) {
    if (Depth > 400)
      return trap("call stack overflow in " + F.name());
    if (F.empty())
      return trap("call to empty function " + F.name());
    if (Args.size() != F.numArgs())
      return trap("arity mismatch calling " + F.name());

    Frame Fr;
    // Frame-local storage for non-address-taken locals that survived in
    // memory form (normally none after mem2reg, but raw IR may have them).
    std::unordered_map<const MemoryObject *, std::vector<int64_t>> LocalMem;
    for (const auto &L : F.locals())
      if (!L->isAddressTaken())
        LocalMem[L.get()].assign(L->size(), L->initialValue());

    for (unsigned I = 0; I != F.numArgs(); ++I)
      Fr.set(F.arg(I), Args[I]);

    auto readObject = [&](const MemoryObject *Obj, uint64_t Off,
                          int64_t &Out) {
      if (Off >= Obj->size())
        return trap("out-of-bounds read of " + Obj->name());
      if (Mem.knows(*Obj)) {
        Out = Mem.read(Mem.base(*Obj) + Off);
        return true;
      }
      Out = LocalMem[Obj][Off];
      return true;
    };
    auto writeObject = [&](const MemoryObject *Obj, uint64_t Off, int64_t V) {
      if (Off >= Obj->size())
        return trap("out-of-bounds write of " + Obj->name());
      if (Mem.knows(*Obj))
        Mem.write(Mem.base(*Obj) + Off, V);
      else
        LocalMem[Obj][Off] = V;
      return true;
    };

    BasicBlock *BB = F.entry();
    BasicBlock *PrevBB = nullptr;
    while (true) {
      ++R.BlockCounts[BB];
      if (PrevBB)
        ++R.EdgeCounts[PrevBB][BB];

      // Phi semantics: all phis in the block read their incoming values
      // simultaneously on entry.
      std::vector<std::pair<const Value *, int64_t>> PhiVals;
      for (auto &I : *BB) {
        if (auto *P = dyn_cast<PhiInst>(I.get())) {
          assert(PrevBB && "phi in entry block");
          PhiVals.emplace_back(P, Fr.get(P->incomingValueFor(PrevBB)));
        } else if (!isa<MemPhiInst>(I.get())) {
          break;
        }
      }
      for (auto &[P, V] : PhiVals)
        Fr.set(P, V);

      for (auto &IP : *BB) {
        Instruction *I = IP.get();
        if (isa<PhiInst>(I) || isa<MemPhiInst>(I) || isa<DummyLoadInst>(I))
          continue;
        if (FuelLeft-- == 0)
          return trap("out of fuel (infinite loop?)");
        ++R.Counts.Instructions;

        switch (I->kind()) {
        case Value::Kind::BinOp: {
          auto *B = cast<BinOpInst>(I);
          int64_t L = Fr.get(B->lhs()), Rv = Fr.get(B->rhs()), Out = 0;
          // Wrapping arithmetic through uint64_t: random workloads may
          // overflow, which must stay well defined.
          auto Wrap = [](uint64_t X) { return static_cast<int64_t>(X); };
          switch (B->op()) {
          case BinOpKind::Add:
            Out = Wrap(static_cast<uint64_t>(L) + static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Sub:
            Out = Wrap(static_cast<uint64_t>(L) - static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Mul:
            Out = Wrap(static_cast<uint64_t>(L) * static_cast<uint64_t>(Rv));
            break;
          case BinOpKind::Div:
            if (Rv == 0)
              return trap("division by zero");
            Out = L / Rv;
            break;
          case BinOpKind::Rem:
            if (Rv == 0)
              return trap("remainder by zero");
            Out = L % Rv;
            break;
          case BinOpKind::And: Out = L & Rv; break;
          case BinOpKind::Or: Out = L | Rv; break;
          case BinOpKind::Xor: Out = L ^ Rv; break;
          case BinOpKind::Shl:
            Out = Wrap(static_cast<uint64_t>(L) << (Rv & 63));
            break;
          case BinOpKind::Shr: Out = L >> (Rv & 63); break;
          case BinOpKind::CmpEQ: Out = L == Rv; break;
          case BinOpKind::CmpNE: Out = L != Rv; break;
          case BinOpKind::CmpLT: Out = L < Rv; break;
          case BinOpKind::CmpLE: Out = L <= Rv; break;
          case BinOpKind::CmpGT: Out = L > Rv; break;
          case BinOpKind::CmpGE: Out = L >= Rv; break;
          }
          Fr.set(B, Out);
          break;
        }
        case Value::Kind::Copy:
          ++R.Counts.Copies;
          Fr.set(I, Fr.get(cast<CopyInst>(I)->source()));
          break;
        case Value::Kind::Load: {
          auto *L = cast<LoadInst>(I);
          ++R.Counts.SingletonLoads;
          int64_t V;
          if (!readObject(L->object(), 0, V))
            return false;
          Fr.set(L, V);
          break;
        }
        case Value::Kind::Store: {
          auto *S = cast<StoreInst>(I);
          ++R.Counts.SingletonStores;
          if (!writeObject(S->object(), 0, Fr.get(S->storedValue())))
            return false;
          break;
        }
        case Value::Kind::AddrOf: {
          auto *A = cast<AddrOfInst>(I);
          if (!Mem.knows(*A->object()))
            return trap("address of object without static storage: " +
                        A->object()->name());
          Fr.set(A, static_cast<int64_t>(Mem.base(*A->object())));
          break;
        }
        case Value::Kind::PtrLoad: {
          auto *P = cast<PtrLoadInst>(I);
          ++R.Counts.AliasedLoads;
          uint64_t Addr = static_cast<uint64_t>(Fr.get(P->address()));
          if (!Mem.validAddress(Addr))
            return trap("wild pointer read");
          Fr.set(P, Mem.read(Addr));
          break;
        }
        case Value::Kind::PtrStore: {
          auto *P = cast<PtrStoreInst>(I);
          ++R.Counts.AliasedStores;
          uint64_t Addr = static_cast<uint64_t>(Fr.get(P->address()));
          if (!Mem.validAddress(Addr))
            return trap("wild pointer write");
          Mem.write(Addr, Fr.get(P->storedValue()));
          break;
        }
        case Value::Kind::ArrayLoad: {
          auto *A = cast<ArrayLoadInst>(I);
          ++R.Counts.AliasedLoads;
          int64_t V;
          if (!readObject(A->object(),
                          static_cast<uint64_t>(Fr.get(A->index())), V))
            return false;
          Fr.set(A, V);
          break;
        }
        case Value::Kind::ArrayStore: {
          auto *A = cast<ArrayStoreInst>(I);
          ++R.Counts.AliasedStores;
          if (!writeObject(A->object(),
                           static_cast<uint64_t>(Fr.get(A->index())),
                           Fr.get(A->storedValue())))
            return false;
          break;
        }
        case Value::Kind::Call: {
          auto *C = cast<CallInst>(I);
          std::vector<int64_t> CallArgs;
          for (Value *A : C->operands())
            CallArgs.push_back(Fr.get(A));
          int64_t Out = 0;
          if (!call(*C->callee(), CallArgs, Out, Depth + 1))
            return false;
          if (C->type() != Type::Void)
            Fr.set(C, Out);
          break;
        }
        case Value::Kind::Print:
          R.Output.push_back(Fr.get(cast<PrintInst>(I)->value()));
          break;
        case Value::Kind::Br:
          PrevBB = BB;
          BB = cast<BrInst>(I)->target();
          break;
        case Value::Kind::CondBr: {
          auto *C = cast<CondBrInst>(I);
          PrevBB = BB;
          BB = Fr.get(C->condition()) != 0 ? C->trueTarget()
                                           : C->falseTarget();
          break;
        }
        case Value::Kind::Ret: {
          auto *Rt = cast<RetInst>(I);
          RetVal = Rt->returnValue() ? Fr.get(Rt->returnValue()) : 0;
          return true;
        }
        default:
          return trap("cannot execute: " + toString(*I));
        }
        if (I->isTerminator())
          break; // continue outer loop with new BB
      }
      if (!BB->terminator())
        return trap("fell off the end of block " + BB->name());
    }
  }

  void captureFinalMemory() {
    for (const MemoryObject *Obj : Mem.objects()) {
      // Only module-scope memory is observable after exit; locals (even
      // address-taken ones with static storage) are dead, and dead-store
      // elimination may legitimately leave different garbage in them.
      if (Obj->owner())
        continue;
      std::vector<int64_t> Cells(Obj->size());
      for (unsigned I = 0; I != Obj->size(); ++I)
        Cells[I] = Mem.read(Mem.base(*Obj) + I);
      R.FinalMemory[Obj->id()] = std::move(Cells);
    }
  }
};

} // namespace

namespace {
SRP_STATISTIC(NumExecutions, "interp", "runs",
              "Interpreter executions (profile + measurement)");
SRP_STATISTIC(NumInstsExecuted, "interp", "instructions-executed",
              "Dynamic instructions interpreted across all runs");
} // namespace

ExecutionResult Interpreter::run(const std::string &EntryName,
                                 const std::vector<int64_t> &Args) {
  ExecutionResult R;
  Function *Entry = M.getFunction(EntryName);
  if (!Entry) {
    R.Error = "no function named " + EntryName;
    return R;
  }
  Engine E(M, Fuel, R);
  int64_t Ret = 0;
  R.Ok = true;
  if (E.call(*Entry, Args, Ret, 0))
    R.ExitValue = Ret;
  E.captureFinalMemory();
  ++NumExecutions;
  NumInstsExecuted += R.Counts.Instructions;
  return R;
}
