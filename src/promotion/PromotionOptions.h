//===- promotion/PromotionOptions.h - Promoter configuration ---*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables of the register promoter. Defaults reproduce the paper's
/// algorithm; the flags exist for the ablation benchmarks (web granularity,
/// boundary-cost accounting, store elimination).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_PROMOTIONOPTIONS_H
#define SRP_PROMOTION_PROMOTIONOPTIONS_H

#include <cstdint>

namespace srp {

struct PromotionOptions {
  /// Charge interval-boundary operations (preheader load, tail stores) in
  /// the profitability computation. The paper's formula (§4.3) only counts
  /// loads-added/stores-added; boundary accounting is a strictly safer
  /// tightening and is on by default. Turning it off restores the paper's
  /// exact formula.
  bool CountBoundaryOps = true;

  /// Promote per SSA web (§4.2, the paper's contribution). When false, all
  /// webs of a variable within an interval are merged into one unit,
  /// emulating promoters that treat the variable as a whole (ablation A).
  bool WebGranularity = true;

  /// Allow eliminating stores by placing compensating stores on aliased
  /// paths and interval exits (§4.4). When false, variables stay in memory
  /// and in a register simultaneously and only loads are eliminated.
  bool AllowStoreElimination = true;

  /// Minimum profit (in profile frequency units) required to promote.
  int64_t ProfitThreshold = 0;

  /// Beyond-the-paper improvement: when a compensating store is needed for
  /// an aliased load that reads a phi-defined version, §4.3's stores-added
  /// rule places stores at the phi's incoming edges — which may sit on hot
  /// paths (e.g. a loop latch) even when the aliased load itself is cold.
  /// With this flag the promoter also considers storing the materialised
  /// phi value directly before the aliased load and picks whichever
  /// placement is cheaper under the profile. Off by default (paper
  /// fidelity).
  bool DirectAliasedStores = false;
};

/// What a promotion run did; aggregated across intervals and functions.
struct PromotionStats {
  unsigned WebsConsidered = 0;
  unsigned WebsPromoted = 0;
  unsigned WebsStoreEliminated = 0;
  unsigned LoadsReplaced = 0;
  unsigned LoadsInserted = 0;
  unsigned StoresInserted = 0;
  unsigned StoresDeleted = 0;
  unsigned DummyLoadsInserted = 0;
  unsigned RegisterPhisCreated = 0;

  PromotionStats &operator+=(const PromotionStats &R) {
    WebsConsidered += R.WebsConsidered;
    WebsPromoted += R.WebsPromoted;
    WebsStoreEliminated += R.WebsStoreEliminated;
    LoadsReplaced += R.LoadsReplaced;
    LoadsInserted += R.LoadsInserted;
    StoresInserted += R.StoresInserted;
    StoresDeleted += R.StoresDeleted;
    DummyLoadsInserted += R.DummyLoadsInserted;
    RegisterPhisCreated += R.RegisterPhisCreated;
    return *this;
  }
};

} // namespace srp

#endif // SRP_PROMOTION_PROMOTIONOPTIONS_H
