//===- promotion/SuperblockPromotion.h - Superblock migration --*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline in the style of the IMPACT compiler's global variable
/// migration ([Mah92], the paper's §6): profile-driven and loop based,
/// but scoped to the *superblock* — the most frequently executed trace
/// through the loop. Function calls and pointer references on rarely
/// executed paths fall outside the trace and do not block promotion
/// (unlike the Lu-Cooper-style baseline); calls on the trace itself do.
///
/// Promotion of a variable in a loop requires:
///   - every singleton access of it inside the loop lies on the trace,
///   - no instruction on the trace may alias it.
/// The variable then lives in a compiler temporary along the trace, with
/// memory synchronised on the trace's side exits and refreshed on cold
/// re-entries to the loop header. A final mem2reg turns the temporaries
/// into registers.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_SUPERBLOCKPROMOTION_H
#define SRP_PROMOTION_SUPERBLOCKPROMOTION_H

namespace srp {

class AnalysisManager;
class Function;
class ProfileInfo;

struct SuperblockStats {
  unsigned TracesFormed = 0;
  unsigned VariablesPromoted = 0;
  unsigned BlockedOnTraceAlias = 0;
  unsigned BlockedOffTraceRef = 0;

  SuperblockStats &operator+=(const SuperblockStats &R) {
    TracesFormed += R.TracesFormed;
    VariablesPromoted += R.VariablesPromoted;
    BlockedOnTraceAlias += R.BlockedOnTraceAlias;
    BlockedOffTraceRef += R.BlockedOffTraceRef;
    return *this;
  }
};

/// Runs superblock-scoped promotion on \p F using \p PI to pick each
/// loop's hot trace. Requirements as for the loop baseline: canonicalised
/// CFG, no memory SSA attached. Ends with a mem2reg round.
SuperblockStats promoteSuperblocks(Function &F, const ProfileInfo &PI);

/// Cache-aware variant: the loop list is snapshotted from the cached
/// interval tree (kept alive by the manager across the edge splits the
/// trace sync/refresh code performs), and the final mem2reg round uses
/// the freshly rebuilt dominator tree from \p AM.
SuperblockStats promoteSuperblocks(Function &F, const ProfileInfo &PI,
                                   AnalysisManager &AM);

} // namespace srp

#endif // SRP_PROMOTION_SUPERBLOCKPROMOTION_H
