//===- promotion/WebPromotion.h - Promotion of one SSA web -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// promoteInWeb (paper §4.3-§4.4, Fig. 4-6): profitability analysis based
/// on the web's phi structure (loads-added / stores-added), then the
/// transformation: value copies after stores (vrMap), loads at phi leaves,
/// load-to-copy replacement through materializeStoreValue, optional store
/// elimination with compensating stores before aliased loads and at
/// interval tails, incremental SSA update, and dummy-aliased-load
/// summarisation for the parent interval.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_WEBPROMOTION_H
#define SRP_PROMOTION_WEBPROMOTION_H

#include "promotion/PromotionOptions.h"
#include "promotion/SSAWeb.h"
#include <cstdint>

namespace srp {

class DominatorTree;
class Function;
class ProfileInfo;

/// The profitability breakdown of one web (all values in profile frequency
/// units).
struct WebProfit {
  int64_t LoadBenefit = 0;  ///< freq of loads that become copies
  int64_t LoadCost = 0;     ///< freq of loads added at phi leaves (+preheader)
  int64_t StoreBenefit = 0; ///< freq of stores deleted
  int64_t StoreCost = 0;    ///< freq of stores added (+ interval tails)
  bool RemoveStores = false;

  int64_t loadProfit() const { return LoadBenefit - LoadCost; }
  int64_t storeProfit() const { return StoreBenefit - StoreCost; }
  int64_t total() const {
    return loadProfit() + (RemoveStores ? storeProfit() : 0);
  }
};

/// Computes the profit of promoting \p W (paper §4.3). Pure analysis.
WebProfit computeProfit(const SSAWeb &W, const ProfileInfo &PI,
                        const DominatorTree &DT,
                        const PromotionOptions &Opts);

/// promoteInWeb (paper Fig. 4). Transforms the function when profitable;
/// always leaves valid SSA. Adds the dummy aliased load summarising the web
/// for the parent interval when required. Returns what happened.
PromotionStats promoteInWeb(SSAWeb &W, Function &F, const DominatorTree &DT,
                            const ProfileInfo &PI,
                            const PromotionOptions &Opts);

} // namespace srp

#endif // SRP_PROMOTION_WEBPROMOTION_H
