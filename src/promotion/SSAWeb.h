//===- promotion/SSAWeb.h - Memory SSA webs within an interval -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction of the paper's SSA webs (§4.2): within one interval, the
/// memory SSA names of a variable are partitioned into equivalence classes
/// of the phi-connectivity relation (union-find, Fig. 3); each class — a
/// web — is the unit of promotion. Alongside the partition we collect the
/// per-web reference sets the promoter consumes: loads, stores, aliased
/// loads/stores, phis, the live-in resource, and definitions.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_SSAWEB_H
#define SRP_PROMOTION_SSAWEB_H

#include "promotion/PromotionOptions.h"
#include <memory>
#include <unordered_set>
#include <vector>

namespace srp {

class BasicBlock;
class Instruction;
class Interval;
class LoadInst;
class MemoryName;
class MemoryObject;
class MemPhiInst;
class StoreInst;

/// One SSA web: reference sets of an equivalence class of memory names
/// within an interval.
struct SSAWeb {
  MemoryObject *Obj = nullptr;
  const Interval *Iv = nullptr;
  /// Position in construction order within the interval; with the object
  /// name this labels the web ("<object>#<id>") in remarks.
  unsigned Id = 0;

  /// webResources: the names of the equivalence class.
  std::vector<MemoryName *> Resources;
  std::unordered_set<const MemoryName *> ResourceSet;

  /// Names of the web defined inside the interval (stores, chi, phis).
  std::vector<MemoryName *> DefResources;
  /// The unique resource defined in an ancestor interval, if any. Webs with
  /// several live-ins (possible only for improper intervals) are not
  /// promoted.
  MemoryName *LiveIn = nullptr;
  unsigned NumLiveIns = 0;

  /// Singleton loads/stores of the web in the interval.
  std::vector<LoadInst *> LoadRefs;
  std::vector<StoreInst *> StoreRefs;
  /// Aliased references: (instruction, the web version it uses/defines).
  /// Aliased loads are calls, pointer loads, dummy loads, and returns;
  /// aliased stores are calls and pointer stores.
  std::vector<std::pair<Instruction *, MemoryName *>> AliasedLoadRefs;
  std::vector<std::pair<Instruction *, MemoryName *>> AliasedStoreRefs;
  /// Memory phis of the web inside the interval.
  std::vector<MemPhiInst *> Phis;

  bool contains(const MemoryName *N) const { return ResourceSet.count(N); }

  bool hasAnyReference() const {
    return !LoadRefs.empty() || !StoreRefs.empty() ||
           !AliasedLoadRefs.empty() || !AliasedStoreRefs.empty();
  }

  /// True if \p N is defined by a singleton store belonging to this web.
  bool definedByWebStore(const MemoryName *N) const;
  /// True if \p N is defined by a memory phi belonging to this web (i.e.
  /// inside the interval).
  bool definedByWebPhi(const MemoryName *N) const;
  /// A leaf in the paper's sense: not defined by a phi of this web.
  bool isLeaf(const MemoryName *N) const { return !definedByWebPhi(N); }
};

/// constructSSAWebs (paper Fig. 3): partitions the memory names referenced
/// in \p Iv into webs and gathers their reference sets. Only webs of
/// promotable objects are returned. With \p Opts.WebGranularity off, all
/// names of one object in the interval fall into a single web (ablation).
std::vector<std::unique_ptr<SSAWeb>>
constructSSAWebs(const Interval &Iv, const PromotionOptions &Opts);

} // namespace srp

#endif // SRP_PROMOTION_SSAWEB_H
