//===- promotion/SuperblockPromotion.cpp - Superblock migration -----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/SuperblockPromotion.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/Intervals.h"
#include "analysis/TransValidate.h"
#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include "profile/ProfileInfo.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemorySSA.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include <algorithm>
#include <unordered_set>
#include <vector>

using namespace srp;

SRP_STATISTIC(NumTracesFormed, "superblock", "traces-formed",
              "Hot traces formed from loop profiles");
SRP_STATISTIC(NumSBVarsPromoted, "superblock", "vars-promoted",
              "Variables promoted along a superblock trace");
SRP_STATISTIC(NumBlockedTraceAlias, "superblock", "blocked-trace-alias",
              "Candidates rejected: ambiguous ref on the trace");
SRP_STATISTIC(NumBlockedOffTraceRef, "superblock", "blocked-off-trace-ref",
              "Candidates rejected: refs outside the trace");

namespace {

/// The loop's hot trace: follow the most frequent in-loop successor from
/// the header until the path would repeat a block or leave the loop.
std::vector<BasicBlock *> formTrace(const Interval &Iv,
                                    const ProfileInfo &PI) {
  std::vector<BasicBlock *> Trace;
  std::unordered_set<const BasicBlock *> OnTrace;
  BasicBlock *Cur = Iv.header();
  while (Cur && Iv.contains(Cur) && !OnTrace.count(Cur)) {
    Trace.push_back(Cur);
    OnTrace.insert(Cur);
    BasicBlock *Best = nullptr;
    uint64_t BestFreq = 0;
    for (BasicBlock *S : Cur->succs()) {
      uint64_t Freq = PI.frequency(S);
      if (!Best || Freq > BestFreq) {
        Best = S;
        BestFreq = Freq;
      }
    }
    Cur = Best;
  }
  return Trace;
}

/// Singleton refs of \p Obj inside the interval, partitioned by trace
/// membership.
struct RefSplit {
  std::vector<Instruction *> OnTrace;
  unsigned OffTrace = 0;
  bool AnyStore = false;
};

RefSplit splitRefs(const Interval &Iv,
                   const std::unordered_set<const BasicBlock *> &OnTrace,
                   const MemoryObject *Obj) {
  RefSplit R;
  for (BasicBlock *BB : Iv.blocks()) {
    for (auto &I : *BB) {
      const MemoryObject *Touched = nullptr;
      if (auto *Ld = dyn_cast<LoadInst>(I.get()))
        Touched = Ld->object();
      else if (auto *St = dyn_cast<StoreInst>(I.get()))
        Touched = St->object();
      if (Touched != Obj)
        continue;
      if (OnTrace.count(BB)) {
        R.OnTrace.push_back(I.get());
        R.AnyStore |= isa<StoreInst>(I.get());
      } else {
        ++R.OffTrace;
      }
    }
  }
  return R;
}

bool traceAliases(const std::vector<BasicBlock *> &Trace,
                  const MemoryObject *Obj, const AliasInfo &AI) {
  for (BasicBlock *BB : Trace) {
    for (auto &I : *BB) {
      if (isa<LoadInst>(I.get()) || isa<StoreInst>(I.get()))
        continue;
      auto Uses = AI.useObjects(*I);
      auto Defs = AI.defObjects(*I);
      if (std::find(Uses.begin(), Uses.end(), Obj) != Uses.end() ||
          std::find(Defs.begin(), Defs.end(), Obj) != Defs.end())
        return true;
    }
  }
  return false;
}

/// Inserts "st [obj] = ld [tmp]" on the edge From->To (splitting it).
void syncOnEdge(Function &F, BasicBlock *From, BasicBlock *To,
                MemoryObject *Obj, MemoryObject *Tmp) {
  BasicBlock *Mid = splitEdge(From, To);
  Instruction *Term = Mid->terminator();
  auto Ld = std::make_unique<LoadInst>(Tmp, F.uniqueValueName("sbst"));
  Instruction *V = Mid->insertBefore(Term, std::move(Ld));
  Mid->insertBefore(Term, std::make_unique<StoreInst>(Obj, V));
}

/// Inserts "t = ld [obj]; st [tmp] = t" on the edge From->To.
void refreshOnEdge(Function &F, BasicBlock *From, BasicBlock *To,
                   MemoryObject *Obj, MemoryObject *Tmp) {
  BasicBlock *Mid = splitEdge(From, To);
  Instruction *Term = Mid->terminator();
  auto Ld = std::make_unique<LoadInst>(Obj, F.uniqueValueName("sbld"));
  Instruction *V = Mid->insertBefore(Term, std::move(Ld));
  Mid->insertBefore(Term, std::make_unique<StoreInst>(Tmp, V));
}

void promoteInTrace(Function &F, const Interval &Iv,
                    const std::vector<BasicBlock *> &Trace,
                    const std::unordered_set<const BasicBlock *> &OnTrace,
                    MemoryObject *Obj, const RefSplit &Refs) {
  MemoryObject *Tmp =
      F.createLocal(Obj->name() + ".sb", MemoryObject::Kind::Local);

  // Preheader: tmp = obj.
  BasicBlock *PH = Iv.preheader();
  Instruction *Term = PH->terminator();
  auto Ld = std::make_unique<LoadInst>(Obj, F.uniqueValueName("sbph"));
  Instruction *V = PH->insertBefore(Term, std::move(Ld));
  PH->insertBefore(Term, std::make_unique<StoreInst>(Tmp, V));

  // Redirect the on-trace accesses.
  for (Instruction *I : Refs.OnTrace) {
    BasicBlock *BB = I->parent();
    if (auto *L = dyn_cast<LoadInst>(I)) {
      auto NewLd = std::make_unique<LoadInst>(Tmp, L->name());
      Instruction *N = BB->insertBefore(L, std::move(NewLd));
      L->replaceAllUsesWith(N);
      L->eraseFromParent();
    } else {
      auto *S = cast<StoreInst>(I);
      BB->insertBefore(S, std::make_unique<StoreInst>(Tmp, S->storedValue()));
      S->eraseFromParent();
    }
  }

  // Side exits: every edge from a trace block to a block that is not the
  // next trace block needs memory synchronised (when the trace may have
  // modified the variable). Cold re-entries into the header refresh the
  // temporary. Snapshot the edges first: splitting mutates the CFG.
  struct Edge {
    BasicBlock *From, *To;
  };
  std::vector<Edge> Syncs, Refreshes;
  for (size_t I = 0; I != Trace.size(); ++I) {
    BasicBlock *BB = Trace[I];
    BasicBlock *Next = I + 1 < Trace.size() ? Trace[I + 1] : nullptr;
    for (BasicBlock *S : BB->succs()) {
      if (S == Next)
        continue;
      // The hot back edge to the header keeps the value in the register:
      // the register is still current there and the header is on-trace.
      if (S == Iv.header() && BB == Trace.back())
        continue;
      // Jumps to other on-trace blocks keep the register current too, but
      // memory must still be synced if a store happened (the target may
      // side-exit later into code that reads memory) — a sync is always
      // safe, so treat every non-next edge uniformly.
      if (Refs.AnyStore)
        Syncs.push_back({BB, S});
    }
  }
  // Cold re-entries: every edge from an off-trace block into a trace
  // block must refresh the temporary (the cold path may have modified the
  // variable through a call or pointer).
  for (BasicBlock *BB : Trace)
    for (BasicBlock *P : BB->preds()) {
      if (OnTrace.count(P) || P == PH)
        continue;
      Refreshes.push_back({P, BB});
    }
  for (const Edge &E : Syncs)
    syncOnEdge(F, E.From, E.To, Obj, Tmp);
  for (const Edge &E : Refreshes)
    refreshOnEdge(F, E.From, E.To, Obj, Tmp);
}

/// Trace formation and promotion over a snapshotted loop list. The
/// snapshot is required because promotion splits edges, which would
/// invalidate a live traversal; intervals themselves stay usable (no
/// block of a loop is removed; new blocks are edge splits outside/inside
/// recorded before use).
SuperblockStats runOnLoops(Function &F, const std::vector<Interval *> &Loops,
                           const ProfileInfo &PI, const AliasInfo &AI) {
  SuperblockStats Stats;
  for (Interval *Iv : Loops) {
    std::vector<BasicBlock *> Trace = formTrace(*Iv, PI);
    if (Trace.empty())
      continue;
    ++Stats.TracesFormed;
    ++NumTracesFormed;
    std::unordered_set<const BasicBlock *> OnTrace(Trace.begin(),
                                                   Trace.end());

    // Candidate variables: singleton refs on the trace.
    std::vector<MemoryObject *> Candidates;
    std::unordered_set<const MemoryObject *> Seen;
    for (BasicBlock *BB : Trace)
      for (auto &I : *BB) {
        MemoryObject *Obj = nullptr;
        if (auto *Ld = dyn_cast<LoadInst>(I.get()))
          Obj = Ld->object();
        else if (auto *St = dyn_cast<StoreInst>(I.get()))
          Obj = St->object();
        if (Obj && Obj->isPromotable() && Seen.insert(Obj).second)
          Candidates.push_back(Obj);
      }

    for (MemoryObject *Obj : Candidates) {
      if (traceAliases(Trace, Obj, AI)) {
        ++Stats.BlockedOnTraceAlias;
        ++NumBlockedTraceAlias;
        if (RemarkEngine *RE = remarks::sink())
          RE->record(Remark(RemarkKind::Missed, "superblock", "TraceAlias")
                         .inFunction(F.name())
                         .inInterval(Iv->header()->name(), Iv->depth())
                         .onWeb(Obj->name())
                         .arg("trace-length", Trace.size())
                         .arg("header-freq", PI.frequency(Iv->header())));
        continue;
      }
      RefSplit Refs = splitRefs(*Iv, OnTrace, Obj);
      if (Refs.OffTrace > 0) {
        ++Stats.BlockedOffTraceRef;
        ++NumBlockedOffTraceRef;
        if (RemarkEngine *RE = remarks::sink())
          RE->record(Remark(RemarkKind::Missed, "superblock", "OffTraceRefs")
                         .inFunction(F.name())
                         .inInterval(Iv->header()->name(), Iv->depth())
                         .onWeb(Obj->name())
                         .arg("trace-length", Trace.size())
                         .arg("on-trace-refs", Refs.OnTrace.size())
                         .arg("off-trace-refs", Refs.OffTrace)
                         .arg("header-freq", PI.frequency(Iv->header())));
        continue;
      }
      promoteInTrace(F, *Iv, Trace, OnTrace, Obj, Refs);
      ++Stats.VariablesPromoted;
      ++NumSBVarsPromoted;
      validation::recordPromotedWeb(F.name(), Obj->name(), Obj->name(),
                                    "superblock");
      if (RemarkEngine *RE = remarks::sink())
        RE->record(Remark(RemarkKind::Passed, "superblock",
                          "PromotedTraceVariable")
                       .inFunction(F.name())
                       .inInterval(Iv->header()->name(), Iv->depth())
                       .onWeb(Obj->name())
                       .arg("trace-length", Trace.size())
                       .arg("on-trace-refs", Refs.OnTrace.size())
                       .arg("has-store", Refs.AnyStore)
                       .arg("header-freq", PI.frequency(Iv->header())));
    }
  }
  return Stats;
}

} // namespace

SuperblockStats srp::promoteSuperblocks(Function &F, const ProfileInfo &PI) {
  AliasInfo AI = AliasInfo::compute(F);

  DominatorTree DT(F);
  IntervalTree IT(F, DT);
  IT.assignPreheaders(DT);

  std::vector<Interval *> Loops;
  for (Interval *Iv : IT.postorder())
    if (!Iv->isRoot() && Iv->isProper())
      Loops.push_back(Iv);

  SuperblockStats Stats = runOnLoops(F, Loops, PI, AI);

  DominatorTree DT2(F);
  promoteLocalsToSSA(F, DT2);
  return Stats;
}

SuperblockStats srp::promoteSuperblocks(Function &F, const ProfileInfo &PI,
                                        AnalysisManager &AM) {
  AliasInfo AI = AliasInfo::compute(F);

  // The snapshotted Interval pointers survive the edge splits promotion
  // performs: the splits invalidate the cached tree, but the manager
  // retires (rather than frees) it, so the snapshot stays readable.
  std::vector<Interval *> Loops;
  for (Interval *Iv : AM.get<IntervalTree>(F).postorder())
    if (!Iv->isRoot() && Iv->isProper())
      Loops.push_back(Iv);

  SuperblockStats Stats = runOnLoops(F, Loops, PI, AI);

  // The splits above invalidated the cached dominators through the
  // listener; this pulls a fresh tree for the mem2reg round.
  promoteLocalsToSSA(F, AM);
  return Stats;
}
