//===- promotion/RegisterPromotion.cpp - Interval-based promoter ---------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/RegisterPromotion.h"
#include "analysis/Intervals.h"
#include "ir/Function.h"
#include "promotion/Cleanup.h"
#include "promotion/SSAWeb.h"
#include "promotion/WebPromotion.h"

using namespace srp;

PromotionStats srp::promoteRegisters(Function &F, const DominatorTree &DT,
                                     const IntervalTree &IT,
                                     const ProfileInfo &PI,
                                     const PromotionOptions &Opts) {
  PromotionStats Stats;

  // promoteInInterval (Fig. 2): children first (postorder), then the webs
  // of the current interval. Promotion in an inner interval leaves its
  // boundary loads/stores and dummy aliased loads in the parent interval,
  // where the next iteration picks them up.
  for (Interval *Iv : IT.postorder()) {
    auto Webs = constructSSAWebs(*Iv, Opts);
    for (auto &W : Webs)
      Stats += promoteInWeb(*W, F, DT, PI, Opts);
  }

  cleanupAfterPromotion(F);
  return Stats;
}
