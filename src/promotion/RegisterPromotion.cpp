//===- promotion/RegisterPromotion.cpp - Interval-based promoter ---------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/RegisterPromotion.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Intervals.h"
#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include "promotion/Cleanup.h"
#include "promotion/SSAWeb.h"
#include "promotion/WebPromotion.h"
#include "support/Remarks.h"
#include "support/Statistics.h"

using namespace srp;

namespace {
SRP_STATISTIC(NumWebsConsidered, "promotion", "webs-considered",
              "SSA webs examined for profitability");
SRP_STATISTIC(NumWebsPromoted, "promotion", "webs-promoted",
              "SSA webs moved into registers");
SRP_STATISTIC(NumLoadsDeleted, "promotion", "loads-deleted",
              "Singleton loads replaced by register reads");
SRP_STATISTIC(NumLoadsInserted, "promotion", "loads-inserted",
              "Boundary/compensation loads inserted");
SRP_STATISTIC(NumStoresDeleted, "promotion", "stores-deleted",
              "Singleton stores eliminated");
SRP_STATISTIC(NumStoresInserted, "promotion", "stores-inserted",
              "Compensating stores inserted");
SRP_STATISTIC(NumRegPhis, "promotion", "reg-phis-created",
              "Register phis created for promoted values");
} // namespace

PromotionStats srp::promoteRegisters(Function &F, const DominatorTree &DT,
                                     const IntervalTree &IT,
                                     const ProfileInfo &PI,
                                     const PromotionOptions &Opts) {
  PromotionStats Stats;

  // promoteInInterval (Fig. 2): children first (postorder), then the webs
  // of the current interval. Promotion in an inner interval leaves its
  // boundary loads/stores and dummy aliased loads in the parent interval,
  // where the next iteration picks them up.
  for (Interval *Iv : IT.postorder()) {
    auto Webs = constructSSAWebs(*Iv, Opts);
    if (RemarkEngine *RE = remarks::sink())
      RE->record(
          Remark(RemarkKind::Analysis, "promotion", "IntervalWebs")
              .inFunction(F.name())
              .inInterval(Iv->isRoot() ? "root" : Iv->header()->name(),
                          Iv->depth())
              .arg("webs", Webs.size())
              .arg("blocks", Iv->blocks().size()));
    for (auto &W : Webs)
      Stats += promoteInWeb(*W, F, DT, PI, Opts);
  }

  // The sweep can edit F even when every web was rejected (it deletes
  // pre-existing dead instructions too); report that through the IR-change
  // notifier, or the measurement run replays a stale bytecode decode and
  // the walk/bytecode engines disagree on dynamic instruction counts.
  if (cleanupAfterPromotion(F).edited())
    notifySSAEdited(F);

  NumWebsConsidered += Stats.WebsConsidered;
  NumWebsPromoted += Stats.WebsPromoted;
  NumLoadsDeleted += Stats.LoadsReplaced;
  NumLoadsInserted += Stats.LoadsInserted;
  NumStoresDeleted += Stats.StoresDeleted;
  NumStoresInserted += Stats.StoresInserted;
  NumRegPhis += Stats.RegisterPhisCreated;
  return Stats;
}

PromotionStats srp::promoteRegisters(Function &F, const ProfileInfo &PI,
                                     AnalysisManager &AM,
                                     const PromotionOptions &Opts) {
  // The pass changes no CFG edges, so the cached trees stay valid across
  // it; the in-place SSA edits it performs are reported by the updater.
  const DominatorTree &DT = AM.get<DominatorTree>(F);
  const IntervalTree &IT = AM.get<IntervalTree>(F);
  return promoteRegisters(F, DT, IT, PI, Opts);
}
