//===- promotion/LoopPromotion.h - Loop-based baseline promoter -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline promoter in the style of Lu & Cooper, "Register Promotion in C
/// Programs" (PLDI 1997), which the paper compares against in §6: loop
/// based, profile free, and any ambiguous reference (function call or
/// pointer access that may touch the variable) inside a loop precludes
/// promoting that variable in that loop. Loops are processed innermost
/// first; inner-loop boundary accesses surface in the enclosing loop and
/// may be promoted again there.
///
/// Runs on load/store IR (before memory SSA): each promoted variable is
/// redirected through a fresh compiler temporary that a final mem2reg pass
/// turns into SSA registers.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_LOOPPROMOTION_H
#define SRP_PROMOTION_LOOPPROMOTION_H

namespace srp {

class AnalysisManager;
class Function;

struct LoopPromotionStats {
  unsigned VariablesPromoted = 0;
  unsigned LoopsConsidered = 0;
  unsigned BlockedByAliases = 0;

  LoopPromotionStats &operator+=(const LoopPromotionStats &R) {
    VariablesPromoted += R.VariablesPromoted;
    LoopsConsidered += R.LoopsConsidered;
    BlockedByAliases += R.BlockedByAliases;
    return *this;
  }
};

/// Runs the baseline on \p F. The function must not have memory SSA
/// attached yet; the CFG must be canonicalised. Ends by re-running
/// mem2reg so the introduced temporaries become registers.
LoopPromotionStats promoteLoopsBaseline(Function &F);

/// Cache-aware variant: pulls the interval tree (with preheaders) and the
/// dominator tree from \p AM. \p F must have been canonicalised through
/// the manager so preheaders are assigned.
LoopPromotionStats promoteLoopsBaseline(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_PROMOTION_LOOPPROMOTION_H
