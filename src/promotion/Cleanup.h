//===- promotion/Cleanup.h - Post-promotion cleanup ------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cleanup() step of the promotion driver: removes dummy aliased loads,
/// forwards the copies introduced by load replacement (copy propagation),
/// deletes trivially dead instructions, and sweeps memory phis whose
/// targets have no remaining uses.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_CLEANUP_H
#define SRP_PROMOTION_CLEANUP_H

namespace srp {

class AnalysisManager;
class Function;

struct CleanupStats {
  unsigned DummyLoadsRemoved = 0;
  unsigned CopiesPropagated = 0;
  unsigned DeadInstructionsRemoved = 0;
  unsigned DeadMemPhisRemoved = 0;

  /// True when the sweep changed the function at all. Callers must treat
  /// this as an IR edit (cached liveness/bytecode are stale) even when the
  /// promotion that triggered the sweep itself did nothing.
  bool edited() const {
    return DummyLoadsRemoved || CopiesPropagated ||
           DeadInstructionsRemoved || DeadMemPhisRemoved;
  }
};

/// Removes every DummyLoadInst in \p F.
unsigned removeDummyLoads(Function &F);

/// Forwards copy sources into users and erases the copies.
unsigned propagateCopies(Function &F);

/// Deletes unused side-effect-free instructions until a fixpoint.
unsigned removeDeadInstructions(Function &F);

/// Deletes memory phis whose target version has no uses (cascading).
unsigned removeDeadMemPhis(Function &F);

/// Runs all of the above in order.
CleanupStats cleanupAfterPromotion(Function &F);

/// Cache-aware variant: same cleanup, but edits (if any) are reported to
/// the IR-change notifier so cached liveness goes stale.
CleanupStats cleanupAfterPromotion(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_PROMOTION_CLEANUP_H
