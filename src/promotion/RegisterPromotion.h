//===- promotion/RegisterPromotion.h - Interval-based promoter -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's driver (Fig. 2): walk the interval tree bottom-up; in each
/// interval construct the SSA webs and promote each web; finish with the
/// cleanup that removes dummy aliased loads, propagates the copies the
/// transformation introduced, and sweeps dead phis.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROMOTION_REGISTERPROMOTION_H
#define SRP_PROMOTION_REGISTERPROMOTION_H

#include "promotion/PromotionOptions.h"

namespace srp {

class AnalysisManager;
class DominatorTree;
class Function;
class IntervalTree;
class Module;
class ProfileInfo;

/// Runs interval-based register promotion on \p F. Requirements:
///  - CFG canonicalised (see analysis/CFGCanonicalize.h),
///  - memory SSA built,
///  - \p DT and \p IT current for \p F (the pass changes no CFG edges, so
///    they stay valid throughout).
PromotionStats promoteRegisters(Function &F, const DominatorTree &DT,
                                const IntervalTree &IT,
                                const ProfileInfo &PI,
                                const PromotionOptions &Opts = {});

/// Cache-aware variant: pulls the dominator and interval trees (with
/// preheaders, assigned when canonicalisation marked \p F) from \p AM.
/// The same requirements apply; memory SSA must have been built through
/// the manager or by hand beforehand.
PromotionStats promoteRegisters(Function &F, const ProfileInfo &PI,
                                AnalysisManager &AM,
                                const PromotionOptions &Opts = {});

} // namespace srp

#endif // SRP_PROMOTION_REGISTERPROMOTION_H
