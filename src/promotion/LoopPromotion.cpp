//===- promotion/LoopPromotion.cpp - Loop-based baseline promoter --------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/LoopPromotion.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/Intervals.h"
#include "analysis/TransValidate.h"
#include "ir/Function.h"
#include "ssa/Mem2Reg.h"
#include "ssa/MemorySSA.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include <algorithm>
#include <unordered_set>

namespace {
SRP_STATISTIC(NumVarsPromoted, "loop-promotion", "vars-promoted",
              "Variables promoted by the Lu-Cooper baseline");
SRP_STATISTIC(NumLoops, "loop-promotion", "loops-considered",
              "Proper loops examined by the baseline");
SRP_STATISTIC(NumBlocked, "loop-promotion", "blocked-by-aliases",
              "Variable/loop pairs rejected for ambiguous references");
} // namespace

using namespace srp;

namespace {

/// Variables the loop references through plain loads/stores.
std::vector<MemoryObject *> referencedScalars(const Interval &Iv) {
  std::vector<MemoryObject *> Result;
  std::unordered_set<const MemoryObject *> Seen;
  for (BasicBlock *BB : Iv.blocks()) {
    for (auto &I : *BB) {
      MemoryObject *Obj = nullptr;
      if (auto *Ld = dyn_cast<LoadInst>(I.get()))
        Obj = Ld->object();
      else if (auto *St = dyn_cast<StoreInst>(I.get()))
        Obj = St->object();
      if (Obj && Obj->isPromotable() && Seen.insert(Obj).second)
        Result.push_back(Obj);
    }
  }
  return Result;
}

/// The baseline's ambiguity test: any reference in the loop that may read
/// or write \p Obj other than a direct load/store of it.
bool hasAmbiguousRef(const Interval &Iv, const MemoryObject *Obj,
                     const AliasInfo &AI) {
  for (BasicBlock *BB : Iv.blocks()) {
    for (auto &I : *BB) {
      if (isa<LoadInst>(I.get()) || isa<StoreInst>(I.get()))
        continue;
      auto Uses = AI.useObjects(*I);
      auto Defs = AI.defObjects(*I);
      if (std::find(Uses.begin(), Uses.end(), Obj) != Uses.end() ||
          std::find(Defs.begin(), Defs.end(), Obj) != Defs.end())
        return true;
    }
  }
  return false;
}

void promoteInLoop(Function &F, const Interval &Iv, MemoryObject *Obj) {
  MemoryObject *Tmp = F.createLocal(Obj->name() + ".lc",
                                    MemoryObject::Kind::Local);

  // Preheader: tmp = obj.
  BasicBlock *PH = Iv.preheader();
  Instruction *Term = PH->terminator();
  auto Load = std::make_unique<LoadInst>(Obj, F.uniqueValueName("lcld"));
  Instruction *L = PH->insertBefore(Term, std::move(Load));
  PH->insertBefore(Term, std::make_unique<StoreInst>(Tmp, L));

  // Redirect the loop body accesses.
  bool AnyStore = false;
  for (BasicBlock *BB : Iv.blocks()) {
    std::vector<Instruction *> Insts;
    for (auto &I : *BB)
      Insts.push_back(I.get());
    for (Instruction *I : Insts) {
      if (auto *Ld = dyn_cast<LoadInst>(I); Ld && Ld->object() == Obj) {
        auto NewLd = std::make_unique<LoadInst>(Tmp, Ld->name());
        Instruction *N = BB->insertBefore(Ld, std::move(NewLd));
        Ld->replaceAllUsesWith(N);
        Ld->eraseFromParent();
      } else if (auto *St = dyn_cast<StoreInst>(I);
                 St && St->object() == Obj) {
        BB->insertBefore(St,
                         std::make_unique<StoreInst>(Tmp, St->storedValue()));
        St->eraseFromParent();
        AnyStore = true;
      }
    }
  }

  // Tails: obj = tmp (only when the loop may have modified it).
  if (AnyStore) {
    for (BasicBlock *Tail : Iv.tails()) {
      auto TL = std::make_unique<LoadInst>(Tmp, F.uniqueValueName("lcst"));
      Instruction *V = Tail->insertAfterPhis(std::move(TL));
      Tail->insertAfter(V, std::make_unique<StoreInst>(Obj, V));
    }
  }
}

/// The baseline proper: walks the loops of \p IT innermost-first and
/// promotes every unambiguous scalar. Only inserts instructions — the CFG
/// and the interval tree stay valid.
LoopPromotionStats runOnIntervals(Function &F, const IntervalTree &IT,
                                  const AliasInfo &AI) {
  LoopPromotionStats Stats;
  for (Interval *Iv : IT.postorder()) {
    if (Iv->isRoot() || !Iv->isProper())
      continue; // the baseline is loop based and needs a unique preheader
    ++Stats.LoopsConsidered;
    for (MemoryObject *Obj : referencedScalars(*Iv)) {
      if (hasAmbiguousRef(*Iv, Obj, AI)) {
        ++Stats.BlockedByAliases;
        if (RemarkEngine *RE = remarks::sink())
          RE->record(
              Remark(RemarkKind::Missed, "loop-promotion", "AmbiguousRef")
                  .inFunction(F.name())
                  .inInterval(Iv->header()->name(), Iv->depth())
                  .onWeb(Obj->name()));
        continue;
      }
      promoteInLoop(F, *Iv, Obj);
      ++Stats.VariablesPromoted;
      validation::recordPromotedWeb(F.name(), Obj->name(), Obj->name(),
                                    "loop-promotion");
      if (RemarkEngine *RE = remarks::sink())
        RE->record(
            Remark(RemarkKind::Passed, "loop-promotion", "PromotedVariable")
                .inFunction(F.name())
                .inInterval(Iv->header()->name(), Iv->depth())
                .onWeb(Obj->name())
                .arg("loop-blocks", Iv->blocks().size()));
    }
  }
  return Stats;
}

} // namespace

LoopPromotionStats srp::promoteLoopsBaseline(Function &F) {
  AliasInfo AI = AliasInfo::compute(F);

  DominatorTree DT(F);
  IntervalTree IT(F, DT);
  IT.assignPreheaders(DT);

  LoopPromotionStats Stats = runOnIntervals(F, IT, AI);

  // The temporaries become SSA registers.
  DT.recompute(F);
  promoteLocalsToSSA(F, DT);

  NumVarsPromoted += Stats.VariablesPromoted;
  NumLoops += Stats.LoopsConsidered;
  NumBlocked += Stats.BlockedByAliases;
  return Stats;
}

LoopPromotionStats srp::promoteLoopsBaseline(Function &F,
                                             AnalysisManager &AM) {
  AliasInfo AI = AliasInfo::compute(F);

  // The cached interval tree has preheaders when canonicalisation went
  // through the manager; promotion only inserts instructions, so the
  // trees stay valid and the final mem2reg reuses the cached dominators.
  LoopPromotionStats Stats = runOnIntervals(F, AM.get<IntervalTree>(F), AI);
  promoteLocalsToSSA(F, AM);

  NumVarsPromoted += Stats.VariablesPromoted;
  NumLoops += Stats.LoopsConsidered;
  NumBlocked += Stats.BlockedByAliases;
  return Stats;
}
