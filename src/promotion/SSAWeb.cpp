//===- promotion/SSAWeb.cpp - Memory SSA webs within an interval ---------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/SSAWeb.h"
#include "analysis/Intervals.h"
#include "ir/Function.h"
#include "support/UnionFind.h"
#include <algorithm>
#include <unordered_map>

using namespace srp;

bool SSAWeb::definedByWebStore(const MemoryName *N) const {
  const Instruction *Def = N->def();
  return Def && isa<StoreInst>(Def) && Iv->contains(Def->parent()) &&
         contains(N);
}

bool SSAWeb::definedByWebPhi(const MemoryName *N) const {
  const Instruction *Def = N->def();
  return Def && isa<MemPhiInst>(Def) && Iv->contains(Def->parent()) &&
         contains(N);
}

std::vector<std::unique_ptr<SSAWeb>>
srp::constructSSAWebs(const Interval &Iv, const PromotionOptions &Opts) {
  // Index every memory name referenced in the interval.
  std::unordered_map<MemoryName *, unsigned> IndexOf;
  std::vector<MemoryName *> Names;
  auto indexOf = [&](MemoryName *N) {
    auto [It, Inserted] = IndexOf.emplace(N, Names.size());
    if (Inserted)
      Names.push_back(N);
    return It->second;
  };

  // First pass: register all names that occur in the interval (as uses or
  // defs), in deterministic program order.
  for (BasicBlock *BB : Iv.blocks()) {
    for (auto &I : *BB) {
      for (MemoryName *N : I->memOperands())
        indexOf(N);
      for (MemoryName *N : I->memDefs())
        indexOf(N);
    }
  }

  UnionFind UF(static_cast<unsigned>(Names.size()));

  // Second pass: unite names connected by phi instructions in the interval
  // (paper Fig. 3). With web granularity disabled, unite per object
  // instead (whole-variable promotion, ablation A).
  if (Opts.WebGranularity) {
    for (BasicBlock *BB : Iv.blocks()) {
      for (auto &I : *BB) {
        auto *MP = dyn_cast<MemPhiInst>(I.get());
        if (!MP || !MP->target())
          continue;
        unsigned Rep = indexOf(MP->target());
        for (MemoryName *N : MP->memOperands())
          Rep = UF.unite(Rep, indexOf(N));
      }
    }
  } else {
    std::unordered_map<const MemoryObject *, unsigned> FirstOfObject;
    for (unsigned I = 0; I != Names.size(); ++I) {
      auto [It, Inserted] =
          FirstOfObject.emplace(Names[I]->object(), I);
      if (!Inserted)
        UF.unite(It->second, I);
    }
  }

  // Gather webs for promotable objects.
  std::unordered_map<unsigned, SSAWeb *> WebOfClass;
  std::vector<std::unique_ptr<SSAWeb>> Webs;
  auto webFor = [&](MemoryName *N) -> SSAWeb * {
    unsigned Rep = UF.find(IndexOf.at(N));
    auto It = WebOfClass.find(Rep);
    if (It != WebOfClass.end())
      return It->second;
    auto W = std::make_unique<SSAWeb>();
    W->Obj = N->object();
    W->Iv = &Iv;
    SSAWeb *Raw = W.get();
    WebOfClass.emplace(Rep, Raw);
    Webs.push_back(std::move(W));
    return Raw;
  };

  for (MemoryName *N : Names) {
    if (!N->object()->isPromotable())
      continue;
    SSAWeb *W = webFor(N);
    W->Resources.push_back(N);
    W->ResourceSet.insert(N);
  }

  // Third pass: classify the references of each web.
  for (BasicBlock *BB : Iv.blocks()) {
    for (auto &I : *BB) {
      Instruction *Inst = I.get();
      if (auto *MP = dyn_cast<MemPhiInst>(Inst)) {
        if (MP->target() && MP->object()->isPromotable())
          webFor(MP->target())->Phis.push_back(MP);
        continue;
      }
      if (auto *Ld = dyn_cast<LoadInst>(Inst)) {
        if (Ld->memUse() && Ld->object()->isPromotable())
          webFor(Ld->memUse())->LoadRefs.push_back(Ld);
        continue;
      }
      if (auto *St = dyn_cast<StoreInst>(Inst)) {
        if (St->memDefName() && St->object()->isPromotable())
          webFor(St->memDefName())->StoreRefs.push_back(St);
        continue;
      }
      // Aliased references: mu-uses are aliased loads, chi-defs aliased
      // stores.
      if (Inst->isAliasedLoad()) {
        for (MemoryName *N : Inst->memOperands())
          if (N->object()->isPromotable())
            webFor(N)->AliasedLoadRefs.emplace_back(Inst, N);
      }
      if (Inst->isAliasedStore()) {
        for (MemoryName *N : Inst->memDefs())
          if (N->object()->isPromotable())
            webFor(N)->AliasedStoreRefs.emplace_back(Inst, N);
      }
    }
  }

  // Definitions inside the interval, and the live-in resource.
  for (auto &W : Webs) {
    for (MemoryName *N : W->Resources) {
      Instruction *Def = N->def();
      bool DefinedInside = Def && Iv.contains(Def->parent());
      if (DefinedInside) {
        W->DefResources.push_back(N);
      } else {
        ++W->NumLiveIns;
        W->LiveIn = N;
      }
    }
  }

  // Drop webs that have no references at all (e.g. an object merely passing
  // through a phi chain without loads/stores/aliased refs — nothing to do).
  Webs.erase(std::remove_if(Webs.begin(), Webs.end(),
                            [](const std::unique_ptr<SSAWeb> &W) {
                              return !W->hasAnyReference() &&
                                     W->Phis.empty();
                            }),
             Webs.end());
  for (size_t I = 0; I != Webs.size(); ++I)
    Webs[I]->Id = static_cast<unsigned>(I);
  return Webs;
}
