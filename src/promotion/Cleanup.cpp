//===- promotion/Cleanup.cpp - Post-promotion cleanup --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/Cleanup.h"
#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include <unordered_set>

using namespace srp;

namespace {
SRP_STATISTIC(NumDummyLoads, "cleanup", "dummy-loads-removed",
              "Dummy aliased loads swept after promotion");
SRP_STATISTIC(NumCopies, "cleanup", "copies-propagated",
              "Copies forwarded into their users");
SRP_STATISTIC(NumDeadInsts, "cleanup", "dead-instructions-removed",
              "Dead side-effect-free instructions deleted");
SRP_STATISTIC(NumDeadMemPhis, "cleanup", "dead-mem-phis-removed",
              "Memory phis without observers deleted");
} // namespace

unsigned srp::removeDummyLoads(Function &F) {
  unsigned N = 0;
  for (BasicBlock *BB : F.blocks()) {
    std::vector<Instruction *> Dummies;
    for (auto &I : *BB)
      if (isa<DummyLoadInst>(I.get()))
        Dummies.push_back(I.get());
    for (Instruction *D : Dummies) {
      D->eraseFromParent();
      ++N;
    }
  }
  return N;
}

unsigned srp::propagateCopies(Function &F) {
  unsigned N = 0;
  // Resolve copy chains value-by-value; iterate until stable (chains may
  // point forward in program order).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      std::vector<Instruction *> Copies;
      for (auto &I : *BB)
        if (isa<CopyInst>(I.get()))
          Copies.push_back(I.get());
      for (Instruction *C : Copies) {
        Value *Src = cast<CopyInst>(C)->source();
        if (Src == C)
          continue; // degenerate self-copy; left to DCE
        C->replaceAllUsesWith(Src);
        C->eraseFromParent();
        ++N;
        Changed = true;
      }
    }
  }
  return N;
}

unsigned srp::removeDeadInstructions(Function &F) {
  unsigned N = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      std::vector<Instruction *> Dead;
      for (auto &I : *BB) {
        if (!I->isRemovableIfUnused() || I->hasUses())
          continue;
        if (isa<MemPhiInst>(I.get()))
          continue; // handled by removeDeadMemPhis (def-side liveness)
        bool DefsLive = false;
        for (MemoryName *D : I->memDefs())
          if (D->hasUses())
            DefsLive = true;
        if (DefsLive)
          continue;
        Dead.push_back(I.get());
      }
      for (Instruction *I : Dead) {
        I->eraseFromParent();
        ++N;
        Changed = true;
      }
    }
  }
  return N;
}

unsigned srp::removeDeadMemPhis(Function &F) {
  // Cycle-aware deadness: a memory phi is live iff its target is used by a
  // non-phi instruction or by another live phi. Plain "no uses" would keep
  // loop phis alive through their own back-edge operands forever.
  std::vector<MemPhiInst *> Phis;
  for (BasicBlock *BB : F.blocks())
    for (auto &I : *BB)
      if (auto *MP = dyn_cast<MemPhiInst>(I.get()))
        Phis.push_back(MP);

  std::unordered_set<const MemoryName *> Live;
  std::vector<const MemoryName *> Work;
  auto markLive = [&](const MemoryName *V) {
    if (Live.insert(V).second)
      Work.push_back(V);
  };
  for (MemPhiInst *MP : Phis) {
    if (!MP->target())
      continue;
    for (const Use &U : MP->target()->uses())
      if (!isa<MemPhiInst>(U.User))
        markLive(MP->target());
  }
  while (!Work.empty()) {
    const MemoryName *V = Work.back();
    Work.pop_back();
    if (V->def())
      if (auto *MP = dyn_cast<MemPhiInst>(V->def()))
        for (MemoryName *Op : MP->memOperands())
          markLive(Op);
  }

  unsigned N = 0;
  for (MemPhiInst *MP : Phis) {
    if (!MP->target() || !Live.count(MP->target())) {
      MP->eraseFromParent();
      ++N;
    }
  }
  F.purgeDeadMemoryNames();
  return N;
}

CleanupStats srp::cleanupAfterPromotion(Function &F) {
  CleanupStats S;
  S.DummyLoadsRemoved = removeDummyLoads(F);
  S.CopiesPropagated = propagateCopies(F);
  S.DeadInstructionsRemoved = removeDeadInstructions(F);
  S.DeadMemPhisRemoved = removeDeadMemPhis(F);
  // Phi deaths can expose more dead instructions and vice versa.
  while (true) {
    unsigned More = removeDeadInstructions(F) + removeDeadMemPhis(F);
    if (!More)
      break;
    S.DeadInstructionsRemoved += More;
  }
  NumDummyLoads += S.DummyLoadsRemoved;
  NumCopies += S.CopiesPropagated;
  NumDeadInsts += S.DeadInstructionsRemoved;
  NumDeadMemPhis += S.DeadMemPhisRemoved;
  if (RemarkEngine *RE = remarks::sink())
    RE->record(Remark(RemarkKind::Analysis, "cleanup", "PostPromotionSweep")
                   .inFunction(F.name())
                   .arg("dummy-loads-removed", S.DummyLoadsRemoved)
                   .arg("copies-propagated", S.CopiesPropagated)
                   .arg("dead-instructions-removed",
                        S.DeadInstructionsRemoved)
                   .arg("dead-mem-phis-removed", S.DeadMemPhisRemoved));
  return S;
}

CleanupStats srp::cleanupAfterPromotion(Function &F, AnalysisManager &AM) {
  (void)AM; // cleanup consumes no analyses; it only reports edits
  CleanupStats S = cleanupAfterPromotion(F);
  if (S.edited())
    notifySSAEdited(F);
  return S;
}
