//===- promotion/WebPromotion.cpp - Promotion of one SSA web -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "promotion/WebPromotion.h"
#include "analysis/Dominators.h"
#include "analysis/TransValidate.h"
#include "analysis/Intervals.h"
#include "ir/Function.h"
#include "profile/ProfileInfo.h"
#include "ssa/SSAUpdater.h"
#include "support/Remarks.h"
#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace srp;

namespace {

/// A planned insertion: a load of Version (or a store of its register
/// value) placed immediately before At.
struct PlannedOp {
  MemoryName *Version;
  Instruction *At;

  bool operator==(const PlannedOp &R) const {
    return Version == R.Version && At == R.At;
  }
};

/// Plans the loads-added set (§4.3): one load per (leaf, incoming-block)
/// pair over the phis of the web, for leaves not defined by a store of the
/// web. The load goes before the last instruction of the incoming block.
std::vector<PlannedOp> planLeafLoads(const SSAWeb &W) {
  std::vector<PlannedOp> Plan;
  auto push = [&](MemoryName *N, Instruction *At) {
    PlannedOp Op{N, At};
    if (std::find(Plan.begin(), Plan.end(), Op) == Plan.end())
      Plan.push_back(Op);
  };
  for (MemPhiInst *P : W.Phis) {
    for (unsigned I = 0, E = P->numIncoming(); I != E; ++I) {
      MemoryName *N = P->incomingName(I);
      if (!W.isLeaf(N) || W.definedByWebStore(N))
        continue;
      Instruction *Term = P->incomingBlock(I)->terminator();
      assert(Term && "incoming block without terminator");
      push(N, Term);
    }
  }
  return Plan;
}

/// Dominance pruning: drop (x, j) when (x, i) with i dominating j exists.
std::vector<PlannedOp> pruneDominated(const std::vector<PlannedOp> &Plan,
                                      const DominatorTree &DT) {
  std::vector<PlannedOp> Pruned;
  for (const PlannedOp &Op : Plan) {
    bool Dominated = false;
    for (const PlannedOp &Other : Plan) {
      if (Other.Version != Op.Version || Other.At == Op.At)
        continue;
      if (DT.dominates(Other.At, Op.At)) {
        Dominated = true;
        break;
      }
    }
    if (!Dominated)
      Pruned.push_back(Op);
  }
  return Pruned;
}

int64_t planCost(const std::vector<PlannedOp> &Plan, const ProfileInfo &PI) {
  int64_t Cost = 0;
  for (const PlannedOp &Op : Plan)
    Cost += static_cast<int64_t>(PI.frequency(Op.At));
  return Cost;
}

/// Plans the stores-added set (§4.3): a store before every aliased load
/// that directly uses a store-defined version, and a store at the end of
/// incoming block L for every store-defined operand x:L of a phi some
/// aliased load transitively depends on. Dominated duplicates of the same
/// version are pruned.
///
/// With Opts.DirectAliasedStores an alternative plan is also considered:
/// storing the materialised value immediately before each aliased load
/// (covering phi-defined versions too); the profile decides which plan is
/// cheaper.
std::vector<PlannedOp> planCompensatingStores(const SSAWeb &W,
                                              const DominatorTree &DT,
                                              const ProfileInfo &PI,
                                              const PromotionOptions &Opts) {
  std::vector<PlannedOp> Plan;
  auto push = [&](MemoryName *N, Instruction *At) {
    PlannedOp Op{N, At};
    if (std::find(Plan.begin(), Plan.end(), Op) == Plan.end())
      Plan.push_back(Op);
  };

  // Phis some aliased load depends on (transitive closure through phi
  // operands).
  std::unordered_set<const MemPhiInst *> Feeding;
  std::vector<const MemPhiInst *> Work;
  auto enqueuePhi = [&](const MemoryName *N) {
    if (!W.definedByWebPhi(N))
      return;
    const auto *MP = cast<MemPhiInst>(N->def());
    if (Feeding.insert(MP).second)
      Work.push_back(MP);
  };

  for (const auto &[Inst, Used] : W.AliasedLoadRefs) {
    if (W.definedByWebStore(Used)) {
      push(Used, Inst); // direct use of a store's version
      continue;
    }
    enqueuePhi(Used);
    // Versions defined outside the interval or by aliased stores need no
    // compensation: memory already holds their value.
  }
  while (!Work.empty()) {
    const MemPhiInst *MP = Work.back();
    Work.pop_back();
    for (unsigned I = 0, E = MP->numIncoming(); I != E; ++I) {
      MemoryName *N = MP->incomingName(I);
      if (W.definedByWebStore(N)) {
        Instruction *Term = MP->incomingBlock(I)->terminator();
        push(N, Term);
      } else {
        enqueuePhi(N);
      }
    }
  }
  std::vector<PlannedOp> PaperPlan = pruneDominated(Plan, DT);
  if (!Opts.DirectAliasedStores)
    return PaperPlan;

  // Alternative: one store of the (materialisable) used version right
  // before each aliased load.
  std::vector<PlannedOp> Direct;
  auto pushDirect = [&](MemoryName *N, Instruction *At) {
    PlannedOp Op{N, At};
    if (std::find(Direct.begin(), Direct.end(), Op) == Direct.end())
      Direct.push_back(Op);
  };
  for (const auto &[Inst, Used] : W.AliasedLoadRefs)
    if (W.definedByWebStore(Used) || W.definedByWebPhi(Used))
      pushDirect(Used, Inst);
  Direct = pruneDominated(Direct, DT);

  return planCost(Direct, PI) < planCost(PaperPlan, PI) ? Direct : PaperPlan;
}

/// The version of the web's object reaching the end of \p BB, considering
/// every definition in the function (used for tail stores and the dummy
/// load's mu-operand).
MemoryName *reachingVersionAtEnd(Function &F, const DominatorTree &DT,
                                 MemoryObject *Obj, BasicBlock *BB) {
  // Last def of Obj in BB, else walk up the dominator tree.
  for (BasicBlock *B = BB; B; B = DT.idom(B)) {
    MemoryName *Last = nullptr;
    for (auto &I : *B)
      if (MemoryName *D = I->memDefFor(Obj))
        Last = D;
    if (Last)
      return Last;
  }
  return F.entryMemoryName(Obj);
}

/// True if version \p N has any use outside interval \p Iv (loads, mu-uses,
/// or phi operands of instructions outside the interval).
bool usedOutsideInterval(const MemoryName *N, const Interval &Iv) {
  for (const Use &U : N->uses())
    if (!Iv.contains(U.User->parent()))
      return true;
  return false;
}

/// Shared state of one web's transformation.
class WebPromoter {
  SSAWeb &W;
  Function &F;
  const DominatorTree &DT;
  const PromotionOptions &Opts;
  PromotionStats Stats;

  /// vrMap: memory version -> virtual register holding its value.
  std::unordered_map<const MemoryName *, Value *> VRMap;
  /// Loads inserted at phi leaves, keyed by (version, block).
  std::map<std::pair<const MemoryName *, const BasicBlock *>, LoadInst *>
      LeafLoads;

public:
  WebPromoter(SSAWeb &W, Function &F, const DominatorTree &DT,
              const PromotionOptions &Opts)
      : W(W), F(F), DT(DT), Opts(Opts) {}

  PromotionStats takeStats() { return Stats; }

  /// initVRMap (Fig. 4): a copy t = v after every store st [x] = v of the
  /// web, with vrMap[x] = t.
  void initVRMap() {
    for (StoreInst *St : W.StoreRefs) {
      auto Copy = std::make_unique<CopyInst>(St->storedValue(),
                                             F.uniqueValueName("vr"));
      Value *T = St->parent()->insertAfter(St, std::move(Copy));
      VRMap[St->memDefName()] = T;
    }
  }

  /// insertLoadsAtPhiLeaves (Fig. 4): executes the loads-added plan.
  void insertLeafLoads(const std::vector<PlannedOp> &Plan) {
    for (const PlannedOp &Op : Plan) {
      auto Load = std::make_unique<LoadInst>(W.Obj, F.uniqueValueName("lf"));
      Load->addMemOperand(Op.Version);
      BasicBlock *BB = Op.At->parent();
      LoadInst *L =
          static_cast<LoadInst *>(BB->insertBefore(Op.At, std::move(Load)));
      LeafLoads[{Op.Version, BB}] = L;
      ++Stats.LoadsInserted;
    }
  }

  /// materializeStoreValue (Fig. 6): returns a virtual register holding the
  /// value of \p N, creating mirroring register phis as needed. \p N must
  /// be defined by a store of the web or a phi of the web (recursively).
  Value *materialize(MemoryName *N) {
    if (auto It = VRMap.find(N); It != VRMap.end())
      return It->second;
    assert(W.definedByWebPhi(N) &&
           "materialize on a version that is neither store- nor phi-defined");
    auto *MP = cast<MemPhiInst>(N->def());
    // Create the register phi first and publish it so phi cycles terminate.
    auto Phi =
        std::make_unique<PhiInst>(Type::Int, F.uniqueValueName("mat"));
    PhiInst *T =
        static_cast<PhiInst *>(MP->parent()->insertAfter(MP, std::move(Phi)));
    VRMap[N] = T;
    ++Stats.RegisterPhisCreated;
    for (unsigned I = 0, E = MP->numIncoming(); I != E; ++I) {
      MemoryName *Ni = MP->incomingName(I);
      BasicBlock *Li = MP->incomingBlock(I);
      Value *Ti = nullptr;
      if (W.isLeaf(Ni) && !W.definedByWebStore(Ni)) {
        auto It = LeafLoads.find({Ni, Li});
        assert(It != LeafLoads.end() && "missing leaf load");
        Ti = It->second;
      } else {
        Ti = materialize(Ni);
      }
      T->addIncoming(Ti, Li);
    }
    return T;
  }

  /// replaceLoadsByCopies (Fig. 5): every load whose version is defined by
  /// a store or phi of the web becomes a copy of the materialized value.
  void replaceLoadsByCopies() {
    for (LoadInst *Ld : W.LoadRefs) {
      MemoryName *N = Ld->memUse();
      if (!W.definedByWebStore(N) && !W.definedByWebPhi(N))
        continue; // live-in or chi-defined: the load stays
      Value *V = materialize(N);
      auto Copy = std::make_unique<CopyInst>(V, Ld->name());
      Instruction *C = Ld->parent()->insertBefore(Ld, std::move(Copy));
      Ld->replaceAllUsesWith(C);
      Ld->eraseFromParent();
      ++Stats.LoadsReplaced;
    }
  }

  /// Replaces every load of the web by a copy of one preheader load (the
  /// no-definitions fast path of Fig. 4).
  void replaceLoadsFromPreheaderLoad(BasicBlock *Preheader,
                                     MemoryName *LiveIn) {
    auto Load = std::make_unique<LoadInst>(W.Obj, F.uniqueValueName("ph"));
    if (LiveIn)
      Load->addMemOperand(LiveIn);
    // For a loop the load belongs at the end of the preheader; for the
    // whole-function root interval the "preheader" is the entry block and
    // the load must precede every use in it.
    Value *L = W.Iv->isRoot()
                   ? Preheader->insertAfterPhis(std::move(Load))
                   : Preheader->insertBefore(Preheader->terminator(),
                                             std::move(Load));
    ++Stats.LoadsInserted;
    for (LoadInst *Ld : W.LoadRefs) {
      auto Copy = std::make_unique<CopyInst>(L, Ld->name());
      Instruction *C = Ld->parent()->insertBefore(Ld, std::move(Copy));
      Ld->replaceAllUsesWith(C);
      Ld->eraseFromParent();
      ++Stats.LoadsReplaced;
    }
  }

  /// insertStoresForAliasedLoads + insertStoresAtIntervalTails + the
  /// incremental SSA update that deletes the now-dead original stores
  /// (Fig. 4, §4.4).
  void eliminateStores(const std::vector<PlannedOp> &StorePlan) {
    std::vector<MemoryName *> Cloned;

    // Compensating stores on aliased paths. The stored value is the
    // materialised register holding the version (a vrMap copy for
    // store-defined versions; a mirrored register phi for phi-defined
    // ones under DirectAliasedStores).
    for (const PlannedOp &Op : StorePlan) {
      Value *V = materialize(Op.Version);
      auto St = std::make_unique<StoreInst>(W.Obj, V);
      MemoryName *NewVer = F.createMemoryName(W.Obj);
      St->addMemDef(NewVer);
      Op.At->parent()->insertBefore(Op.At, std::move(St));
      Cloned.push_back(NewVer);
      ++Stats.StoresInserted;
    }

    // Stores at interval tails for live-out values. (Function returns are
    // handled by the stores-added set already: returns carry mu-uses of
    // escaping memory and therefore count as aliased loads.)
    bool AnyLiveOut = false;
    for (MemoryName *N : W.DefResources)
      if ((W.definedByWebStore(N) || W.definedByWebPhi(N)) &&
          usedOutsideInterval(N, *W.Iv))
        AnyLiveOut = true;
    if (AnyLiveOut) {
      for (const auto &[Src, Tail] : W.Iv->exitEdges()) {
        MemoryName *V = reachingVersionAtEnd(F, DT, W.Obj, Src);
        if (!W.contains(V))
          continue;
        if (!W.definedByWebStore(V) && !W.definedByWebPhi(V))
          continue; // live-in or chi: memory is already current
        Value *Reg = materialize(V);
        auto St = std::make_unique<StoreInst>(W.Obj, Reg);
        MemoryName *NewVer = F.createMemoryName(W.Obj);
        St->addMemDef(NewVer);
        Tail->insertAfterPhis(std::move(St));
        Cloned.push_back(NewVer);
        ++Stats.StoresInserted;
      }
    }

    // Incremental SSA update for the cloned definitions; its dead-def sweep
    // deletes the original stores (deleteStores of Fig. 4) and any phis
    // that died with them.
    unsigned StoresBefore = countObjectStoresInInterval();
    std::vector<MemoryName *> OldRes = W.Resources;
    updateSSAForClonedResources(F, DT, OldRes, Cloned);
    unsigned StoresAfter = countObjectStoresInInterval();
    Stats.StoresDeleted +=
        StoresBefore > StoresAfter ? StoresBefore - StoresAfter : 0;
    // The update may have destroyed original stores and phis; drop the now
    // dangling reference lists (promotion of this web is complete).
    W.StoreRefs.clear();
    W.Phis.clear();
  }

  unsigned countObjectStoresInInterval() const {
    unsigned N = 0;
    for (BasicBlock *BB : W.Iv->blocks())
      for (auto &I : *BB)
        if (auto *St = dyn_cast<StoreInst>(I.get()))
          if (St->object() == W.Obj)
            ++N;
    return N;
  }

  /// Adds the dummy aliased load summarising this web for the parent
  /// interval (Fig. 4). Placed at the end of the preheader, reading the
  /// version live there.
  void insertDummyLoad() {
    BasicBlock *PH = W.Iv->preheader();
    if (!PH || W.Iv->isRoot())
      return; // the root has no parent to summarise for
    MemoryName *Mu = reachingVersionAtEnd(F, DT, W.Obj, PH);
    auto Dummy = std::make_unique<DummyLoadInst>(W.Obj);
    if (Mu)
      Dummy->addMemOperand(Mu);
    PH->insertBefore(PH->terminator(), std::move(Dummy));
    ++Stats.DummyLoadsInserted;
  }
};

} // namespace

WebProfit srp::computeProfit(const SSAWeb &W, const ProfileInfo &PI,
                             const DominatorTree &DT,
                             const PromotionOptions &Opts) {
  WebProfit P;

  if (W.DefResources.empty()) {
    // Read-only web: all loads become copies at the price of one preheader
    // load.
    for (LoadInst *Ld : W.LoadRefs)
      P.LoadBenefit += static_cast<int64_t>(PI.frequency(Ld));
    if (Opts.CountBoundaryOps && !W.LoadRefs.empty() && W.Iv->preheader())
      P.LoadCost += static_cast<int64_t>(PI.frequency(W.Iv->preheader()));
    return P;
  }

  // Loads whose resource is defined by a phi or store of the web become
  // copies.
  for (LoadInst *Ld : W.LoadRefs) {
    MemoryName *N = Ld->memUse();
    if (W.definedByWebStore(N) || W.definedByWebPhi(N))
      P.LoadBenefit += static_cast<int64_t>(PI.frequency(Ld));
  }
  for (const PlannedOp &Op : planLeafLoads(W))
    P.LoadCost += static_cast<int64_t>(PI.frequency(Op.At));

  for (StoreInst *St : W.StoreRefs)
    P.StoreBenefit += static_cast<int64_t>(PI.frequency(St));
  for (const PlannedOp &Op : planCompensatingStores(W, DT, PI, Opts))
    P.StoreCost += static_cast<int64_t>(PI.frequency(Op.At));
  if (Opts.CountBoundaryOps) {
    // Tail stores at interval exits (function returns are already counted
    // through the stores-added set).
    bool AnyLiveOut = false;
    for (MemoryName *N : W.DefResources)
      if ((W.definedByWebStore(N) || W.definedByWebPhi(N)) &&
          usedOutsideInterval(N, *W.Iv))
        AnyLiveOut = true;
    if (AnyLiveOut)
      for (const auto &[Src, Tail] : W.Iv->exitEdges())
        P.StoreCost += static_cast<int64_t>(PI.frequency(Tail));
  }

  P.RemoveStores = Opts.AllowStoreElimination && !W.StoreRefs.empty() &&
                   P.storeProfit() >= 0;
  return P;
}

PromotionStats srp::promoteInWeb(SSAWeb &W, Function &F,
                                 const DominatorTree &DT,
                                 const ProfileInfo &PI,
                                 const PromotionOptions &Opts) {
  PromotionStats Stats;
  ++Stats.WebsConsidered;
  WebPromoter Promoter(W, F, DT, Opts);

  bool HasWork = !W.LoadRefs.empty() || !W.StoreRefs.empty();
  WebProfit Profit = computeProfit(W, PI, DT, Opts);
  bool Promote = HasWork && Profit.total() >= Opts.ProfitThreshold;
  // Promoting a web that only has stores and keeps them is a no-op; demand
  // actual load replacement or store elimination.
  if (W.LoadRefs.empty() && !Profit.RemoveStores)
    Promote = false;
  // Webs with several live-in versions (possible around improper interval
  // entries) have no single value to materialise at the preheader; leave
  // them in memory.
  if (W.NumLiveIns > 1)
    Promote = false;

  // One remark per considered web carrying the full §4.3 breakdown, so the
  // decision is reproducible from the report alone. Emitted before the
  // transformation (eliminateStores clears the reference lists).
  if (RemarkEngine *RE = remarks::sink()) {
    const char *Why = "NotPromoted";
    if (!HasWork)
      Why = "NoMemoryWork";
    else if (Profit.total() < Opts.ProfitThreshold)
      Why = "UnprofitableWeb";
    else if (W.LoadRefs.empty() && !Profit.RemoveStores)
      Why = "StoresOnlyNotEliminated";
    else if (W.NumLiveIns > 1)
      Why = "MultipleLiveIns";
    RE->record(
        Remark(Promote ? RemarkKind::Passed : RemarkKind::Missed, "promotion",
               Promote ? "PromotedWeb" : Why)
            .inFunction(F.name())
            .inInterval(W.Iv->isRoot() ? "root" : W.Iv->header()->name(),
                        W.Iv->depth())
            .onWeb(W.Obj->name() + "#" + std::to_string(W.Id))
            .arg("loads", W.LoadRefs.size())
            .arg("stores", W.StoreRefs.size())
            .arg("aliased-loads", W.AliasedLoadRefs.size())
            .arg("aliased-stores", W.AliasedStoreRefs.size())
            .arg("phis", W.Phis.size())
            .arg("loads-added", planLeafLoads(W).size())
            .arg("stores-added",
                 planCompensatingStores(W, DT, PI, Opts).size())
            .arg("load-benefit", Profit.LoadBenefit)
            .arg("load-cost", Profit.LoadCost)
            .arg("store-benefit", Profit.StoreBenefit)
            .arg("store-cost", Profit.StoreCost)
            .arg("load-profit", Profit.loadProfit())
            .arg("store-profit", Profit.storeProfit())
            .arg("remove-stores", Profit.RemoveStores)
            .arg("total-profit", Profit.total())
            .arg("threshold", Opts.ProfitThreshold)
            .arg("num-live-ins", W.NumLiveIns));
  }

  if (!Promote) {
    // Not promoted: the parent must still assume the resource's value is
    // needed in memory on entry (Fig. 4's else branch).
    if (W.hasAnyReference())
      Promoter.insertDummyLoad();
    Stats += Promoter.takeStats();
    return Stats;
  }

  ++Stats.WebsPromoted;
  validation::recordPromotedWeb(F.name(), W.Obj->name(),
                                W.Obj->name() + "#" + std::to_string(W.Id),
                                "promotion");
  if (W.DefResources.empty()) {
    Promoter.replaceLoadsFromPreheaderLoad(W.Iv->preheader(), W.LiveIn);
    if (!W.AliasedLoadRefs.empty())
      Promoter.insertDummyLoad();
    Stats += Promoter.takeStats();
    return Stats;
  }

  Promoter.initVRMap();
  Promoter.insertLeafLoads(planLeafLoads(W));
  Promoter.replaceLoadsByCopies();
  if (Profit.RemoveStores) {
    ++Stats.WebsStoreEliminated;
    Promoter.eliminateStores(planCompensatingStores(W, DT, PI, Opts));
  }
  if (!W.AliasedLoadRefs.empty() || !Profit.RemoveStores)
    Promoter.insertDummyLoad();
  Stats += Promoter.takeStats();
  return Stats;
}
