//===- profile/ProfileInfo.h - Execution frequency information -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block execution frequencies consumed by the profitability model (§4.3).
/// Two providers:
///  - fromExecution: real frequencies measured by the interpreter (the
///    paper's profile feedback loop), and
///  - estimate: a static fallback in the spirit of Ball-Larus heuristics
///    (loop depth raises frequency by 10x) for the no-profile ablation.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PROFILE_PROFILEINFO_H
#define SRP_PROFILE_PROFILEINFO_H

#include "analysis/AnalysisManager.h"
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace srp {

class BasicBlock;
class Function;
class Instruction;
class IntervalTree;
struct ExecutionResult;

class ProfileInfo {
  std::unordered_map<const BasicBlock *, uint64_t> BlockFreq;

public:
  ProfileInfo() = default;

  /// Frequency of \p BB; unexecuted/unknown blocks report 0.
  uint64_t frequency(const BasicBlock *BB) const {
    auto It = BlockFreq.find(BB);
    return It == BlockFreq.end() ? 0 : It->second;
  }

  /// Frequency of an instruction = frequency of its block.
  uint64_t frequency(const Instruction *I) const;

  void setFrequency(const BasicBlock *BB, uint64_t Freq) {
    BlockFreq[BB] = Freq;
  }

  /// Builds profile data from a measured execution.
  static ProfileInfo fromExecution(const ExecutionResult &R);

  /// Static estimate for \p F: 10^depth per interval-nesting level,
  /// halved along the less likely branch direction.
  static ProfileInfo estimate(Function &F, const IntervalTree &IT);
};

/// The cached static frequency estimate (the no-profile ablation's
/// ProfileInfo provider). Derived from the interval nesting, so the
/// AnalysisManager invalidates it whenever the interval tree goes stale.
struct StaticFrequency {
  ProfileInfo Freq;
};

template <> struct AnalysisTraits<StaticFrequency> {
  static constexpr AnalysisKind Kind = AnalysisKind::StaticFrequency;
  static std::unique_ptr<StaticFrequency> build(Function &F,
                                                AnalysisManager &AM) {
    auto S = std::make_unique<StaticFrequency>();
    S->Freq = ProfileInfo::estimate(F, AM.get<IntervalTree>(F));
    return S;
  }
};

} // namespace srp

#endif // SRP_PROFILE_PROFILEINFO_H
