//===- profile/ProfileInfo.cpp - Execution frequency information ---------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileInfo.h"
#include "analysis/Intervals.h"
#include "interp/Interpreter.h"
#include "ir/Function.h"

using namespace srp;

uint64_t ProfileInfo::frequency(const Instruction *I) const {
  return frequency(I->parent());
}

ProfileInfo ProfileInfo::fromExecution(const ExecutionResult &R) {
  ProfileInfo PI;
  for (const auto &[BB, Count] : R.BlockCounts)
    PI.setFrequency(BB, Count);
  return PI;
}

ProfileInfo ProfileInfo::estimate(Function &F, const IntervalTree &IT) {
  ProfileInfo PI;
  for (BasicBlock *BB : F.blocks()) {
    const Interval *Iv = IT.intervalFor(BB);
    unsigned Depth = Iv ? Iv->depth() : 0;
    uint64_t Freq = 1;
    for (unsigned D = 0; D != Depth && Freq < (uint64_t(1) << 40); ++D)
      Freq *= 10;
    // Blocks that are conditionally reached within their interval (more
    // predecessors on the path do not matter; a simple heuristic: a block
    // that is not its interval's header and has a single conditional
    // predecessor gets half weight).
    if (BB->numPreds() == 1) {
      BasicBlock *P = BB->preds().front();
      if (P->succs().size() > 1)
        Freq = Freq > 1 ? Freq / 2 : 1;
    }
    PI.setFrequency(BB, Freq);
  }
  return PI;
}
