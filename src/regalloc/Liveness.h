//===- regalloc/Liveness.h - Register liveness analysis --------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness over register values (instruction results, arguments).
/// Phi operands are live-out of their incoming blocks, the standard SSA
/// convention. Feeds the interference graph for the register-pressure
/// measurements of Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_REGALLOC_LIVENESS_H
#define SRP_REGALLOC_LIVENESS_H

#include "analysis/AnalysisManager.h"
#include "support/BitVector.h"
#include <memory>
#include <unordered_map>
#include <vector>

namespace srp {

class BasicBlock;
class Function;
class Value;

class Liveness {
  std::vector<Value *> Values; ///< Dense numbering of register values.
  std::unordered_map<const Value *, unsigned> IndexOf;
  std::unordered_map<const BasicBlock *, BitVector> LiveInSet, LiveOutSet;

public:
  explicit Liveness(Function &F) { recompute(F); }

  void recompute(Function &F);

  unsigned numValues() const { return static_cast<unsigned>(Values.size()); }
  const std::vector<Value *> &values() const { return Values; }
  bool tracks(const Value *V) const { return IndexOf.count(V) != 0; }
  unsigned indexOf(const Value *V) const { return IndexOf.at(V); }

  const BitVector &liveIn(const BasicBlock *BB) const {
    return LiveInSet.at(BB);
  }
  const BitVector &liveOut(const BasicBlock *BB) const {
    return LiveOutSet.at(BB);
  }
};

template <> struct AnalysisTraits<Liveness> {
  static constexpr AnalysisKind Kind = AnalysisKind::Liveness;
  static std::unique_ptr<Liveness> build(Function &F, AnalysisManager &) {
    return std::make_unique<Liveness>(F);
  }
};

} // namespace srp

#endif // SRP_REGALLOC_LIVENESS_H
