//===- regalloc/Liveness.cpp - Register liveness analysis ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Liveness.h"
#include "ir/Function.h"

using namespace srp;

void Liveness::recompute(Function &F) {
  Values.clear();
  IndexOf.clear();
  LiveInSet.clear();
  LiveOutSet.clear();

  // Dense numbering: arguments, then instruction results.
  for (unsigned I = 0; I != F.numArgs(); ++I) {
    IndexOf[F.arg(I)] = static_cast<unsigned>(Values.size());
    Values.push_back(F.arg(I));
  }
  for (BasicBlock *BB : F.blocks())
    for (auto &I : *BB)
      if (I->type() != Type::Void) {
        IndexOf[I.get()] = static_cast<unsigned>(Values.size());
        Values.push_back(I.get());
      }

  unsigned N = static_cast<unsigned>(Values.size());
  std::vector<BasicBlock *> Blocks = F.blocks();
  for (BasicBlock *BB : Blocks) {
    LiveInSet[BB].resize(N);
    LiveOutSet[BB].resize(N);
  }

  // use[BB]: values used before any local def; def[BB]: values defined.
  // Phi results are defs at the top of the block; phi operands are uses at
  // the end of the incoming predecessor (handled via extra live-out bits).
  std::unordered_map<const BasicBlock *, BitVector> UseB, DefB;
  std::unordered_map<const BasicBlock *, BitVector> PhiOut; // forced live-out
  for (BasicBlock *BB : Blocks) {
    UseB[BB].resize(N);
    DefB[BB].resize(N);
    PhiOut[BB].resize(N);
  }

  for (BasicBlock *BB : Blocks) {
    BitVector &U = UseB[BB];
    BitVector &D = DefB[BB];
    for (auto &IP : *BB) {
      Instruction *I = IP.get();
      if (auto *P = dyn_cast<PhiInst>(I)) {
        for (unsigned K = 0; K != P->numIncoming(); ++K) {
          Value *V = P->incomingValue(K);
          if (tracks(V))
            PhiOut[P->incomingBlock(K)].set(indexOf(V));
        }
      } else {
        for (Value *Op : I->operands()) {
          if (!tracks(Op))
            continue;
          unsigned Idx = indexOf(Op);
          if (!D.test(Idx))
            U.set(Idx);
        }
      }
      if (I->type() != Type::Void)
        D.set(indexOf(I));
    }
  }

  // Arguments are live-in at the entry: treat them as defined at entry.
  // Iterate to fixpoint: out[B] = union in[S] + phiOut[B]; in[B] =
  // use[B] + (out[B] - def[B]).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Blocks.rbegin(); It != Blocks.rend(); ++It) {
      BasicBlock *BB = *It;
      BitVector Out = PhiOut[BB];
      for (BasicBlock *S : BB->succs())
        Out.unionWith(LiveInSet[S]);
      BitVector In = Out;
      In.subtract(DefB[BB]);
      In.unionWith(UseB[BB]);
      if (!(Out == LiveOutSet[BB])) {
        LiveOutSet[BB] = std::move(Out);
        Changed = true;
      }
      if (!(In == LiveInSet[BB])) {
        LiveInSet[BB] = std::move(In);
        Changed = true;
      }
    }
  }
}
