//===- regalloc/Coloring.cpp - Interference graph coloring ---------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"
#include "ir/Function.h"
#include "regalloc/Liveness.h"
#include "support/Statistics.h"
#include <algorithm>
#include <set>

using namespace srp;

namespace {
SRP_STATISTIC(NumFunctionsColored, "coloring", "functions-colored",
              "Functions whose interference graph was colored");
SRP_STATISTIC(NumEdges, "coloring", "interference-edges",
              "Interference edges built across all colorings");
SRP_STATISTIC(MaxPressure, "coloring", "max-pressure",
              "Peak simultaneous liveness seen in any function");
SRP_STATISTIC(MaxColors, "coloring", "max-colors-needed",
              "Most colors any function's coloring required");
} // namespace

PressureReport srp::measureRegisterPressure(Function &F) {
  Liveness LV(F);
  return measureRegisterPressure(F, LV);
}

PressureReport srp::measureRegisterPressure(Function &F,
                                            AnalysisManager &AM) {
  return measureRegisterPressure(F, AM.get<Liveness>(F));
}

PressureReport srp::measureRegisterPressure(Function &F,
                                            const Liveness &LV) {
  PressureReport R;
  ++NumFunctionsColored;
  unsigned N = LV.numValues();
  R.NumValues = N;
  if (N == 0)
    return R;

  // Interference: walk each block backwards from its live-out set; a
  // definition interferes with everything live across it.
  std::vector<std::set<unsigned>> Adj(N);
  auto addEdge = [&](unsigned A, unsigned B) {
    if (A == B)
      return;
    if (Adj[A].insert(B).second) {
      Adj[B].insert(A);
      ++R.Edges;
    }
  };

  for (BasicBlock *BB : F.blocks()) {
    BitVector Live = LV.liveOut(BB);
    R.MaxLive = std::max(R.MaxLive, Live.count());

    // Instructions back to front.
    std::vector<Instruction *> Insts;
    for (auto &I : *BB)
      Insts.push_back(I.get());
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      Instruction *I = *It;
      if (I->type() != Type::Void) {
        unsigned D = LV.indexOf(I);
        for (int Idx = Live.findFirst(); Idx >= 0;
             Idx = Live.findNext(static_cast<unsigned>(Idx)))
          addEdge(D, static_cast<unsigned>(Idx));
        Live.reset(D);
      }
      if (auto *P = dyn_cast<PhiInst>(I)) {
        // Phi operands are used at predecessor ends; nothing to add here.
        (void)P;
      } else {
        for (Value *Op : I->operands())
          if (LV.tracks(Op))
            Live.set(LV.indexOf(Op));
      }
      R.MaxLive = std::max(R.MaxLive, Live.count());
    }
  }

  // Simplify: repeatedly remove a minimum-degree node (Chaitin's stack),
  // then select colors greedily in reverse removal order.
  std::vector<unsigned> Degree(N);
  for (unsigned I = 0; I != N; ++I)
    Degree[I] = static_cast<unsigned>(Adj[I].size());
  std::vector<bool> Removed(N, false);
  std::vector<unsigned> Stack;
  Stack.reserve(N);
  for (unsigned Round = 0; Round != N; ++Round) {
    unsigned Best = N;
    for (unsigned I = 0; I != N; ++I)
      if (!Removed[I] && (Best == N || Degree[I] < Degree[Best]))
        Best = I;
    Removed[Best] = true;
    Stack.push_back(Best);
    for (unsigned Nb : Adj[Best])
      if (!Removed[Nb] && Degree[Nb] > 0)
        --Degree[Nb];
  }

  std::vector<int> Color(N, -1);
  unsigned MaxColor = 0;
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    unsigned V = *It;
    std::set<int> Taken;
    for (unsigned Nb : Adj[V])
      if (Color[Nb] >= 0)
        Taken.insert(Color[Nb]);
    int C = 0;
    while (Taken.count(C))
      ++C;
    Color[V] = C;
    MaxColor = std::max(MaxColor, static_cast<unsigned>(C) + 1);
  }
  R.ColorsNeeded = MaxColor;
  NumEdges += R.Edges;
  MaxPressure.updateMax(R.MaxLive);
  MaxColors.updateMax(R.ColorsNeeded);
  return R;
}
