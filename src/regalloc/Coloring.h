//===- regalloc/Coloring.h - Interference graph coloring -------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-pressure measurement for Table 3: build the register
/// interference graph from liveness and report the number of colors a
/// Chaitin-style simplify/select coloring needs (greedy coloring in
/// degeneracy order), plus the peak number of simultaneously live values.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_REGALLOC_COLORING_H
#define SRP_REGALLOC_COLORING_H

#include <vector>

namespace srp {

class AnalysisManager;
class Function;
class Liveness;

struct PressureReport {
  unsigned NumValues = 0;     ///< Virtual registers considered.
  unsigned ColorsNeeded = 0;  ///< Colors used by simplify/select coloring.
  unsigned MaxLive = 0;       ///< Peak simultaneous liveness at block ends.
  unsigned Edges = 0;         ///< Interference edges.
};

/// Builds the interference graph of \p F and colors it.
PressureReport measureRegisterPressure(Function &F);

/// Same, over an already-computed liveness.
PressureReport measureRegisterPressure(Function &F, const Liveness &LV);

/// Cache-aware variant: liveness comes from \p AM (rebuilt only when an
/// IR edit since the last query invalidated it).
PressureReport measureRegisterPressure(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_REGALLOC_COLORING_H
