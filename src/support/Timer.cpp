//===- support/Timer.cpp - Wall-clock timing helpers ----------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"
#include <chrono>

double srp::monotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}
