//===- support/Timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal monotonic wall-clock timing for the instrumented pass manager
/// (`--time-passes`). A Timer accumulates across start/stop cycles; a
/// ScopedTimer charges a scope to a double accumulator. All times are in
/// seconds. Timers are not thread-safe by themselves — the pass manager
/// keeps them per-run, and only the statistics registry is shared across
/// the parallel driver's threads.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_TIMER_H
#define SRP_SUPPORT_TIMER_H

namespace srp {

/// Seconds from a monotonic clock (arbitrary epoch).
double monotonicSeconds();

/// Accumulating stopwatch.
class Timer {
  double Accumulated = 0;
  double StartedAt = 0;
  bool Running = false;

public:
  void start() {
    if (!Running) {
      StartedAt = monotonicSeconds();
      Running = true;
    }
  }
  void stop() {
    if (Running) {
      Accumulated += monotonicSeconds() - StartedAt;
      Running = false;
    }
  }
  void reset() {
    Accumulated = 0;
    Running = false;
  }
  bool running() const { return Running; }
  /// Total accumulated seconds (including the live interval if running).
  double seconds() const {
    return Running ? Accumulated + (monotonicSeconds() - StartedAt)
                   : Accumulated;
  }
};

/// Adds the lifetime of the object to \p Acc, in seconds.
class ScopedTimer {
  double &Acc;
  double StartedAt;

public:
  explicit ScopedTimer(double &Acc)
      : Acc(Acc), StartedAt(monotonicSeconds()) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { Acc += monotonicSeconds() - StartedAt; }
};

} // namespace srp

#endif // SRP_SUPPORT_TIMER_H
