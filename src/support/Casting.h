//===- support/Casting.h - isa/cast/dyn_cast templates ---------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style checked casting templates. Classes opt in by providing a
/// static classof(const Base *) predicate.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_CASTING_H
#define SRP_SUPPORT_CASTING_H

#include <cassert>

namespace srp {

/// Returns true if \p V is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> used on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

/// Checked downcast (const variant).
template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null when \p V is not a To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

/// Checking downcast (const variant).
template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// isa<> that tolerates null pointers (returns false).
template <typename To, typename From> bool isa_and_present(const From *V) {
  return V && To::classof(V);
}

/// dyn_cast<> that tolerates null pointers (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *V) {
  return isa_and_present<To>(V) ? static_cast<To *>(V) : nullptr;
}

} // namespace srp

#endif // SRP_SUPPORT_CASTING_H
