//===- support/Options.cpp - Shared CLI argument parser ------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include <cstdio>

using namespace srp;
using namespace srp::opt;

OptionParser::OptionParser(std::string Tool, std::string ArgsSummary)
    : Tool(std::move(Tool)), ArgsSummary(std::move(ArgsSummary)) {}

void OptionParser::flag(const std::string &Name, const std::string &Help,
                        FlagFn Fn) {
  Options.push_back({Name, "", Help, std::move(Fn), nullptr});
}

void OptionParser::value(const std::string &Name, const std::string &ArgSpec,
                         const std::string &Help, ValueFn Fn) {
  Options.push_back({Name, ArgSpec, Help, nullptr, std::move(Fn)});
}

void OptionParser::positional(const std::string &Placeholder,
                              PositionalFn Fn) {
  PositionalPlaceholder = Placeholder;
  Positional = std::move(Fn);
}

const OptionParser::Option *OptionParser::lookup(const std::string &Name,
                                                 bool Valued) const {
  for (const Option &O : Options)
    if (O.Name == Name && (O.Value != nullptr) == Valued)
      return &O;
  return nullptr;
}

std::string OptionParser::helpText() const {
  std::string Out = "usage: " + Tool;
  if (!ArgsSummary.empty())
    Out += " " + ArgsSummary;
  Out += "\n";
  // Column width: longest "-name=<spec>" spelling, capped so one
  // pathological option does not push every description off-screen.
  size_t Width = 0;
  for (const Option &O : Options) {
    size_t W = 1 + O.Name.size() +
               (O.ArgSpec.empty() ? 0 : 1 + O.ArgSpec.size());
    if (W > Width && W <= 26)
      Width = W;
  }
  for (const Option &O : Options) {
    std::string Spelling = "-" + O.Name;
    if (!O.ArgSpec.empty())
      Spelling += "=" + O.ArgSpec;
    Out += "  " + Spelling;
    // Multi-line help: continuation lines are indented to the column.
    size_t Pad = Spelling.size() < Width ? Width - Spelling.size() : 0;
    std::string Indent(Width + 4, ' ');
    Out += std::string(Pad + 2, ' ');
    for (size_t P = 0; P < O.Help.size();) {
      size_t NL = O.Help.find('\n', P);
      if (P)
        Out += Indent;
      Out += O.Help.substr(P, NL == std::string::npos ? NL : NL - P);
      Out += "\n";
      if (NL == std::string::npos)
        break;
      P = NL + 1;
    }
    if (O.Help.empty())
      Out += "\n";
  }
  Out += "  (options may be spelled with either - or --)\n";
  if (!Epilog.empty())
    Out += Epilog + "\n";
  return Out;
}

ParseResult OptionParser::parse(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-h" || A == "-help" || A == "--help") {
      std::fputs(helpText().c_str(), stderr);
      return ParseResult::Help;
    }
    if (!A.empty() && A[0] == '-' && A.size() > 1) {
      // Normalise --opt to -opt, then strip the remaining dash.
      std::string Name = A.substr(A.rfind("--", 0) == 0 ? 2 : 1);
      size_t Eq = Name.find('=');
      if (Eq != std::string::npos) {
        std::string Val = Name.substr(Eq + 1);
        Name.resize(Eq);
        if (const Option *O = lookup(Name, /*Valued=*/true)) {
          if (!O->Value(Val)) {
            std::fprintf(stderr, "error: invalid value '%s' for -%s\n",
                         Val.c_str(), Name.c_str());
            return ParseResult::Error;
          }
          continue;
        }
        // `-flag=...` where flag takes no value is an error below.
      } else if (const Option *O = lookup(Name, /*Valued=*/false)) {
        O->Flag();
        continue;
      } else if (lookup(Name, /*Valued=*/true)) {
        std::fprintf(stderr, "error: option -%s requires a value (-%s=...)\n",
                     Name.c_str(), Name.c_str());
        return ParseResult::Error;
      }
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      std::fputs(helpText().c_str(), stderr);
      return ParseResult::Error;
    }
    if (Positional) {
      Positional(A);
      continue;
    }
    std::fprintf(stderr, "error: unexpected argument '%s'\n", A.c_str());
    std::fputs(helpText().c_str(), stderr);
    return ParseResult::Error;
  }
  return ParseResult::Ok;
}
