//===- support/Trace.h - Chrome-trace event timeline -----------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free-per-thread event timeline rendered as Chrome Trace Event
/// JSON (the format chrome://tracing and Perfetto load). Recording writes
/// only to a thread-local buffer owned by a process-global registry, so
/// worker threads of the parallel workload driver never contend and their
/// events survive thread exit; `trace::toChromeJson()` merges every
/// buffer after the workers have joined — one track (tid) per thread, no
/// interleaved writes by construction.
///
/// Event kinds (Trace Event Format phases):
///  - `TraceSpan` — an `"X"` complete/duration event (RAII scope),
///  - `trace::instant` — an `"i"` instant event (e.g. a cache hit),
///  - `trace::counter` — a `"C"` counter sample (a value over time).
///
/// Collection is off by default, and every recording site reduces to one
/// relaxed atomic load and a branch — the zero-overhead guard the bench
/// smoke comparison enforces. `trace::start()` enables collection
/// (`srpc --trace-out=`, `bench_workload_matrix --trace-out=`, or the
/// `SRP_TRACE=1` environment knob via `startIfEnvRequested()`).
///
/// Timestamps are microseconds since `start()`. With
/// `SRP_TRACE_DETERMINISTIC=1` the merge replaces them with per-thread
/// sequence numbers (durations become 1µs), which makes single-threaded
/// traces byte-stable across runs — the CI schema gate diffs two such
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_TRACE_H
#define SRP_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace srp {

namespace trace {

namespace detail {
/// The collection switch. Out-of-line storage, inline fast-path read.
extern std::atomic<bool> Enabled;
/// True while a LocalCapture is armed on the calling thread.
extern thread_local bool LocalArmed;
} // namespace detail

/// True while collection is on — globally, or locally on this thread via
/// LocalCapture. The only cost paid at a disabled recording site.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed) ||
         detail::LocalArmed;
}

/// Clears every buffer, records the epoch, and enables collection.
void start();

/// Disables collection (buffers are kept for toChromeJson()).
void stop();

/// Drops every buffered event (collection state is unchanged).
void reset();

/// Starts collection when SRP_TRACE=1 is set in the environment. Returns
/// true if it did.
bool startIfEnvRequested();

/// Names the calling thread's track ("worker-3"); merged as a
/// `thread_name` metadata event. No-op while disabled.
void setThreadName(const std::string &Name);

/// Records an instant event. \p Cat groups events into filterable tracks
/// ("pass", "analysis", "interp", "job"). No-op while disabled.
void instant(const char *Cat, const std::string &Name);

/// Records a counter sample `Key = Value` under counter track \p Name.
/// No-op while disabled.
void counter(const char *Cat, const std::string &Name, const char *Key,
             int64_t Value);

/// Number of buffered events across all threads (test convenience).
size_t eventCount();

/// Number of thread buffers that recorded at least one event.
size_t threadCount();

/// Merges every thread's buffer into one Chrome Trace Event JSON document
/// (`{"traceEvents": [...]}`, plus one `thread_name` metadata row per
/// track). Call after worker threads have joined. With
/// SRP_TRACE_DETERMINISTIC=1 tracks are ordered by resolved thread name
/// (ties by registration order) and renumbered sequentially, so merged
/// multi-worker timelines — including the compile server's — are
/// byte-stable regardless of which OS thread registered first.
std::string toChromeJson();

/// Captures the calling thread's events into a private per-thread buffer
/// for the object's lifetime, independent of (and in addition to) global
/// collection — the compile server arms one per job so concurrent jobs
/// never interleave, and the one-shot CLI path uses the same capture so
/// local and remote `--trace-out` bytes agree by construction. While
/// armed, `enabled()` is true on this thread; events recorded on other
/// threads are not seen. Not nestable with itself on one thread.
class LocalCapture {
public:
  LocalCapture();
  ~LocalCapture();
  LocalCapture(const LocalCapture &) = delete;
  LocalCapture &operator=(const LocalCapture &) = delete;

  /// Renders the captured events as a single-track Chrome Trace Event
  /// document (track name "job", tid 0), same formatting and
  /// SRP_TRACE_DETERMINISTIC handling as toChromeJson().
  std::string toChromeJson() const;
};

} // namespace trace

/// RAII duration event: records an "X" phase event covering the object's
/// lifetime. When tracing is disabled at construction the object is inert
/// (and stays inert even if tracing starts mid-scope, keeping begin/end
/// paired). Build names only after checking trace::enabled():
///
/// \code
///   TraceSpan Span("pass", "mem2reg");            // static name: cheap
///   TraceSpan Dyn;
///   if (trace::enabled())
///     Dyn.begin("interp", "decode:" + F.name());  // dynamic name
/// \endcode
class TraceSpan {
  double StartSeconds = 0;
  std::string Name;
  const char *Cat = nullptr;
  bool Active = false;
  // Sinks armed at begin() time; end() records to exactly these even if
  // a switch flipped mid-scope, keeping begin/end paired per sink.
  bool ToGlobal = false;
  bool ToLocal = false;

public:
  TraceSpan() = default;
  TraceSpan(const char *Cat, const char *Name) {
    if (trace::enabled())
      begin(Cat, Name);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() { end(); }

  /// Arms the span (call only when trace::enabled()).
  void begin(const char *Cat, std::string Name);
  /// Records the event now instead of at destruction.
  void end();
};

} // namespace srp

#endif // SRP_SUPPORT_TRACE_H
