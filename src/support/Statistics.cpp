//===- support/Statistics.cpp - Global pass statistics registry -----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

using namespace srp;

namespace {

/// The process-wide registry. Construction order of namespace-scope
/// Statistic objects across TUs is unspecified, so the registry itself is
/// a function-local static (constructed on first use, destroyed after all
/// statics that registered into it are no longer bumped).
struct Registry {
  std::mutex Lock;
  std::vector<Statistic *> Stats;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// The `component.metric` naming convention (docs/OBSERVABILITY.md §2):
/// lower-case alphanumerics, non-leading/non-trailing hyphens, no dots
/// inside either half.
bool isValidStatToken(const char *S) {
  if (!S || !*S)
    return false;
  for (const char *P = S; *P; ++P) {
    const char C = *P;
    const bool LowerAlnum = (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9');
    if (!LowerAlnum && C != '-')
      return false;
    if (C == '-' && (P == S || !P[1]))
      return false;
  }
  return true;
}

[[noreturn]] void badStatistic(const char *Component, const char *Name,
                               const char *Why) {
  std::fprintf(stderr, "srp: invalid statistic '%s.%s': %s\n",
               Component ? Component : "", Name ? Name : "", Why);
  std::abort();
}

} // namespace

Statistic::Statistic(const char *Component, const char *Name,
                     const char *Desc)
    : Component(Component), Name(Name), Desc(Desc) {
  if (!isValidStatToken(Component) || !isValidStatToken(Name))
    badStatistic(Component, Name,
                 "does not follow the component.metric convention "
                 "(lower-case [a-z0-9-], no leading/trailing hyphen)");
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const Statistic *St : R.Stats)
    if (St->fullName() == fullName())
      badStatistic(Component, Name, "registered twice");
  R.Stats.push_back(this);
}

StatsSnapshot srp::stats::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  StatsSnapshot S;
  for (const Statistic *St : R.Stats)
    S[St->fullName()] = St->get();
  return S;
}

void srp::stats::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *St : R.Stats)
    St->set(0);
}

size_t srp::stats::numRegistered() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  return R.Stats.size();
}

std::string srp::stats::description(const std::string &FullName) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const Statistic *St : R.Stats)
    if (St->fullName() == FullName)
      return St->description();
  return "";
}

std::string srp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string srp::stats::toJson(const StatsSnapshot &S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[Name, Value] : S) {
    OS << (First ? "\n" : ",\n")
       << Inner << "\"" << jsonEscape(Name) << "\": " << Value;
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "}";
  return OS.str();
}
