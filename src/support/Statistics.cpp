//===- support/Statistics.cpp - Global metrics registry -------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

using namespace srp;

namespace {

/// The process-wide registry. Construction order of namespace-scope
/// metric objects across TUs is unspecified, so the registry itself is
/// a function-local static (constructed on first use, destroyed after all
/// statics that registered into it are no longer bumped).
struct Registry {
  std::mutex Lock;
  std::vector<Statistic *> Stats;
  std::vector<Histogram *> Histograms;
  std::vector<Gauge *> Gauges;

  /// True when \p FullName is already taken by any metric kind.
  bool taken(const std::string &FullName) const {
    for (const Statistic *St : Stats)
      if (St->fullName() == FullName)
        return true;
    for (const Histogram *H : Histograms)
      if (H->fullName() == FullName)
        return true;
    for (const Gauge *G : Gauges)
      if (G->fullName() == FullName)
        return true;
    return false;
  }
};

Registry &registry() {
  static Registry R;
  return R;
}

/// The `component.metric` naming convention (docs/OBSERVABILITY.md §2):
/// lower-case alphanumerics, non-leading/non-trailing hyphens, no dots
/// inside either half.
bool isValidStatToken(const char *S) {
  if (!S || !*S)
    return false;
  for (const char *P = S; *P; ++P) {
    const char C = *P;
    const bool LowerAlnum = (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9');
    if (!LowerAlnum && C != '-')
      return false;
    if (C == '-' && (P == S || !P[1]))
      return false;
  }
  return true;
}

[[noreturn]] void badStatistic(const char *Component, const char *Name,
                               const char *Why) {
  std::fprintf(stderr, "srp: invalid statistic '%s.%s': %s\n",
               Component ? Component : "", Name ? Name : "", Why);
  std::abort();
}

} // namespace

namespace {

/// Shared registration preamble for all three metric kinds: validate the
/// `component.metric` shape and reject duplicate names registry-wide.
void checkAndLock(const char *Component, const char *Name,
                  const std::string &FullName, Registry &R) {
  if (!isValidStatToken(Component) || !isValidStatToken(Name))
    badStatistic(Component, Name,
                 "does not follow the component.metric convention "
                 "(lower-case [a-z0-9-], no leading/trailing hyphen)");
  if (R.taken(FullName))
    badStatistic(Component, Name, "registered twice");
}

} // namespace

Statistic::Statistic(const char *Component, const char *Name,
                     const char *Desc)
    : Component(Component), Name(Name), Desc(Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  checkAndLock(Component, Name, fullName(), R);
  R.Stats.push_back(this);
}

//===----------------------------------------------------------------------===
// Histogram
//===----------------------------------------------------------------------===

Histogram::Histogram(const char *Component, const char *Name,
                     const char *Desc)
    : Component(Component), Name(Name), Desc(Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  checkAndLock(Component, Name, fullName(), R);
  R.Histograms.push_back(this);
}

uint64_t HistogramSnapshot::upperBound(unsigned I) {
  if (I + 1 >= NumBuckets)
    return UINT64_MAX;
  return uint64_t(1) << I;
}

unsigned Histogram::bucketFor(uint64_t V) {
  if (V <= 1)
    return 0;
  // Smallest I with V <= 2^I, i.e. ceil(log2(V)).
  unsigned I = 64 - static_cast<unsigned>(__builtin_clzll(V - 1));
  return I < HistogramSnapshot::NumBuckets - 1
             ? I
             : HistogramSnapshot::NumBuckets - 1;
}

unsigned Histogram::shardIndex() {
  // Threads are striped over the shard set in arrival order; one thread
  // always lands on the same shard, so per-shard adds never contend with
  // other observe() calls from the same thread.
  static std::atomic<unsigned> NextThread{0};
  thread_local unsigned Index =
      NextThread.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Index;
}

void Histogram::observe(uint64_t V) {
  Shard &S = Shards[shardIndex()];
  S.Count.fetch_add(1, std::memory_order_relaxed);
  S.Sum.fetch_add(V, std::memory_order_relaxed);
  S.Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::observeSeconds(double Seconds) {
  observe(Seconds > 0 ? static_cast<uint64_t>(Seconds * 1e6) : 0);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  for (const Shard &S : Shards) {
    Out.Count += S.Count.load(std::memory_order_relaxed);
    Out.Sum += S.Sum.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I)
      Out.Buckets[I] += S.Buckets[I].load(std::memory_order_relaxed);
  }
  return Out;
}

void Histogram::resetForTesting() {
  for (Shard &S : Shards) {
    S.Count.store(0, std::memory_order_relaxed);
    S.Sum.store(0, std::memory_order_relaxed);
    for (auto &B : S.Buckets)
      B.store(0, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===
// Gauge
//===----------------------------------------------------------------------===

Gauge::Gauge(const char *Component, const char *Name, const char *Desc)
    : Component(Component), Name(Name), Desc(Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  checkAndLock(Component, Name, fullName(), R);
  R.Gauges.push_back(this);
}

StatsSnapshot srp::stats::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  StatsSnapshot S;
  for (const Statistic *St : R.Stats)
    S[St->fullName()] = St->get();
  return S;
}

MetricsSnapshot srp::stats::metrics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  MetricsSnapshot M;
  for (const Statistic *St : R.Stats)
    M.Counters[St->fullName()] = St->get();
  for (const Gauge *Ga : R.Gauges)
    M.Gauges[Ga->fullName()] = Ga->get();
  for (const Histogram *H : R.Histograms)
    M.Histograms[H->fullName()] = H->snapshot();
  return M;
}

void srp::stats::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *St : R.Stats)
    St->set(0);
}

void srp::stats::resetForTesting() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *St : R.Stats)
    St->set(0);
  for (Gauge *Ga : R.Gauges)
    Ga->set(0);
  for (Histogram *H : R.Histograms)
    H->resetForTesting();
}

size_t srp::stats::numRegistered() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  return R.Stats.size();
}

std::string srp::stats::description(const std::string &FullName) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const Statistic *St : R.Stats)
    if (St->fullName() == FullName)
      return St->description();
  for (const Histogram *H : R.Histograms)
    if (H->fullName() == FullName)
      return H->description();
  for (const Gauge *Ga : R.Gauges)
    if (Ga->fullName() == FullName)
      return Ga->description();
  return "";
}

std::string srp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// `component.metric` -> `srp_component_metric` (dots and hyphens are the
/// only characters registration admits beyond [a-z0-9]).
std::string promName(const std::string &FullName) {
  std::string Out = "srp_";
  for (char C : FullName)
    Out += (C == '.' || C == '-') ? '_' : C;
  return Out;
}

void promHeader(std::ostringstream &OS, const std::string &Mangled,
                const std::string &FullName, const std::string &Type) {
  std::string Desc = srp::stats::description(FullName);
  OS << "# HELP " << Mangled << " "
     << (Desc.empty() ? FullName : Desc) << "\n";
  OS << "# TYPE " << Mangled << " " << Type << "\n";
}

} // namespace

std::string srp::stats::metricsToPrometheusText() {
  MetricsSnapshot M = metrics();
  std::ostringstream OS;
  // std::map iteration gives ascending full-name order within each kind;
  // kinds are emitted counters, gauges, histograms. Equal snapshots thus
  // render byte-identically.
  for (const auto &[Name, Value] : M.Counters) {
    std::string Mangled = promName(Name);
    promHeader(OS, Mangled, Name, "counter");
    OS << Mangled << " " << Value << "\n";
  }
  for (const auto &[Name, Value] : M.Gauges) {
    std::string Mangled = promName(Name);
    promHeader(OS, Mangled, Name, "gauge");
    OS << Mangled << " " << Value << "\n";
  }
  for (const auto &[Name, H] : M.Histograms) {
    std::string Mangled = promName(Name);
    promHeader(OS, Mangled, Name, "histogram");
    uint64_t Cumulative = 0;
    for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I) {
      Cumulative += H.Buckets[I];
      OS << Mangled << "_bucket{le=\"";
      if (I + 1 == HistogramSnapshot::NumBuckets)
        OS << "+Inf";
      else
        OS << HistogramSnapshot::upperBound(I);
      OS << "\"} " << Cumulative << "\n";
    }
    OS << Mangled << "_sum " << H.Sum << "\n";
    OS << Mangled << "_count " << H.Count << "\n";
  }
  return OS.str();
}

std::string srp::stats::metricsToJson(const MetricsSnapshot &M,
                                      unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string In1(Indent * 2 + 2, ' ');
  std::string In2(Indent * 2 + 4, ' ');
  std::string In3(Indent * 2 + 6, ' ');
  std::ostringstream OS;
  OS << "{\n";
  OS << In1 << "\"counters\": " << toJson(M.Counters, Indent + 1) << ",\n";

  OS << In1 << "\"gauges\": {";
  bool First = true;
  for (const auto &[Name, Value] : M.Gauges) {
    OS << (First ? "\n" : ",\n")
       << In2 << "\"" << jsonEscape(Name) << "\": " << Value;
    First = false;
  }
  if (!First)
    OS << "\n" << In1;
  OS << "},\n";

  OS << In1 << "\"histograms\": {";
  First = true;
  for (const auto &[Name, H] : M.Histograms) {
    OS << (First ? "\n" : ",\n") << In2 << "\"" << jsonEscape(Name)
       << "\": {\n";
    OS << In3 << "\"count\": " << H.Count << ",\n";
    OS << In3 << "\"sum\": " << H.Sum << ",\n";
    OS << In3 << "\"buckets\": [";
    for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I)
      OS << (I ? ", " : "") << H.Buckets[I];
    OS << "]\n" << In2 << "}";
    First = false;
  }
  if (!First)
    OS << "\n" << In1;
  OS << "}\n" << Pad << "}";
  return OS.str();
}

std::string srp::stats::toJson(const StatsSnapshot &S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[Name, Value] : S) {
    OS << (First ? "\n" : ",\n")
       << Inner << "\"" << jsonEscape(Name) << "\": " << Value;
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "}";
  return OS.str();
}
