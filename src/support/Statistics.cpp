//===- support/Statistics.cpp - Global pass statistics registry -----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include <mutex>
#include <sstream>
#include <vector>

using namespace srp;

namespace {

/// The process-wide registry. Construction order of namespace-scope
/// Statistic objects across TUs is unspecified, so the registry itself is
/// a function-local static (constructed on first use, destroyed after all
/// statics that registered into it are no longer bumped).
struct Registry {
  std::mutex Lock;
  std::vector<Statistic *> Stats;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

Statistic::Statistic(const char *Component, const char *Name,
                     const char *Desc)
    : Component(Component), Name(Name), Desc(Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  R.Stats.push_back(this);
}

StatsSnapshot srp::stats::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  StatsSnapshot S;
  for (const Statistic *St : R.Stats)
    S[St->fullName()] = St->get();
  return S;
}

void srp::stats::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *St : R.Stats)
    St->set(0);
}

size_t srp::stats::numRegistered() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  return R.Stats.size();
}

std::string srp::stats::description(const std::string &FullName) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const Statistic *St : R.Stats)
    if (St->fullName() == FullName)
      return St->description();
  return "";
}

std::string srp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string srp::stats::toJson(const StatsSnapshot &S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[Name, Value] : S) {
    OS << (First ? "\n" : ",\n")
       << Inner << "\"" << jsonEscape(Name) << "\": " << Value;
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "}";
  return OS.str();
}
