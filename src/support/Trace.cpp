//===- support/Trace.cpp - Chrome-trace event timeline --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

using namespace srp;

std::atomic<bool> srp::trace::detail::Enabled{false};

namespace {

/// One recorded event. Cat and CounterKey are string literals at every
/// call site, so the buffer stores pointers, not copies.
struct Event {
  char Phase;             ///< 'X' duration, 'i' instant, 'C' counter.
  const char *Cat;
  std::string Name;
  double TsSeconds;       ///< Absolute monotonic time.
  double DurSeconds;      ///< 'X' only.
  const char *CounterKey; ///< 'C' only.
  int64_t CounterValue;   ///< 'C' only.
};

/// Owned by the registry (not the thread), so events survive thread exit
/// and the merge after join() reads them safely. Only the owning thread
/// appends; the registry lock covers only registration and merging.
struct ThreadBuffer {
  unsigned Tid;
  std::string ThreadName;
  std::vector<Event> Events;
};

struct Registry {
  std::mutex Lock;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  double EpochSeconds = 0;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// The calling thread's buffer, registered on first use. The pointer stays
/// valid for the process lifetime: buffers are owned by the registry and
/// never deallocated (reset() only clears their event vectors).
ThreadBuffer &buffer() {
  thread_local ThreadBuffer *TLBuf = nullptr;
  if (!TLBuf) {
    Registry &R = registry();
    std::lock_guard<std::mutex> G(R.Lock);
    auto Buf = std::make_unique<ThreadBuffer>();
    Buf->Tid = static_cast<unsigned>(R.Buffers.size());
    TLBuf = Buf.get();
    R.Buffers.push_back(std::move(Buf));
  }
  return *TLBuf;
}

void formatMicros(std::ostringstream &OS, double Micros) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Micros);
  OS << Buf;
}

} // namespace

void srp::trace::start() {
  reset();
  Registry &R = registry();
  {
    std::lock_guard<std::mutex> G(R.Lock);
    R.EpochSeconds = monotonicSeconds();
  }
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void srp::trace::stop() {
  detail::Enabled.store(false, std::memory_order_relaxed);
}

void srp::trace::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (auto &Buf : R.Buffers) {
    Buf->Events.clear();
    Buf->ThreadName.clear();
  }
}

bool srp::trace::startIfEnvRequested() {
  const char *Env = std::getenv("SRP_TRACE");
  if (!Env || std::string(Env) != "1")
    return false;
  start();
  return true;
}

void srp::trace::setThreadName(const std::string &Name) {
  if (!enabled())
    return;
  buffer().ThreadName = Name;
}

void srp::trace::instant(const char *Cat, const std::string &Name) {
  if (!enabled())
    return;
  buffer().Events.push_back(
      {'i', Cat, Name, monotonicSeconds(), 0, nullptr, 0});
}

void srp::trace::counter(const char *Cat, const std::string &Name,
                         const char *Key, int64_t Value) {
  if (!enabled())
    return;
  buffer().Events.push_back(
      {'C', Cat, Name, monotonicSeconds(), 0, Key, Value});
}

size_t srp::trace::eventCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t N = 0;
  for (const auto &Buf : R.Buffers)
    N += Buf->Events.size();
  return N;
}

size_t srp::trace::threadCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t N = 0;
  for (const auto &Buf : R.Buffers)
    if (!Buf->Events.empty())
      ++N;
  return N;
}

void TraceSpan::begin(const char *C, std::string N) {
  Cat = C;
  Name = std::move(N);
  StartSeconds = monotonicSeconds();
  Active = true;
}

void TraceSpan::end() {
  if (!Active)
    return;
  Active = false;
  // The switch may have flipped off mid-scope; record anyway so begin/end
  // stay paired with what the scope observed at entry.
  buffer().Events.push_back({'X', Cat, std::move(Name), StartSeconds,
                             monotonicSeconds() - StartSeconds, nullptr, 0});
}

std::string srp::trace::toChromeJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);

  const char *Env = std::getenv("SRP_TRACE_DETERMINISTIC");
  const bool Deterministic = Env && std::string(Env) == "1";

  std::ostringstream OS;
  OS << "{\"traceEvents\": [";
  bool First = true;
  auto comma = [&] {
    OS << (First ? "\n" : ",\n") << "  ";
    First = false;
  };

  for (const auto &Buf : R.Buffers) {
    if (Buf->Events.empty())
      continue;
    comma();
    OS << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << Buf->Tid << ", \"args\": {\"name\": \""
       << jsonEscape(Buf->ThreadName.empty()
                         ? (Buf->Tid == 0 ? std::string("main")
                                          : "thread-" + std::to_string(Buf->Tid))
                         : Buf->ThreadName)
       << "\"}}";
    uint64_t Seq = 0;
    for (const Event &E : Buf->Events) {
      comma();
      OS << "{\"name\": \"" << jsonEscape(E.Name) << "\", \"cat\": \""
         << E.Cat << "\", \"ph\": \"" << E.Phase << "\", \"ts\": ";
      if (Deterministic)
        OS << Seq++;
      else
        formatMicros(OS, (E.TsSeconds - R.EpochSeconds) * 1e6);
      if (E.Phase == 'X') {
        OS << ", \"dur\": ";
        if (Deterministic)
          OS << 1;
        else
          formatMicros(OS, E.DurSeconds * 1e6);
      }
      OS << ", \"pid\": 1, \"tid\": " << Buf->Tid;
      if (E.Phase == 'i')
        OS << ", \"s\": \"t\"";
      if (E.Phase == 'C')
        OS << ", \"args\": {\"" << E.CounterKey << "\": " << E.CounterValue
           << "}";
      OS << "}";
    }
  }
  if (!First)
    OS << "\n";
  OS << "]}\n";
  return OS.str();
}
