//===- support/Trace.cpp - Chrome-trace event timeline --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

using namespace srp;

std::atomic<bool> srp::trace::detail::Enabled{false};
thread_local bool srp::trace::detail::LocalArmed = false;

namespace {

/// One recorded event. Cat and CounterKey are string literals at every
/// call site, so the buffer stores pointers, not copies.
struct Event {
  char Phase;             ///< 'X' duration, 'i' instant, 'C' counter.
  const char *Cat;
  std::string Name;
  double TsSeconds;       ///< Absolute monotonic time.
  double DurSeconds;      ///< 'X' only.
  const char *CounterKey; ///< 'C' only.
  int64_t CounterValue;   ///< 'C' only.
};

/// Owned by the registry (not the thread), so events survive thread exit
/// and the merge after join() reads them safely. Only the owning thread
/// appends; the registry lock covers only registration and merging.
struct ThreadBuffer {
  unsigned Tid;
  std::string ThreadName;
  std::vector<Event> Events;
};

struct Registry {
  std::mutex Lock;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  double EpochSeconds = 0;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// The calling thread's buffer, registered on first use. The pointer stays
/// valid for the process lifetime: buffers are owned by the registry and
/// never deallocated (reset() only clears their event vectors).
ThreadBuffer &buffer() {
  thread_local ThreadBuffer *TLBuf = nullptr;
  if (!TLBuf) {
    Registry &R = registry();
    std::lock_guard<std::mutex> G(R.Lock);
    auto Buf = std::make_unique<ThreadBuffer>();
    Buf->Tid = static_cast<unsigned>(R.Buffers.size());
    TLBuf = Buf.get();
    R.Buffers.push_back(std::move(Buf));
  }
  return *TLBuf;
}

/// The calling thread's private LocalCapture buffer (events plus the
/// arm-time epoch). Owned by the thread, touched by no one else.
struct LocalBuffer {
  std::vector<Event> Events;
  double EpochSeconds = 0;
};

LocalBuffer &localBuffer() {
  thread_local LocalBuffer B;
  return B;
}

/// Routes one event to the sinks armed on this thread: the registry
/// buffer when global collection is on, the private buffer when a
/// LocalCapture is armed. Callers have already established that at least
/// one of the two holds (enabled() was true).
void record(Event E) {
  using srp::trace::detail::Enabled;
  using srp::trace::detail::LocalArmed;
  const bool Global = Enabled.load(std::memory_order_relaxed);
  if (Global && LocalArmed)
    localBuffer().Events.push_back(E); // copy: the global sink moves below
  else if (LocalArmed)
    localBuffer().Events.push_back(std::move(E));
  if (Global)
    buffer().Events.push_back(std::move(E));
}

void formatMicros(std::ostringstream &OS, double Micros) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Micros);
  OS << Buf;
}

} // namespace

void srp::trace::start() {
  reset();
  Registry &R = registry();
  {
    std::lock_guard<std::mutex> G(R.Lock);
    R.EpochSeconds = monotonicSeconds();
  }
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void srp::trace::stop() {
  detail::Enabled.store(false, std::memory_order_relaxed);
}

void srp::trace::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (auto &Buf : R.Buffers) {
    Buf->Events.clear();
    Buf->ThreadName.clear();
  }
}

bool srp::trace::startIfEnvRequested() {
  const char *Env = std::getenv("SRP_TRACE");
  if (!Env || std::string(Env) != "1")
    return false;
  start();
  return true;
}

void srp::trace::setThreadName(const std::string &Name) {
  // Names only the shared registry track: a LocalCapture renders a fixed
  // single-track document, so per-worker names inside it would break the
  // local/remote byte parity it exists for.
  if (!detail::Enabled.load(std::memory_order_relaxed))
    return;
  buffer().ThreadName = Name;
}

void srp::trace::instant(const char *Cat, const std::string &Name) {
  if (!enabled())
    return;
  record({'i', Cat, Name, monotonicSeconds(), 0, nullptr, 0});
}

void srp::trace::counter(const char *Cat, const std::string &Name,
                         const char *Key, int64_t Value) {
  if (!enabled())
    return;
  record({'C', Cat, Name, monotonicSeconds(), 0, Key, Value});
}

size_t srp::trace::eventCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t N = 0;
  for (const auto &Buf : R.Buffers)
    N += Buf->Events.size();
  return N;
}

size_t srp::trace::threadCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t N = 0;
  for (const auto &Buf : R.Buffers)
    if (!Buf->Events.empty())
      ++N;
  return N;
}

void TraceSpan::begin(const char *C, std::string N) {
  Cat = C;
  Name = std::move(N);
  StartSeconds = monotonicSeconds();
  Active = true;
  ToGlobal = trace::detail::Enabled.load(std::memory_order_relaxed);
  ToLocal = trace::detail::LocalArmed;
}

void TraceSpan::end() {
  if (!Active)
    return;
  Active = false;
  // A switch may have flipped mid-scope; record to the sinks armed at
  // begin() so begin/end stay paired with what the scope observed.
  Event E{'X', Cat, std::move(Name), StartSeconds,
          monotonicSeconds() - StartSeconds, nullptr, 0};
  if (ToLocal && ToGlobal)
    localBuffer().Events.push_back(E);
  else if (ToLocal)
    localBuffer().Events.push_back(std::move(E));
  if (ToGlobal)
    buffer().Events.push_back(std::move(E));
}

namespace {

bool deterministicMode() {
  const char *Env = std::getenv("SRP_TRACE_DETERMINISTIC");
  return Env && std::string(Env) == "1";
}

/// Emits one track: its thread_name metadata row, then its events.
/// Shared between the global merge and LocalCapture so both documents
/// format (and byte-stabilise) identically.
void emitTrack(std::ostringstream &OS, bool &First, unsigned Tid,
               const std::string &DisplayName,
               const std::vector<Event> &Events, double EpochSeconds,
               bool Deterministic) {
  auto comma = [&] {
    OS << (First ? "\n" : ",\n") << "  ";
    First = false;
  };
  comma();
  OS << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
     << Tid << ", \"args\": {\"name\": \"" << srp::jsonEscape(DisplayName)
     << "\"}}";
  uint64_t Seq = 0;
  for (const Event &E : Events) {
    comma();
    OS << "{\"name\": \"" << srp::jsonEscape(E.Name) << "\", \"cat\": \""
       << E.Cat << "\", \"ph\": \"" << E.Phase << "\", \"ts\": ";
    if (Deterministic)
      OS << Seq++;
    else
      formatMicros(OS, (E.TsSeconds - EpochSeconds) * 1e6);
    if (E.Phase == 'X') {
      OS << ", \"dur\": ";
      if (Deterministic)
        OS << 1;
      else
        formatMicros(OS, E.DurSeconds * 1e6);
    }
    OS << ", \"pid\": 1, \"tid\": " << Tid;
    if (E.Phase == 'i')
      OS << ", \"s\": \"t\"";
    if (E.Phase == 'C')
      OS << ", \"args\": {\"" << E.CounterKey << "\": " << E.CounterValue
         << "}";
    OS << "}";
  }
}

} // namespace

std::string srp::trace::toChromeJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);

  const bool Deterministic = deterministicMode();

  std::vector<const ThreadBuffer *> Tracks;
  for (const auto &Buf : R.Buffers)
    if (!Buf->Events.empty())
      Tracks.push_back(Buf.get());

  auto resolvedName = [](const ThreadBuffer *B) {
    if (!B->ThreadName.empty())
      return B->ThreadName;
    return B->Tid == 0 ? std::string("main")
                       : "thread-" + std::to_string(B->Tid);
  };

  // Registration order is scheduler-dependent (whichever worker records
  // first gets tid 1): in deterministic mode, order tracks by resolved
  // name instead and renumber, so merged multi-worker timelines are
  // byte-stable in CI.
  if (Deterministic)
    std::stable_sort(Tracks.begin(), Tracks.end(),
                     [&](const ThreadBuffer *A, const ThreadBuffer *B) {
                       const std::string NA = resolvedName(A);
                       const std::string NB = resolvedName(B);
                       return NA != NB ? NA < NB : A->Tid < B->Tid;
                     });

  std::ostringstream OS;
  OS << "{\"traceEvents\": [";
  bool First = true;
  for (size_t I = 0; I != Tracks.size(); ++I)
    emitTrack(OS, First,
              Deterministic ? static_cast<unsigned>(I) : Tracks[I]->Tid,
              resolvedName(Tracks[I]), Tracks[I]->Events, R.EpochSeconds,
              Deterministic);
  if (!First)
    OS << "\n";
  OS << "]}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===
// LocalCapture
//===----------------------------------------------------------------------===

srp::trace::LocalCapture::LocalCapture() {
  LocalBuffer &B = localBuffer();
  B.Events.clear();
  B.EpochSeconds = monotonicSeconds();
  detail::LocalArmed = true;
}

srp::trace::LocalCapture::~LocalCapture() { detail::LocalArmed = false; }

std::string srp::trace::LocalCapture::toChromeJson() const {
  const LocalBuffer &B = localBuffer();
  std::ostringstream OS;
  OS << "{\"traceEvents\": [";
  bool First = true;
  if (!B.Events.empty())
    emitTrack(OS, First, /*Tid=*/0, "job", B.Events, B.EpochSeconds,
              deterministicMode());
  if (!First)
    OS << "\n";
  OS << "]}\n";
  return OS.str();
}
