//===- support/Remarks.h - Optimization remarks ----------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style optimization remarks for the promotion pipeline. A `Remark`
/// is one promote/reject/analysis decision with a kind (`passed` for a
/// transformation performed, `missed` for a candidate rejected, `analysis`
/// for informational accounting), the emitting pass, a location
/// (function, interval, web), and an ordered list of typed key->value
/// arguments carrying the decision's inputs — e.g. the loads-added /
/// stores-added frequencies of the paper's profitability inequality
/// (§4.3), so a rejection is reproducible from the report alone.
///
/// Remarks flow into a process-global sink (`remarks::setSink`). When no
/// sink is installed — the default — every emission site reduces to one
/// relaxed atomic load and a branch, so the instrumentation is free in
/// production runs; `srpc --remarks-json=<file>` installs an engine for
/// the duration of the pipeline. The engine is thread-safe (the parallel
/// workload driver may emit from many workers); within one single-threaded
/// run the recording order is deterministic and `remarksToJson` renders it
/// byte-stably, same discipline as `stats::toJson`.
///
/// Emission idiom (cheap when disabled, allocation only when enabled):
///
/// \code
///   if (RemarkEngine *RE = remarks::sink())
///     RE->record(Remark(RemarkKind::Missed, "promotion", "UnprofitableWeb")
///                    .inFunction(F.name())
///                    .inInterval(headerName, depth)
///                    .onWeb(webLabel)
///                    .arg("load-benefit", P.LoadBenefit)
///                    .arg("threshold", Opts.ProfitThreshold));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_REMARKS_H
#define SRP_SUPPORT_REMARKS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace srp {

enum class RemarkKind : uint8_t {
  Passed,   ///< A transformation was applied.
  Missed,   ///< A candidate was considered and rejected.
  Analysis, ///< Informational: derived quantities, accounting.
};

/// Stable spelling used in JSON ("passed" / "missed" / "analysis").
const char *remarkKindName(RemarkKind K);

/// One typed key->value argument. Arguments keep their insertion order so
/// a profitability breakdown reads in the order the decision consumed it.
struct RemarkArg {
  enum class Type : uint8_t { Int, Str, Bool };
  std::string Key;
  Type Ty = Type::Int;
  int64_t IntVal = 0;
  std::string StrVal;
};

/// One optimization remark. Built fluently; see the header comment.
class Remark {
public:
  RemarkKind Kind = RemarkKind::Analysis;
  std::string Pass;     ///< Emitting pass ("promotion", "mem2reg", ...).
  std::string Name;     ///< Remark identifier ("PromotedWeb", ...).
  std::string Function; ///< Enclosing function, "" if not applicable.
  std::string Interval; ///< Interval header block name; "root" for the
                        ///< whole-function interval; "" if not applicable.
  unsigned IntervalDepth = 0;
  std::string Web;      ///< Web label ("<object>#<id>"), "" if n/a.
  std::vector<RemarkArg> Args;

  Remark() = default;
  Remark(RemarkKind K, std::string Pass, std::string Name)
      : Kind(K), Pass(std::move(Pass)), Name(std::move(Name)) {}

  Remark &inFunction(std::string F) {
    Function = std::move(F);
    return *this;
  }
  Remark &inInterval(std::string Header, unsigned Depth) {
    Interval = std::move(Header);
    IntervalDepth = Depth;
    return *this;
  }
  Remark &onWeb(std::string W) {
    Web = std::move(W);
    return *this;
  }
  Remark &arg(std::string Key, int64_t V) {
    Args.push_back({std::move(Key), RemarkArg::Type::Int, V, {}});
    return *this;
  }
  Remark &arg(std::string Key, uint64_t V) {
    return arg(std::move(Key), static_cast<int64_t>(V));
  }
  Remark &arg(std::string Key, int V) {
    return arg(std::move(Key), static_cast<int64_t>(V));
  }
  Remark &arg(std::string Key, unsigned V) {
    return arg(std::move(Key), static_cast<int64_t>(V));
  }
  Remark &arg(std::string Key, bool V) {
    Args.push_back({std::move(Key), RemarkArg::Type::Bool, V ? 1 : 0, {}});
    return *this;
  }
  Remark &arg(std::string Key, std::string V) {
    Args.push_back({std::move(Key), RemarkArg::Type::Str, 0, std::move(V)});
    return *this;
  }

  /// The value of argument \p Key as rendered in JSON, or "" if absent
  /// (test convenience).
  std::string argValue(const std::string &Key) const;
};

/// Collects remarks. Thread-safe; recording order within one thread is
/// the emission order. An optional pass filter drops non-matching remarks
/// at the source (`srpc --remarks-filter=<pass>`).
class RemarkEngine {
  mutable std::mutex Lock;
  std::vector<Remark> Remarks;
  std::string PassFilter; ///< Empty = accept every pass.

public:
  /// Accept only remarks whose Pass equals \p Pass ("" accepts all).
  void setPassFilter(std::string Pass) { PassFilter = std::move(Pass); }
  const std::string &passFilter() const { return PassFilter; }

  bool wants(const std::string &Pass) const {
    return PassFilter.empty() || PassFilter == Pass;
  }

  void record(Remark R);

  /// Snapshot of everything recorded so far, in recording order.
  std::vector<Remark> remarks() const;
  size_t size() const;
  void clear();
};

namespace remarks {

/// The sink the calling thread should emit into: the thread-local
/// override when one is installed (per-job capture on a server worker),
/// else the process-global sink, else null (the common, zero-cost case).
/// Emission sites branch on this; see the header comment.
RemarkEngine *sink();

/// The process-global sink (ignoring any thread-local override), or null.
RemarkEngine *globalSink();

/// Installs \p RE as the process-global sink (null uninstalls). The caller
/// keeps ownership and must outlive the installation.
void setSink(RemarkEngine *RE);

/// Installs \p RE as the calling thread's sink (null uninstalls). While
/// set it shadows the global sink for this thread only, which is how the
/// compile server captures one job's remarks without interleaving
/// concurrent jobs (each worker arms its own override for the duration
/// of the job it is running).
void setThreadSink(RemarkEngine *RE);

} // namespace remarks

/// Installs a sink for a scope (tests, srpc).
class ScopedRemarkSink {
  RemarkEngine *Prev;

public:
  explicit ScopedRemarkSink(RemarkEngine &RE) : Prev(remarks::globalSink()) {
    remarks::setSink(&RE);
  }
  ~ScopedRemarkSink() { remarks::setSink(Prev); }
  ScopedRemarkSink(const ScopedRemarkSink &) = delete;
  ScopedRemarkSink &operator=(const ScopedRemarkSink &) = delete;
};

/// Installs a calling-thread-only sink for a scope (per-job capture; see
/// remarks::setThreadSink). Not nestable with itself on one thread.
class ScopedThreadRemarkSink {
public:
  explicit ScopedThreadRemarkSink(RemarkEngine &RE) {
    remarks::setThreadSink(&RE);
  }
  ~ScopedThreadRemarkSink() { remarks::setThreadSink(nullptr); }
  ScopedThreadRemarkSink(const ScopedThreadRemarkSink &) = delete;
  ScopedThreadRemarkSink &operator=(const ScopedThreadRemarkSink &) = delete;
};

/// Renders remarks as a JSON object ({"remark_count": N, "remarks":
/// [...]}) with two-space indentation at \p Indent levels. Field order and
/// argument order are fixed, so equal inputs render byte-identically
/// (same discipline as stats::toJson).
std::string remarksToJson(const std::vector<Remark> &Remarks,
                          unsigned Indent = 0);

} // namespace srp

#endif // SRP_SUPPORT_REMARKS_H
