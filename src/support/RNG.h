//===- support/RNG.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, seedable xorshift128+ generator used by the property-based test
/// suites and by the random-program generator. Independent of the host
/// standard library so test corpora are reproducible across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_RNG_H
#define SRP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace srp {

class RNG {
  uint64_t S0, S1;

  static uint64_t splitmix(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

public:
  explicit RNG(uint64_t Seed = 0x5eed) {
    uint64_t X = Seed;
    S0 = splitmix(X);
    S1 = splitmix(X);
  }

  uint64_t next() {
    uint64_t X = S0, Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(uint64_t(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(unsigned Num, unsigned Den) { return below(Den) < Num; }
};

} // namespace srp

#endif // SRP_SUPPORT_RNG_H
