//===- support/UnionFind.h - Disjoint set union ----------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path compression and union by rank. Register promotion
/// uses it to partition SSA memory names into webs (paper Fig. 3).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_UNIONFIND_H
#define SRP_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace srp {

class UnionFind {
  mutable std::vector<unsigned> Parent;
  std::vector<uint8_t> Rank;

public:
  UnionFind() = default;
  explicit UnionFind(unsigned N) { grow(N); }

  unsigned size() const { return Parent.size(); }

  /// Ensures at least \p N singleton elements exist.
  void grow(unsigned N) {
    unsigned Old = Parent.size();
    if (N <= Old)
      return;
    Parent.resize(N);
    std::iota(Parent.begin() + Old, Parent.end(), Old);
    Rank.resize(N, 0);
  }

  /// Returns the class representative of \p X.
  unsigned find(unsigned X) const {
    assert(X < Parent.size() && "element out of range");
    unsigned Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[X] != Root) {
      unsigned Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the classes of \p A and \p B; returns the new representative.
  unsigned unite(unsigned A, unsigned B) {
    unsigned RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    return RA;
  }

  bool connected(unsigned A, unsigned B) const { return find(A) == find(B); }
};

} // namespace srp

#endif // SRP_SUPPORT_UNIONFIND_H
