//===- support/JSON.h - Minimal JSON value, parser, writer -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON layer for the compile-server protocol
/// (docs/SERVER.md) and the tools that consume srpc reports. The repo
/// already *emits* JSON in several places (statistics, pass records,
/// remarks, traces); this adds the missing half — parsing — plus a
/// writer used for newline-delimited protocol messages.
///
/// Scope is deliberately narrow: UTF-8 text, no comments, numbers kept
/// as int64 when they round-trip exactly (the protocol's ids and
/// counters) and double otherwise. Object member order is preserved so
/// serialisation is byte-stable.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_JSON_H
#define SRP_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace srp {
namespace json {

/// One JSON value. Objects keep insertion order (vector of pairs) so a
/// decode -> encode round trip is byte-stable.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

public:
  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static Value integer(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static Value number(double V) {
    Value R;
    R.K = Kind::Double;
    R.D = V;
    return R;
  }
  static Value string(std::string V) {
    Value R;
    R.K = Kind::String;
    R.S = std::move(V);
    return R;
  }
  static Value array() {
    Value R;
    R.K = Kind::Array;
    return R;
  }
  static Value object() {
    Value R;
    R.K = Kind::Object;
    return R;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  double asDouble(double Default = 0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString() const { return S; }
  std::string asString(const std::string &Default) const {
    return K == Kind::String ? S : Default;
  }

  // Array access.
  const std::vector<Value> &items() const { return Arr; }
  void push(Value V) { Arr.push_back(std::move(V)); }
  size_t size() const {
    return K == Kind::Array ? Arr.size() : Obj.size();
  }

  // Object access. get() returns null for missing keys; has() tests.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }
  const Value *find(const std::string &Key) const {
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return &V;
    return nullptr;
  }
  bool has(const std::string &Key) const { return find(Key) != nullptr; }
  const Value &get(const std::string &Key) const {
    static const Value Null;
    const Value *V = find(Key);
    return V ? *V : Null;
  }
  /// Appends (or replaces) a member, preserving first-set order.
  void set(const std::string &Key, Value V);

  /// Serialises compactly (no insignificant whitespace) — one line as
  /// long as no string contains a raw newline, which escaping prevents.
  std::string dump() const;
};

/// Parses \p Text into \p Out. On failure returns false and sets \p Err
/// to "offset N: message". Trailing whitespace is allowed; trailing
/// garbage is an error.
bool parse(const std::string &Text, Value &Out, std::string &Err);

/// Escapes \p S for inclusion in a JSON string literal (quotes not
/// included). Control characters become \uXXXX.
std::string escape(const std::string &S);

} // namespace json
} // namespace srp

#endif // SRP_SUPPORT_JSON_H
