//===- support/Remarks.cpp - Optimization remarks -------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Remarks.h"
#include "support/Statistics.h"
#include <sstream>

using namespace srp;

namespace {
/// The global sink. Relaxed is enough: installation happens-before the
/// pipeline run that emits into it (setSink is called on the same thread
/// that later spawns workers, and thread creation synchronises).
std::atomic<RemarkEngine *> GlobalSink{nullptr};

/// The calling thread's override (remarks::setThreadSink). Shadows the
/// global sink so a server worker's per-job capture never sees remarks
/// from jobs running concurrently on other workers.
thread_local RemarkEngine *ThreadSink = nullptr;
} // namespace

const char *srp::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Passed:
    return "passed";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Analysis:
    return "analysis";
  }
  return "analysis";
}

RemarkEngine *srp::remarks::sink() {
  if (RemarkEngine *RE = ThreadSink)
    return RE;
  return GlobalSink.load(std::memory_order_relaxed);
}

RemarkEngine *srp::remarks::globalSink() {
  return GlobalSink.load(std::memory_order_relaxed);
}

void srp::remarks::setSink(RemarkEngine *RE) {
  GlobalSink.store(RE, std::memory_order_relaxed);
}

void srp::remarks::setThreadSink(RemarkEngine *RE) { ThreadSink = RE; }

std::string Remark::argValue(const std::string &Key) const {
  for (const RemarkArg &A : Args) {
    if (A.Key != Key)
      continue;
    switch (A.Ty) {
    case RemarkArg::Type::Int:
      return std::to_string(A.IntVal);
    case RemarkArg::Type::Bool:
      return A.IntVal ? "true" : "false";
    case RemarkArg::Type::Str:
      return A.StrVal;
    }
  }
  return "";
}

void RemarkEngine::record(Remark R) {
  if (!wants(R.Pass))
    return;
  std::lock_guard<std::mutex> G(Lock);
  Remarks.push_back(std::move(R));
}

std::vector<Remark> RemarkEngine::remarks() const {
  std::lock_guard<std::mutex> G(Lock);
  return Remarks;
}

size_t RemarkEngine::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Remarks.size();
}

void RemarkEngine::clear() {
  std::lock_guard<std::mutex> G(Lock);
  Remarks.clear();
}

std::string srp::remarksToJson(const std::vector<Remark> &Remarks,
                               unsigned Indent) {
  const std::string Pad(Indent * 2, ' ');
  const std::string P1(Indent * 2 + 2, ' ');
  const std::string P2(Indent * 2 + 4, ' ');
  const std::string P3(Indent * 2 + 6, ' ');
  std::ostringstream OS;
  OS << "{\n" << P1 << "\"remark_count\": " << Remarks.size() << ",\n"
     << P1 << "\"remarks\": [";
  bool FirstRemark = true;
  for (const Remark &R : Remarks) {
    OS << (FirstRemark ? "\n" : ",\n") << P2 << "{\n"
       << P3 << "\"kind\": \"" << remarkKindName(R.Kind) << "\",\n"
       << P3 << "\"pass\": \"" << jsonEscape(R.Pass) << "\",\n"
       << P3 << "\"name\": \"" << jsonEscape(R.Name) << "\"";
    if (!R.Function.empty())
      OS << ",\n" << P3 << "\"function\": \"" << jsonEscape(R.Function)
         << "\"";
    if (!R.Interval.empty())
      OS << ",\n" << P3 << "\"interval\": \"" << jsonEscape(R.Interval)
         << "\",\n" << P3 << "\"interval_depth\": " << R.IntervalDepth;
    if (!R.Web.empty())
      OS << ",\n" << P3 << "\"web\": \"" << jsonEscape(R.Web) << "\"";
    OS << ",\n" << P3 << "\"args\": {";
    bool FirstArg = true;
    for (const RemarkArg &A : R.Args) {
      OS << (FirstArg ? "" : ", ") << "\"" << jsonEscape(A.Key) << "\": ";
      switch (A.Ty) {
      case RemarkArg::Type::Int:
        OS << A.IntVal;
        break;
      case RemarkArg::Type::Bool:
        OS << (A.IntVal ? "true" : "false");
        break;
      case RemarkArg::Type::Str:
        OS << "\"" << jsonEscape(A.StrVal) << "\"";
        break;
      }
      FirstArg = false;
    }
    OS << "}\n" << P2 << "}";
    FirstRemark = false;
  }
  if (!FirstRemark)
    OS << "\n" << P1;
  OS << "]\n" << Pad << "}";
  return OS.str();
}
