//===- support/Options.h - Shared CLI argument parser ----------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One table-driven argument parser for every CLI in the repo (srpc,
/// srp-gen, srp-corpus, srp-reduce, the benches). Before this existed
/// each tool hand-rolled its own `rfind("-opt=", 0)` loop and its own
/// usage() text, and they disagreed on single- versus double-dash
/// spelling; the parser accepts both prefixes for every option and
/// generates --help from the table, so the help text can never drift
/// from what is actually parsed.
///
///   OptionParser OP("srpc", "[options] file.mc");
///   OP.flag("quiet", "do not echo program output", [&] { Quiet = true; });
///   OP.value("mode", "<none|paper|...>", "promotion mode",
///            [&](const std::string &V) { return parseMode(V); });
///   OP.positional("file.mc", [&](const std::string &V) { File = V; });
///   switch (OP.parse(argc, argv)) { ... }
///
/// Value handlers return false to reject the argument (the parser
/// prints "error: invalid value ..." and fails); flags cannot fail.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_OPTIONS_H
#define SRP_SUPPORT_OPTIONS_H

#include <functional>
#include <string>
#include <vector>

namespace srp {
namespace opt {

/// Outcome of OptionParser::parse.
enum class ParseResult {
  Ok,    ///< all arguments consumed; proceed
  Help,  ///< --help was requested and printed; exit 0
  Error, ///< bad option/value; message printed; exit 2
};

class OptionParser {
public:
  using FlagFn = std::function<void()>;
  using ValueFn = std::function<bool(const std::string &)>;
  using PositionalFn = std::function<void(const std::string &)>;

  /// \p Tool is the program name for usage lines; \p ArgsSummary the
  /// trailing part of the usage line (e.g. "[options] file.mc").
  OptionParser(std::string Tool, std::string ArgsSummary);

  /// A boolean option: `-name` / `--name`.
  void flag(const std::string &Name, const std::string &Help, FlagFn Fn);

  /// A valued option: `-name=<arg>` / `--name=<arg>`. \p ArgSpec is the
  /// help-text placeholder ("<n>", "<none|paper|...>").
  void value(const std::string &Name, const std::string &ArgSpec,
             const std::string &Help, ValueFn Fn);

  /// Accept bare (non-dash) arguments. Without this, positionals are
  /// errors. Called once per positional, in order.
  void positional(const std::string &Placeholder, PositionalFn Fn);

  /// Extra lines appended verbatim to --help (cross-references etc.).
  void epilog(std::string Text) { Epilog = std::move(Text); }

  /// Parses argv[1..argc). -h/-help/--help print help to stderr and
  /// return Help. Unknown options and rejected values print an error
  /// plus the help text and return Error.
  ParseResult parse(int argc, char **argv);

  /// The generated help text (also printed by parse on Help/Error).
  std::string helpText() const;

private:
  struct Option {
    std::string Name;    // without dashes
    std::string ArgSpec; // empty for flags
    std::string Help;
    FlagFn Flag;
    ValueFn Value;
  };

  std::string Tool, ArgsSummary, Epilog;
  std::vector<Option> Options;
  std::string PositionalPlaceholder;
  PositionalFn Positional;

  const Option *lookup(const std::string &Name, bool Valued) const;
};

} // namespace opt
} // namespace srp

#endif // SRP_SUPPORT_OPTIONS_H
