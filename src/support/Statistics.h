//===- support/Statistics.h - Global metrics registry ----------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry of the telemetry plane: named
/// counters (`Statistic`), fixed-bucket latency `Histogram`s, and
/// point-in-time `Gauge`s. Every metric registers itself once
/// (thread-safely) under the name `<component>.<name>` — e.g.
/// `mem2reg.promoted`, `server.service-micros` — and is updated from
/// anywhere in the compiler, including concurrently from the parallel
/// workload driver and the compile server's worker pool:
///
///  - counters are relaxed atomics, so aggregate totals are deterministic
///    regardless of thread interleaving (sums and maxima are
///    order-independent);
///  - histograms shard their buckets across a small fixed set of
///    cacheline-aligned shards indexed per thread, so concurrent
///    `observe()` calls touch distinct atomics and the merged snapshot is
///    still an order-independent sum;
///  - gauges are single relaxed atomics (`set`/`add`/`sub`).
///
/// Naming convention (enforced at registration for all three kinds):
/// `component` is the short lower-case pass or subsystem name (mem2reg,
/// memssa, promotion, interp, pipeline, server, analysis); `name` is a
/// lower-case hyphenated metric, with histograms conventionally suffixed
/// by their unit (`-micros`). Declare at namespace scope in the owning
/// .cpp with SRP_STATISTIC / SRP_HISTOGRAM / SRP_GAUGE.
///
/// `srp::stats::snapshot()` returns an ordered counter name -> value map,
/// `metrics()` the full registry view (counters + histograms + gauges),
/// `metricsToPrometheusText()` renders the whole registry in the
/// Prometheus text exposition format with byte-stable ordering (served by
/// the compile server's `metrics` op), and `metricsToJson()` renders the
/// same view as JSON (the `telemetry` report section). `reset()` zeroes
/// counters between independent measurement runs; `resetForTesting()`
/// additionally clears every histogram shard and gauge so in-process
/// server restarts in tests cannot observe bleed-through.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_STATISTICS_H
#define SRP_SUPPORT_STATISTICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace srp {

/// One named, process-global, thread-safe counter.
class Statistic {
  const char *Component;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};

public:
  Statistic(const char *Component, const char *Name, const char *Desc);

  const char *component() const { return Component; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }
  /// `<component>.<name>`, the registry key.
  std::string fullName() const {
    return std::string(Component) + "." + Name;
  }

  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void set(uint64_t V) { Value.store(V, std::memory_order_relaxed); }

  Statistic &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to \p V if it is currently lower (for peak-style
  /// metrics such as coloring.max-pressure).
  void updateMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
};

/// Merged (cross-shard) view of one histogram at a point in time.
/// Buckets are non-cumulative; bucket I counts observations V with
/// upperBound(I-1) < V <= upperBound(I) (bucket 0: V <= 1; the last
/// bucket is the +Inf overflow). Prometheus rendering re-accumulates.
struct HistogramSnapshot {
  static constexpr unsigned NumBuckets = 28;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, NumBuckets> Buckets{};

  /// Inclusive upper bound of bucket \p I: 1, 2, 4, ..., 2^26, then
  /// UINT64_MAX for the overflow bucket.
  static uint64_t upperBound(unsigned I);
};

/// One named, process-global histogram with power-of-two buckets.
/// `observe()` is wait-free: it picks the calling thread's shard (threads
/// are striped over a fixed shard set) and performs three relaxed atomic
/// adds. Merging shards is done only by snapshot().
class Histogram {
  static constexpr unsigned NumShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Buckets[HistogramSnapshot::NumBuckets]{};
  };

  const char *Component;
  const char *Name;
  const char *Desc;
  Shard Shards[NumShards];

  static unsigned shardIndex();

public:
  Histogram(const char *Component, const char *Name, const char *Desc);

  const char *component() const { return Component; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }
  std::string fullName() const {
    return std::string(Component) + "." + Name;
  }

  /// Bucket index for value \p V (0 for V <= 1, last bucket for
  /// overflow). Exposed for the bucket-edge tests.
  static unsigned bucketFor(uint64_t V);

  void observe(uint64_t V);
  /// Convenience for wall-time observations: records \p Seconds in
  /// microseconds (negative values clamp to 0).
  void observeSeconds(double Seconds);

  /// Merged view across every shard. Concurrent-safe; values lag in-flight
  /// observations by at most one relaxed load each.
  HistogramSnapshot snapshot() const;

  /// Zeroes every shard (tests only; not safe concurrently with observe).
  void resetForTesting();
};

/// One named, process-global gauge (a value that goes up and down:
/// queue depth, live connections).
class Gauge {
  const char *Component;
  const char *Name;
  const char *Desc;
  std::atomic<int64_t> Value{0};

public:
  Gauge(const char *Component, const char *Name, const char *Desc);

  const char *component() const { return Component; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }
  std::string fullName() const {
    return std::string(Component) + "." + Name;
  }

  int64_t get() const { return Value.load(std::memory_order_relaxed); }
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N = 1) { Value.fetch_sub(N, std::memory_order_relaxed); }
};

/// Ordered name -> value view of the registry at one point in time.
using StatsSnapshot = std::map<std::string, uint64_t>;

/// Full registry view: every metric kind, each ordered by full name so
/// serialised output is byte-stable.
struct MetricsSnapshot {
  StatsSnapshot Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;
};

namespace stats {

/// All registered counters with their current values (including zeros, so
/// the schema is stable across runs).
StatsSnapshot snapshot();

/// All registered metrics (counters, gauges, histograms), merged and
/// ordered.
MetricsSnapshot metrics();

/// Zeroes every registered counter. Call between independent measurement
/// runs; do not call while pipelines are executing on other threads.
void reset();

/// reset() plus zeroing every histogram shard and gauge. Tests that
/// restart an in-process server would otherwise observe metric
/// bleed-through from the previous instance.
void resetForTesting();

/// Number of registered counters.
size_t numRegistered();

/// Description for a registered full name (any metric kind), or "" if
/// unknown.
std::string description(const std::string &FullName);

/// Renders \p S as a JSON object, keys sorted, two-space indented at
/// \p Indent levels. Byte-stable for equal snapshots.
std::string toJson(const StatsSnapshot &S, unsigned Indent = 0);

/// Renders the whole registry in the Prometheus text exposition format:
/// counters as `counter`, gauges as `gauge`, histograms as cumulative
/// `histogram` series with power-of-two `le` labels. Metric names are
/// mangled `srp_<component>_<name>` (dots and hyphens become
/// underscores); families are emitted in ascending full-name order and
/// every line is derived deterministically from the snapshot, so equal
/// snapshots render byte-identically.
std::string metricsToPrometheusText();

/// Renders \p M as a JSON object {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, buckets: [...]}}}, two-space
/// indented at \p Indent levels. Byte-stable for equal snapshots.
std::string metricsToJson(const MetricsSnapshot &M, unsigned Indent = 0);

} // namespace stats

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace srp

/// Declares (at namespace or function scope) a registered statistic.
#define SRP_STATISTIC(Var, Component, Name, Desc)                            \
  static ::srp::Statistic Var(Component, Name, Desc)

/// Declares a registered histogram (same naming rules as SRP_STATISTIC).
#define SRP_HISTOGRAM(Var, Component, Name, Desc)                            \
  static ::srp::Histogram Var(Component, Name, Desc)

/// Declares a registered gauge (same naming rules as SRP_STATISTIC).
#define SRP_GAUGE(Var, Component, Name, Desc)                                \
  static ::srp::Gauge Var(Component, Name, Desc)

#endif // SRP_SUPPORT_STATISTICS_H
