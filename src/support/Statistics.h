//===- support/Statistics.h - Global pass statistics registry --*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style named counters for the instrumented pass manager. A
/// `Statistic` registers itself once (thread-safely) in a process-wide
/// registry under the name `<component>.<name>` — e.g. `mem2reg.promoted`
/// or `coloring.max-pressure` — and is bumped from anywhere in the
/// compiler, including concurrently from the parallel workload driver:
/// counters are relaxed atomics, so aggregate totals are deterministic
/// regardless of thread interleaving (sums and maxima are
/// order-independent).
///
/// Naming convention: `component` is the short lower-case pass or
/// subsystem name (mem2reg, memssa, memopt, promotion, loop-promotion,
/// ssa-update, coloring, interp, pipeline); `name` is a lower-case
/// hyphenated metric. Declare counters at namespace scope in the pass's
/// .cpp with SRP_STATISTIC.
///
/// `srp::stats::snapshot()` returns an ordered name -> value map (ordered
/// so that serialised output is byte-stable), `reset()` zeroes every
/// counter between independent runs, and `toJson()` renders a snapshot as
/// a JSON object.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_STATISTICS_H
#define SRP_SUPPORT_STATISTICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace srp {

/// One named, process-global, thread-safe counter.
class Statistic {
  const char *Component;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};

public:
  Statistic(const char *Component, const char *Name, const char *Desc);

  const char *component() const { return Component; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }
  /// `<component>.<name>`, the registry key.
  std::string fullName() const {
    return std::string(Component) + "." + Name;
  }

  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void set(uint64_t V) { Value.store(V, std::memory_order_relaxed); }

  Statistic &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to \p V if it is currently lower (for peak-style
  /// metrics such as coloring.max-pressure).
  void updateMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
};

/// Ordered name -> value view of the registry at one point in time.
using StatsSnapshot = std::map<std::string, uint64_t>;

namespace stats {

/// All registered counters with their current values (including zeros, so
/// the schema is stable across runs).
StatsSnapshot snapshot();

/// Zeroes every registered counter. Call between independent measurement
/// runs; do not call while pipelines are executing on other threads.
void reset();

/// Number of registered counters.
size_t numRegistered();

/// Description for a registered full name, or "" if unknown.
std::string description(const std::string &FullName);

/// Renders \p S as a JSON object, keys sorted, two-space indented at
/// \p Indent levels. Byte-stable for equal snapshots.
std::string toJson(const StatsSnapshot &S, unsigned Indent = 0);

} // namespace stats

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace srp

/// Declares (at namespace or function scope) a registered statistic.
#define SRP_STATISTIC(Var, Component, Name, Desc)                            \
  static ::srp::Statistic Var(Component, Name, Desc)

#endif // SRP_SUPPORT_STATISTICS_H
