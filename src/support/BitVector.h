//===- support/BitVector.h - Dense bit vector ------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, dynamically sized bit vector with word-at-a-time set operations.
/// Used for dataflow sets (liveness, dominance) where the universe is dense.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_BITVECTOR_H
#define SRP_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace srp {

class BitVector {
  static constexpr unsigned BitsPerWord = 64;

  std::vector<uint64_t> Words;
  unsigned NumBits = 0;

  static unsigned wordIdx(unsigned Bit) { return Bit / BitsPerWord; }
  static uint64_t mask(unsigned Bit) {
    return uint64_t(1) << (Bit % BitsPerWord);
  }

  /// Clears bits beyond NumBits in the last word so whole-word operations
  /// (count, equality) stay exact.
  void clearUnusedBits() {
    if (unsigned Rem = NumBits % BitsPerWord; Rem != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Rem) - 1;
  }

public:
  BitVector() = default;
  explicit BitVector(unsigned N, bool Value = false) { resize(N, Value); }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  void resize(unsigned N, bool Value = false) {
    unsigned NeededWords = (N + BitsPerWord - 1) / BitsPerWord;
    if (Value && N > NumBits) {
      // Make the tail of the current last word 1s before growing.
      if (!Words.empty() && NumBits % BitsPerWord != 0)
        Words.back() |= ~((uint64_t(1) << (NumBits % BitsPerWord)) - 1);
      Words.resize(NeededWords, ~uint64_t(0));
    } else {
      Words.resize(NeededWords, 0);
    }
    NumBits = N;
    clearUnusedBits();
  }

  void clear() {
    Words.clear();
    NumBits = 0;
  }

  bool test(unsigned Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[wordIdx(Bit)] & mask(Bit)) != 0;
  }

  bool operator[](unsigned Bit) const { return test(Bit); }

  void set(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[wordIdx(Bit)] |= mask(Bit);
  }

  void reset(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[wordIdx(Bit)] &= ~mask(Bit);
  }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Set union; both operands must have the same size. Returns true if this
  /// vector changed (useful for dataflow fixpoints).
  bool unionWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set intersection; both operands must have the same size.
  bool intersectWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Removes every bit set in \p RHS from this vector.
  bool subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Returns true if this vector and \p RHS share any set bit.
  bool intersects(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  /// Index of the first set bit, or -1 when none.
  int findFirst() const {
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return static_cast<int>(I * BitsPerWord +
                                __builtin_ctzll(Words[I]));
    return -1;
  }

  /// Index of the first set bit strictly after \p Prev, or -1 when none.
  int findNext(unsigned Prev) const {
    unsigned Bit = Prev + 1;
    if (Bit >= NumBits)
      return -1;
    unsigned W = wordIdx(Bit);
    uint64_t Word = Words[W] & ~(mask(Bit) - 1);
    while (true) {
      if (Word)
        return static_cast<int>(W * BitsPerWord + __builtin_ctzll(Word));
      if (++W == Words.size())
        return -1;
      Word = Words[W];
    }
  }
};

} // namespace srp

#endif // SRP_SUPPORT_BITVECTOR_H
