//===- support/JSON.cpp - Minimal JSON value, parser, writer -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace srp;
using namespace srp::json;

void Value::set(const std::string &Key, Value V) {
  K = Kind::Object;
  for (auto &[Name, Existing] : Obj)
    if (Name == Key) {
      Existing = std::move(V);
      return;
    }
  Obj.emplace_back(Key, std::move(V));
}

std::string srp::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string Value::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Int:
    return std::to_string(I);
  case Kind::Double: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    return Buf;
  }
  case Kind::String:
    return "\"" + escape(S) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t N = 0; N != Arr.size(); ++N) {
      if (N)
        Out += ",";
      Out += Arr[N].dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t N = 0; N != Obj.size(); ++N) {
      if (N)
        Out += ",";
      Out += "\"" + escape(Obj[N].first) + "\":" + Obj[N].second.dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a byte range. Depth-limited so hostile
/// protocol input cannot blow the stack.
class Parser {
  const char *P;
  const char *End;
  const char *Begin;
  std::string &Err;
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = "offset " + std::to_string(P - Begin) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (P != End &&
           (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    const char *Q = P;
    while (*Lit) {
      if (Q == End || *Q != *Lit)
        return fail("invalid literal");
      ++Q;
      ++Lit;
    }
    P = Q;
    return true;
  }

  bool parseString(std::string &Out) {
    // Caller consumed the opening quote check; *P == '"'.
    ++P;
    while (P != End && *P != '"') {
      char C = *P;
      if (C != '\\') {
        Out += C;
        ++P;
        continue;
      }
      ++P;
      if (P == End)
        return fail("unterminated escape");
      switch (*P) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (End - P < 5)
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int H = 1; H <= 4; ++H) {
          char X = P[H];
          Code <<= 4;
          if (X >= '0' && X <= '9')
            Code |= unsigned(X - '0');
          else if (X >= 'a' && X <= 'f')
            Code |= unsigned(X - 'a' + 10);
          else if (X >= 'A' && X <= 'F')
            Code |= unsigned(X - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // Encode as UTF-8 (no surrogate-pair handling; the protocol
        // only escapes control characters this way).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        P += 4;
        break;
      }
      default:
        return fail("unknown escape");
      }
      ++P;
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseNumber(Value &Out) {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    bool IsDouble = false;
    while (P != End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                        *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                        *P == '-')) {
      if (*P == '.' || *P == 'e' || *P == 'E')
        IsDouble = true;
      ++P;
    }
    std::string Num(Start, P);
    if (Num.empty() || Num == "-")
      return fail("invalid number");
    if (!IsDouble) {
      errno = 0;
      char *NumEnd = nullptr;
      long long V = std::strtoll(Num.c_str(), &NumEnd, 10);
      if (errno == 0 && NumEnd && *NumEnd == '\0') {
        Out = Value::integer(V);
        return true;
      }
    }
    Out = Value::number(std::strtod(Num.c_str(), nullptr));
    return true;
  }

public:
  Parser(const std::string &Text, std::string &Err)
      : P(Text.data()), End(Text.data() + Text.size()), Begin(Text.data()),
        Err(Err) {}

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case 'n':
      Out = Value::null();
      return literal("null");
    case 't':
      Out = Value::boolean(true);
      return literal("true");
    case 'f':
      Out = Value::boolean(false);
      return literal("false");
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::string(std::move(S));
      return true;
    }
    case '[': {
      ++P;
      Out = Value::array();
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      while (true) {
        Value Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (P == End)
          return fail("unterminated array");
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == ']') {
          ++P;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '{': {
      ++P;
      Out = Value::object();
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      while (true) {
        skipWs();
        if (P == End || *P != '"')
          return fail("expected member name");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (P == End || *P != ':')
          return fail("expected ':'");
        ++P;
        Value Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.set(Key, std::move(Member));
        skipWs();
        if (P == End)
          return fail("unterminated object");
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == '}') {
          ++P;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    default:
      return parseNumber(Out);
    }
  }

  bool atEnd() {
    skipWs();
    return P == End;
  }
};

} // namespace

bool srp::json::parse(const std::string &Text, Value &Out,
                      std::string &Err) {
  Err.clear();
  Parser P(Text, Err);
  if (!P.parseValue(Out, 0))
    return false;
  if (!P.atEnd()) {
    Err = "trailing garbage after value";
    return false;
  }
  return true;
}
