//===- analysis/CFGCanonicalize.h - Promotion-ready CFG shape --*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Puts a function's CFG in the shape the promotion algorithm assumes
/// (§4.1): no interval entry or exit edge is critical, every proper interval
/// has a dedicated preheader block, and the function entry block has no
/// predecessors. Runs to a fixpoint (splitting can change the interval
/// tree only by adding trivial blocks) and returns the final analyses.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_CFGCANONICALIZE_H
#define SRP_ANALYSIS_CFGCANONICALIZE_H

#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/Intervals.h"

namespace srp {

class Function;

/// Result of canonicalisation: fresh dominator tree and interval tree with
/// preheaders assigned.
struct CanonicalCFG {
  DominatorTree DT;
  IntervalTree IT;
};

/// Canonicalises \p F in place. Safe to run before or after memory SSA
/// construction (phi incoming lists are maintained), but the standard
/// pipeline runs it before.
CanonicalCFG canonicalize(Function &F);

/// Cache-aware variant: the fixpoint pulls dominator/interval trees from
/// \p AM (edge splits invalidate them through the IRChangeListener hook,
/// so unchanged rounds reuse the cached trees) and, on return, \p F is
/// marked canonical in the manager — from then on every IntervalTree
/// rebuild assigns promotion preheaders. The cached trees are current
/// when this returns; clients fetch them with AM.get<>().
void canonicalize(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_ANALYSIS_CFGCANONICALIZE_H
