//===- analysis/Diagnostics.h - Structured diagnostics ---------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic engine behind the IR checkers and the
/// source-level lints. A Diagnostic carries a stable check ID (the
/// catalogue lives in docs/STATIC_ANALYSIS.md), a severity, an IR
/// location (function / block / instruction index + printed snippet), the
/// message, and an optional fix-it hint. DiagnosticEngine collects them
/// with per-severity counts; renderers produce the one-line text form
/// (`error[ssa-use-dominance] f:bb3:#2: ...`) and a byte-stable JSON
/// array for `srpc --analyze --diag-json`.
///
/// This replaces the old `std::vector<std::string>` verifier API: the
/// legacy `srp::verify()` entry points are now thin shims that render
/// diagnostics back into strings (see analysis/Verifier.h).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_DIAGNOSTICS_H
#define SRP_ANALYSIS_DIAGNOSTICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace srp {

class BasicBlock;
class Instruction;

enum class DiagSeverity : uint8_t { Note, Warning, Error };
inline constexpr unsigned NumDiagSeverities = 3;

/// Stable spelling used by the text and JSON renderers
/// ("note" / "warning" / "error").
const char *diagSeverityName(DiagSeverity S);

/// Where in the IR a diagnostic points. Granularity degrades gracefully:
/// a module-level problem leaves everything empty, a function-level one
/// fills only Function, and an instruction-level one has all four fields.
struct DiagLocation {
  std::string Function;  ///< Enclosing function ("" = module scope).
  std::string Block;     ///< Basic block name ("" = function scope).
  int InstIndex = -1;    ///< Index within the block; -1 = no instruction.
  std::string Snippet;   ///< Printed instruction (context for humans).

  bool hasInstruction() const { return InstIndex >= 0; }

  /// Builds an instruction-granular location (function/block/index and
  /// the printed instruction). \p I must be parented.
  static DiagLocation of(const Instruction &I);
  /// Block-granular location.
  static DiagLocation of(const BasicBlock &BB);
  /// Function-granular location.
  static DiagLocation inFunction(const std::string &FunctionName);
};

/// One finding. CheckID is the stable identifier of the rule that fired
/// ("cfg-terminator", "lint-dead-store", ...); the catalogue with layer
/// assignments is in docs/STATIC_ANALYSIS.md.
struct Diagnostic {
  std::string CheckID;
  DiagSeverity Severity = DiagSeverity::Error;
  DiagLocation Loc;
  std::string Message;
  std::string FixIt;  ///< Optional remediation hint ("" = none).
};

/// Collects diagnostics and keeps per-severity counts. Checkers append
/// through report(); drivers inspect hasErrors() to decide whether a
/// pipeline run (or an `srpc --analyze` invocation) failed.
class DiagnosticEngine {
  std::vector<Diagnostic> Diags;
  std::array<unsigned, NumDiagSeverities> Counts{};

public:
  void report(Diagnostic D);

  /// Convenience for the common instruction-level error.
  void error(std::string CheckID, DiagLocation Loc, std::string Message,
             std::string FixIt = "");
  void warning(std::string CheckID, DiagLocation Loc, std::string Message,
               std::string FixIt = "");

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t size() const { return Diags.size(); }
  bool empty() const { return Diags.empty(); }

  unsigned count(DiagSeverity S) const {
    return Counts[static_cast<unsigned>(S)];
  }
  unsigned errors() const { return count(DiagSeverity::Error); }
  unsigned warnings() const { return count(DiagSeverity::Warning); }
  bool hasErrors() const { return errors() != 0; }

  /// True if any collected diagnostic carries \p CheckID.
  bool has(const std::string &CheckID) const;

  void clear();
};

/// One-line text rendering:
///   `error[cfg-terminator] f:bb2: block has 0 terminators`
/// with the snippet appended as `| <instr>` and the fix-it as
/// `(fix: ...)` when present.
std::string toText(const Diagnostic &D);

/// Renders every diagnostic, one per line (trailing newline included;
/// empty string for no diagnostics).
std::string diagnosticsToText(const std::vector<Diagnostic> &Diags);

/// Byte-stable JSON array of diagnostic objects, two-space indented at
/// \p Indent levels. Schema (docs/STATIC_ANALYSIS.md):
///   [{"check": ..., "severity": ..., "function": ..., "block": ...,
///     "instruction_index": ..., "snippet": ..., "message": ...,
///     "fixit": ...}, ...]
std::string diagnosticsToJson(const std::vector<Diagnostic> &Diags,
                              unsigned Indent = 0);

} // namespace srp

#endif // SRP_ANALYSIS_DIAGNOSTICS_H
