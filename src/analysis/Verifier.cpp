//===- analysis/Verifier.cpp - IR well-formedness checks -----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include <algorithm>
#include <sstream>
#include <unordered_map>

using namespace srp;

namespace {

class FunctionVerifier {
  Function &F;
  std::vector<std::string> &Errors;
  DominatorTree DT;

  void error(const std::string &Msg) { Errors.push_back(F.name() + ": " + Msg); }

  void checkStructure() {
    BasicBlock *Entry = F.entry();
    if (!Entry->preds().empty())
      error("entry block has predecessors");

    for (BasicBlock *BB : F.blocks()) {
      unsigned Terms = 0;
      for (auto &I : *BB) {
        if (I->isTerminator()) {
          ++Terms;
          if (I.get() != BB->back())
            error("terminator not at end of block " + BB->name());
        }
      }
      if (Terms != 1)
        error("block " + BB->name() + " has " + std::to_string(Terms) +
              " terminators");
    }
  }

  void checkEdges() {
    // succ -> pred consistency (multiset: an edge may appear twice if a
    // condbr has identical targets, which canonicalisation removes but raw
    // IR may contain).
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
        ExpectedPreds;
    for (BasicBlock *BB : F.blocks())
      for (BasicBlock *S : BB->succs())
        ExpectedPreds[S].push_back(BB);
    for (BasicBlock *BB : F.blocks()) {
      std::vector<BasicBlock *> Got = BB->preds();
      std::vector<BasicBlock *> Want = ExpectedPreds[BB];
      std::sort(Got.begin(), Got.end());
      std::sort(Want.begin(), Want.end());
      if (Got != Want)
        error("pred list of " + BB->name() + " inconsistent with edges");
    }
  }

  void checkPhis() {
    for (BasicBlock *BB : F.blocks()) {
      std::vector<BasicBlock *> Preds = BB->preds();
      std::sort(Preds.begin(), Preds.end());
      bool SeenNonPhi = false;
      for (auto &I : *BB) {
        bool IsPhi = isa<PhiInst>(I.get()) || isa<MemPhiInst>(I.get());
        if (IsPhi && SeenNonPhi)
          error("phi after non-phi in " + BB->name());
        if (!IsPhi) {
          SeenNonPhi = true;
          continue;
        }
        std::vector<BasicBlock *> Incoming;
        if (auto *P = dyn_cast<PhiInst>(I.get())) {
          for (unsigned Idx = 0; Idx != P->numIncoming(); ++Idx)
            Incoming.push_back(P->incomingBlock(Idx));
        } else {
          auto *MP = cast<MemPhiInst>(I.get());
          for (unsigned Idx = 0; Idx != MP->numIncoming(); ++Idx)
            Incoming.push_back(MP->incomingBlock(Idx));
          if (!MP->target())
            error("memphi without target in " + BB->name());
          else if (MP->target()->def() != I.get())
            error("memphi target def link broken in " + BB->name());
        }
        std::sort(Incoming.begin(), Incoming.end());
        if (Incoming != Preds)
          error("phi incoming blocks mismatch preds in " + BB->name() +
                ": " + toString(*I));
      }
    }
  }

  /// The block/instruction at which a value use must be dominated, given
  /// phi semantics (an incoming value is live at the end of the incoming
  /// block).
  void checkUseDominance(Instruction *User, Value *V, int PhiIncoming,
                         bool IsMem) {
    Instruction *DefInst = nullptr;
    if (auto *I = dyn_cast<Instruction>(V))
      DefInst = I;
    else if (auto *MN = dyn_cast<MemoryName>(V))
      DefInst = MN->def(); // null for the entry version (always dominates)
    if (!DefInst)
      return; // constants, arguments, undef, entry memory versions

    if (!DT.contains(DefInst->parent()) || !DT.contains(User->parent()))
      return; // unreachable code is not checked

    if (PhiIncoming >= 0) {
      BasicBlock *In = nullptr;
      if (auto *P = dyn_cast<PhiInst>(User))
        In = P->incomingBlock(static_cast<unsigned>(PhiIncoming));
      else
        In = cast<MemPhiInst>(User)->incomingBlock(
            static_cast<unsigned>(PhiIncoming));
      if (!DT.contains(In))
        return;
      if (!DT.dominates(DefInst->parent(), In)) {
        error("phi incoming value " + V->referenceString() +
              " does not dominate edge from " + In->name());
      }
      return;
    }
    if (!DT.dominates(DefInst, User))
      error(std::string(IsMem ? "memory " : "") + "use of " +
            V->referenceString() + " in '" + toString(*User) +
            "' not dominated by its definition");
  }

  void checkSSA() {
    for (BasicBlock *BB : F.blocks()) {
      for (auto &I : *BB) {
        bool IsPhi = isa<PhiInst>(I.get()) || isa<MemPhiInst>(I.get());
        for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx)
          checkUseDominance(I.get(), I->operand(Idx),
                            IsPhi ? static_cast<int>(Idx) : -1, false);
        for (unsigned Idx = 0; Idx != I->numMemOperands(); ++Idx)
          checkUseDominance(I.get(), I->memOperand(Idx),
                            IsPhi ? static_cast<int>(Idx) : -1, true);
        for (MemoryName *D : I->memDefs())
          if (D->def() != I.get())
            error("memory def link broken: " + D->name());
      }
    }
  }

  void checkUseLists() {
    for (BasicBlock *BB : F.blocks()) {
      for (auto &I : *BB) {
        for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx) {
          const auto &Uses = I->operand(Idx)->uses();
          Use U{I.get(), Idx, false};
          if (std::find(Uses.begin(), Uses.end(), U) == Uses.end())
            error("operand use not registered: " + toString(*I));
        }
        for (unsigned Idx = 0; Idx != I->numMemOperands(); ++Idx) {
          const auto &Uses = I->memOperand(Idx)->uses();
          Use U{I.get(), Idx, true};
          if (std::find(Uses.begin(), Uses.end(), U) == Uses.end())
            error("memory operand use not registered: " + toString(*I));
        }
      }
    }
  }

public:
  FunctionVerifier(Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  void run() {
    if (F.empty()) {
      error("function has no blocks");
      return;
    }
    checkStructure();
    checkEdges();
    if (!Errors.empty())
      return; // dominator computation requires a sane CFG
    DT.recompute(F);
    checkPhis();
    checkSSA();
    checkUseLists();
  }
};

} // namespace

std::vector<std::string> srp::verify(Function &F) {
  std::vector<std::string> Errors;
  FunctionVerifier(F, Errors).run();
  return Errors;
}

std::vector<std::string> srp::verify(Module &M) {
  std::vector<std::string> Errors;
  for (const auto &F : M.functions()) {
    auto E = verify(*F);
    Errors.insert(Errors.end(), E.begin(), E.end());
  }
  return Errors;
}
