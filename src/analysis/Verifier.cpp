//===- analysis/Verifier.cpp - IR well-formedness checks -----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "analysis/StaticAnalysis.h"
#include "ir/Module.h"

using namespace srp;

// The legacy string API is a shim over the layered checker framework at
// Fast strictness (the historical verifier's coverage). Messages keep
// their old wording; the structured form (check ID, location, fix-it) is
// available through runChecks directly.

static void renderErrors(const DiagnosticEngine &DE,
                         std::vector<std::string> &Errors) {
  for (const Diagnostic &D : DE.diagnostics())
    if (D.Severity == DiagSeverity::Error)
      Errors.push_back(D.Loc.Function + ": " + D.Message);
}

std::vector<std::string> srp::verify(Function &F) {
  DiagnosticEngine DE;
  runChecks(F, DE, Strictness::Fast);
  std::vector<std::string> Errors;
  renderErrors(DE, Errors);
  return Errors;
}

std::vector<std::string> srp::verify(Module &M) {
  DiagnosticEngine DE;
  runChecks(M, DE, Strictness::Fast);
  std::vector<std::string> Errors;
  renderErrors(DE, Errors);
  return Errors;
}
