//===- analysis/Dominators.cpp - Dominator tree and frontiers ------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "ir/Function.h"
#include <algorithm>
#include <cassert>

using namespace srp;

void DominatorTree::recompute(Function &Fn) {
  F = &Fn;
  PostOrder.clear();
  RPO.clear();
  RPONum.clear();
  IDom.clear();
  Children.clear();
  Frontier.clear();
  DfsIn.clear();
  DfsOut.clear();

  computePostOrder();
  computeIDoms();
  computeTreeNumbers();
  computeFrontiers();
}

void DominatorTree::computePostOrder() {
  // Iterative DFS from the entry block.
  std::unordered_map<const BasicBlock *, bool> Visited;
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    unsigned Next = 0;
  };
  std::vector<Frame> Stack;
  BasicBlock *Entry = F->entry();
  Visited[Entry] = true;
  Stack.push_back({Entry, Entry->succs()});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next == Top.Succs.size()) {
      PostOrder.push_back(Top.BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *S = Top.Succs[Top.Next++];
    if (!Visited[S]) {
      Visited[S] = true;
      Stack.push_back({S, S->succs()});
    }
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RPONum[RPO[I]] = I;
}

void DominatorTree::computeIDoms() {
  // Cooper-Harvey-Kennedy: iterate intersect() over RPO until fixpoint.
  BasicBlock *Entry = F->entry();
  IDom[Entry] = Entry; // temporarily self, fixed up below

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPONum.at(A) > RPONum.at(B))
        A = IDom.at(A);
      while (RPONum.at(B) > RPONum.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : BB->preds()) {
        if (!RPONum.count(P) || !IDom.count(P))
          continue; // unreachable or not yet processed
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  IDom[Entry] = nullptr;
  for (auto &[BB, Dom] : IDom)
    if (Dom)
      Children[Dom].push_back(const_cast<BasicBlock *>(BB));
  // Deterministic child order.
  for (auto &[BB, Kids] : Children)
    std::sort(Kids.begin(), Kids.end(),
              [&](BasicBlock *A, BasicBlock *B) {
                return RPONum.at(A) < RPONum.at(B);
              });
}

void DominatorTree::computeTreeNumbers() {
  unsigned Counter = 0;
  struct Frame {
    BasicBlock *BB;
    unsigned NextChild = 0;
  };
  std::vector<Frame> Stack;
  BasicBlock *Entry = F->entry();
  DfsIn[Entry] = Counter++;
  Stack.push_back({Entry});
  static const std::vector<BasicBlock *> Empty;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    auto It = Children.find(Top.BB);
    const std::vector<BasicBlock *> &Kids =
        It == Children.end() ? Empty : It->second;
    if (Top.NextChild == Kids.size()) {
      DfsOut[Top.BB] = Counter++;
      Stack.pop_back();
      continue;
    }
    BasicBlock *Child = Kids[Top.NextChild++];
    DfsIn[Child] = Counter++;
    Stack.push_back({Child});
  }
}

void DominatorTree::computeFrontiers() {
  // Cooper-Harvey-Kennedy dominance frontier computation. Join blocks are
  // those with two or more reachable predecessors — plus the entry block
  // when it has any predecessor at all (un-canonicalised CFGs may loop
  // back to the entry, making it part of its own frontier).
  for (BasicBlock *BB : RPO) {
    unsigned ReachablePreds = 0;
    for (BasicBlock *P : BB->preds())
      if (contains(P))
        ++ReachablePreds;
    bool IsJoin = ReachablePreds >= 2 ||
                  (BB == F->entry() && ReachablePreds >= 1);
    if (!IsJoin)
      continue;
    for (BasicBlock *P : BB->preds()) {
      if (!contains(P))
        continue;
      BasicBlock *Runner = P;
      while (Runner && Runner != IDom.at(BB)) {
        Frontier[Runner].push_back(BB);
        Runner = IDom.at(Runner);
      }
    }
  }
  // Deduplicate while keeping deterministic order.
  for (auto &[BB, DF] : Frontier) {
    std::sort(DF.begin(), DF.end(), [&](BasicBlock *A, BasicBlock *B) {
      return RPONum.at(A) < RPONum.at(B);
    });
    DF.erase(std::unique(DF.begin(), DF.end()), DF.end());
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  assert(It != IDom.end() && "block not in dominator tree");
  return It->second;
}

const std::vector<BasicBlock *> &
DominatorTree::children(const BasicBlock *BB) const {
  static const std::vector<BasicBlock *> Empty;
  auto It = Children.find(BB);
  return It == Children.end() ? Empty : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  assert(contains(A) && contains(B) && "block not in dominator tree");
  return DfsIn.at(A) <= DfsIn.at(B) && DfsOut.at(B) <= DfsOut.at(A);
}

bool DominatorTree::strictlyDominates(const BasicBlock *A,
                                      const BasicBlock *B) const {
  return A != B && dominates(A, B);
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  const BasicBlock *ABB = A->parent(), *BBB = B->parent();
  if (ABB == BBB)
    return ABB->comesBefore(A, B);
  return strictlyDominates(ABB, BBB);
}

BasicBlock *DominatorTree::commonDominator(BasicBlock *A,
                                           BasicBlock *B) const {
  assert(contains(A) && contains(B) && "block not in dominator tree");
  while (A != B) {
    if (RPONum.at(A) > RPONum.at(B))
      A = idom(A);
    else
      B = idom(B);
  }
  return A;
}

const std::vector<BasicBlock *> &
DominatorTree::frontier(const BasicBlock *BB) const {
  static const std::vector<BasicBlock *> Empty;
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? Empty : It->second;
}

std::vector<BasicBlock *> DominatorTree::iteratedFrontier(
    const std::vector<BasicBlock *> &Defs) const {
  std::vector<BasicBlock *> Result;
  std::unordered_map<const BasicBlock *, bool> InResult;
  std::vector<BasicBlock *> Work;
  std::unordered_map<const BasicBlock *, bool> Queued;
  for (BasicBlock *BB : Defs) {
    if (!contains(BB) || Queued[BB])
      continue;
    Queued[BB] = true;
    Work.push_back(BB);
  }
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *DF : frontier(BB)) {
      if (InResult[DF])
        continue;
      InResult[DF] = true;
      Result.push_back(DF);
      if (!Queued[DF]) {
        Queued[DF] = true;
        Work.push_back(DF);
      }
    }
  }
  std::sort(Result.begin(), Result.end(),
            [&](BasicBlock *A, BasicBlock *B) {
              return RPONum.at(A) < RPONum.at(B);
            });
  return Result;
}

unsigned DominatorTree::rpoNumber(const BasicBlock *BB) const {
  auto It = RPONum.find(BB);
  assert(It != RPONum.end() && "block not reachable");
  return It->second;
}
