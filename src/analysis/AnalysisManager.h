//===- analysis/AnalysisManager.h - Cached function analyses ---*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style per-function analysis cache with explicit, precise
/// invalidation. The promotion pipeline consumes dominators, interval
/// trees, memory SSA, profile data, static frequency estimates and
/// liveness; before this layer every client recomputed them ad hoc (the
/// same dominator tree was built up to five times per function per run).
///
/// Three mechanisms keep the cache sound:
///
///  1. `PreservedAnalyses` — every function pass run under the pass
///     manager returns the set of analyses it kept valid; everything else
///     is invalidated for that function (see pipeline/PassManager.h).
///  2. The `IRChangeListener` hook (ir/CFGEdit.h) — CFG surgery
///     (`splitEdge`, `redirectPredsToNewBlock`) and the incremental SSA
///     updater report edits as they happen, so transforms that mutate the
///     CFG mid-pass (canonicalisation's fixpoint, superblock tail
///     splitting) invalidate precisely instead of wholesale.
///  3. Retire-don't-free — invalidated analysis instances are moved to a
///     graveyard owned by the manager and released only by `clear()` (or
///     destruction), so snapshots taken before a mutation remain *alive*
///     (readable, never dangling) while `AnalysisHandle::stale()` reports
///     that they are out of date.
///
/// Analyses register through `AnalysisTraits<T>` specialisations declared
/// in their own headers (memory SSA in ssa/, liveness in regalloc/, ...),
/// which keeps the library layering acyclic: this header only knows the
/// same-layer analyses (dominators, intervals); higher-layer builds are
/// instantiated in the calling translation unit.
///
/// Caching can be force-disabled for differential testing with the
/// `SRP_DISABLE_ANALYSIS_CACHE=1` environment knob or programmatically via
/// `setCachingEnabled(false)`: every request then rebuilds (and counts a
/// miss), but results and lifetimes are otherwise identical.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_ANALYSISMANAGER_H
#define SRP_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/Dominators.h"
#include "analysis/Intervals.h"
#include "ir/CFGEdit.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace srp {

class Function;
class Module;
class ProfileInfo;

/// Identity of every cacheable analysis. `Profile` (execution-derived
/// block frequencies) is module-wide — one interpreter run covers every
/// function — and is managed through setExecution()/executionProfile();
/// the rest are per-function slots served by get<T>().
enum class AnalysisKind : unsigned {
  Dominators,      ///< DominatorTree (analysis/Dominators.h)
  Intervals,       ///< IntervalTree (analysis/Intervals.h)
  MemorySSA,       ///< MemorySSAInfo (ssa/MemorySSA.h): built form + aliases
  Profile,         ///< ProfileInfo from a measured execution (module-wide)
  StaticFrequency, ///< StaticFrequency estimate (profile/ProfileInfo.h)
  Liveness,        ///< Liveness (regalloc/Liveness.h)
  Bytecode,        ///< DecodedFunction (interp/Bytecode.h): interpreter tier
  NativeCode,      ///< jit::NativeCode (jit/NativeJIT.h): x86-64 baseline tier
};
inline constexpr unsigned NumAnalysisKinds = 8;

/// Short stable spelling used in statistics and JSON ("dominators", ...).
const char *analysisKindName(AnalysisKind K);

/// The set of analyses a pass kept valid, returned by every function pass.
/// Start from all() or none() and chain preserve()/abandon(). Invalidation
/// through a preserved-set is still dependency-aware: abandoning
/// Dominators takes Intervals and StaticFrequency with it (see
/// AnalysisManager::invalidate).
class PreservedAnalyses {
  unsigned Mask = 0; // bit set = preserved
  static constexpr unsigned AllMask = (1u << NumAnalysisKinds) - 1;

  explicit PreservedAnalyses(unsigned Mask) : Mask(Mask) {}

public:
  PreservedAnalyses() = default;

  static PreservedAnalyses all() { return PreservedAnalyses(AllMask); }
  static PreservedAnalyses none() { return PreservedAnalyses(0); }

  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= 1u << static_cast<unsigned>(K);
    return *this;
  }
  PreservedAnalyses &abandon(AnalysisKind K) {
    Mask &= ~(1u << static_cast<unsigned>(K));
    return *this;
  }
  bool isPreserved(AnalysisKind K) const {
    return Mask & (1u << static_cast<unsigned>(K));
  }
  bool areAllPreserved() const { return Mask == AllMask; }
  bool areNonePreserved() const { return Mask == 0; }

  /// Keeps only what both sets preserve (sequencing two transforms).
  PreservedAnalyses &intersect(const PreservedAnalyses &O) {
    Mask &= O.Mask;
    return *this;
  }
};

class AnalysisManager;

/// Registration point for cacheable analyses. Specialisations provide:
///   static constexpr AnalysisKind Kind;
///   static std::unique_ptr<T> build(Function &F, AnalysisManager &AM);
/// build() may recursively request other analyses through \p AM.
template <class T> struct AnalysisTraits;

/// Per-run accounting, also mirrored into the global statistics registry
/// (analysis.cache-hits, analysis.dominators-built, ...). Snapshots ride
/// on PipelineResult and feed the `analysis` section of `--stats-json`.
struct AnalysisCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Invalidations = 0;   ///< Slots actually dropped (cached only).
  uint64_t CFGEditEvents = 0;   ///< cfgChanged notifications received.
  uint64_t SSAEditEvents = 0;   ///< ssaEdited notifications received.
  std::array<uint64_t, NumAnalysisKinds> Builds{}; ///< Constructions by kind.

  uint64_t builds(AnalysisKind K) const {
    return Builds[static_cast<unsigned>(K)];
  }

  AnalysisCacheStats &operator+=(const AnalysisCacheStats &R) {
    Hits += R.Hits;
    Misses += R.Misses;
    Invalidations += R.Invalidations;
    CFGEditEvents += R.CFGEditEvents;
    SSAEditEvents += R.SSAEditEvents;
    for (unsigned I = 0; I != NumAnalysisKinds; ++I)
      Builds[I] += R.Builds[I];
    return *this;
  }
};

/// Renders \p S as a JSON object ({"cache_hits": ..., "built": {...}}),
/// two-space indented at \p Indent levels; byte-stable.
std::string analysisCacheStatsToJson(const AnalysisCacheStats &S,
                                     unsigned Indent = 0);

/// A checked reference to a cached analysis: remembers the slot generation
/// at acquisition time, so consumers holding results across a mutation can
/// detect staleness instead of silently reading outdated structure. The
/// pointee stays alive (retire-don't-free) until AnalysisManager::clear(),
/// but get() refuses to hand it out once stale.
template <class T> class AnalysisHandle {
  const AnalysisManager *AM = nullptr;
  Function *F = nullptr;
  T *Ptr = nullptr;
  uint64_t Gen = 0;

  friend class AnalysisManager;
  AnalysisHandle(const AnalysisManager &AM, Function &F, T *Ptr, uint64_t Gen)
      : AM(&AM), F(&F), Ptr(Ptr), Gen(Gen) {}

public:
  AnalysisHandle() = default;

  bool valid() const { return Ptr != nullptr; }
  inline bool stale() const;

  /// The analysis, or null once it has been invalidated or rebuilt.
  T *get() const { return stale() ? nullptr : Ptr; }
  T &operator*() const {
    assert(!stale() && "dereferencing a stale analysis handle");
    return *Ptr;
  }
  T *operator->() const { return &operator*(); }
};

/// The cache itself. One instance per pipeline run (single-threaded, like
/// the pass manager); registers itself as an IRChangeListener for its
/// lifetime so IR edits on this thread invalidate the right entries.
class AnalysisManager final : public IRChangeListener {
public:
  /// \p M restricts listener-driven invalidation to functions of one
  /// module (null accepts any function — fine for single-module use).
  explicit AnalysisManager(Module *M = nullptr);
  ~AnalysisManager() override;

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// Returns the cached T for \p F, building it on a miss (or always, when
  /// caching is disabled). References stay valid until clear().
  template <class T> T &get(Function &F);

  /// Like get(), but wrapped in a staleness-checked handle.
  template <class T> AnalysisHandle<T> getHandle(Function &F);

  bool isCached(Function &F, AnalysisKind K) const;

  /// Generation counter of one slot: bumped on every build and every
  /// invalidation. Backs AnalysisHandle::stale().
  uint64_t generation(Function &F, AnalysisKind K) const;

  //===-- Execution profile (module-wide) ---------------------------------===
  /// Records a measured execution; block frequencies become available
  /// through executionProfile(). Counts one Profile build.
  void setExecution(
      const std::unordered_map<const BasicBlock *, uint64_t> &BlockCounts);
  bool hasExecutionProfile() const;
  /// The execution-derived frequencies. setExecution must have been
  /// called. Rebuilds from the recorded counts when caching is disabled
  /// or the Profile kind was invalidated.
  const ProfileInfo &executionProfile();

  //===-- Invalidation ----------------------------------------------------===
  /// Drops every analysis cached for \p F.
  void invalidate(Function &F);
  /// Drops \p K and, transitively, the analyses derived from it
  /// (Dominators -> Intervals -> StaticFrequency).
  void invalidate(Function &F, AnalysisKind K);
  /// Drops everything \p PA does not preserve (dependency-aware).
  void invalidate(Function &F, const PreservedAnalyses &PA);
  /// Empties the cache, the graveyard, and the execution profile.
  void clear();

  //===-- Canonical-shape flag --------------------------------------------===
  /// CFG canonicalisation marks functions whose CFG satisfies §4.1
  /// (preheaders exist, no critical interval edges); the IntervalTree
  /// build assigns promotion preheaders only then, because preheader
  /// assignment asserts canonical shape. The flag survives CFG edits made
  /// through CFGEdit (edge splitting cannot un-canonicalise: it only adds
  /// single-pred/single-succ blocks); clear() resets it.
  void markCanonical(Function &F) { Canonical[&F] = true; }
  bool isCanonical(Function &F) const {
    auto It = Canonical.find(&F);
    return It != Canonical.end() && It->second;
  }

  //===-- Accounting / knobs ----------------------------------------------===
  const AnalysisCacheStats &cacheStats() const { return Stats; }
  bool cachingEnabled() const { return CachingEnabled; }
  /// Force-disables reuse: every get() rebuilds. Used by the differential
  /// cache oracle; also set at construction when the environment variable
  /// SRP_DISABLE_ANALYSIS_CACHE is 1.
  void setCachingEnabled(bool Enabled) { CachingEnabled = Enabled; }

  // IRChangeListener: precise invalidation driven by CFGEdit/SSAUpdater.
  void cfgChanged(Function &F) override;
  void ssaEdited(Function &F) override;

private:
  struct Slot {
    void *Ptr = nullptr;
    void (*Destroy)(void *) = nullptr;
    uint64_t Gen = 0; ///< Bumped on build and on invalidation.
  };
  struct FunctionEntry {
    std::array<Slot, NumAnalysisKinds> Slots{};
  };

  Module *M = nullptr;
  bool CachingEnabled = true;
  std::unordered_map<Function *, FunctionEntry> Cache;
  std::unordered_map<const Function *, bool> Canonical;
  /// Retired (invalidated or superseded) instances; freed by clear().
  std::vector<Slot> Graveyard;

  /// Execution profile state: the recorded counts (rebuild source) and
  /// the built ProfileInfo. Defined out-of-line to keep ProfileInfo an
  /// incomplete type here.
  std::unordered_map<const BasicBlock *, uint64_t> ExecCounts;
  std::unique_ptr<ProfileInfo> ExecProfile;
  bool HaveExecution = false;
  uint64_t ProfileGen = 0;

  AnalysisCacheStats Stats;

  Slot &slot(Function &F, AnalysisKind K) {
    return Cache[&F].Slots[static_cast<unsigned>(K)];
  }
  const Slot *findSlot(const Function &F, AnalysisKind K) const;

  /// Moves a live slot's instance to the graveyard and bumps its
  /// generation; no-op for empty slots. Returns true if it was live.
  bool retire(Slot &S);
  /// Same retire-don't-free contract for the module-wide execution
  /// profile: references handed out by executionProfile() stay valid
  /// until clear().
  void retireExecProfile();
  void invalidateOne(Function &F, AnalysisKind K);
  void recordHit(AnalysisKind K);
  void recordMiss(AnalysisKind K);
  /// Feeds the analysis.build-micros histogram (out-of-line so the
  /// header-only get<T> template needs no static metric of its own).
  static void recordBuildTime(double Seconds);

  template <class T> static void destroyAs(void *P) {
    delete static_cast<T *>(P);
  }
};

//===----------------------------------------------------------------------===
// Same-layer trait specialisations.
//===----------------------------------------------------------------------===

template <> struct AnalysisTraits<DominatorTree> {
  static constexpr AnalysisKind Kind = AnalysisKind::Dominators;
  static std::unique_ptr<DominatorTree> build(Function &F, AnalysisManager &) {
    return std::make_unique<DominatorTree>(F);
  }
};

template <> struct AnalysisTraits<IntervalTree> {
  static constexpr AnalysisKind Kind = AnalysisKind::Intervals;
  static std::unique_ptr<IntervalTree> build(Function &F,
                                             AnalysisManager &AM) {
    auto IT = std::make_unique<IntervalTree>(F, AM.get<DominatorTree>(F));
    // Promotion preheaders are only well-defined on canonical CFGs; the
    // canonicalisation pass sets the flag, after which every rebuild
    // (e.g. following superblock tail splitting) re-assigns them.
    if (AM.isCanonical(F))
      IT->assignPreheaders(AM.get<DominatorTree>(F));
    return IT;
  }
};

//===----------------------------------------------------------------------===
// Template implementations.
//===----------------------------------------------------------------------===

template <class T> T &AnalysisManager::get(Function &F) {
  using Traits = AnalysisTraits<T>;
  {
    Slot &S = slot(F, Traits::Kind);
    if (S.Ptr) {
      if (CachingEnabled) {
        recordHit(Traits::Kind);
        return *static_cast<T *>(S.Ptr);
      }
      retire(S); // forced-miss mode: supersede, keep the old instance alive
    }
  }
  recordMiss(Traits::Kind);
  std::unique_ptr<T> Built;
  {
    TraceSpan Span;
    if (trace::enabled())
      Span.begin("analysis",
                 std::string("build:") + analysisKindName(Traits::Kind));
    const double T0 = monotonicSeconds();
    Built = Traits::build(F, *this); // may recurse into get()
    recordBuildTime(monotonicSeconds() - T0);
  }
  Slot &S = slot(F, Traits::Kind); // re-fetch: build() may have touched the map
  S.Ptr = Built.release();
  S.Destroy = &destroyAs<T>;
  ++S.Gen;
  return *static_cast<T *>(S.Ptr);
}

template <class T>
AnalysisHandle<T> AnalysisManager::getHandle(Function &F) {
  T &Result = get<T>(F);
  return AnalysisHandle<T>(*this, F, &Result,
                           generation(F, AnalysisTraits<T>::Kind));
}

template <class T> bool AnalysisHandle<T>::stale() const {
  if (!Ptr)
    return true;
  return AM->generation(*F, AnalysisTraits<T>::Kind) != Gen;
}

} // namespace srp

#endif // SRP_ANALYSIS_ANALYSISMANAGER_H
