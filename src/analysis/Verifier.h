//===- analysis/Verifier.h - IR well-formedness checks ---------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA invariants checker. Run after every transformation in
/// tests; returns a list of human-readable violations (empty == valid).
///
/// Checked invariants:
///  - every block ends in exactly one terminator, and only at the end
///  - pred/succ lists are mutually consistent; entry has no preds
///  - phi/memphi incoming lists match the predecessor multiset
///  - every value/memory use is dominated by its definition
///  - memory names have consistent object/def links
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_VERIFIER_H
#define SRP_ANALYSIS_VERIFIER_H

#include <string>
#include <vector>

namespace srp {

class Function;
class Module;

/// Returns all invariant violations found in \p F (empty when valid).
std::vector<std::string> verify(Function &F);

/// Verifies every function in \p M.
std::vector<std::string> verify(Module &M);

} // namespace srp

#endif // SRP_ANALYSIS_VERIFIER_H
