//===- analysis/Verifier.h - IR well-formedness checks ---------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Legacy string-based verifier API: a thin shim over the layered checker
/// framework (analysis/StaticAnalysis.h) at Fast strictness. Returns a
/// list of human-readable violations (empty == valid). New code should
/// call runChecks() directly and get structured diagnostics with check
/// IDs, locations, and fix-it hints; the between-pass hook in the
/// PassManager already does.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_VERIFIER_H
#define SRP_ANALYSIS_VERIFIER_H

#include <string>
#include <vector>

namespace srp {

class Function;
class Module;

/// Returns all invariant violations found in \p F (empty when valid).
std::vector<std::string> verify(Function &F);

/// Verifies every function in \p M.
std::vector<std::string> verify(Module &M);

} // namespace srp

#endif // SRP_ANALYSIS_VERIFIER_H
