//===- analysis/Intervals.cpp - Interval (loop nesting) tree -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Intervals.h"
#include "ir/Function.h"
#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace srp;

namespace {

/// Iterative Tarjan SCC over an arbitrary block subset. Successor edges are
/// restricted to the subset.
class SCCFinder {
  const std::unordered_set<const BasicBlock *> &Subset;
  std::unordered_map<const BasicBlock *, unsigned> Index, LowLink;
  std::unordered_map<const BasicBlock *, bool> OnStack;
  std::vector<BasicBlock *> Stack;
  unsigned Counter = 0;

public:
  /// SCCs in discovery order; each is a vector of blocks.
  std::vector<std::vector<BasicBlock *>> SCCs;

  explicit SCCFinder(const std::unordered_set<const BasicBlock *> &Subset)
      : Subset(Subset) {}

  void run(const std::vector<BasicBlock *> &Blocks) {
    for (BasicBlock *BB : Blocks)
      if (!Index.count(BB))
        strongConnect(BB);
  }

private:
  void strongConnect(BasicBlock *Root) {
    struct Frame {
      BasicBlock *BB;
      std::vector<BasicBlock *> Succs;
      unsigned Next = 0;
    };
    std::vector<Frame> Frames;

    auto push = [&](BasicBlock *BB) {
      Index[BB] = LowLink[BB] = Counter++;
      Stack.push_back(BB);
      OnStack[BB] = true;
      std::vector<BasicBlock *> Succs;
      for (BasicBlock *S : BB->succs())
        if (Subset.count(S))
          Succs.push_back(S);
      Frames.push_back({BB, std::move(Succs)});
    };

    push(Root);
    while (!Frames.empty()) {
      Frame &Top = Frames.back();
      if (Top.Next < Top.Succs.size()) {
        BasicBlock *S = Top.Succs[Top.Next++];
        if (!Index.count(S)) {
          push(S);
        } else if (OnStack[S]) {
          LowLink[Top.BB] = std::min(LowLink[Top.BB], Index[S]);
        }
        continue;
      }
      // All successors processed: maybe pop an SCC, then propagate lowlink.
      if (LowLink[Top.BB] == Index[Top.BB]) {
        std::vector<BasicBlock *> SCC;
        while (true) {
          BasicBlock *W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SCC.push_back(W);
          if (W == Top.BB)
            break;
        }
        SCCs.push_back(std::move(SCC));
      }
      BasicBlock *Done = Top.BB;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().BB] =
            std::min(LowLink[Frames.back().BB], LowLink[Done]);
    }
  }
};

bool hasSelfLoop(const BasicBlock *BB) {
  for (const BasicBlock *S : BB->succs())
    if (S == BB)
      return true;
  return false;
}

} // namespace

Interval *IntervalTree::makeInterval() {
  Storage.push_back(std::make_unique<Interval>());
  return Storage.back().get();
}

void IntervalTree::recompute(Function &Fn, const DominatorTree &DT) {
  F = &Fn;
  Storage.clear();

  RootIv = makeInterval();
  RootIv->Root = true;
  RootIv->Depth = 0;
  RootIv->Header = Fn.entry();
  RootIv->Entries = {Fn.entry()};
  for (BasicBlock *BB : DT.rpo()) {
    RootIv->Blocks.push_back(BB);
    RootIv->BlockSet.insert(BB);
  }

  decompose(RootIv->Blocks, RootIv, DT);
  finalize(RootIv, DT);
}

void IntervalTree::decompose(const std::vector<BasicBlock *> &Subgraph,
                             Interval *Parent, const DominatorTree &DT) {
  std::unordered_set<const BasicBlock *> Subset(Subgraph.begin(),
                                                Subgraph.end());
  SCCFinder Finder(Subset);
  Finder.run(Subgraph);

  for (auto &SCC : Finder.SCCs) {
    if (SCC.size() == 1 && !hasSelfLoop(SCC.front()))
      continue; // trivial component

    Interval *Iv = makeInterval();
    Iv->Parent = Parent;
    Iv->Depth = Parent->Depth + 1;
    Parent->Children.push_back(Iv);

    // Blocks in RPO for determinism.
    std::sort(SCC.begin(), SCC.end(), [&](BasicBlock *A, BasicBlock *B) {
      return DT.rpoNumber(A) < DT.rpoNumber(B);
    });
    Iv->Blocks = SCC;
    Iv->BlockSet.insert(SCC.begin(), SCC.end());

    // Entries: blocks with a predecessor outside the SCC.
    for (BasicBlock *BB : SCC) {
      bool IsEntry = false;
      for (BasicBlock *P : BB->preds())
        if (!Iv->BlockSet.count(P) && DT.contains(P))
          IsEntry = true;
      if (IsEntry)
        Iv->Entries.push_back(BB);
    }
    // A loop unreachable from outside (can happen only for the function
    // entry being in the SCC, which canonicalisation prevents): fall back
    // to the RPO-first block.
    if (Iv->Entries.empty())
      Iv->Entries.push_back(SCC.front());
    Iv->Header = Iv->Entries.front();

    // Recurse with the header removed to expose nested intervals.
    std::vector<BasicBlock *> Inner;
    for (BasicBlock *BB : SCC)
      if (BB != Iv->Header)
        Inner.push_back(BB);
    if (!Inner.empty())
      decompose(Inner, Iv, DT);
  }

  // Deterministic child order: by header RPO number.
  std::sort(Parent->Children.begin(), Parent->Children.end(),
            [&](Interval *A, Interval *B) {
              return DT.rpoNumber(A->Header) < DT.rpoNumber(B->Header);
            });
}

void IntervalTree::finalize(Interval *Iv, const DominatorTree &DT) {
  // Exit edges: any edge from inside to outside.
  Iv->ExitEdges.clear();
  for (BasicBlock *BB : Iv->Blocks)
    for (BasicBlock *S : BB->succs())
      if (!Iv->BlockSet.count(S))
        Iv->ExitEdges.emplace_back(BB, S);
  for (Interval *Child : Iv->Children)
    finalize(Child, DT);
}

Interval *IntervalTree::intervalFor(const BasicBlock *BB) const {
  Interval *Best = RootIv && RootIv->contains(BB) ? RootIv : nullptr;
  if (!Best)
    return nullptr;
  bool Descended = true;
  while (Descended) {
    Descended = false;
    for (Interval *Child : Best->children()) {
      if (Child->contains(BB)) {
        Best = Child;
        Descended = true;
        break;
      }
    }
  }
  return Best;
}

std::vector<Interval *> IntervalTree::postorder() const {
  std::vector<Interval *> Result;
  struct Frame {
    Interval *Iv;
    unsigned Next = 0;
  };
  std::vector<Frame> Stack;
  if (RootIv)
    Stack.push_back({RootIv});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Iv->children().size()) {
      Stack.push_back({Top.Iv->children()[Top.Next++]});
      continue;
    }
    Result.push_back(Top.Iv);
    Stack.pop_back();
  }
  return Result;
}

void IntervalTree::assignPreheaders(const DominatorTree &DT) {
  for (Interval *Iv : postorder()) {
    if (Iv->isRoot()) {
      Iv->Preheader = F->entry();
      continue;
    }
    if (Iv->isProper()) {
      // The unique predecessor of the header outside the interval.
      BasicBlock *PH = nullptr;
      for (BasicBlock *P : Iv->Header->preds()) {
        if (Iv->contains(P))
          continue;
        assert(!PH && "proper interval with several outside preds; "
                      "run CFG canonicalisation first");
        PH = P;
      }
      assert(PH && "proper interval without preheader");
      Iv->Preheader = PH;
      continue;
    }
    // Improper interval: least common dominator of all entries, walked up
    // until it lies outside the interval (§4.1).
    BasicBlock *LCD = Iv->Entries.front();
    for (BasicBlock *E : Iv->Entries)
      LCD = DT.commonDominator(LCD, E);
    while (Iv->contains(LCD))
      LCD = DT.idom(LCD);
    Iv->Preheader = LCD;
  }
}
