//===- analysis/StaticAnalysis.h - Layered IR checkers + lints -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layered IR invariant-checking framework and the source-level
/// Mini-C lints, both reporting through the structured DiagnosticEngine
/// (analysis/Diagnostics.h).
///
/// Checkers are grouped in layers, each assuming the previous one holds:
///
///   L0  CFG structure: blocks, terminators, edge symmetry, terminator
///       targets belong to the function.
///   L1  Scalar SSA: phi grouping/incoming lists, def-dominates-use,
///       use-list registration.
///   L2  Memory SSA: def/use links, version dominance, exactly one live
///       version per resource on every path (a renaming re-walk), memphi
///       join placement, mu/chi alias tagging on calls and pointer refs.
///   L3  Canonical form: interval preheaders exist and dominate, no
///       critical interval entry/exit edges, dedicated exit tails.
///   L4  Promotion: phi/copy webs carry register values (closure under
///       phi connectivity never pulls in memory names or void values),
///       dummy loads only in interval preheaders, and — via
///       checkPromotionDelta — static load/store deltas matching the
///       profitability model's prediction.
///
/// Strictness maps to layers: Fast runs L0/L1 plus the cheap per-
/// instruction L2 link checks (the historical verifier); Full adds the
/// whole-function L2 walks and L3/L4. The between-pass hook in the
/// PassManager runs at a configurable strictness and attributes failures
/// to the pass that introduced them.
///
/// Checks pull dominators/intervals from the AnalysisManager when one is
/// provided (between-pass verification reuses the run's cache) and build
/// a local dominator tree otherwise (standalone `verify()` calls).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_STATICANALYSIS_H
#define SRP_ANALYSIS_STATICANALYSIS_H

#include "analysis/Diagnostics.h"
#include <cstdint>
#include <string>
#include <vector>

namespace srp {

class AnalysisManager;
class DominatorTree;
class Function;
class Module;

/// How much checking to do between passes (and in `srpc --verify-each`).
enum class Strictness : uint8_t {
  Off,  ///< No verification.
  Fast, ///< L0/L1 + per-instruction memory-SSA link checks.
  Full, ///< Everything: version walks, alias tagging, L3/L4.
  /// Full plus per-pass translation validation: every transforming pass
  /// must *prove* the new IR equivalent to a pre-pass snapshot via the
  /// simulation relation in analysis/TransValidate.h. An unproven pair is
  /// a hard error, exactly like a failed invariant check.
  Semantic,
};

/// Stable spelling ("off", "fast", "full", "semantic") for flags and JSON.
const char *strictnessName(Strictness S);
/// Inverse of strictnessName; returns false (leaving \p S untouched) for
/// unknown spellings.
bool parseStrictness(const std::string &Name, Strictness &S);

/// The invariant layer a check belongs to (see the file comment).
enum class CheckLayer : uint8_t { L0_CFG, L1_SSA, L2_MemorySSA,
                                  L3_Canonical, L4_Promotion };
const char *checkLayerName(CheckLayer L);

/// Everything a checker sees. The driver fills DT after L0 passes (a
/// broken CFG has no dominator tree); AM is optional and enables the
/// cached-analysis paths (intervals for L3/L4).
struct CheckContext {
  Function &F;
  DiagnosticEngine &DE;
  AnalysisManager *AM = nullptr;
  const DominatorTree *DT = nullptr;
  bool MemorySSAPresent = false;
};

/// One registered checker. Id is the stable check identifier every
/// diagnostic it emits carries (catalogue: docs/STATIC_ANALYSIS.md).
struct CheckInfo {
  const char *Id;
  CheckLayer Layer;
  Strictness MinLevel;     ///< Runs when the requested level >= this.
  bool NeedsMemorySSA;     ///< Skipped until memory SSA is built.
  bool NeedsCanonicalCFG;  ///< Skipped unless AM marks F canonical.
  const char *Description;
  void (*Run)(CheckContext &);
};

/// The full checker registry, in execution order (L0 first).
const std::vector<CheckInfo> &registeredChecks();

/// Accounting for one runChecks invocation (feeds the `verification`
/// section of `srpc --stats-json`).
struct CheckRunStats {
  uint64_t ChecksRun = 0;    ///< Checker executions (post-gating).
  uint64_t Diagnostics = 0;  ///< Diagnostics those checkers emitted.

  CheckRunStats &operator+=(const CheckRunStats &R) {
    ChecksRun += R.ChecksRun;
    Diagnostics += R.Diagnostics;
    return *this;
  }
};

/// Runs every applicable registered check on \p F at \p Level, reporting
/// into \p DE. L0 errors stop the run (later layers assume a sane CFG).
/// \p AM, when given, supplies cached dominators/intervals and the
/// canonical-shape flag.
CheckRunStats runChecks(Function &F, DiagnosticEngine &DE, Strictness Level,
                        AnalysisManager *AM = nullptr);

/// Runs the checks on every function of \p M.
CheckRunStats runChecks(Module &M, DiagnosticEngine &DE, Strictness Level,
                        AnalysisManager *AM = nullptr);

//===----------------------------------------------------------------------===
// Source-level Mini-C lints (`srpc --analyze`).
//===----------------------------------------------------------------------===

/// Runs the memory-SSA-powered source lints on \p F:
///  - lint-uninitialized-load: a load reads the entry version of a local
///    (directly, or possibly through memory phis),
///  - lint-dead-store: a stored value can never be observed (no
///    transitive read reaches it before it is overwritten or the
///    function returns),
///  - lint-unreachable-code: blocks unreachable from the entry.
/// The memory lints read the mu/chi tags, so the caller must build memory
/// SSA first (srpc --analyze does it via AM.get<MemorySSAInfo>; only the
/// unreachable-code lint runs without it). The analyzer runs these on
/// un-mem2reg'd IR (locals still in memory form) lowered without implicit
/// zero-initialisation, so load-before-store is visible as a use of the
/// entry memory version.
void runSourceLints(Function &F, AnalysisManager &AM, DiagnosticEngine &DE);
void runSourceLints(Module &M, AnalysisManager &AM, DiagnosticEngine &DE);

//===----------------------------------------------------------------------===
// L4: promotion accounting cross-check.
//===----------------------------------------------------------------------===

/// What the promoter claims it did to a module, against what the static
/// counts say. Plain integers to keep the analysis library independent
/// of the promotion layer; the pipeline fills this from PromotionStats.
struct PromotionDeltaExpectation {
  unsigned LoadsBefore = 0, LoadsAfter = 0;
  unsigned LoadsReplaced = 0, LoadsInserted = 0;
  unsigned StoresBefore = 0, StoresAfter = 0;
  unsigned StoresDeleted = 0, StoresInserted = 0;
};

/// Checks the promotion ledger: after-counts must equal before-counts
/// adjusted by the promoter's reported replacements/insertions/deletions
/// (check ID promo-count-delta). Cleanup may only remove operations, so
/// the ledger is an upper bound: exceeding it is an error, falling short
/// of it is reported as a note.
void checkPromotionDelta(const PromotionDeltaExpectation &E,
                         DiagnosticEngine &DE);

} // namespace srp

#endif // SRP_ANALYSIS_STATICANALYSIS_H
