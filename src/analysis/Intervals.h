//===- analysis/Intervals.h - Interval (loop nesting) tree -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's promotion scope (§4.1): "an interval is a strongly connected
/// component of a control flow graph". We build a nested interval tree by
/// recursive SCC decomposition (Bourdoncle-style): every non-trivial SCC at
/// the top level is an interval; removing its header exposes the nested
/// intervals, recursively. A proper interval has a single entry block (the
/// header); an improper interval has several, and its promotion preheader is
/// the least common dominator of all entries, exactly as the paper
/// prescribes.
///
/// A synthetic root interval covers the whole function so that promotion can
/// also hoist accesses that are not inside any loop; its "tails" are the
/// return instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_INTERVALS_H
#define SRP_ANALYSIS_INTERVALS_H

#include "analysis/Dominators.h"
#include <memory>
#include <unordered_set>
#include <vector>

namespace srp {

class BasicBlock;
class Function;

/// One interval (strongly connected region) of the CFG, or the synthetic
/// whole-function root.
class Interval {
  friend class IntervalTree;

  Interval *Parent = nullptr;
  std::vector<Interval *> Children;
  std::vector<BasicBlock *> Blocks; ///< In RPO; includes nested intervals.
  std::unordered_set<const BasicBlock *> BlockSet;
  BasicBlock *Header = nullptr;     ///< First entry block in RPO.
  std::vector<BasicBlock *> Entries;
  BasicBlock *Preheader = nullptr;  ///< Block whose end dominates the body.
  /// Exit edges (From inside, To outside). After CFG canonicalisation every
  /// To is a dedicated tail block with a single predecessor.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> ExitEdges;
  bool Root = false;
  unsigned Depth = 0;

public:
  Interval *parent() const { return Parent; }
  const std::vector<Interval *> &children() const { return Children; }
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  bool contains(const BasicBlock *BB) const { return BlockSet.count(BB); }

  BasicBlock *header() const { return Header; }
  const std::vector<BasicBlock *> &entries() const { return Entries; }
  bool isProper() const { return Entries.size() <= 1; }
  bool isRoot() const { return Root; }
  unsigned depth() const { return Depth; }

  /// The block at whose end promotion may place interval-entry loads. For
  /// the root interval this is the function entry block. Set up by
  /// canonicalisation (see CFGCanonicalize.h).
  BasicBlock *preheader() const { return Preheader; }

  const std::vector<std::pair<BasicBlock *, BasicBlock *>> &exitEdges() const {
    return ExitEdges;
  }

  /// Tail blocks: the targets of the exit edges (outside the interval).
  std::vector<BasicBlock *> tails() const {
    std::vector<BasicBlock *> Result;
    for (const auto &[From, To] : ExitEdges)
      Result.push_back(To);
    return Result;
  }
};

/// Builds and owns the interval tree of a function.
class IntervalTree {
  Function *F = nullptr;
  std::vector<std::unique_ptr<Interval>> Storage;
  Interval *RootIv = nullptr;

  Interval *makeInterval();
  void decompose(const std::vector<BasicBlock *> &Subgraph, Interval *Parent,
                 const DominatorTree &DT);
  void finalize(Interval *Iv, const DominatorTree &DT);

public:
  IntervalTree() = default;
  IntervalTree(Function &Fn, const DominatorTree &DT) { recompute(Fn, DT); }

  void recompute(Function &Fn, const DominatorTree &DT);

  Interval *root() const { return RootIv; }

  /// The innermost interval containing \p BB (at least the root).
  Interval *intervalFor(const BasicBlock *BB) const;

  /// All intervals in postorder (children before parents) — the promotion
  /// processing order of paper Fig. 2.
  std::vector<Interval *> postorder() const;

  /// Assigns preheaders: the root gets the entry block; proper intervals use
  /// the unique non-back-edge predecessor of the header (canonicalisation
  /// guarantees one); improper intervals use the least common dominator of
  /// their entries.
  void assignPreheaders(const DominatorTree &DT);
};

} // namespace srp

#endif // SRP_ANALYSIS_INTERVALS_H
