//===- analysis/AnalysisManager.cpp - Cached function analyses ------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "ir/Function.h"
#include "profile/ProfileInfo.h" // header-only use; no srp_profile link dep
#include "support/Statistics.h"
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace srp;

SRP_STATISTIC(NumCacheHits, "analysis", "cache-hits",
              "Analysis requests served from the cache");
SRP_STATISTIC(NumCacheMisses, "analysis", "cache-misses",
              "Analysis requests that (re)built the analysis");
SRP_STATISTIC(NumInvalidations, "analysis", "invalidations",
              "Cached analyses dropped by invalidation");
SRP_STATISTIC(NumCFGEditEvents, "analysis", "cfg-edit-events",
              "CFG change notifications received from CFGEdit");
SRP_STATISTIC(NumSSAEditEvents, "analysis", "ssa-edit-events",
              "SSA edit notifications received from the SSA updater");
SRP_STATISTIC(NumDominatorsBuilt, "analysis", "dominators-built",
              "Dominator trees constructed");
SRP_STATISTIC(NumIntervalsBuilt, "analysis", "intervals-built",
              "Interval trees constructed");
SRP_STATISTIC(NumMemSSABuilt, "analysis", "memssa-built",
              "Memory SSA forms constructed");
SRP_STATISTIC(NumProfilesBuilt, "analysis", "profiles-built",
              "Execution profiles constructed");
SRP_STATISTIC(NumStaticFreqBuilt, "analysis", "static-freq-built",
              "Static frequency estimates constructed");
SRP_STATISTIC(NumLivenessBuilt, "analysis", "liveness-built",
              "Liveness analyses constructed");
SRP_STATISTIC(NumBytecodeBuilt, "analysis", "bytecode-built",
              "Interpreter bytecode decodes constructed");
SRP_STATISTIC(NumNativeCodeBuilt, "analysis", "native-code-built",
              "Native-code cache entries constructed");

const char *srp::analysisKindName(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::Dominators:
    return "dominators";
  case AnalysisKind::Intervals:
    return "intervals";
  case AnalysisKind::MemorySSA:
    return "memssa";
  case AnalysisKind::Profile:
    return "profile";
  case AnalysisKind::StaticFrequency:
    return "static-freq";
  case AnalysisKind::Liveness:
    return "liveness";
  case AnalysisKind::Bytecode:
    return "bytecode";
  case AnalysisKind::NativeCode:
    return "native-code";
  }
  return "unknown";
}

namespace {

Statistic *buildCounterFor(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::Dominators:
    return &NumDominatorsBuilt;
  case AnalysisKind::Intervals:
    return &NumIntervalsBuilt;
  case AnalysisKind::MemorySSA:
    return &NumMemSSABuilt;
  case AnalysisKind::Profile:
    return &NumProfilesBuilt;
  case AnalysisKind::StaticFrequency:
    return &NumStaticFreqBuilt;
  case AnalysisKind::Liveness:
    return &NumLivenessBuilt;
  case AnalysisKind::Bytecode:
    return &NumBytecodeBuilt;
  case AnalysisKind::NativeCode:
    return &NumNativeCodeBuilt;
  }
  return nullptr;
}

bool cacheDisabledByEnv() {
  const char *V = std::getenv("SRP_DISABLE_ANALYSIS_CACHE");
  return V && std::strcmp(V, "0") != 0 && std::strcmp(V, "") != 0;
}

} // namespace

AnalysisManager::AnalysisManager(Module *M)
    : M(M), CachingEnabled(!cacheDisabledByEnv()) {
  addIRChangeListener(this);
}

AnalysisManager::~AnalysisManager() {
  removeIRChangeListener(this);
  clear();
}

const AnalysisManager::Slot *
AnalysisManager::findSlot(const Function &F, AnalysisKind K) const {
  auto It = Cache.find(const_cast<Function *>(&F));
  if (It == Cache.end())
    return nullptr;
  return &It->second.Slots[static_cast<unsigned>(K)];
}

bool AnalysisManager::isCached(Function &F, AnalysisKind K) const {
  const Slot *S = findSlot(F, K);
  return S && S->Ptr;
}

uint64_t AnalysisManager::generation(Function &F, AnalysisKind K) const {
  const Slot *S = findSlot(F, K);
  return S ? S->Gen : 0;
}

bool AnalysisManager::retire(Slot &S) {
  if (!S.Ptr)
    return false;
  Graveyard.push_back(S); // keeps the instance alive until clear()
  S.Ptr = nullptr;
  S.Destroy = nullptr;
  ++S.Gen;
  return true;
}

void AnalysisManager::retireExecProfile() {
  if (!ExecProfile)
    return;
  Slot S;
  S.Ptr = ExecProfile.release();
  S.Destroy = destroyAs<ProfileInfo>;
  Graveyard.push_back(S);
}

void AnalysisManager::recordHit(AnalysisKind K) {
  ++Stats.Hits;
  ++NumCacheHits;
  if (trace::enabled())
    trace::instant("analysis", std::string("hit:") + analysisKindName(K));
}

namespace {
SRP_HISTOGRAM(BuildMicros, "analysis", "build-micros",
              "Wall time of one analysis build (us), nested builds "
              "included in the outer observation");
} // namespace

void AnalysisManager::recordBuildTime(double Seconds) {
  BuildMicros.observeSeconds(Seconds);
}

void AnalysisManager::recordMiss(AnalysisKind K) {
  ++Stats.Misses;
  ++NumCacheMisses;
  ++Stats.Builds[static_cast<unsigned>(K)];
  if (Statistic *C = buildCounterFor(K))
    ++*C;
  if (trace::enabled())
    trace::instant("analysis", std::string("miss:") + analysisKindName(K));
}

void AnalysisManager::invalidateOne(Function &F, AnalysisKind K) {
  auto It = Cache.find(&F);
  if (It == Cache.end())
    return;
  if (retire(It->second.Slots[static_cast<unsigned>(K)])) {
    ++Stats.Invalidations;
    ++NumInvalidations;
  }
}

void AnalysisManager::invalidate(Function &F) {
  invalidate(F, PreservedAnalyses::none());
}

void AnalysisManager::invalidate(Function &F, AnalysisKind K) {
  invalidate(F, PreservedAnalyses::all().abandon(K));
}

void AnalysisManager::invalidate(Function &F, const PreservedAnalyses &PA) {
  if (PA.areAllPreserved())
    return;
  // Close the preserved-set under the dependency chain: Intervals embed
  // dominator structure, and the static frequency estimate is computed
  // from the interval nesting.
  PreservedAnalyses Eff = PA;
  if (!Eff.isPreserved(AnalysisKind::Dominators))
    Eff.abandon(AnalysisKind::Intervals);
  if (!Eff.isPreserved(AnalysisKind::Intervals))
    Eff.abandon(AnalysisKind::StaticFrequency);
  // Native code is compiled from the decoded bytecode stream: a stale
  // decode implies stale machine code (same instruction indices are baked
  // into the deopt metadata).
  if (!Eff.isPreserved(AnalysisKind::Bytecode))
    Eff.abandon(AnalysisKind::NativeCode);
  for (unsigned I = 0; I != NumAnalysisKinds; ++I) {
    auto K = static_cast<AnalysisKind>(I);
    if (Eff.isPreserved(K))
      continue;
    if (K == AnalysisKind::Profile) {
      // Module-wide: the built ProfileInfo is dropped (executionProfile()
      // rebuilds from the recorded counts) but the measurement stays.
      if (ExecProfile) {
        retireExecProfile();
        ++ProfileGen;
        ++Stats.Invalidations;
        ++NumInvalidations;
      }
      continue;
    }
    invalidateOne(F, K);
  }
}

void AnalysisManager::clear() {
  for (auto &[F, Entry] : Cache)
    for (Slot &S : Entry.Slots)
      if (S.Ptr)
        S.Destroy(S.Ptr);
  Cache.clear();
  for (Slot &S : Graveyard)
    S.Destroy(S.Ptr);
  Graveyard.clear();
  Canonical.clear();
  ExecCounts.clear();
  ExecProfile.reset();
  HaveExecution = false;
  ++ProfileGen;
}

void AnalysisManager::setExecution(
    const std::unordered_map<const BasicBlock *, uint64_t> &BlockCounts) {
  ExecCounts = BlockCounts;
  HaveExecution = true;
  retireExecProfile();
  ++ProfileGen;
}

bool AnalysisManager::hasExecutionProfile() const { return HaveExecution; }

const ProfileInfo &AnalysisManager::executionProfile() {
  assert(HaveExecution && "no execution recorded; call setExecution first");
  if (ExecProfile && CachingEnabled) {
    recordHit(AnalysisKind::Profile);
    return *ExecProfile;
  }
  recordMiss(AnalysisKind::Profile);
  auto PI = std::make_unique<ProfileInfo>();
  for (const auto &[BB, N] : ExecCounts)
    PI->setFrequency(BB, N);
  retireExecProfile(); // forced-miss mode: supersede, don't free
  ExecProfile = std::move(PI);
  ++ProfileGen;
  return *ExecProfile;
}

void AnalysisManager::cfgChanged(Function &F) {
  if (M && F.parent() != M)
    return;
  ++Stats.CFGEditEvents;
  ++NumCFGEditEvents;
  // Edge splitting / pred redirection moves blocks and edges: dominators
  // (and everything derived from them), liveness and the decoded bytecode
  // (block indices, branch targets, phi copy lists) are stale. Memory SSA
  // survives — CFGEdit maintains memory-phi incoming lists itself — and
  // the execution profile is block-keyed, so existing blocks keep their
  // measured frequencies (new blocks report 0, which is conservative).
  invalidate(F, PreservedAnalyses::all()
                    .abandon(AnalysisKind::Dominators)
                    .abandon(AnalysisKind::Liveness)
                    .abandon(AnalysisKind::Bytecode)
                    .abandon(AnalysisKind::NativeCode));
}

void AnalysisManager::ssaEdited(Function &F) {
  if (M && F.parent() != M)
    return;
  ++Stats.SSAEditEvents;
  ++NumSSAEditEvents;
  // In-place SSA edits (phi insertion, use renaming) change live ranges
  // but no CFG edge, and the memory-SSA chains are exactly what the
  // updater keeps consistent. Decoded bytecode bakes operand slots and
  // instruction streams, so any instruction-level edit retires it.
  invalidate(F, PreservedAnalyses::all()
                    .abandon(AnalysisKind::Liveness)
                    .abandon(AnalysisKind::Bytecode)
                    .abandon(AnalysisKind::NativeCode));
}

std::string srp::analysisCacheStatsToJson(const AnalysisCacheStats &S,
                                          unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string In(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "{\n"
     << In << "\"cache_hits\": " << S.Hits << ",\n"
     << In << "\"cache_misses\": " << S.Misses << ",\n"
     << In << "\"invalidations\": " << S.Invalidations << ",\n"
     << In << "\"cfg_edit_events\": " << S.CFGEditEvents << ",\n"
     << In << "\"ssa_edit_events\": " << S.SSAEditEvents << ",\n"
     << In << "\"built\": {";
  for (unsigned I = 0; I != NumAnalysisKinds; ++I) {
    OS << (I ? ", " : "") << "\""
       << analysisKindName(static_cast<AnalysisKind>(I))
       << "\": " << S.Builds[I];
  }
  OS << "}\n" << Pad << "}";
  return OS.str();
}
