//===- analysis/CFGCanonicalize.cpp - Promotion-ready CFG shape ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFGCanonicalize.h"
#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include <cassert>

using namespace srp;

namespace {

/// Ensures the entry block has no predecessors (so the root interval's
/// preheader semantics hold and no loop contains the entry). Returns true
/// if the CFG changed.
bool ensureVirginEntry(Function &F) {
  BasicBlock *Entry = F.entry();
  if (Entry->preds().empty())
    return false;
  BasicBlock *NewEntry = F.createBlock("entry");
  F.makeEntry(NewEntry);
  NewEntry->append(std::make_unique<BrInst>(Entry));
  Entry->addPred(NewEntry);
  return true;
}

/// Gives every proper interval a dedicated preheader: a single non-back-edge
/// predecessor of the header whose only successor is the header. Returns
/// true if the CFG changed.
bool insertPreheaders(IntervalTree &IT) {
  bool Changed = false;
  for (Interval *Iv : IT.postorder()) {
    if (Iv->isRoot() || !Iv->isProper())
      continue;
    BasicBlock *Header = Iv->header();
    std::vector<BasicBlock *> Outside;
    for (BasicBlock *P : Header->preds())
      if (!Iv->contains(P))
        Outside.push_back(P);
    if (Outside.size() == 1 &&
        Outside.front()->succs().size() == 1)
      continue; // already canonical
    assert(!Outside.empty() && "proper interval with unreachable header");
    redirectPredsToNewBlock(Header, Outside, "preheader");
    Changed = true;
  }
  return Changed;
}

} // namespace

CanonicalCFG srp::canonicalize(Function &F) {
  ensureVirginEntry(F);

  // Iterate: splitting critical edges and inserting preheaders both add
  // blocks, which shifts dominators and interval membership of the new
  // blocks; a couple of rounds reaches the fixpoint.
  while (true) {
    bool Changed = splitAllCriticalEdges(F) > 0;
    DominatorTree DT(F);
    IntervalTree IT(F, DT);
    Changed |= insertPreheaders(IT);
    if (!Changed)
      break;
  }

  CanonicalCFG Result;
  Result.DT.recompute(F);
  Result.IT.recompute(F, Result.DT);
  Result.IT.assignPreheaders(Result.DT);
  return Result;
}

void srp::canonicalize(Function &F, AnalysisManager &AM) {
  // ensureVirginEntry edits the CFG with raw block surgery, bypassing the
  // CFGEdit utilities, so it must report the change itself.
  if (ensureVirginEntry(F))
    notifyCFGChanged(F);

  while (true) {
    bool Changed = splitAllCriticalEdges(F) > 0;
    // Splits invalidated the cached trees via the listener; this rebuilds
    // them once per changed round and reuses them on the final quiet one.
    IntervalTree &IT = AM.get<IntervalTree>(F);
    Changed |= insertPreheaders(IT);
    if (!Changed)
      break;
  }

  // The loop exited on a quiet round, so the cached trees match the final
  // CFG; they just predate the canonical flag. Assign preheaders in place
  // (idempotent if a rebuild already did) instead of forcing a rebuild.
  AM.markCanonical(F);
  AM.get<IntervalTree>(F).assignPreheaders(AM.get<DominatorTree>(F));
}
