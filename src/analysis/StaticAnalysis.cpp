//===- analysis/StaticAnalysis.cpp - Layered IR checkers + lints ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/Intervals.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace srp;

SRP_STATISTIC(NumChecksRun, "static-analysis", "checks-run",
              "checker executions across all runChecks calls");
SRP_STATISTIC(NumCheckDiags, "static-analysis", "diagnostics",
              "diagnostics emitted by the IR checkers");
SRP_STATISTIC(NumLintDiags, "static-analysis", "lints",
              "diagnostics emitted by the source-level lints");

const char *srp::strictnessName(Strictness S) {
  switch (S) {
  case Strictness::Off:
    return "off";
  case Strictness::Fast:
    return "fast";
  case Strictness::Full:
    return "full";
  case Strictness::Semantic:
    return "semantic";
  }
  return "unknown";
}

bool srp::parseStrictness(const std::string &Name, Strictness &S) {
  if (Name == "off")
    S = Strictness::Off;
  else if (Name == "fast")
    S = Strictness::Fast;
  else if (Name == "full")
    S = Strictness::Full;
  else if (Name == "semantic")
    S = Strictness::Semantic;
  else
    return false;
  return true;
}

const char *srp::checkLayerName(CheckLayer L) {
  switch (L) {
  case CheckLayer::L0_CFG:
    return "L0-cfg";
  case CheckLayer::L1_SSA:
    return "L1-ssa";
  case CheckLayer::L2_MemorySSA:
    return "L2-memssa";
  case CheckLayer::L3_Canonical:
    return "L3-canonical";
  case CheckLayer::L4_Promotion:
    return "L4-promotion";
  }
  return "unknown";
}

namespace {

//===----------------------------------------------------------------------===
// L0: CFG structure.
//===----------------------------------------------------------------------===

void checkCfgBlocks(CheckContext &C) {
  if (C.F.empty())
    C.DE.error("cfg-blocks", DiagLocation::inFunction(C.F.name()),
               "function has no blocks");
}

void checkCfgTerminator(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks()) {
    unsigned Terms = 0;
    for (auto &I : *BB) {
      if (I->isTerminator()) {
        ++Terms;
        if (I.get() != BB->back())
          C.DE.error("cfg-terminator", DiagLocation::of(*I),
                     "terminator not at end of block " + BB->name());
      }
    }
    if (Terms != 1)
      C.DE.error("cfg-terminator", DiagLocation::of(*BB),
                 "block " + BB->name() + " has " + std::to_string(Terms) +
                     " terminators",
                 "end the block with exactly one br/condbr/ret");
  }
}

void checkCfgEntryPreds(CheckContext &C) {
  if (C.F.empty())
    return;
  if (!C.F.entry()->preds().empty())
    C.DE.error("cfg-entry-preds", DiagLocation::of(*C.F.entry()),
               "entry block has predecessors",
               "canonicalisation inserts a virgin entry block; rerun it "
               "after CFG surgery");
}

void checkCfgSuccTargets(CheckContext &C) {
  std::unordered_set<const BasicBlock *> InFunction;
  for (BasicBlock *BB : C.F.blocks())
    InFunction.insert(BB);
  for (BasicBlock *BB : C.F.blocks()) {
    Instruction *T = BB->terminator();
    if (!T)
      continue; // cfg-terminator reports the missing terminator
    std::vector<BasicBlock *> Succs = T->successors();
    bool AnyNull =
        std::find(Succs.begin(), Succs.end(), nullptr) != Succs.end();
    // Printing a terminator with a null target would crash, so fall back
    // to a block-granular location in that case.
    DiagLocation Loc =
        AnyNull ? DiagLocation::of(*BB) : DiagLocation::of(*T);
    if (AnyNull)
      C.DE.error("cfg-succ-targets", Loc,
                 "terminator of block " + BB->name() + " targets a null block");
    for (BasicBlock *S : Succs)
      if (S && !InFunction.count(S))
        C.DE.error("cfg-succ-targets", Loc,
                   "terminator of block " + BB->name() + " targets block '" +
                       S->name() + "' which is not in the function",
                   "retarget the terminator at a block of this function");
  }
}

void checkCfgPredConsistency(CheckContext &C) {
  // succ -> pred consistency (multiset: an edge may appear twice if a
  // condbr has identical targets, which canonicalisation removes but raw
  // IR may contain).
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
      ExpectedPreds;
  for (BasicBlock *BB : C.F.blocks())
    for (BasicBlock *S : BB->succs())
      ExpectedPreds[S].push_back(BB);
  for (BasicBlock *BB : C.F.blocks()) {
    std::vector<BasicBlock *> Got = BB->preds();
    std::vector<BasicBlock *> Want = ExpectedPreds[BB];
    std::sort(Got.begin(), Got.end());
    std::sort(Want.begin(), Want.end());
    if (Got != Want)
      C.DE.error("cfg-pred-consistency", DiagLocation::of(*BB),
                 "pred list of " + BB->name() + " inconsistent with edges",
                 "route CFG surgery through the CFGEdit helpers");
  }
}

//===----------------------------------------------------------------------===
// L1: scalar SSA.
//===----------------------------------------------------------------------===

void checkSsaPhiGrouping(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks()) {
    bool SeenNonPhi = false;
    for (auto &I : *BB) {
      bool IsPhi = isa<PhiInst>(I.get()) || isa<MemPhiInst>(I.get());
      if (IsPhi && SeenNonPhi)
        C.DE.error("ssa-phi-grouping", DiagLocation::of(*I),
                   "phi after non-phi in " + BB->name(),
                   "keep all (mem)phis at the top of the block");
      if (!IsPhi)
        SeenNonPhi = true;
    }
  }
}

void checkSsaPhiIncoming(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks()) {
    std::vector<BasicBlock *> Preds = BB->preds();
    std::sort(Preds.begin(), Preds.end());
    for (auto &I : *BB) {
      std::vector<BasicBlock *> Incoming;
      if (auto *P = dyn_cast<PhiInst>(I.get())) {
        for (unsigned Idx = 0; Idx != P->numIncoming(); ++Idx)
          Incoming.push_back(P->incomingBlock(Idx));
      } else if (auto *MP = dyn_cast<MemPhiInst>(I.get())) {
        for (unsigned Idx = 0; Idx != MP->numIncoming(); ++Idx)
          Incoming.push_back(MP->incomingBlock(Idx));
        if (!MP->target())
          C.DE.error("ssa-phi-incoming", DiagLocation::of(*I),
                     "memphi without target in " + BB->name());
        else if (MP->target()->def() != I.get())
          C.DE.error("ssa-phi-incoming", DiagLocation::of(*I),
                     "memphi target def link broken in " + BB->name());
      } else {
        continue;
      }
      std::sort(Incoming.begin(), Incoming.end());
      if (Incoming != Preds)
        C.DE.error("ssa-phi-incoming", DiagLocation::of(*I),
                   "phi incoming blocks mismatch preds in " + BB->name(),
                   "add/remove incoming entries to match the predecessor "
                   "list exactly");
    }
  }
}

/// Shared def-dominates-use logic with phi-edge semantics (an incoming
/// value only needs to dominate the end of its incoming block).
void checkDominanceForOperand(CheckContext &C, const char *Id,
                              Instruction *User, Value *V, int PhiIncoming,
                              bool IsMem) {
  Instruction *DefInst = nullptr;
  if (auto *I = dyn_cast<Instruction>(V))
    DefInst = I;
  else if (auto *MN = dyn_cast<MemoryName>(V))
    DefInst = MN->def(); // null for the entry version (always dominates)
  if (!DefInst)
    return; // constants, arguments, undef, entry memory versions

  const DominatorTree &DT = *C.DT;
  if (!DT.contains(DefInst->parent()) || !DT.contains(User->parent()))
    return; // unreachable code is not checked

  if (PhiIncoming >= 0) {
    BasicBlock *In = nullptr;
    if (auto *P = dyn_cast<PhiInst>(User))
      In = P->incomingBlock(static_cast<unsigned>(PhiIncoming));
    else
      In = cast<MemPhiInst>(User)->incomingBlock(
          static_cast<unsigned>(PhiIncoming));
    if (!DT.contains(In))
      return;
    if (!DT.dominates(DefInst->parent(), In))
      C.DE.error(Id, DiagLocation::of(*User),
                 "phi incoming value " + V->referenceString() +
                     " does not dominate edge from " + In->name());
    return;
  }
  if (!DT.dominates(DefInst, User))
    C.DE.error(Id, DiagLocation::of(*User),
               std::string(IsMem ? "memory " : "") + "use of " +
                   V->referenceString() + " in '" + toString(*User) +
                   "' not dominated by its definition");
}

void checkSsaUseDominance(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB) {
      bool IsPhi = isa<PhiInst>(I.get()) || isa<MemPhiInst>(I.get());
      for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx)
        checkDominanceForOperand(C, "ssa-use-dominance", I.get(),
                                 I->operand(Idx),
                                 IsPhi ? static_cast<int>(Idx) : -1, false);
    }
}

void checkSsaUseLists(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB)
      for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx) {
        const auto &Uses = I->operand(Idx)->uses();
        Use U{I.get(), Idx, false};
        if (std::find(Uses.begin(), Uses.end(), U) == Uses.end())
          C.DE.error("ssa-use-lists", DiagLocation::of(*I),
                     "operand use not registered: " + toString(*I),
                     "mutate operands through setOperand/addOperand so "
                     "use lists stay in sync");
      }
}

//===----------------------------------------------------------------------===
// L2: memory SSA.
//===----------------------------------------------------------------------===

void checkMemDefLinks(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB)
      for (MemoryName *D : I->memDefs())
        if (D->def() != I.get())
          C.DE.error("mem-def-links", DiagLocation::of(*I),
                     "memory def link broken: " + D->name());
}

void checkMemUseDominance(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB) {
      bool IsPhi = isa<PhiInst>(I.get()) || isa<MemPhiInst>(I.get());
      for (unsigned Idx = 0; Idx != I->numMemOperands(); ++Idx)
        checkDominanceForOperand(C, "mem-use-dominance", I.get(),
                                 I->memOperand(Idx),
                                 IsPhi ? static_cast<int>(Idx) : -1, true);
    }
}

void checkMemUseLists(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB)
      for (unsigned Idx = 0; Idx != I->numMemOperands(); ++Idx) {
        const auto &Uses = I->memOperand(Idx)->uses();
        Use U{I.get(), Idx, true};
        if (std::find(Uses.begin(), Uses.end(), U) == Uses.end())
          C.DE.error("mem-use-lists", DiagLocation::of(*I),
                     "memory operand use not registered: " + toString(*I));
      }
}

void checkMemNameLinks(CheckContext &C) {
  Function &F = C.F;
  std::unordered_map<const MemoryObject *, unsigned> LiveEntryVersions;
  for (const auto &N : F.memoryNames()) {
    if (N->isEntryVersion()) {
      bool Registered = F.entryMemoryName(N->object()) == N.get();
      if (!Registered && N->hasUses())
        C.DE.error("mem-name-links", DiagLocation::inFunction(F.name()),
                   "memory version " + N->name() +
                       " has uses but no defining instruction",
                   "define it through a store/chi or register it as the "
                   "entry version");
      if (Registered || N->hasUses())
        ++LiveEntryVersions[N->object()];
      continue;
    }
    Instruction *D = N->def();
    const auto &Defs = D->memDefs();
    DiagLocation Loc = D->parent() ? DiagLocation::of(*D)
                                   : DiagLocation::inFunction(F.name());
    if (std::find(Defs.begin(), Defs.end(), N.get()) == Defs.end())
      C.DE.error("mem-name-links", Loc,
                 "memory version " + N->name() +
                     " not listed among its defining instruction's defs");
    else if (!D->parent() || D->function() != &F)
      C.DE.error("mem-name-links", Loc,
                 "memory version " + N->name() +
                     " defined by an instruction outside the function");
  }
  for (const auto &[Obj, Count] : LiveEntryVersions)
    if (Count > 1)
      C.DE.error("mem-name-links", DiagLocation::inFunction(F.name()),
                 "object '" + Obj->name() + "' has " + std::to_string(Count) +
                     " live entry versions (expected at most one)");
}

/// Re-runs the memory-SSA renaming walk (a dominator-tree DFS with a
/// version stack per object, mirroring buildMemorySSA) and checks that
/// every mu-operand and memphi incoming name is exactly the version live
/// at that point: one live version per resource on every path.
void checkMemVersionConsistency(CheckContext &C) {
  Function &F = C.F;
  const DominatorTree &DT = *C.DT;

  std::unordered_map<const MemoryObject *, std::vector<MemoryName *>> Stacks;
  for (const auto &N : F.memoryNames())
    if (N->isEntryVersion() && F.entryMemoryName(N->object()) == N.get())
      Stacks[N->object()].push_back(N.get());

  auto Top = [&](const MemoryObject *O) -> MemoryName * {
    auto It = Stacks.find(O);
    return (It == Stacks.end() || It->second.empty()) ? nullptr
                                                      : It->second.back();
  };

  struct Frame {
    BasicBlock *BB;
    unsigned NextChild = 0;
    std::vector<MemoryObject *> Pushed;
  };

  auto Enter = [&](Frame &Fr) {
    BasicBlock *BB = Fr.BB;
    for (auto &I : *BB) {
      if (auto *MP = dyn_cast<MemPhiInst>(I.get())) {
        if (MemoryName *T = MP->target()) {
          Stacks[MP->object()].push_back(T);
          Fr.Pushed.push_back(MP->object());
        }
        continue;
      }
      for (MemoryName *U : I->memOperands()) {
        MemoryName *Cur = Top(U->object());
        if (Cur && U != Cur)
          C.DE.error("mem-version-consistency", DiagLocation::of(*I),
                     "memory use of " + U->name() +
                         " but the live version of '" + U->object()->name() +
                         "' here is " + Cur->name(),
                     "rebuild memory SSA or route the transform through "
                     "the SSA updater");
      }
      for (MemoryName *D : I->memDefs()) {
        Stacks[D->object()].push_back(D);
        Fr.Pushed.push_back(D->object());
      }
    }
    for (BasicBlock *S : BB->succs()) {
      for (auto &I : *S) {
        auto *MP = dyn_cast<MemPhiInst>(I.get());
        if (!MP)
          break; // memphis lead the block (ssa-phi-grouping)
        int Idx = MP->indexOfBlock(BB);
        if (Idx < 0)
          continue; // ssa-phi-incoming reports the missing edge
        MemoryName *In = MP->incomingName(static_cast<unsigned>(Idx));
        MemoryName *Cur = Top(MP->object());
        if (Cur && In != Cur)
          C.DE.error("mem-version-consistency", DiagLocation::of(*MP),
                     "memphi incoming from " + BB->name() + " is " +
                         In->name() + " but the live version of '" +
                         MP->object()->name() + "' there is " + Cur->name(),
                     "rebuild memory SSA or route the transform through "
                     "the SSA updater");
      }
    }
  };

  std::vector<Frame> Walk;
  Walk.push_back({F.entry(), 0, {}});
  Enter(Walk.back());
  while (!Walk.empty()) {
    Frame &TopFr = Walk.back();
    const auto &Kids = DT.children(TopFr.BB);
    if (TopFr.NextChild < Kids.size()) {
      Walk.push_back({Kids[TopFr.NextChild++], 0, {}});
      Enter(Walk.back());
      continue;
    }
    for (MemoryObject *Obj : TopFr.Pushed)
      Stacks[Obj].pop_back();
    Walk.pop_back();
  }
}

void checkMemPhiPlacement(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks()) {
    if (!C.DT->contains(BB))
      continue;
    std::unordered_map<const MemoryObject *, unsigned> PerObject;
    for (auto &I : *BB) {
      auto *MP = dyn_cast<MemPhiInst>(I.get());
      if (!MP)
        continue;
      if (BB->numPreds() < 2)
        C.DE.warning("mem-phi-placement", DiagLocation::of(*MP),
                     "memory phi in block '" + BB->name() + "' with " +
                         std::to_string(BB->numPreds()) +
                         " predecessor(s); join placement expects >= 2",
                     "fold the phi into its single incoming version");
      if (++PerObject[MP->object()] == 2)
        C.DE.error("mem-phi-placement", DiagLocation::of(*MP),
                   "duplicate memory phi for '" + MP->object()->name() +
                       "' in block '" + BB->name() + "'");
    }
  }
}

/// Local mirror of the alias model in ssa/MemorySSA.cpp (AliasInfo) — the
/// analysis library cannot depend on the ssa library, and an independent
/// recomputation is exactly what a checker wants: if the builder and this
/// mirror ever disagree, mem-alias-tagging fires.
struct AliasSetsMirror {
  std::vector<const MemoryObject *> CallModRef;      // calls mod/ref these
  std::vector<const MemoryObject *> PointerAliases;  // *p may touch these
  std::vector<const MemoryObject *> EscapingAtReturn;

  static AliasSetsMirror compute(Function &F) {
    AliasSetsMirror A;
    Module *M = F.parent();
    for (const auto &G : M->globals()) {
      A.CallModRef.push_back(G.get());
      A.EscapingAtReturn.push_back(G.get());
      if (G->isAddressTaken())
        A.PointerAliases.push_back(G.get());
    }
    for (const auto &L : F.locals()) {
      if (L->isAddressTaken()) {
        A.CallModRef.push_back(L.get());
        A.PointerAliases.push_back(L.get());
      }
    }
    auto ById = [](const MemoryObject *X, const MemoryObject *Y) {
      return X->id() < Y->id();
    };
    std::sort(A.CallModRef.begin(), A.CallModRef.end(), ById);
    std::sort(A.PointerAliases.begin(), A.PointerAliases.end(), ById);
    std::sort(A.EscapingAtReturn.begin(), A.EscapingAtReturn.end(), ById);
    return A;
  }

  std::vector<const MemoryObject *> useObjects(const Instruction &I) const {
    switch (I.kind()) {
    case Value::Kind::Load:
      return {static_cast<const LoadInst &>(I).object()};
    case Value::Kind::DummyLoad:
      return {static_cast<const DummyLoadInst &>(I).object()};
    case Value::Kind::ArrayLoad:
      return {static_cast<const ArrayLoadInst &>(I).object()};
    case Value::Kind::ArrayStore:
      return {static_cast<const ArrayStoreInst &>(I).object()};
    case Value::Kind::PtrLoad:
    case Value::Kind::PtrStore:
      return PointerAliases;
    case Value::Kind::Call:
      return CallModRef;
    case Value::Kind::Ret:
      return EscapingAtReturn;
    default:
      return {};
    }
  }

  std::vector<const MemoryObject *> defObjects(const Instruction &I) const {
    switch (I.kind()) {
    case Value::Kind::Store:
      return {static_cast<const StoreInst &>(I).object()};
    case Value::Kind::ArrayStore:
      return {static_cast<const ArrayStoreInst &>(I).object()};
    case Value::Kind::PtrStore:
      return PointerAliases;
    case Value::Kind::Call:
      return CallModRef;
    default:
      return {};
    }
  }
};

std::string objectSetToString(const std::vector<const MemoryObject *> &Set) {
  std::string Out = "{";
  for (size_t I = 0; I != Set.size(); ++I) {
    if (I == 6) {
      Out += ", ...";
      break;
    }
    if (I)
      Out += ", ";
    Out += Set[I]->name();
  }
  return Out + "}";
}

void checkMemAliasTagging(CheckContext &C) {
  AliasSetsMirror AI = AliasSetsMirror::compute(C.F);
  auto ById = [](const MemoryObject *X, const MemoryObject *Y) {
    return X->id() < Y->id();
  };
  for (BasicBlock *BB : C.F.blocks()) {
    if (!C.DT->contains(BB))
      continue; // unreachable blocks are never tagged by the builder
    for (auto &I : *BB) {
      if (isa<MemPhiInst>(I.get()))
        continue;
      std::vector<const MemoryObject *> GotUse, GotDef;
      for (MemoryName *N : I->memOperands())
        GotUse.push_back(N->object());
      for (MemoryName *N : I->memDefs())
        GotDef.push_back(N->object());
      std::sort(GotUse.begin(), GotUse.end(), ById);
      std::sort(GotDef.begin(), GotDef.end(), ById);
      std::vector<const MemoryObject *> WantUse = AI.useObjects(*I);
      std::vector<const MemoryObject *> WantDef = AI.defObjects(*I);
      if (GotUse != WantUse)
        C.DE.error("mem-alias-tagging", DiagLocation::of(*I),
                   "mu-operands do not match the alias use set: expected " +
                       objectSetToString(WantUse) + ", found " +
                       objectSetToString(GotUse),
                   "tag one mu-use per object the operation may read");
      if (GotDef != WantDef)
        C.DE.error("mem-alias-tagging", DiagLocation::of(*I),
                   "chi-definitions do not match the alias def set: "
                   "expected " +
                       objectSetToString(WantDef) + ", found " +
                       objectSetToString(GotDef),
                   "tag one chi-def per object the operation may write");
    }
  }
}

//===----------------------------------------------------------------------===
// L3: canonical CFG shape (preheaders, tails, no critical edges).
//===----------------------------------------------------------------------===

void checkCanonPreheaders(CheckContext &C) {
  IntervalTree &IT = C.AM->get<IntervalTree>(C.F);
  const DominatorTree &DT = *C.DT;
  for (Interval *Iv : IT.postorder()) {
    BasicBlock *H = Iv->header();
    BasicBlock *PH = Iv->preheader();
    if (!PH) {
      C.DE.error("canon-preheaders", DiagLocation::of(*H),
                 "interval headed by '" + H->name() + "' has no preheader",
                 "run CFG canonicalisation (or assignPreheaders) before "
                 "promotion");
      continue;
    }
    if (Iv->isRoot()) {
      if (PH != C.F.entry())
        C.DE.error("canon-preheaders", DiagLocation::of(*PH),
                   "root interval preheader is not the entry block");
      continue;
    }
    for (BasicBlock *E : Iv->entries())
      if (DT.contains(E) && DT.contains(PH) && !DT.dominates(PH, E))
        C.DE.error("canon-preheaders", DiagLocation::of(*PH),
                   "preheader '" + PH->name() +
                       "' does not dominate interval entry '" + E->name() +
                       "'");
    if (Iv->isProper()) {
      // Dedicated preheader: the unique outside predecessor of the header,
      // whose only successor is the header.
      unsigned Outside = 0;
      bool PreheaderIsPred = false;
      for (BasicBlock *P : H->preds())
        if (!Iv->contains(P)) {
          ++Outside;
          PreheaderIsPred |= (P == PH);
        }
      if (Outside != 1 || !PreheaderIsPred)
        C.DE.error("canon-preheaders", DiagLocation::of(*H),
                   "header '" + H->name() +
                       "' does not have its preheader as the unique "
                       "outside predecessor");
      else if (PH->succs().size() != 1)
        C.DE.error("canon-preheaders", DiagLocation::of(*PH),
                   "preheader '" + PH->name() + "' of interval '" +
                       H->name() + "' has multiple successors");
    }
  }
}

void checkCanonCriticalEdges(CheckContext &C) {
  for (BasicBlock *BB : C.F.blocks()) {
    if (!C.DT->contains(BB))
      continue;
    std::vector<BasicBlock *> Succs = BB->succs();
    if (Succs.size() < 2)
      continue;
    for (BasicBlock *S : Succs)
      if (S->numPreds() > 1)
        C.DE.error("canon-critical-edges", DiagLocation::of(*BB),
                   "critical edge '" + BB->name() + "' -> '" + S->name() +
                       "' after canonicalisation",
                   "split the edge with CFGEdit::splitEdge");
  }
}

void checkCanonExitTails(CheckContext &C) {
  IntervalTree &IT = C.AM->get<IntervalTree>(C.F);
  for (Interval *Iv : IT.postorder()) {
    if (Iv->isRoot())
      continue; // the root's tails are the return instructions
    for (const auto &[From, To] : Iv->exitEdges())
      if (To->numPreds() != 1)
        C.DE.error("canon-exit-tails", DiagLocation::of(*To),
                   "interval exit tail '" + To->name() +
                       "' has multiple predecessors (edge from '" +
                       From->name() + "')",
                   "split the exit edge so the tail is dedicated");
  }
}

//===----------------------------------------------------------------------===
// L4: promotion invariants.
//===----------------------------------------------------------------------===

void checkPromoWebValues(CheckContext &C) {
  auto CheckValue = [&](Instruction *User, Value *V, const char *Role) {
    if (isa<MemoryName>(V))
      C.DE.error("promo-web-values", DiagLocation::of(*User),
                 std::string(Role) + " is a memory SSA name " +
                     V->referenceString() +
                     "; webs must close over register values",
                 "promote through copies of the stored/loaded value, not "
                 "the version name");
    else if (V->type() == Type::Void)
      C.DE.error("promo-web-values", DiagLocation::of(*User),
                 std::string(Role) + " " + V->referenceString() +
                     " has void type");
  };
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB) {
      if (auto *P = dyn_cast<PhiInst>(I.get())) {
        if (P->type() == Type::Void)
          C.DE.error("promo-web-values", DiagLocation::of(*P),
                     "register phi has void type");
        for (unsigned Idx = 0; Idx != P->numIncoming(); ++Idx)
          CheckValue(P, P->incomingValue(Idx), "phi incoming value");
      } else if (auto *Cp = dyn_cast<CopyInst>(I.get())) {
        CheckValue(Cp, Cp->source(), "copy source");
      }
    }
}

void checkPromoDummyScope(CheckContext &C) {
  IntervalTree &IT = C.AM->get<IntervalTree>(C.F);
  std::unordered_set<const BasicBlock *> Preheaders;
  for (Interval *Iv : IT.postorder())
    if (Iv->preheader())
      Preheaders.insert(Iv->preheader());
  for (BasicBlock *BB : C.F.blocks())
    for (auto &I : *BB) {
      auto *DL = dyn_cast<DummyLoadInst>(I.get());
      if (DL && !Preheaders.count(BB))
        C.DE.error("promo-dummy-scope", DiagLocation::of(*DL),
                   "dummy load of '" + DL->object()->name() +
                       "' outside any interval preheader",
                   "dummy loads summarise inner-interval requirements and "
                   "belong in preheaders (§4.4)");
    }
}

} // namespace

const std::vector<CheckInfo> &srp::registeredChecks() {
  static const std::vector<CheckInfo> Checks = {
      // Id, layer, min level, needs memSSA, needs canonical, description, fn
      {"cfg-blocks", CheckLayer::L0_CFG, Strictness::Fast, false, false,
       "function has at least one block", checkCfgBlocks},
      {"cfg-terminator", CheckLayer::L0_CFG, Strictness::Fast, false, false,
       "every block ends with exactly one terminator", checkCfgTerminator},
      {"cfg-entry-preds", CheckLayer::L0_CFG, Strictness::Fast, false, false,
       "the entry block has no predecessors", checkCfgEntryPreds},
      {"cfg-succ-targets", CheckLayer::L0_CFG, Strictness::Fast, false, false,
       "terminator targets are blocks of this function", checkCfgSuccTargets},
      {"cfg-pred-consistency", CheckLayer::L0_CFG, Strictness::Fast, false,
       false, "pred lists mirror the terminator edges",
       checkCfgPredConsistency},

      {"ssa-phi-grouping", CheckLayer::L1_SSA, Strictness::Fast, false, false,
       "(mem)phis are grouped at block tops", checkSsaPhiGrouping},
      {"ssa-phi-incoming", CheckLayer::L1_SSA, Strictness::Fast, false, false,
       "phi incoming lists match predecessors; memphi targets link back",
       checkSsaPhiIncoming},
      {"ssa-use-dominance", CheckLayer::L1_SSA, Strictness::Fast, false,
       false, "every register use is dominated by its definition",
       checkSsaUseDominance},
      {"ssa-use-lists", CheckLayer::L1_SSA, Strictness::Fast, false, false,
       "register operands are registered in use lists", checkSsaUseLists},

      {"mem-def-links", CheckLayer::L2_MemorySSA, Strictness::Fast, true,
       false, "memory defs link back to their defining instruction",
       checkMemDefLinks},
      {"mem-use-dominance", CheckLayer::L2_MemorySSA, Strictness::Fast, true,
       false, "every memory use is dominated by its definition",
       checkMemUseDominance},
      {"mem-use-lists", CheckLayer::L2_MemorySSA, Strictness::Fast, true,
       false, "memory operands are registered in use lists",
       checkMemUseLists},
      {"mem-name-links", CheckLayer::L2_MemorySSA, Strictness::Full, true,
       false, "every owned memory version is defined or a live entry version",
       checkMemNameLinks},
      {"mem-version-consistency", CheckLayer::L2_MemorySSA, Strictness::Full,
       true, false,
       "exactly one live version per resource on every path (renaming walk)",
       checkMemVersionConsistency},
      {"mem-phi-placement", CheckLayer::L2_MemorySSA, Strictness::Full, true,
       false, "memory phis sit at joins, one per object per block",
       checkMemPhiPlacement},
      {"mem-alias-tagging", CheckLayer::L2_MemorySSA, Strictness::Full, true,
       false, "mu/chi sets match the alias model on calls and pointer refs",
       checkMemAliasTagging},

      {"canon-preheaders", CheckLayer::L3_Canonical, Strictness::Full, false,
       true, "every interval has a dominating (dedicated) preheader",
       checkCanonPreheaders},
      {"canon-critical-edges", CheckLayer::L3_Canonical, Strictness::Full,
       false, true, "no critical edges after canonicalisation",
       checkCanonCriticalEdges},
      {"canon-exit-tails", CheckLayer::L3_Canonical, Strictness::Full, false,
       true, "interval exit tails have a single predecessor",
       checkCanonExitTails},

      {"promo-web-values", CheckLayer::L4_Promotion, Strictness::Full, false,
       false, "phi/copy webs carry register values only",
       checkPromoWebValues},
      {"promo-dummy-scope", CheckLayer::L4_Promotion, Strictness::Full, false,
       true, "dummy loads appear only in interval preheaders",
       checkPromoDummyScope},
  };
  return Checks;
}

CheckRunStats srp::runChecks(Function &F, DiagnosticEngine &DE,
                             Strictness Level, AnalysisManager *AM) {
  CheckRunStats S;
  if (Level == Strictness::Off)
    return S;

  size_t DiagsBefore = DE.size();
  unsigned ErrorsBefore = DE.errors();
  CheckContext Ctx{F, DE, AM, nullptr, false};
  DominatorTree LocalDT;
  bool GateDone = false, Stop = false;

  for (const CheckInfo &CI : registeredChecks()) {
    if (static_cast<uint8_t>(CI.MinLevel) > static_cast<uint8_t>(Level))
      continue;
    if (CI.Layer != CheckLayer::L0_CFG) {
      if (!GateDone) {
        GateDone = true;
        // Later layers assume a sane CFG: stop on L0 errors (a dominator
        // tree cannot even be computed on a broken CFG).
        if (F.empty() || DE.errors() != ErrorsBefore) {
          Stop = true;
        } else {
          if (AM)
            Ctx.DT = &AM->get<DominatorTree>(F);
          else {
            LocalDT.recompute(F);
            Ctx.DT = &LocalDT;
          }
          Ctx.MemorySSAPresent = !F.memoryNames().empty();
        }
      }
      if (Stop)
        break;
      if (CI.NeedsMemorySSA && !Ctx.MemorySSAPresent)
        continue;
      if (CI.NeedsCanonicalCFG && !(AM && AM->isCanonical(F)))
        continue;
    }
    CI.Run(Ctx);
    ++S.ChecksRun;
  }

  S.Diagnostics = DE.size() - DiagsBefore;
  NumChecksRun += S.ChecksRun;
  NumCheckDiags += S.Diagnostics;
  return S;
}

CheckRunStats srp::runChecks(Module &M, DiagnosticEngine &DE,
                             Strictness Level, AnalysisManager *AM) {
  CheckRunStats S;
  for (const auto &F : M.functions())
    S += runChecks(*F, DE, Level, AM);
  return S;
}

//===----------------------------------------------------------------------===
// Source-level Mini-C lints.
//===----------------------------------------------------------------------===

void srp::runSourceLints(Function &F, AnalysisManager &AM,
                         DiagnosticEngine &DE) {
  if (F.empty())
    return;
  size_t DiagsBefore = DE.size();
  const DominatorTree &DT = AM.get<DominatorTree>(F);

  for (BasicBlock *BB : F.blocks())
    if (!DT.contains(BB))
      DE.warning("lint-unreachable-code", DiagLocation::of(*BB),
                 "block '" + BB->name() + "' is unreachable from the entry",
                 "remove the dead code or fix the branch meant to reach it");

  // The memory-SSA lints read the mu/chi tags; the caller builds memory
  // SSA first (srpc --analyze does it through AM.get<MemorySSAInfo>).
  if (F.memoryNames().empty()) {
    NumLintDiags += DE.size() - DiagsBefore;
    return;
  }

  auto IsLintedLocal = [](const MemoryObject *O) {
    return O->kind() == MemoryObject::Kind::Local;
  };

  // Uninitialised loads: the entry version of a local scalar reaching a
  // load means no store occurs on any path (memory SSA would otherwise
  // interpose a phi or chi); reaching it through phis means some path.
  std::unordered_set<const MemoryName *> Uninit, Maybe;
  for (const auto &N : F.memoryNames())
    if (N->isEntryVersion() && IsLintedLocal(N->object()) &&
        F.entryMemoryName(N->object()) == N.get())
      Uninit.insert(N.get());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      if (!DT.contains(BB))
        continue;
      for (auto &I : *BB) {
        auto *MP = dyn_cast<MemPhiInst>(I.get());
        if (!MP)
          break;
        MemoryName *T = MP->target();
        if (!T || Maybe.count(T))
          continue;
        for (unsigned Idx = 0; Idx != MP->numIncoming(); ++Idx) {
          MemoryName *In = MP->incomingName(Idx);
          if (Uninit.count(In) || Maybe.count(In)) {
            Maybe.insert(T);
            Changed = true;
            break;
          }
        }
      }
    }
  }

  for (BasicBlock *BB : F.blocks()) {
    if (!DT.contains(BB))
      continue;
    for (auto &I : *BB) {
      auto *L = dyn_cast<LoadInst>(I.get());
      if (!L || !L->memUse())
        continue;
      MemoryName *N = L->memUse();
      if (Uninit.count(N))
        DE.warning("lint-uninitialized-load", DiagLocation::of(*L),
                   "load of uninitialised local '" + L->object()->name() +
                       "'",
                   "initialise '" + L->object()->name() +
                       "' before this load");
      else if (Maybe.count(N))
        DE.warning("lint-uninitialized-load", DiagLocation::of(*L),
                   "load of local '" + L->object()->name() +
                       "' which may be uninitialised on some paths",
                   "initialise '" + L->object()->name() +
                       "' on every path to this load");
    }
  }

  // Dead stores: a store whose defined version is never transitively read
  // (directly, or through memory phis) before being shadowed or dropped.
  // Returns carry mu-uses of escaping memory, so final stores to
  // observable objects stay live.
  std::unordered_set<const MemoryName *> Live;
  for (BasicBlock *BB : F.blocks()) {
    if (!DT.contains(BB))
      continue;
    for (auto &I : *BB) {
      if (isa<MemPhiInst>(I.get()))
        continue;
      for (MemoryName *U : I->memOperands())
        Live.insert(U);
    }
  }
  Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      if (!DT.contains(BB))
        continue;
      for (auto &I : *BB) {
        auto *MP = dyn_cast<MemPhiInst>(I.get());
        if (!MP)
          break;
        MemoryName *T = MP->target();
        if (!T || !Live.count(T))
          continue;
        for (unsigned Idx = 0; Idx != MP->numIncoming(); ++Idx)
          if (Live.insert(MP->incomingName(Idx)).second)
            Changed = true;
      }
    }
  }
  for (BasicBlock *BB : F.blocks()) {
    if (!DT.contains(BB))
      continue;
    for (auto &I : *BB) {
      auto *St = dyn_cast<StoreInst>(I.get());
      if (!St || !St->memDefName())
        continue;
      if (!Live.count(St->memDefName()))
        DE.warning("lint-dead-store", DiagLocation::of(*St),
                   "stored value of '" + St->object()->name() +
                       "' is never read",
                   "delete the store or read '" + St->object()->name() +
                       "' before it is overwritten");
    }
  }

  NumLintDiags += DE.size() - DiagsBefore;
}

void srp::runSourceLints(Module &M, AnalysisManager &AM,
                         DiagnosticEngine &DE) {
  for (const auto &F : M.functions())
    runSourceLints(*F, AM, DE);
}

//===----------------------------------------------------------------------===
// L4: promotion accounting cross-check.
//===----------------------------------------------------------------------===

void srp::checkPromotionDelta(const PromotionDeltaExpectation &E,
                              DiagnosticEngine &DE) {
  auto CheckOne = [&](const char *What, unsigned Before, unsigned After,
                      unsigned Removed, unsigned Inserted) {
    long Budget = static_cast<long>(Before) - static_cast<long>(Removed) +
                  static_cast<long>(Inserted);
    std::string Ledger = " (before " + std::to_string(Before) + ", removed " +
                         std::to_string(Removed) + ", inserted " +
                         std::to_string(Inserted) + ")";
    if (static_cast<long>(After) > Budget)
      DE.error("promo-count-delta", DiagLocation{},
               std::string("static ") + What + " count " +
                   std::to_string(After) +
                   " exceeds the promotion ledger's bound " +
                   std::to_string(Budget) + Ledger,
               "the promoter inserted operations it did not account for");
    else if (static_cast<long>(After) < Budget)
      DE.report(Diagnostic{"promo-count-delta", DiagSeverity::Note,
                           DiagLocation{},
                           std::string("static ") + What + " count " +
                               std::to_string(After) +
                               " is below the ledger's bound " +
                               std::to_string(Budget) + Ledger,
                           ""});
  };
  CheckOne("load", E.LoadsBefore, E.LoadsAfter, E.LoadsReplaced,
           E.LoadsInserted);
  CheckOne("store", E.StoresBefore, E.StoresAfter, E.StoresDeleted,
           E.StoresInserted);
}
