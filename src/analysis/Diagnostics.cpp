//===- analysis/Diagnostics.cpp - Structured diagnostics ------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostics.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Printer.h"
#include "support/Statistics.h"
#include <sstream>

using namespace srp;

const char *srp::diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

DiagLocation DiagLocation::of(const Instruction &I) {
  DiagLocation Loc;
  BasicBlock *BB = I.parent();
  if (BB) {
    Loc.Block = BB->name();
    Loc.InstIndex = static_cast<int>(BB->indexOf(&I));
    if (BB->parent())
      Loc.Function = BB->parent()->name();
  }
  Loc.Snippet = toString(I);
  return Loc;
}

DiagLocation DiagLocation::of(const BasicBlock &BB) {
  DiagLocation Loc;
  Loc.Block = BB.name();
  if (BB.parent())
    Loc.Function = BB.parent()->name();
  return Loc;
}

DiagLocation DiagLocation::inFunction(const std::string &FunctionName) {
  DiagLocation Loc;
  Loc.Function = FunctionName;
  return Loc;
}

void DiagnosticEngine::report(Diagnostic D) {
  ++Counts[static_cast<unsigned>(D.Severity)];
  Diags.push_back(std::move(D));
}

void DiagnosticEngine::error(std::string CheckID, DiagLocation Loc,
                             std::string Message, std::string FixIt) {
  report(Diagnostic{std::move(CheckID), DiagSeverity::Error, std::move(Loc),
                    std::move(Message), std::move(FixIt)});
}

void DiagnosticEngine::warning(std::string CheckID, DiagLocation Loc,
                               std::string Message, std::string FixIt) {
  report(Diagnostic{std::move(CheckID), DiagSeverity::Warning, std::move(Loc),
                    std::move(Message), std::move(FixIt)});
}

bool DiagnosticEngine::has(const std::string &CheckID) const {
  for (const Diagnostic &D : Diags)
    if (D.CheckID == CheckID)
      return true;
  return false;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  Counts.fill(0);
}

std::string srp::toText(const Diagnostic &D) {
  std::ostringstream OS;
  OS << diagSeverityName(D.Severity) << "[" << D.CheckID << "] ";
  if (!D.Loc.Function.empty()) {
    OS << D.Loc.Function;
    if (!D.Loc.Block.empty()) {
      OS << ":" << D.Loc.Block;
      if (D.Loc.hasInstruction())
        OS << ":#" << D.Loc.InstIndex;
    }
    OS << ": ";
  }
  OS << D.Message;
  if (!D.Loc.Snippet.empty())
    OS << " | " << D.Loc.Snippet;
  if (!D.FixIt.empty())
    OS << " (fix: " << D.FixIt << ")";
  return OS.str();
}

std::string srp::diagnosticsToText(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += toText(D);
    Out += '\n';
  }
  return Out;
}

std::string srp::diagnosticsToJson(const std::vector<Diagnostic> &Diags,
                                   unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Inner(Indent * 2 + 2, ' ');
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const Diagnostic &D : Diags) {
    OS << (First ? "\n" : ",\n") << Inner << "{\"check\": \""
       << jsonEscape(D.CheckID) << "\", \"severity\": \""
       << diagSeverityName(D.Severity) << "\", \"function\": \""
       << jsonEscape(D.Loc.Function) << "\", \"block\": \""
       << jsonEscape(D.Loc.Block) << "\", \"instruction_index\": "
       << D.Loc.InstIndex << ", \"snippet\": \"" << jsonEscape(D.Loc.Snippet)
       << "\", \"message\": \"" << jsonEscape(D.Message)
       << "\", \"fixit\": \"" << jsonEscape(D.FixIt) << "\"}";
    First = false;
  }
  if (!First)
    OS << "\n" << Pad;
  OS << "]";
  return OS.str();
}
