//===- analysis/Dominators.h - Dominator tree and frontiers ----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm), dominance
/// frontiers [CFR+91], and iterated dominance frontiers for multi-definition
/// phi placement (the role [SrG95] plays in the paper: one IDF computation
/// for a whole set of definition blocks, §4.5).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_DOMINATORS_H
#define SRP_ANALYSIS_DOMINATORS_H

#include <unordered_map>
#include <vector>

namespace srp {

class BasicBlock;
class Function;
class Instruction;

class DominatorTree {
  Function *F = nullptr;
  std::vector<BasicBlock *> PostOrder;  ///< Blocks in postorder.
  std::vector<BasicBlock *> RPO;        ///< Blocks in reverse postorder.
  std::unordered_map<const BasicBlock *, unsigned> RPONum;
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Children;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Frontier;
  // Preorder in/out numbering of the dominator tree for O(1) dominance
  // queries.
  std::unordered_map<const BasicBlock *, unsigned> DfsIn, DfsOut;

  void computePostOrder();
  void computeIDoms();
  void computeTreeNumbers();
  void computeFrontiers();

public:
  DominatorTree() = default;
  explicit DominatorTree(Function &Fn) { recompute(Fn); }

  /// (Re)builds all structures for \p Fn. Unreachable blocks are excluded;
  /// contains() reports reachability.
  void recompute(Function &Fn);

  Function *function() const { return F; }

  bool contains(const BasicBlock *BB) const { return IDom.count(BB) != 0; }

  /// Immediate dominator; null for the entry block.
  BasicBlock *idom(const BasicBlock *BB) const;

  const std::vector<BasicBlock *> &children(const BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;
  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Instruction-level dominance: true if \p A's definition is available at
  /// \p B (same block: A strictly precedes B; else block dominance).
  bool dominates(const Instruction *A, const Instruction *B) const;

  /// Nearest common dominator of \p A and \p B.
  BasicBlock *commonDominator(BasicBlock *A, BasicBlock *B) const;

  /// Dominance frontier of \p BB.
  const std::vector<BasicBlock *> &frontier(const BasicBlock *BB) const;

  /// Iterated dominance frontier of a set of blocks; the phi-placement set
  /// for definitions occurring in \p Defs. Deterministic order (RPO).
  std::vector<BasicBlock *>
  iteratedFrontier(const std::vector<BasicBlock *> &Defs) const;

  /// Blocks in reverse postorder (deterministic iteration order for passes).
  const std::vector<BasicBlock *> &rpo() const { return RPO; }
  unsigned rpoNumber(const BasicBlock *BB) const;
};

} // namespace srp

#endif // SRP_ANALYSIS_DOMINATORS_H
