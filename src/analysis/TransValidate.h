//===- analysis/TransValidate.h - Per-pass translation validation -*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation validator behind `-verify-each=semantic`: proves that
/// the module a transforming pass produced is semantically equivalent to
/// a snapshot taken before the pass, instead of merely well-formed.
///
/// The proof is a simulation relation over the *effect skeleton* of each
/// function. Effects — calls, prints, pointer/array accesses, and the
/// final return with its escaping memory — are the only operations the
/// interpreter's observable behaviour depends on, and no pass in this
/// pipeline creates or removes one. The validator walks old and new CFG
/// in lockstep (a product-graph traversal that absorbs unconditional-
/// branch chains on either side, so edge splits and straightening do not
/// break alignment), pairs effects one-to-one in execution order, and for
/// every paired effect emits proof obligations: operand values must be
/// congruent, and the memory version each side observes for the same
/// object must carry the same contents.
///
/// Obligations are discharged by a coinductive congruence engine that
/// canonicalises each side first — through ValueNumberTable leaders
/// (ssa/ValueNumbering.h), copy chains, load→memory-version and store→
/// stored-value links, and entry versions of non-address-taken locals
/// (fresh per activation, hence their initial value) — and then compares
/// structurally: constants by value, arguments by index, binops
/// recursively (commutative operands either way), effect results by
/// being a matched pair, memory entry versions and aliased-store
/// definitions by object name plus matched definition sites, and phis by
/// resolving both sides backwards along every paired in-edge of the
/// product graph (assuming the pair under proof on cycles — the
/// standard bisimulation rule, which is what lets loop-carried promoted
/// registers match loop-carried store chains).
///
/// Anything unproven is a structured Diagnostic carrying both IR
/// snippets, under stable check IDs:
///   trans-cfg     control flow cannot be aligned,
///   trans-effect  effect kinds/callees/mu-sets diverge,
///   trans-value   a scalar operand pair is unproven,
///   trans-memory  a memory-version pair is unproven,
///   trans-web     a promoted web's replacement values are unproven.
///
/// The promoters feed the validator through a thread-local *web ledger*
/// (validation::recordPromotedWeb at every Passed-remark site); the
/// validator cross-checks it so a promoted-but-unproven web is a hard
/// error even when no generic obligation happens to fail. See
/// docs/TRANSLATION_VALIDATION.md for the full relation and its limits.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_TRANSVALIDATE_H
#define SRP_ANALYSIS_TRANSVALIDATE_H

#include "analysis/Diagnostics.h"
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace srp {

class Module;

/// Accounting for validateTranslation runs (feeds the `validation`
/// section of `srpc --stats-json`).
struct TransValidateStats {
  uint64_t PassesValidated = 0;   ///< Pass executions validated.
  uint64_t FunctionsValidated = 0;
  uint64_t FunctionsSkippedIdentical = 0; ///< Textually unchanged, skipped.
  uint64_t EffectPairsMatched = 0;
  uint64_t ObligationsProven = 0;
  uint64_t ObligationsFailed = 0;
  uint64_t WebsChecked = 0;       ///< Ledger entries cross-checked.
  uint64_t WebsProven = 0;
  double WallSeconds = 0.0;       ///< Snapshot + validation time.

  TransValidateStats &operator+=(const TransValidateStats &R) {
    PassesValidated += R.PassesValidated;
    FunctionsValidated += R.FunctionsValidated;
    FunctionsSkippedIdentical += R.FunctionsSkippedIdentical;
    EffectPairsMatched += R.EffectPairsMatched;
    ObligationsProven += R.ObligationsProven;
    ObligationsFailed += R.ObligationsFailed;
    WebsChecked += R.WebsChecked;
    WebsProven += R.WebsProven;
    WallSeconds += R.WallSeconds;
    return *this;
  }
};

namespace validation {

/// One promoted web as reported by a promoter: which object's loads and
/// stores were replaced, in which function, by which pass. Keyed by names
/// (not pointers) because the ledger outlives in-pass cleanup and is
/// checked against a cloned snapshot.
struct PromotedWebRecord {
  std::string Function;
  std::string Object;  ///< MemoryObject name the web promotes.
  std::string Web;     ///< Display label ("x#3", local name, ...).
  std::string Pass;    ///< Reporting pass ("promotion", "mem2reg", ...).
};

/// Collects PromotedWebRecords for one pass execution.
class WebLedger {
  std::vector<PromotedWebRecord> Records;

public:
  void record(PromotedWebRecord R) { Records.push_back(std::move(R)); }
  const std::vector<PromotedWebRecord> &records() const { return Records; }
  size_t size() const { return Records.size(); }
  void clear() { Records.clear(); }
};

/// The active ledger of the calling thread (null when validation is off —
/// the common fast path). Thread-local because runPipelineParallel workers
/// validate independent jobs concurrently.
WebLedger *sink();
void setSink(WebLedger *L);

/// Promoter hook: records a promoted web into the active ledger, if any.
/// Call it exactly where the Passed remark for the web is emitted.
void recordPromotedWeb(const std::string &Function, const std::string &Object,
                       const std::string &Web, const char *Pass);

/// RAII installer (mirrors ScopedRemarkSink).
class ScopedWebLedger {
  WebLedger *Prev;

public:
  explicit ScopedWebLedger(WebLedger &L) : Prev(sink()) { setSink(&L); }
  ~ScopedWebLedger() { setSink(Prev); }
  ScopedWebLedger(const ScopedWebLedger &) = delete;
  ScopedWebLedger &operator=(const ScopedWebLedger &) = delete;
};

} // namespace validation

/// Deep-copies \p M: functions, blocks, instructions, module and local
/// memory objects. Memory SSA (MemoryNames, memory phis, mu/chi operands)
/// is deliberately *not* cloned — the validator rebuilds it on the clone —
/// so the source may be snapshotted at any pipeline point. The clone is
/// never executed; object ids are freshly numbered.
std::unique_ptr<Module> cloneModule(const Module &M);

/// Proves \p NewM semantically equivalent to \p OldM (the pre-pass
/// snapshot), reporting every unproven pair into \p DE and accounting
/// into \p Stats. \p Webs is the promotion ledger for the validated pass
/// (empty for non-promoting passes). When \p OnlyFunctions is non-null,
/// functions not in the set are assumed textually identical and skipped.
/// Both modules are mutated (memory SSA is rebuilt on each side), so
/// callers pass clones. Returns true when everything is proven.
bool validateTranslation(Module &OldM, Module &NewM,
                         const std::vector<validation::PromotedWebRecord> &Webs,
                         DiagnosticEngine &DE, TransValidateStats &Stats,
                         const std::unordered_set<std::string> *OnlyFunctions
                         = nullptr);

} // namespace srp

#endif // SRP_ANALYSIS_TRANSVALIDATE_H
