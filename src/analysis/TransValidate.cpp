//===- analysis/TransValidate.cpp - Per-pass translation validation -------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
//
// Compiled into srp_ssa (not srp_analysis): the validator rebuilds memory
// SSA on both snapshots and reuses the value-numbering table, so it sits
// one layer above the analysis library it reports through.
//
//===----------------------------------------------------------------------===//

#include "analysis/TransValidate.h"
#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ssa/MemorySSA.h"
#include "ssa/ValueNumbering.h"
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

using namespace srp;

//===----------------------------------------------------------------------===
// Promoted-web ledger (thread-local sink, mirroring support/Remarks.h).
//===----------------------------------------------------------------------===

namespace {
thread_local validation::WebLedger *ActiveLedger = nullptr;
} // namespace

validation::WebLedger *validation::sink() { return ActiveLedger; }
void validation::setSink(WebLedger *L) { ActiveLedger = L; }

void validation::recordPromotedWeb(const std::string &Function,
                                   const std::string &Object,
                                   const std::string &Web, const char *Pass) {
  if (WebLedger *L = ActiveLedger)
    L->record({Function, Object, Web, Pass});
}

//===----------------------------------------------------------------------===
// Module cloning.
//===----------------------------------------------------------------------===

namespace {

/// Deep-copies a module. Memory SSA is not carried over (the validator
/// rebuilds it); everything else — objects, functions, blocks,
/// instructions, predecessor lists — is reproduced structurally. Operand
/// references that have not been cloned yet (phi back-edges, uses of
/// later-layout definitions) are recorded as fixups against an Undef
/// placeholder and patched once every instruction exists.
class ModuleCloner {
  const Module &Src;
  Module &Dst;
  std::unordered_map<const MemoryObject *, MemoryObject *> OMap;
  std::unordered_map<const Function *, Function *> FMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BMap;
  std::unordered_map<const Value *, Value *> VMap;
  struct Fixup {
    Instruction *I;
    unsigned Index;
    const Value *OldV;
  };
  std::vector<Fixup> Fixups;

  Value *mapNow(const Value *V) {
    if (!V)
      return nullptr;
    if (auto *C = dyn_cast<ConstantInt>(V))
      return Dst.constant(C->value());
    if (isa<UndefValue>(V))
      return Dst.undef();
    auto It = VMap.find(V);
    return It == VMap.end() ? nullptr : It->second;
  }

  /// Maps \p V, or records a fixup on (\p NI, \p Index) and returns the
  /// Undef placeholder.
  Value *mapOrDefer(const Value *V, Instruction *NI, unsigned Index) {
    if (Value *M = mapNow(V))
      return M;
    Fixups.push_back({NI, Index, V});
    return Dst.undef();
  }

  MemoryObject *obj(const MemoryObject *O) {
    auto It = OMap.find(O);
    assert(It != OMap.end() && "object reference escaped the module");
    return It->second;
  }

  void cloneBody(const Function &OF, Function &NF) {
    for (const auto &BB : OF)
      BMap[BB.get()] = NF.createBlock(BB->name());
    // Instructions, with deferred operand patching.
    for (const auto &BB : OF) {
      BasicBlock *NB = BMap[BB.get()];
      for (const auto &IP : *BB) {
        const Instruction *I = IP.get();
        if (isa<MemPhiInst>(I))
          continue; // memory SSA is rebuilt, not cloned
        Instruction *NI = cloneInst(*I, NB);
        if (NI)
          VMap[I] = NI;
      }
    }
    for (const Fixup &F : Fixups) {
      Value *M = mapNow(F.OldV);
      assert(M && "fixup target was never cloned");
      F.I->setOperand(F.Index, M);
    }
    Fixups.clear();
    // Mirror predecessor lists (phis index by block identity, CFG checks
    // by membership; order is kept identical for determinism).
    for (const auto &BB : OF)
      for (BasicBlock *P : BB->preds())
        BMap[BB.get()]->addPred(BMap[P]);
  }

  Instruction *cloneInst(const Instruction &I, BasicBlock *NB) {
    switch (I.kind()) {
    case Value::Kind::BinOp: {
      auto &B = static_cast<const BinOpInst &>(I);
      auto NI = std::make_unique<BinOpInst>(B.op(), Dst.undef(), Dst.undef(),
                                            B.name());
      NI->setOperand(0, mapOrDefer(B.lhs(), NI.get(), 0));
      NI->setOperand(1, mapOrDefer(B.rhs(), NI.get(), 1));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Copy: {
      auto &C = static_cast<const CopyInst &>(I);
      // Sources dominate their copy, but layout order need not follow
      // dominance; fall back to a placeholder + fixup. The placeholder is
      // Int-typed; every copy in this IR carries register (Int) values.
      auto NI = std::make_unique<CopyInst>(Dst.undef(), C.name());
      NI->setOperand(0, mapOrDefer(C.source(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Phi: {
      auto &P = static_cast<const PhiInst &>(I);
      auto NI = std::make_unique<PhiInst>(P.type(), P.name());
      PhiInst *Raw = NI.get();
      NB->append(std::move(NI));
      for (unsigned K = 0; K != P.numIncoming(); ++K) {
        Raw->addIncoming(Dst.undef(), BMap[P.incomingBlock(K)]);
        Raw->setOperand(K, mapOrDefer(P.incomingValue(K), Raw, K));
      }
      return Raw;
    }
    case Value::Kind::Load:
      return NB->append(std::make_unique<LoadInst>(
          obj(static_cast<const LoadInst &>(I).object()), I.name()));
    case Value::Kind::Store: {
      auto &S = static_cast<const StoreInst &>(I);
      auto NI = std::make_unique<StoreInst>(obj(S.object()), Dst.undef());
      NI->setOperand(0, mapOrDefer(S.storedValue(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::AddrOf:
      return NB->append(std::make_unique<AddrOfInst>(
          obj(static_cast<const AddrOfInst &>(I).object()), I.name()));
    case Value::Kind::PtrLoad: {
      auto &L = static_cast<const PtrLoadInst &>(I);
      auto NI = std::make_unique<PtrLoadInst>(Dst.undef(), L.name());
      NI->setOperand(0, mapOrDefer(L.address(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::PtrStore: {
      auto &S = static_cast<const PtrStoreInst &>(I);
      auto NI = std::make_unique<PtrStoreInst>(Dst.undef(), Dst.undef());
      NI->setOperand(0, mapOrDefer(S.address(), NI.get(), 0));
      NI->setOperand(1, mapOrDefer(S.storedValue(), NI.get(), 1));
      return NB->append(std::move(NI));
    }
    case Value::Kind::ArrayLoad: {
      auto &L = static_cast<const ArrayLoadInst &>(I);
      auto NI = std::make_unique<ArrayLoadInst>(obj(L.object()), Dst.undef(),
                                                L.name());
      NI->setOperand(0, mapOrDefer(L.index(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::ArrayStore: {
      auto &S = static_cast<const ArrayStoreInst &>(I);
      auto NI = std::make_unique<ArrayStoreInst>(obj(S.object()), Dst.undef(),
                                                 Dst.undef());
      NI->setOperand(0, mapOrDefer(S.index(), NI.get(), 0));
      NI->setOperand(1, mapOrDefer(S.storedValue(), NI.get(), 1));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Call: {
      auto &C = static_cast<const CallInst &>(I);
      std::vector<Value *> Args(C.numOperands(), Dst.undef());
      auto NI = std::make_unique<CallInst>(FMap[C.callee()], Args, C.type(),
                                           C.name());
      for (unsigned K = 0; K != C.numOperands(); ++K)
        NI->setOperand(K, mapOrDefer(C.operand(K), NI.get(), K));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Print: {
      auto &P = static_cast<const PrintInst &>(I);
      auto NI = std::make_unique<PrintInst>(Dst.undef());
      NI->setOperand(0, mapOrDefer(P.value(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Br:
      return NB->append(std::make_unique<BrInst>(
          BMap[static_cast<const BrInst &>(I).target()]));
    case Value::Kind::CondBr: {
      auto &B = static_cast<const CondBrInst &>(I);
      auto NI = std::make_unique<CondBrInst>(
          Dst.undef(), BMap[B.trueTarget()], BMap[B.falseTarget()]);
      NI->setOperand(0, mapOrDefer(B.condition(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::Ret: {
      auto &R = static_cast<const RetInst &>(I);
      if (!R.returnValue())
        return NB->append(std::make_unique<RetInst>());
      auto NI = std::make_unique<RetInst>(Dst.undef());
      NI->setOperand(0, mapOrDefer(R.returnValue(), NI.get(), 0));
      return NB->append(std::move(NI));
    }
    case Value::Kind::DummyLoad:
      return NB->append(std::make_unique<DummyLoadInst>(
          obj(static_cast<const DummyLoadInst &>(I).object())));
    default:
      assert(false && "unexpected instruction kind in clone");
      return nullptr;
    }
  }

public:
  ModuleCloner(const Module &Src, Module &Dst) : Src(Src), Dst(Dst) {}

  void run() {
    for (const auto &G : Src.globals()) {
      MemoryObject *NG;
      switch (G->kind()) {
      case MemoryObject::Kind::Array:
        NG = Dst.createGlobalArray(G->name(), G->size());
        break;
      case MemoryObject::Kind::Field:
        NG = Dst.createField(G->name(), G->initialValue());
        break;
      default:
        NG = Dst.createGlobal(G->name(), G->initialValue());
        break;
      }
      if (G->isAddressTaken())
        NG->setAddressTaken();
      OMap[G.get()] = NG;
    }
    // Functions first (call instructions reference callees), then bodies.
    for (const auto &F : Src.functions()) {
      Function *NF = Dst.createFunction(F->name(), F->returnType());
      FMap[F.get()] = NF;
      for (unsigned K = 0; K != F->numArgs(); ++K)
        VMap[F->arg(K)] = NF->addArgument(F->arg(K)->name());
      for (const auto &L : F->locals()) {
        MemoryObject *NL = NF->createLocal(L->name(), L->kind(), L->size(),
                                           L->initialValue());
        if (L->isAddressTaken())
          NL->setAddressTaken();
        OMap[L.get()] = NL;
      }
    }
    for (const auto &F : Src.functions())
      cloneBody(*F, *FMap[F.get()]);
  }
};

} // namespace

std::unique_ptr<Module> srp::cloneModule(const Module &M) {
  auto New = std::make_unique<Module>(M.name());
  ModuleCloner(M, *New).run();
  return New;
}

//===----------------------------------------------------------------------===
// The simulation-relation checker.
//===----------------------------------------------------------------------===

namespace {

/// Per-function validation outcome, consumed by the web-ledger cross-check.
struct FnOutcome {
  bool AnyFailed = false;
  /// Failed memory obligations keyed by object name.
  std::map<std::string, unsigned> FailedByObject;
};

/// Instructions that constitute the observable effect skeleton. Pointer
/// and array loads participate only while their result is transitively
/// live (cleanup deletes dead ones, and the interpreter's result is
/// unaffected either way); everything else here is never created or
/// removed by any pass.
bool isHardEffect(const Instruction &I) {
  switch (I.kind()) {
  case Value::Kind::Call:
  case Value::Kind::Print:
  case Value::Kind::PtrStore:
  case Value::Kind::ArrayStore:
    return true;
  default:
    return false;
  }
}

bool isSoftEffect(const Instruction &I) {
  return I.kind() == Value::Kind::PtrLoad ||
         I.kind() == Value::Kind::ArrayLoad;
}

/// Values whose result transitively feeds an observable instruction —
/// the fixpoint dead-code elimination converges to. A soft effect outside
/// this set is treated as absent (both sides apply the same filter).
///
/// Singleton stores are deliberately NOT roots: promotion deletes them,
/// so rooting at them would make a value live pre-pass and dead
/// post-pass, desynchronising the two sides' effect skeletons. Instead
/// the store-to-load dataflow is traversed through memory SSA: a live
/// read pulls in the stored values its version may observe.
std::unordered_map<const Value *, bool> computeLiveResults(Function &F) {
  std::unordered_map<const Value *, bool> Live;
  std::vector<const Instruction *> WL;
  std::set<const MemoryName *> SeenMem;
  auto MarkVal = [&](Value *Op) {
    if (auto *OpI = dyn_cast<Instruction>(Op))
      if (!Live.count(OpI)) {
        Live[OpI] = true;
        WL.push_back(OpI);
      }
  };
  // Walks a mu chain to the stores whose values the read may observe. A
  // singleton store's own mu is not followed (the store fully overwrites
  // its object, so prior state is unobservable through it), and chi
  // definitions stop the walk — their instructions are hard-effect roots
  // already.
  auto MarkMem = [&](MemoryName *MN) {
    std::vector<MemoryName *> MWL{MN};
    while (!MWL.empty()) {
      MemoryName *N = MWL.back();
      MWL.pop_back();
      if (!N || !SeenMem.insert(N).second)
        continue;
      Instruction *D = N->def();
      if (!D)
        continue; // entry state
      if (auto *St = dyn_cast<StoreInst>(D)) {
        MarkVal(St->storedValue());
        continue;
      }
      if (auto *MP = dyn_cast<MemPhiInst>(D))
        for (unsigned K = 0; K != MP->numIncoming(); ++K)
          MWL.push_back(MP->incomingName(K));
    }
  };
  auto Mark = [&](const Instruction &I) {
    for (Value *Op : I.operands())
      MarkVal(Op);
    for (MemoryName *N : I.memOperands())
      MarkMem(N);
  };
  for (BasicBlock *BB : F.blocks())
    for (auto &I : *BB) {
      switch (I->kind()) {
      case Value::Kind::PtrStore:
      case Value::Kind::ArrayStore:
      case Value::Kind::Call:
      case Value::Kind::Print:
      case Value::Kind::Br:
      case Value::Kind::CondBr:
      case Value::Kind::Ret:
        Mark(*I);
        break;
      default:
        break;
      }
    }
  while (!WL.empty()) {
    const Instruction *I = WL.back();
    WL.pop_back();
    Mark(*I);
  }
  return Live;
}

class FunctionValidator {
  Function &OF, &NF;
  Module &OldM, &NewM;
  DiagnosticEngine &DE;
  TransValidateStats &Stats;
  FnOutcome Outcome;

  ValueNumberTable OVN, NVN;
  std::unordered_map<const Value *, bool> OldLive, NewLive;

  using Chain = std::vector<const BasicBlock *>;
  using BBPair = std::pair<const BasicBlock *, const BasicBlock *>;
  struct PairInfo {
    Chain OldChain, NewChain;
    /// Product pairs whose walk branched or closed into this one. The
    /// source pair's chains are final by the time an edge is recorded
    /// (edges are only added from terminator handling, which ends the
    /// source pair's walk), so a key suffices.
    std::vector<BBPair> InEdges;
    bool Processed = false;
  };
  /// node-based so references stay valid while new pairs are enqueued.
  std::map<BBPair, PairInfo> Pairs;
  std::deque<BBPair> Worklist;
  /// Effect/terminator pairs matched by the lockstep walk. A set (not a
  /// per-instruction ordinal) because one old block may be walked against
  /// several new blocks when a pass splits edges or duplicates a trace.
  std::set<std::pair<const Instruction *, const Instruction *>> Matched;

  /// Sentinel chain position: the value was computed before the chain's
  /// first block was entered, so phis may not step inside this chain at
  /// all — resolution defers through the pair's in-edges instead.
  static constexpr size_t PreChain = ~static_cast<size_t>(0);

  struct Obligation {
    Value *OldV, *NewV;
    const Instruction *OldI, *NewI; ///< Anchoring effect pair.
    const char *What;
    /// Proof context: the product pair whose walk matched the anchor, and
    /// the chain positions of the blocks the cursors were in. Equivalence
    /// is a per-observation-point claim, so the same value pair may need
    /// separate proofs at different anchors.
    BBPair At;
    size_t PosA, PosB;
  };
  std::vector<Obligation> Obls;
  std::set<std::tuple<const Value *, const Value *, const BasicBlock *,
                      const BasicBlock *, size_t, size_t, const char *>>
      OblSeen;
  /// Context of the pair currently being walked (read by addObligation).
  BBPair CurPair;
  bool StructureOk = true;
  unsigned DiagsEmitted = 0;
  static constexpr unsigned MaxDiagsPerFunction = 8;
  static constexpr size_t MaxChainLength = 512;

  /// Proof-state key: both values (post canonicalisation and in-chain phi
  /// stepping) plus the context they are being compared at.
  using ProofKey = std::tuple<const Value *, const Value *,
                              const BasicBlock *, const BasicBlock *, size_t,
                              size_t>;
  /// Permanent verdicts, and the per-obligation tentative map
  /// (0 = in progress, 1 = proven under assumptions, 2 = failed).
  std::map<ProofKey, bool> Memo;
  std::map<ProofKey, int> Tent;

  //===------------------------------------------------------------------===
  // Diagnostics.
  //===------------------------------------------------------------------===

  void structuralDiag(const char *Check, const Instruction &OI,
                      const Instruction &NI, const std::string &Why) {
    StructureOk = false;
    Outcome.AnyFailed = true;
    if (DiagsEmitted++ >= MaxDiagsPerFunction)
      return;
    DE.error(Check, DiagLocation::of(NI),
             Why + "\n  old: " + toString(OI) + "\n  new: " + toString(NI));
  }

  //===------------------------------------------------------------------===
  // Phase 1: product-graph lockstep walk.
  //===------------------------------------------------------------------===

  bool effective(const Instruction &I, bool OldSide) const {
    if (isHardEffect(I))
      return true;
    if (isSoftEffect(I)) {
      const auto &Live = OldSide ? OldLive : NewLive;
      return Live.count(&I) != 0;
    }
    return false;
  }

  void addObligation(Value *OldV, Value *NewV, const Instruction *OI,
                     const Instruction *NI, const char *What) {
    const PairInfo &PI = Pairs.at(CurPair);
    const size_t PosA = PI.OldChain.size() - 1;
    const size_t PosB = PI.NewChain.size() - 1;
    if (OblSeen
            .insert({OldV, NewV, CurPair.first, CurPair.second, PosA, PosB,
                     What})
            .second)
      Obls.push_back({OldV, NewV, OI, NI, What, CurPair, PosA, PosB});
  }

  void enqueue(const BasicBlock *OT, const BasicBlock *NT,
               const BBPair &From) {
    auto [It, Fresh] = Pairs.try_emplace({OT, NT});
    auto &Edges = It->second.InEdges;
    if (std::find(Edges.begin(), Edges.end(), From) == Edges.end())
      Edges.push_back(From);
    if (Fresh)
      Worklist.push_back({OT, NT});
  }

  /// Follows the unconditional branch at the cursor on one side, extending
  /// that side's chain. Returns false (with a diagnostic) if the chain
  /// revisits a block or outgrows the fuel bound.
  bool stepThrough(const BasicBlock *&BB, BasicBlock::const_iterator &It,
                   Chain &C, const Instruction &OtherCursor) {
    const BasicBlock *T = static_cast<const BrInst *>(It->get())->target();
    if (std::find(C.begin(), C.end(), T) != C.end() ||
        C.size() > MaxChainLength) {
      structuralDiag("trans-cfg", *It->get(), OtherCursor,
                     "cannot align control flow: unconditional-branch chain "
                     "revisits '" + T->name() + "' without reaching a "
                     "matching effect");
      return false;
    }
    C.push_back(T);
    BB = T;
    It = T->begin();
    return true;
  }

  /// mu-operand matching for a paired effect: same observed objects modulo
  /// the implicit-entry rule, with one memory obligation per common object.
  void matchMus(const Instruction *OI, const Instruction *NI) {
    std::map<std::string, MemoryName *> OM, NM;
    for (MemoryName *N : OI->memOperands())
      OM[N->object()->name()] = N;
    for (MemoryName *N : NI->memOperands())
      NM[N->object()->name()] = N;
    for (auto &[Name, ON] : OM) {
      auto It = NM.find(Name);
      if (It != NM.end()) {
        addObligation(ON, It->second, OI, NI, "observed memory state");
        continue;
      }
      // The new side no longer references the object at all (memory SSA
      // only versions touched objects): its runtime contents are the entry
      // value, so the old version must resolve to the entry version too.
      addObligation(ON, nullptr, OI, NI, "observed memory state");
    }
    for (auto &[Name, NN] : NM)
      if (!OM.count(Name))
        addObligation(nullptr, NN, OI, NI, "observed memory state");
  }

  bool matchEffect(const Instruction *OI, const Instruction *NI) {
    if (OI->kind() != NI->kind()) {
      structuralDiag("trans-effect", *OI, *NI, "effect kind mismatch");
      return false;
    }
    switch (OI->kind()) {
    case Value::Kind::Print:
      addObligation(static_cast<const PrintInst *>(OI)->value(),
                    static_cast<const PrintInst *>(NI)->value(), OI, NI,
                    "printed value");
      break;
    case Value::Kind::Call: {
      auto *OC = static_cast<const CallInst *>(OI);
      auto *NC = static_cast<const CallInst *>(NI);
      if (OC->callee()->name() != NC->callee()->name() ||
          OC->numOperands() != NC->numOperands()) {
        structuralDiag("trans-effect", *OI, *NI,
                       "call callee/arity mismatch");
        return false;
      }
      for (unsigned K = 0; K != OC->numOperands(); ++K)
        addObligation(OC->operand(K), NC->operand(K), OI, NI,
                      "call argument");
      matchMus(OI, NI);
      break;
    }
    case Value::Kind::PtrLoad:
      addObligation(static_cast<const PtrLoadInst *>(OI)->address(),
                    static_cast<const PtrLoadInst *>(NI)->address(), OI, NI,
                    "pointer-load address");
      matchMus(OI, NI);
      break;
    case Value::Kind::PtrStore: {
      auto *OS = static_cast<const PtrStoreInst *>(OI);
      auto *NS = static_cast<const PtrStoreInst *>(NI);
      addObligation(OS->address(), NS->address(), OI, NI,
                    "pointer-store address");
      addObligation(OS->storedValue(), NS->storedValue(), OI, NI,
                    "pointer-store value");
      matchMus(OI, NI);
      break;
    }
    case Value::Kind::ArrayLoad: {
      auto *OL = static_cast<const ArrayLoadInst *>(OI);
      auto *NL = static_cast<const ArrayLoadInst *>(NI);
      if (OL->object()->name() != NL->object()->name()) {
        structuralDiag("trans-effect", *OI, *NI, "array-load object mismatch");
        return false;
      }
      addObligation(OL->index(), NL->index(), OI, NI, "array-load index");
      matchMus(OI, NI);
      break;
    }
    case Value::Kind::ArrayStore: {
      auto *OS = static_cast<const ArrayStoreInst *>(OI);
      auto *NS = static_cast<const ArrayStoreInst *>(NI);
      if (OS->object()->name() != NS->object()->name()) {
        structuralDiag("trans-effect", *OI, *NI,
                       "array-store object mismatch");
        return false;
      }
      addObligation(OS->index(), NS->index(), OI, NI, "array-store index");
      addObligation(OS->storedValue(), NS->storedValue(), OI, NI,
                    "array-store value");
      matchMus(OI, NI);
      break;
    }
    default:
      structuralDiag("trans-effect", *OI, *NI, "unpairable effect kind");
      return false;
    }
    Matched.insert({OI, NI});
    ++Stats.EffectPairsMatched;
    return true;
  }

  void matchRet(const Instruction *OI, const Instruction *NI) {
    auto *OR = static_cast<const RetInst *>(OI);
    auto *NR = static_cast<const RetInst *>(NI);
    if ((OR->returnValue() == nullptr) != (NR->returnValue() == nullptr)) {
      structuralDiag("trans-effect", *OI, *NI, "return-value presence "
                     "mismatch");
      return;
    }
    if (OR->returnValue())
      addObligation(OR->returnValue(), NR->returnValue(), OI, NI,
                    "return value");
    // Final memory: returns carry mu-uses of every escaping object.
    matchMus(OI, NI);
    Matched.insert({OI, NI});
    ++Stats.EffectPairsMatched;
  }

  void processPair(const BBPair P) {
    PairInfo &PI = Pairs[P];
    if (PI.Processed)
      return;
    PI.Processed = true;
    CurPair = P;
    const BasicBlock *OB = P.first, *NB = P.second;
    PI.OldChain = {OB};
    PI.NewChain = {NB};
    auto OIt = OB->begin(), NIt = NB->begin();
    while (StructureOk) {
      while (OIt != OB->end() && !effective(**OIt, true) &&
             !(*OIt)->isTerminator())
        ++OIt;
      while (NIt != NB->end() && !effective(**NIt, false) &&
             !(*NIt)->isTerminator())
        ++NIt;
      if (OIt == OB->end() || NIt == NB->end()) {
        // Unterminated block: L0 rejects this before we ever run, but
        // stay defensive rather than walking off the list.
        StructureOk = false;
        Outcome.AnyFailed = true;
        return;
      }
      const Instruction *OI = OIt->get(), *NI = NIt->get();
      const bool OTerm = OI->isTerminator(), NTerm = NI->isTerminator();
      if (!OTerm && !NTerm) {
        if (!matchEffect(OI, NI))
          return;
        ++OIt;
        ++NIt;
        continue;
      }
      if (OTerm != NTerm) {
        // One side still owes an effect; the other may only proceed by
        // following an unconditional branch toward it.
        const Instruction *T = OTerm ? OI : NI;
        if (T->kind() != Value::Kind::Br) {
          structuralDiag("trans-effect", *OI, *NI,
                         "effect on one side has no counterpart before the "
                         "other side's terminator");
          return;
        }
        if (OTerm) {
          if (!stepThrough(OB, OIt, PI.OldChain, *NI))
            return;
        } else {
          if (!stepThrough(NB, NIt, PI.NewChain, *OI))
            return;
        }
        continue;
      }
      // Both cursors sit on terminators.
      const auto OK = OI->kind(), NK = NI->kind();
      if (OK == Value::Kind::Br && NK == Value::Kind::Br) {
        // Step BOTH sides through: extending the shared chains keeps the
        // two sides' block entries aligned in time, which the phi rule
        // depends on (enqueueing a fresh pair here would let the sides
        // stagger around split edges). Only close the walk into a product
        // pair when a chain would revisit a block — i.e. at loop closure.
        const BasicBlock *OT = static_cast<const BrInst *>(OI)->target();
        const BasicBlock *NT = static_cast<const BrInst *>(NI)->target();
        const bool Revisit =
            std::find(PI.OldChain.begin(), PI.OldChain.end(), OT) !=
                PI.OldChain.end() ||
            std::find(PI.NewChain.begin(), PI.NewChain.end(), NT) !=
                PI.NewChain.end();
        if (Revisit || PI.OldChain.size() > MaxChainLength ||
            PI.NewChain.size() > MaxChainLength) {
          enqueue(OT, NT, P);
          return;
        }
        PI.OldChain.push_back(OT);
        PI.NewChain.push_back(NT);
        OB = OT;
        OIt = OT->begin();
        NB = NT;
        NIt = NT->begin();
        continue;
      }
      if (OK == Value::Kind::Br) {
        if (!stepThrough(OB, OIt, PI.OldChain, *NI))
          return;
        continue;
      }
      if (NK == Value::Kind::Br) {
        if (!stepThrough(NB, NIt, PI.NewChain, *OI))
          return;
        continue;
      }
      if (OK == Value::Kind::CondBr && NK == Value::Kind::CondBr) {
        auto *OC = static_cast<const CondBrInst *>(OI);
        auto *NC = static_cast<const CondBrInst *>(NI);
        addObligation(OC->condition(), NC->condition(), OI, NI,
                      "branch condition");
        Matched.insert({OI, NI});
        enqueue(OC->trueTarget(), NC->trueTarget(), P);
        enqueue(OC->falseTarget(), NC->falseTarget(), P);
        return;
      }
      if (OK == Value::Kind::Ret && NK == Value::Kind::Ret) {
        matchRet(OI, NI);
        return;
      }
      structuralDiag("trans-cfg", *OI, *NI, "terminator kind mismatch");
      return;
    }
  }

  //===------------------------------------------------------------------===
  // Phase 2: congruence engine.
  //===------------------------------------------------------------------===

  /// Canonicalises a value on one side: value-numbering leaders, copy
  /// chains, singleton loads to the version they read, store-defined
  /// versions to the stored value, and entry versions of non-address-taken
  /// local scalars to the per-activation initial value.
  Value *resolve(Value *V, bool OldSide) {
    Module &M = OldSide ? OldM : NewM;
    const ValueNumberTable &VN = OldSide ? OVN : NVN;
    for (;;) {
      if (isa<Instruction>(V)) {
        Value *L = VN.leader(V);
        if (L != V) {
          V = L;
          continue;
        }
      }
      if (auto *C = dyn_cast<CopyInst>(V)) {
        V = C->source();
        continue;
      }
      if (auto *Ld = dyn_cast<LoadInst>(V)) {
        if (Ld->memUse()) {
          V = Ld->memUse();
          continue;
        }
        break;
      }
      if (auto *MN = dyn_cast<MemoryName>(V)) {
        if (Instruction *D = MN->def()) {
          if (auto *St = dyn_cast<StoreInst>(D)) {
            V = St->storedValue();
            continue;
          }
        } else {
          const MemoryObject *Obj = MN->object();
          if (Obj->kind() == MemoryObject::Kind::Local &&
              !Obj->isAddressTaken() && Obj->size() == 1) {
            // Fresh per activation: the entry contents are the declared
            // initial value (address-taken locals have static storage and
            // stay symbolic).
            V = M.constant(Obj->initialValue());
            continue;
          }
        }
      }
      break;
    }
    return V;
  }

  static Instruction *asPhi(Value *V) {
    if (auto *P = dyn_cast<PhiInst>(V))
      return P;
    if (auto *MN = dyn_cast<MemoryName>(V))
      if (MN->def() && isa<MemPhiInst>(MN->def()))
        return MN->def();
    return nullptr;
  }

  static Value *phiIncomingFor(Instruction *P, const BasicBlock *BB) {
    if (auto *Phi = dyn_cast<PhiInst>(P)) {
      int I = Phi->indexOfBlock(BB);
      return I < 0 ? nullptr : Phi->incomingValue(static_cast<unsigned>(I));
    }
    auto *MP = cast<MemPhiInst>(P);
    int I = MP->indexOfBlock(BB);
    return I < 0 ? nullptr : MP->incomingName(static_cast<unsigned>(I));
  }

  /// A value together with the chain position it is observed at. Chains
  /// are duplicate-free, so a position pins down which dynamic instance a
  /// phi refers to; PreChain marks values computed before the chain began.
  struct Slot {
    Value *V;
    size_t Pos;
  };

  /// Canonicalises and steps phis of \p S backwards within chain \p C:
  /// a phi whose defining block sits at position j >= 1 of the chain (at
  /// or before the observation point) is replaced by its incoming value
  /// for the chain predecessor. Stops at a non-phi, at a phi anchored at
  /// the chain's first block (position 0 — the in-edge rule steps those),
  /// or at a phi defined outside the chain (resolution defers unchanged).
  /// Returns false on a malformed phi.
  bool stepWithin(Slot &S, const Chain &C, bool OldSide) {
    if (!S.V)
      return true;
    for (;;) {
      S.V = resolve(S.V, OldSide);
      Instruction *P = asPhi(S.V);
      if (!P || S.Pos == PreChain)
        return true;
      const BasicBlock *BB = P->parent();
      size_t J = PreChain;
      const size_t Limit = std::min(S.Pos, C.size() - 1);
      for (size_t K = 0; K <= Limit; ++K)
        if (C[K] == BB)
          J = K;
      if (J == PreChain || J == 0)
        return true;
      Value *Next = phiIncomingFor(P, C[J - 1]);
      if (!Next)
        return false;
      S.V = Next;
      S.Pos = J - 1;
    }
  }

  /// Chain position of \p I's defining block at or before \p Pos, or
  /// PreChain when the definition predates the chain.
  static size_t defPos(const Instruction *I, const Chain &C, size_t Pos) {
    if (Pos == PreChain)
      return PreChain;
    const BasicBlock *BB = I->parent();
    size_t J = PreChain;
    const size_t Limit = std::min(Pos, C.size() - 1);
    for (size_t K = 0; K <= Limit; ++K)
      if (C[K] == BB)
        J = K;
    return J;
  }

  /// The in-edge rule: at least one side is a phi that cannot resolve
  /// further inside this pair's chains, so split the proof over every
  /// in-edge of the pair. A phi anchored at the chain's first block is
  /// first stepped through the predecessor pair's actual last block (that
  /// block is the control predecessor the edge was recorded from), then
  /// both sides are re-proven at the predecessor pair's final positions.
  /// Cycles through the product graph re-enter prove() with an identical
  /// key and hit the in-progress entry: assuming the claim there is the
  /// coinductive bisimulation step, guarded because every in-edge
  /// traversal is a genuine control step.
  bool deferToInEdges(const Slot &SA, const Slot &SB, const PairInfo &PI) {
    if (PI.InEdges.empty())
      return false; // entry pair: no paths left to split the phi over
    for (const BBPair &RK : PI.InEdges) {
      const PairInfo &R = Pairs.at(RK);
      Value *AV = SA.V, *BV = SB.V;
      if (AV) {
        if (Instruction *PA = asPhi(AV); PA && SA.Pos != PreChain &&
                                         PA->parent() == PI.OldChain.front()) {
          AV = phiIncomingFor(PA, R.OldChain.back());
          if (!AV)
            return false;
        }
      }
      if (BV) {
        if (Instruction *PB = asPhi(BV); PB && SB.Pos != PreChain &&
                                         PB->parent() == PI.NewChain.front()) {
          BV = phiIncomingFor(PB, R.NewChain.back());
          if (!BV)
            return false;
        }
      }
      if (!prove(AV, BV, RK, R.OldChain.size() - 1, R.NewChain.size() - 1))
        return false;
    }
    return true;
  }

  bool proveImpl(const Slot &SA, const Slot &SB, const BBPair P,
                 const PairInfo &PI) {
    Value *A = SA.V, *B = SB.V;
    // A null side is the implicit entry state of an object the other side
    // no longer references: the present side must resolve to its entry
    // version (i.e. prove the object was never observably written) along
    // every path into the observation point.
    if (!A || !B) {
      Value *V = A ? A : B;
      if (auto *MN = dyn_cast<MemoryName>(V); MN && MN->isEntryVersion())
        return true;
      if (asPhi(V))
        return deferToInEdges(SA, SB, PI);
      return false;
    }
    if (asPhi(A) || asPhi(B))
      return deferToInEdges(SA, SB, PI);
    // Both sides are phi-free: structural comparison. Terminals first.
    auto *CA = dyn_cast<ConstantInt>(A);
    auto *CB = dyn_cast<ConstantInt>(B);
    if (CA && CB)
      return CA->value() == CB->value();
    const bool UA = isa<UndefValue>(A), UB = isa<UndefValue>(B);
    if (UA && UB)
      return true;
    // Undef reads as a deterministic 0 in both engines.
    if (UA && CB)
      return CB->value() == 0;
    if (UB && CA)
      return CA->value() == 0;
    if (isa<Argument>(A) && isa<Argument>(B))
      return cast<Argument>(A)->index() == cast<Argument>(B)->index();
    if (isa<AddrOfInst>(A) && isa<AddrOfInst>(B)) {
      const MemoryObject *OA = cast<AddrOfInst>(A)->object();
      const MemoryObject *OB = cast<AddrOfInst>(B)->object();
      return OA->name() == OB->name() && OA->kind() == OB->kind();
    }
    if (isa<BinOpInst>(A) && isa<BinOpInst>(B)) {
      auto *BA = cast<BinOpInst>(A);
      auto *BB = cast<BinOpInst>(B);
      if (BA->op() != BB->op())
        return false;
      // Operands are observed at the binop's own definition point: phi
      // operands refer to the instance live when the binop executed, not
      // when its result is consumed.
      const size_t DA = defPos(BA, PI.OldChain, SA.Pos);
      const size_t DB = defPos(BB, PI.NewChain, SB.Pos);
      if (prove(BA->lhs(), BB->lhs(), P, DA, DB) &&
          prove(BA->rhs(), BB->rhs(), P, DA, DB))
        return true;
      return isCommutativeBinOp(BA->op()) &&
             prove(BA->lhs(), BB->rhs(), P, DA, DB) &&
             prove(BA->rhs(), BB->lhs(), P, DA, DB);
    }
    // Results of paired effects are equal by the simulation relation.
    const auto EffectResult = [](Value *V) {
      return isa<CallInst>(V) || isa<PtrLoadInst>(V) || isa<ArrayLoadInst>(V);
    };
    if (EffectResult(A) && EffectResult(B))
      return Matched.count({cast<Instruction>(A), cast<Instruction>(B)}) != 0;
    // Memory versions that survived resolve(): entry versions and aliased
    // chi definitions (memphi targets were handled as phis above).
    auto *MA = dyn_cast<MemoryName>(A);
    auto *MB = dyn_cast<MemoryName>(B);
    if (MA && MB) {
      if (MA->object()->name() != MB->object()->name())
        return false;
      if (MA->isEntryVersion() && MB->isEntryVersion())
        return true;
      Instruction *DA = MA->def(), *DB = MB->def();
      if (DA && DB)
        return Matched.count({DA, DB}) != 0;
      return false;
    }
    return false;
  }

  /// Memoized coinductive proof that \p RawA (old side) and \p RawB (new
  /// side) denote the same runtime value when observed at positions
  /// \p PosA / \p PosB of product pair \p P's chains. An in-progress key
  /// is assumed to hold (see deferToInEdges); tentative proofs become
  /// permanent only if the enclosing top-level obligation succeeds, while
  /// failures are always definite (assumptions can only help a proof).
  bool prove(Value *RawA, Value *RawB, const BBPair P, size_t PosA,
             size_t PosB) {
    const PairInfo &PI = Pairs.at(P);
    Slot SA{RawA, PosA}, SB{RawB, PosB};
    if (!stepWithin(SA, PI.OldChain, /*OldSide=*/true) ||
        !stepWithin(SB, PI.NewChain, /*OldSide=*/false))
      return false;
    const ProofKey Key{SA.V, SB.V, P.first, P.second, SA.Pos, SB.Pos};
    if (auto It = Memo.find(Key); It != Memo.end())
      return It->second;
    if (auto It = Tent.find(Key); It != Tent.end())
      return It->second != 2;
    Tent[Key] = 0;
    const bool Ok = proveImpl(SA, SB, P, PI);
    Tent[Key] = Ok ? 1 : 2;
    return Ok;
  }

  void dischargeObligations() {
    for (const Obligation &O : Obls) {
      Tent.clear();
      const bool Ok = prove(O.OldV, O.NewV, O.At, O.PosA, O.PosB);
      for (const auto &[K, V] : Tent) {
        if (V == 2)
          Memo[K] = false; // failures are definite
        else if (Ok && V == 1)
          Memo[K] = true; // proofs are valid once the root succeeded
      }
      const MemoryName *MN = O.OldV ? dyn_cast<MemoryName>(O.OldV) : nullptr;
      if (!MN && O.NewV)
        MN = dyn_cast<MemoryName>(O.NewV);
      if (Ok) {
        ++Stats.ObligationsProven;
        continue;
      }
      ++Stats.ObligationsFailed;
      Outcome.AnyFailed = true;
      if (MN)
        ++Outcome.FailedByObject[MN->object()->name()];
      if (DiagsEmitted++ >= MaxDiagsPerFunction)
        continue;
      const char *Check = MN ? "trans-memory" : "trans-value";
      const std::string OldRef =
          O.OldV ? O.OldV->referenceString() : "<entry state>";
      const std::string NewRef =
          O.NewV ? O.NewV->referenceString() : "<entry state>";
      DE.error(Check, DiagLocation::of(*O.NewI),
               std::string("cannot prove ") + O.What + " equivalent: '" +
                   OldRef + "' (old) vs '" + NewRef + "' (new)\n  old: " +
                   toString(*O.OldI) + "\n  new: " + toString(*O.NewI));
    }
  }

public:
  FunctionValidator(Function &OF, Function &NF, DiagnosticEngine &DE,
                    TransValidateStats &Stats)
      : OF(OF), NF(NF), OldM(*OF.parent()), NewM(*NF.parent()), DE(DE),
        Stats(Stats) {}

  FnOutcome run() {
    DominatorTree ODT(OF), NDT(NF);
    buildMemorySSA(OF, ODT);
    buildMemorySSA(NF, NDT);
    OVN.build(OF, ODT);
    NVN.build(NF, NDT);
    OldLive = computeLiveResults(OF);
    NewLive = computeLiveResults(NF);

    const BBPair EntryP{OF.entry(), NF.entry()};
    Pairs.try_emplace(EntryP);
    Worklist.push_back(EntryP);
    while (!Worklist.empty() && StructureOk) {
      const BBPair P = Worklist.front();
      Worklist.pop_front();
      processPair(P);
    }
    if (StructureOk)
      dischargeObligations();
    return Outcome;
  }
};

} // namespace

//===----------------------------------------------------------------------===
// Driver.
//===----------------------------------------------------------------------===

bool srp::validateTranslation(
    Module &OldM, Module &NewM,
    const std::vector<validation::PromotedWebRecord> &Webs,
    DiagnosticEngine &DE, TransValidateStats &Stats,
    const std::unordered_set<std::string> *OnlyFunctions) {
  const unsigned ErrorsBefore = DE.errors();

  for (const auto &OF : OldM.functions())
    if (!NewM.getFunction(OF->name()))
      DE.error("trans-cfg", DiagLocation::inFunction(OF->name()),
               "function vanished across the pass");
  for (const auto &NFp : NewM.functions())
    if (!OldM.getFunction(NFp->name()))
      DE.error("trans-cfg", DiagLocation::inFunction(NFp->name()),
               "function appeared across the pass");

  std::map<std::string, FnOutcome> Outcomes;
  for (const auto &OF : OldM.functions()) {
    Function *NF = NewM.getFunction(OF->name());
    if (!NF || OF->empty() || NF->empty())
      continue;
    if (OnlyFunctions && !OnlyFunctions->count(OF->name())) {
      ++Stats.FunctionsSkippedIdentical;
      continue;
    }
    FunctionValidator V(*OF, *NF, DE, Stats);
    Outcomes[OF->name()] = V.run();
    ++Stats.FunctionsValidated;
  }

  for (const auto &W : Webs) {
    ++Stats.WebsChecked;
    auto It = Outcomes.find(W.Function);
    if (It == Outcomes.end()) {
      // The function was skipped as textually unchanged: the pass
      // "promoted" the web without rewriting anything (a vacuous
      // re-promotion or a web whose materialisation point already stood),
      // so equivalence holds by identity. A vanished function was already
      // diagnosed above.
      if (OnlyFunctions && !OnlyFunctions->count(W.Function)) {
        ++Stats.WebsProven;
        continue;
      }
      DE.error("trans-web", DiagLocation::inFunction(W.Function),
               "pass '" + W.Pass + "' reported promoted web '" + W.Web +
                   "' of object '" + W.Object +
                   "' in a function that was not validated");
      continue;
    }
    const FnOutcome &O = It->second;
    if (!O.AnyFailed) {
      ++Stats.WebsProven;
      continue;
    }
    auto FIt = O.FailedByObject.find(W.Object);
    const std::string Detail =
        FIt != O.FailedByObject.end()
            ? std::to_string(FIt->second) +
                  " unproven memory-state pair(s) for object '" + W.Object +
                  "'"
            : "the enclosing function has unproven pairs";
    DE.error("trans-web", DiagLocation::inFunction(W.Function),
             "promoted web '" + W.Web + "' of object '" + W.Object +
                 "' (pass '" + W.Pass + "') is not proven equivalent: " +
                 Detail);
  }

  return DE.errors() == ErrorsBefore;
}
