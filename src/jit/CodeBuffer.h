//===- jit/CodeBuffer.h - W^X executable code allocation -------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One mmap'd allocation for JIT-compiled machine code, with a strict
/// W^X lifecycle: the region is mapped read+write for emission, flipped
/// to read+execute by finalize(), and is never writable and executable at
/// the same time. The buffer owns the mapping and munmaps on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_JIT_CODEBUFFER_H
#define SRP_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>

namespace srp::jit {

/// True when this build and host can map and execute generated x86-64
/// code (x86-64 + POSIX mmap). On other hosts the native tier degrades
/// to the bytecode engine and the JIT tests skip.
bool nativeJitSupported();

class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;
  CodeBuffer(CodeBuffer &&O) noexcept;
  CodeBuffer &operator=(CodeBuffer &&O) noexcept;

  /// Maps a fresh writable, non-executable region of at least \p Bytes.
  /// Any previous mapping is released. Returns false when the host cannot
  /// map code (see nativeJitSupported) or mmap fails.
  bool allocate(size_t Bytes);

  /// Flips the mapping to read+execute; the write mapping is gone. Must
  /// be called exactly once, after emission. Returns false on failure
  /// (the mapping is released, data() becomes null).
  bool finalize();

  /// Releases the mapping.
  void reset();

  uint8_t *data() { return Base; }
  const uint8_t *data() const { return Base; }
  size_t size() const { return Bytes; }
  bool executable() const { return Executable; }

private:
  uint8_t *Base = nullptr;
  size_t Bytes = 0;
  bool Executable = false;
};

} // namespace srp::jit

#endif // SRP_JIT_CODEBUFFER_H
