//===- jit/NativeJIT.h - x86-64 baseline-JIT tier --------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native tier of the interpreter (docs/INTERPRETER.md): a template
/// JIT that compiles a function's decoded BInst stream (interp/Bytecode.h)
/// into x86-64 machine code, one fixed instruction template per opcode,
/// with intra-function branches patched as rel32 relocations over per-block
/// labels. Compiled code runs on the same flat ExecEngine arenas as the
/// bytecode engine (register frame, frame-local arena, dense block/edge
/// counters) and keeps exact observable accounting: fuel is decremented
/// per instruction (the bytecode engine's segment prepay nets out to the
/// same one-unit-per-instruction), dynamic load/store/copy counters are
/// accumulated as deltas in the NativeCtx and flushed by the engine.
///
/// Anything the templates cannot express exactly — a trap precondition
/// (division by zero, out-of-bounds index, wild pointer, INT64_MIN/-1
/// division), fuel exhaustion, or a decode-time Trap — *deopts*: the code
/// stores the current instruction index into the context and returns, and
/// the engine resumes the bytecode dispatch loop on the very same frame at
/// that exact instruction, so the trap fires with byte-identical counters
/// and message. Calls go through an engine helper that re-dispatches
/// (native when hot, bytecode otherwise, walker for undecodable callees)
/// and re-anchors the frame pointers after possible arena growth.
///
/// NativeCode is cached through the AnalysisManager
/// (AnalysisKind::NativeCode) and invalidated together with the bytecode
/// decode it was compiled from; the call-count ledger (HotCount) lives in
/// the cached object, so hotness accumulates across profile + measure
/// runs until an IR edit retires it.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_JIT_NATIVEJIT_H
#define SRP_JIT_NATIVEJIT_H

#include "analysis/AnalysisManager.h"
#include "jit/CodeBuffer.h"
#include <cstdint>
#include <memory>

namespace srp {
struct DecodedFunction;
}

namespace srp::jit {

/// NativeCtx::Status values at JIT-code exit.
inline constexpr int32_t StatusOk = 0;    ///< Returned normally (rax = value).
inline constexpr int32_t StatusDeopt = 1; ///< Resume bytecode at DeoptIndex.
inline constexpr int32_t StatusTrap = 2;  ///< Trap recorded; unwind the run.

struct NativeCtx;

/// Engine call helper: executes the BOp::Call at \p CodeIdx of the calling
/// function (identified by its FnState) and returns the callee's value.
/// Re-anchors CurRg/CurLc, syncs FuelLeft, and sets Status to StatusOk or
/// StatusTrap.
using CallHelperFn = int64_t (*)(NativeCtx *, void *CallerFnState,
                                 uint64_t CodeIdx, int64_t *Rg, int64_t *Lc);
/// Engine print helper: appends \p V to the run's output stream.
using PrintHelperFn = void (*)(NativeCtx *, int64_t V);

/// The engine<->code contract. Field offsets are baked into emitted
/// templates (offsetof in NativeEmitter.cpp), so this struct is the ABI:
/// reorder it and every compiled function is wrong.
struct NativeCtx {
  int64_t *MemCells = nullptr; ///< Base of the flat memory image.
  uint64_t FuelLeft = 0;       ///< Synced at entry/exit and around calls.
  /// Dynamic-count deltas accumulated by compiled code; the engine flushes
  /// them into ExecutionResult::Counts after every native invocation.
  uint64_t Instructions = 0;
  uint64_t SingletonLoads = 0;
  uint64_t SingletonStores = 0;
  uint64_t AliasedLoads = 0;
  uint64_t AliasedStores = 0;
  uint64_t Copies = 0;
  /// Caller frame pointers, rewritten by the call helper: the shared
  /// arenas may reallocate while a callee runs, so compiled code reloads
  /// its frame registers from here after every call.
  int64_t *CurRg = nullptr;
  int64_t *CurLc = nullptr;
  int32_t Status = StatusOk;
  int32_t DeoptIndex = 0; ///< Code index to resume at (Status == Deopt).
  uint32_t Depth = 0;     ///< Call depth of the running native frame.
  uint32_t Pad0 = 0;
  CallHelperFn CallHelper = nullptr;
  PrintHelperFn PrintHelper = nullptr;
  void *Engine = nullptr; ///< The owning ExecEngine.
};

/// Compiled entry point. Arguments: context, register frame base, local
/// arena base, merged block+edge counter array (blocks first), and the
/// caller-side FnState the call helper needs to resolve call sites.
using EntryFn = int64_t (*)(NativeCtx *, int64_t *Rg, int64_t *Lc,
                            uint64_t *Cnt, void *FnState);

/// Geometry of the flat memory image a compile bakes in as immediates
/// (absolute cell bases for singleton/array accesses, the image size for
/// wild-pointer checks). Sig identifies the layout so a cached compile is
/// never run against a differently-laid-out image.
struct MemoryLayout {
  const int64_t *BaseById = nullptr; ///< Object id -> cell base, -1 = none.
  size_t NumIds = 0;
  size_t NumCells = 0;
  uint64_t Sig = 0;
};

/// Per-function native-tier cache entry (AnalysisKind::NativeCode).
/// Starts cold: build() makes an empty entry, the engine bumps HotCount
/// per call and compiles once the threshold is crossed. Invalidated (via
/// the manager) whenever the underlying decode is.
class NativeCode {
public:
  uint64_t HotCount = 0;  ///< Calls observed under the native engine.
  bool Attempted = false; ///< A compile ran (Entry null => unsupported).
  uint64_t ImageSig = 0;  ///< MemoryLayout::Sig the code was baked for.
  CodeBuffer Buf;
  EntryFn Entry = nullptr;
};

/// Compiles \p DF into NC.Buf / NC.Entry. Returns false (Entry stays
/// null) when the host is unsupported or the function uses a shape the
/// templates cannot encode (e.g. displacements beyond rel32 range); the
/// engine then stays on the bytecode tier for this function.
bool compileFunction(NativeCode &NC, const DecodedFunction &DF,
                     const MemoryLayout &L);

/// The call-count threshold at which a function is JIT-compiled: the
/// SRP_JIT_THRESHOLD environment knob, default 2 (profile run warms,
/// measure run executes natively).
uint64_t defaultJitThreshold();

} // namespace srp::jit

namespace srp {
template <> struct AnalysisTraits<jit::NativeCode> {
  static constexpr AnalysisKind Kind = AnalysisKind::NativeCode;
  static std::unique_ptr<jit::NativeCode> build(Function &,
                                                AnalysisManager &) {
    return std::make_unique<jit::NativeCode>();
  }
};
} // namespace srp

#endif // SRP_JIT_NATIVEJIT_H
