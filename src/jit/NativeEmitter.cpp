//===- jit/NativeEmitter.cpp - BInst -> x86-64 template compiler ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
// One fixed template per decoded opcode, emitted linearly per block with
// rel32 branch fixups. Register plan (all callee-saved, so engine helper
// calls need no spills):
//
//   rbx  register-frame base (Rg)           r13  FuelLeft
//   rbp  frame-local arena base (Lc)        r14  NativeCtx*
//   r12  block+edge counter array           r15  memory-image cell base
//   [rsp] caller FnState (for the call helper)
//
// rax/rcx/rdx are scratch within a single template. Every template is
// deopt-exact: the fuel check and all trap preconditions run *before* any
// accounting or state change for that instruction, so when the code bails
// out the bytecode loop re-executes the instruction from scratch and
// produces byte-identical counters, fuel charge and trap message.
//
//===----------------------------------------------------------------------===//

#include "jit/NativeJIT.h"

#include "interp/Bytecode.h"
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace srp;
using namespace srp::jit;

uint64_t srp::jit::defaultJitThreshold() {
  if (const char *V = std::getenv("SRP_JIT_THRESHOLD")) {
    char *End = nullptr;
    unsigned long long N = std::strtoull(V, &End, 10);
    if (End != V && N > 0)
      return N;
  }
  return 2;
}

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))

namespace {

// Register numbers (x86-64 encoding).
constexpr uint8_t RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5,
                  RSI = 6, RDI = 7, R8 = 8, R12 = 12, R13 = 13, R14 = 14,
                  R15 = 15;

// Condition codes (the tttn field of jcc/setcc).
constexpr uint8_t CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5,
                  CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF;

struct Label {
  int32_t Pos = -1;
  std::vector<size_t> Fixups; ///< Positions of rel32 fields to patch.
};

/// Minimal one-pass assembler: emits into a byte vector, binds labels,
/// patches rel32 fixups at the end.
class Asm {
public:
  std::vector<uint8_t> Code;

  void byte(uint8_t B) { Code.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }

  void rex(bool W, uint8_t Reg, uint8_t Index, uint8_t Base) {
    uint8_t B = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Index >> 3) << 1) |
                (Base >> 3);
    if (B != 0x40 || W)
      byte(B);
  }
  void modrm(uint8_t Mod, uint8_t Reg, uint8_t Rm) {
    byte(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | (Rm & 7)));
  }

  /// ModRM for [Base + disp32]; emits SIB when the base register demands
  /// one (rsp/r12 encodings).
  void memDisp(uint8_t Reg, uint8_t Base, int32_t Disp) {
    if ((Base & 7) == RSP) {
      modrm(2, Reg, 4);
      byte(static_cast<uint8_t>((4 << 3) | (Base & 7))); // no index
    } else {
      modrm(2, Reg, Base);
    }
    u32(static_cast<uint32_t>(Disp));
  }

  /// ModRM+SIB for [Base + Index*8 + disp32].
  void memIndex8(uint8_t Reg, uint8_t Base, uint8_t Index, int32_t Disp) {
    modrm(2, Reg, 4);
    byte(static_cast<uint8_t>((3 << 6) | ((Index & 7) << 3) | (Base & 7)));
    u32(static_cast<uint32_t>(Disp));
  }

  // mov reg64, [base+disp]
  void movRM(uint8_t Reg, uint8_t Base, int32_t Disp) {
    rex(true, Reg, 0, Base);
    byte(0x8B);
    memDisp(Reg, Base, Disp);
  }
  // mov [base+disp], reg64
  void movMR(uint8_t Base, int32_t Disp, uint8_t Reg) {
    rex(true, Reg, 0, Base);
    byte(0x89);
    memDisp(Reg, Base, Disp);
  }
  // mov [base+disp], reg32 (dword store)
  void movMR32(uint8_t Base, int32_t Disp, uint8_t Reg) {
    rex(false, Reg, 0, Base);
    byte(0x89);
    memDisp(Reg, Base, Disp);
  }
  // mov reg64, [base + index*8 + disp]
  void movRMIndex(uint8_t Reg, uint8_t Base, uint8_t Index, int32_t Disp) {
    rex(true, Reg, Index, Base);
    byte(0x8B);
    memIndex8(Reg, Base, Index, Disp);
  }
  // mov [base + index*8 + disp], reg64
  void movMRIndex(uint8_t Base, uint8_t Index, int32_t Disp, uint8_t Reg) {
    rex(true, Reg, Index, Base);
    byte(0x89);
    memIndex8(Reg, Base, Index, Disp);
  }
  // mov reg64, reg64
  void movRR(uint8_t Dst, uint8_t Src) {
    rex(true, Src, 0, Dst);
    byte(0x89);
    modrm(3, Src, Dst);
  }
  // mov reg32, imm32 (zero-extends)
  void movRI32(uint8_t Reg, uint32_t Imm) {
    rex(false, 0, 0, Reg);
    byte(static_cast<uint8_t>(0xB8 | (Reg & 7)));
    u32(Imm);
  }
  // mov reg64, imm64
  void movRI64(uint8_t Reg, uint64_t Imm) {
    rex(true, 0, 0, Reg);
    byte(static_cast<uint8_t>(0xB8 | (Reg & 7)));
    u64(Imm);
  }
  // mov qword [base+disp], imm32 (sign-extended)
  void movMI(uint8_t Base, int32_t Disp, int32_t Imm) {
    rex(true, 0, 0, Base);
    byte(0xC7);
    memDisp(0, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  // mov dword [base+disp], imm32
  void movMI32(uint8_t Base, int32_t Disp, int32_t Imm) {
    rex(false, 0, 0, Base);
    byte(0xC7);
    memDisp(0, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }

  // ALU reg64, [base+disp]: opcode is the r<-rm form (03 add, 2B sub, ...)
  void aluRM(uint8_t Opc, uint8_t Reg, uint8_t Base, int32_t Disp) {
    rex(true, Reg, 0, Base);
    byte(Opc);
    memDisp(Reg, Base, Disp);
  }
  // imul reg64, [base+disp]
  void imulRM(uint8_t Reg, uint8_t Base, int32_t Disp) {
    rex(true, Reg, 0, Base);
    byte(0x0F);
    byte(0xAF);
    memDisp(Reg, Base, Disp);
  }
  // cmp reg64, imm32 (sign-extended)
  void cmpRI32(uint8_t Reg, int32_t Imm) {
    rex(true, 0, 0, Reg);
    byte(0x81);
    modrm(3, 7, Reg);
    u32(static_cast<uint32_t>(Imm));
  }
  // cmp reg64, imm8 (sign-extended)
  void cmpRI8(uint8_t Reg, int8_t Imm) {
    rex(true, 0, 0, Reg);
    byte(0x83);
    modrm(3, 7, Reg);
    byte(static_cast<uint8_t>(Imm));
  }
  // test reg64, reg64
  void testRR(uint8_t A, uint8_t B) {
    rex(true, B, 0, A);
    byte(0x85);
    modrm(3, B, A);
  }
  // inc qword [base+disp]
  void incM(uint8_t Base, int32_t Disp) {
    rex(true, 0, 0, Base);
    byte(0xFF);
    memDisp(0, Base, Disp);
  }
  // dec reg64
  void decR(uint8_t Reg) {
    rex(true, 0, 0, Reg);
    byte(0xFF);
    modrm(3, 1, Reg);
  }
  void cqo() {
    byte(0x48);
    byte(0x99);
  }
  // idiv reg64
  void idivR(uint8_t Reg) {
    rex(true, 0, 0, Reg);
    byte(0xF7);
    modrm(3, 7, Reg);
  }
  // shl reg64, cl / sar reg64, cl
  void shlRCl(uint8_t Reg) {
    rex(true, 0, 0, Reg);
    byte(0xD3);
    modrm(3, 4, Reg);
  }
  void sarRCl(uint8_t Reg) {
    rex(true, 0, 0, Reg);
    byte(0xD3);
    modrm(3, 7, Reg);
  }
  // setcc al; movzx eax, al
  void setccEax(uint8_t CC) {
    byte(0x0F);
    byte(static_cast<uint8_t>(0x90 | CC));
    modrm(3, 0, RAX);
    byte(0x0F);
    byte(0xB6);
    modrm(3, RAX, RAX);
  }
  void xorEaxEax() {
    byte(0x31);
    modrm(3, RAX, RAX);
  }
  // call qword [base+disp]
  void callM(uint8_t Base, int32_t Disp) {
    rex(false, 0, 0, Base);
    byte(0xFF);
    memDisp(2, Base, Disp);
  }
  // cmp dword [base+disp], imm8-as-imm32? Use 83 /7 ib on dword.
  void cmpM32I8(uint8_t Base, int32_t Disp, int8_t Imm) {
    rex(false, 0, 0, Base);
    byte(0x83);
    memDisp(7, Base, Disp);
    byte(static_cast<uint8_t>(Imm));
  }
  void pushR(uint8_t Reg) {
    if (Reg >= 8)
      byte(0x41);
    byte(static_cast<uint8_t>(0x50 | (Reg & 7)));
  }
  void popR(uint8_t Reg) {
    if (Reg >= 8)
      byte(0x41);
    byte(static_cast<uint8_t>(0x58 | (Reg & 7)));
  }
  void subRspI8(int8_t Imm) {
    byte(0x48);
    byte(0x83);
    modrm(3, 5, RSP);
    byte(static_cast<uint8_t>(Imm));
  }
  void addRspI8(int8_t Imm) {
    byte(0x48);
    byte(0x83);
    modrm(3, 0, RSP);
    byte(static_cast<uint8_t>(Imm));
  }
  void ret() { byte(0xC3); }

  void bind(Label &L) { L.Pos = static_cast<int32_t>(Code.size()); }
  void jmp(Label &L) {
    byte(0xE9);
    L.Fixups.push_back(Code.size());
    u32(0);
  }
  void jcc(uint8_t CC, Label &L) {
    byte(0x0F);
    byte(static_cast<uint8_t>(0x80 | CC));
    L.Fixups.push_back(Code.size());
    u32(0);
  }

  bool patch(Label &L) {
    if (L.Pos < 0)
      return L.Fixups.empty();
    for (size_t Fix : L.Fixups) {
      int64_t Rel = static_cast<int64_t>(L.Pos) -
                    (static_cast<int64_t>(Fix) + 4);
      uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
      std::memcpy(Code.data() + Fix, &V, 4);
    }
    return true;
  }
};

constexpr int32_t offFuel = offsetof(NativeCtx, FuelLeft);
constexpr int32_t offInstr = offsetof(NativeCtx, Instructions);
constexpr int32_t offSLoads = offsetof(NativeCtx, SingletonLoads);
constexpr int32_t offSStores = offsetof(NativeCtx, SingletonStores);
constexpr int32_t offALoads = offsetof(NativeCtx, AliasedLoads);
constexpr int32_t offAStores = offsetof(NativeCtx, AliasedStores);
constexpr int32_t offCopies = offsetof(NativeCtx, Copies);
constexpr int32_t offCurRg = offsetof(NativeCtx, CurRg);
constexpr int32_t offCurLc = offsetof(NativeCtx, CurLc);
constexpr int32_t offStatus = offsetof(NativeCtx, Status);
constexpr int32_t offDeoptIdx = offsetof(NativeCtx, DeoptIndex);
constexpr int32_t offCallHelper = offsetof(NativeCtx, CallHelper);
constexpr int32_t offPrintHelper = offsetof(NativeCtx, PrintHelper);
constexpr int32_t offMemCells = offsetof(NativeCtx, MemCells);

class FunctionCompiler {
  Asm A;
  const DecodedFunction &DF;
  const MemoryLayout &L;
  std::vector<Label> BlockL;
  Label DeoptCommon, TrapExit, RetOk, EpilogueTail;

  static int32_t slotDisp(int32_t Slot) { return Slot * 8; }

  /// Deopt with eax = the code index the bytecode loop should resume at.
  void deoptAt(uint32_t CodeIdx) {
    A.movRI32(RAX, CodeIdx);
    A.jmp(DeoptCommon);
  }
  /// Deopt iff condition \p CC holds (on the flags just computed).
  void deoptIf(uint8_t CC, uint32_t CodeIdx) {
    Label Ok;
    A.jcc(CC ^ 1, Ok); // inverted condition skips the deopt
    deoptAt(CodeIdx);
    A.bind(Ok);
    A.patch(Ok);
  }
  /// The per-instruction fuel gate: out of fuel is a deopt (the bytecode
  /// loop then raises the exact "out of fuel" trap at this instruction).
  void fuelCheck(uint32_t CodeIdx) {
    A.testRR(R13, R13);
    deoptIf(CC_E, CodeIdx);
  }
  /// Accounting once all deopt conditions have passed: one fuel unit and
  /// one dynamic instruction, exactly like the bytecode loop header.
  void payFuel() {
    A.decR(R13);
    A.incM(R14, offInstr);
  }

  /// Emits one edge transition: edge counter, sequentialised phi copies,
  /// jump to the target block.
  void emitEdge(int32_t EdgeIdx) {
    const BEdge &E = DF.Edges[EdgeIdx];
    const size_t NB = DF.Blocks.size();
    A.incM(R12, static_cast<int32_t>((NB + E.Id) * 8));

    // The per-edge phi copies have parallel-copy semantics; sequentialise
    // at compile time with rax as the transfer register and rcx as the
    // single cycle-breaking temp (one suffices: after a cycle is broken
    // its chain unwinds completely before the worklist can stall again).
    struct PC {
      int32_t Dst, Src;
      bool FromTemp;
    };
    std::vector<PC> P;
    for (uint32_t I = E.CopyBegin; I != E.CopyEnd; ++I) {
      const PhiCopy &C = DF.PhiCopies[I];
      if (C.Dst != C.Src)
        P.push_back({C.Dst, C.Src, false});
    }
    while (!P.empty()) {
      bool Progress = false;
      for (size_t I = 0; I != P.size(); ++I) {
        bool Blocked = false;
        for (size_t J = 0; J != P.size(); ++J)
          if (J != I && !P[J].FromTemp && P[J].Src == P[I].Dst) {
            Blocked = true;
            break;
          }
        if (Blocked)
          continue;
        if (P[I].FromTemp) {
          A.movMR(RBX, slotDisp(P[I].Dst), RCX);
        } else {
          A.movRM(RAX, RBX, slotDisp(P[I].Src));
          A.movMR(RBX, slotDisp(P[I].Dst), RAX);
        }
        P.erase(P.begin() + static_cast<long>(I));
        Progress = true;
        break;
      }
      if (!Progress) {
        // Only cycles remain: park one source in rcx and redirect.
        A.movRM(RCX, RBX, slotDisp(P[0].Src));
        P[0].FromTemp = true;
      }
    }
    A.jmp(BlockL[E.To]);
  }

  void emitInst(uint32_t Idx) {
    const BInst &X = DF.Code[Idx];
    switch (X.Op) {
    case BOp::Add:
    case BOp::Sub:
    case BOp::Mul:
    case BOp::And:
    case BOp::Or:
    case BOp::Xor: {
      fuelCheck(Idx);
      payFuel();
      A.movRM(RAX, RBX, slotDisp(X.A));
      switch (X.Op) {
      case BOp::Add:
        A.aluRM(0x03, RAX, RBX, slotDisp(X.B));
        break;
      case BOp::Sub:
        A.aluRM(0x2B, RAX, RBX, slotDisp(X.B));
        break;
      case BOp::Mul:
        A.imulRM(RAX, RBX, slotDisp(X.B));
        break;
      case BOp::And:
        A.aluRM(0x23, RAX, RBX, slotDisp(X.B));
        break;
      case BOp::Or:
        A.aluRM(0x0B, RAX, RBX, slotDisp(X.B));
        break;
      default:
        A.aluRM(0x33, RAX, RBX, slotDisp(X.B));
        break;
      }
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    }
    case BOp::Div:
    case BOp::Rem: {
      fuelCheck(Idx);
      A.movRM(RCX, RBX, slotDisp(X.B));
      A.testRR(RCX, RCX);
      deoptIf(CC_E, Idx); // division/remainder by zero trap
      // INT64_MIN / -1 overflows idiv (#DE); the bytecode engine's C++
      // semantics are well defined, so take the slow path for any -1.
      A.cmpRI8(RCX, -1);
      deoptIf(CC_E, Idx);
      payFuel();
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cqo();
      A.idivR(RCX);
      A.movMR(RBX, slotDisp(X.Dst), X.Op == BOp::Div ? RAX : RDX);
      break;
    }
    case BOp::Shl:
    case BOp::Shr: {
      fuelCheck(Idx);
      payFuel();
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.movRM(RCX, RBX, slotDisp(X.B));
      // Hardware masks the count to 6 bits, identical to the engines' &63.
      if (X.Op == BOp::Shl)
        A.shlRCl(RAX);
      else
        A.sarRCl(RAX);
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    }
    case BOp::CmpEQ:
    case BOp::CmpNE:
    case BOp::CmpLT:
    case BOp::CmpLE:
    case BOp::CmpGT:
    case BOp::CmpGE: {
      fuelCheck(Idx);
      payFuel();
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.aluRM(0x3B, RAX, RBX, slotDisp(X.B)); // cmp
      uint8_t CC = CC_E;
      switch (X.Op) {
      case BOp::CmpEQ: CC = CC_E; break;
      case BOp::CmpNE: CC = CC_NE; break;
      case BOp::CmpLT: CC = CC_L; break;
      case BOp::CmpLE: CC = CC_LE; break;
      case BOp::CmpGT: CC = CC_G; break;
      default: CC = CC_GE; break;
      }
      A.setccEax(CC);
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    }
    case BOp::Copy:
      fuelCheck(Idx);
      payFuel();
      A.incM(R14, offCopies);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    case BOp::Load:
      fuelCheck(Idx);
      payFuel();
      A.incM(R14, offSLoads);
      A.movRM(RAX, R15, static_cast<int32_t>(L.BaseById[X.Obj] * 8));
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    case BOp::Store:
      fuelCheck(Idx);
      payFuel();
      A.incM(R14, offSStores);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.movMR(R15, static_cast<int32_t>(L.BaseById[X.Obj] * 8), RAX);
      break;
    case BOp::LoadLocal:
      fuelCheck(Idx);
      payFuel();
      A.incM(R14, offSLoads);
      A.movRM(RAX, RBP, static_cast<int32_t>(X.Obj * 8));
      A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    case BOp::StoreLocal:
      fuelCheck(Idx);
      payFuel();
      A.incM(R14, offSStores);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.movMR(RBP, static_cast<int32_t>(X.Obj * 8), RAX);
      break;
    case BOp::AddrOf:
      fuelCheck(Idx);
      payFuel();
      A.movMI(RBX, slotDisp(X.Dst), static_cast<int32_t>(L.BaseById[X.Obj]));
      break;
    case BOp::PtrLoad:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(L.NumCells));
      deoptIf(CC_AE, Idx); // wild pointer read (unsigned >= image size)
      payFuel();
      A.incM(R14, offALoads);
      A.movRMIndex(RDX, R15, RAX, 0);
      A.movMR(RBX, slotDisp(X.Dst), RDX);
      break;
    case BOp::PtrStore:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(L.NumCells));
      deoptIf(CC_AE, Idx); // wild pointer write
      payFuel();
      A.incM(R14, offAStores);
      A.movRM(RDX, RBX, slotDisp(X.B));
      A.movMRIndex(R15, RAX, 0, RDX);
      break;
    case BOp::ArrayLoad:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(X.Size));
      deoptIf(CC_AE, Idx); // out-of-bounds read
      payFuel();
      A.incM(R14, offALoads);
      A.movRMIndex(RDX, R15, RAX,
                   static_cast<int32_t>(L.BaseById[X.Obj] * 8));
      A.movMR(RBX, slotDisp(X.Dst), RDX);
      break;
    case BOp::ArrayStore:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(X.Size));
      deoptIf(CC_AE, Idx); // out-of-bounds write
      payFuel();
      A.incM(R14, offAStores);
      A.movRM(RDX, RBX, slotDisp(X.B));
      A.movMRIndex(R15, RAX, static_cast<int32_t>(L.BaseById[X.Obj] * 8),
                   RDX);
      break;
    case BOp::ArrayLoadLocal:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(X.Size));
      deoptIf(CC_AE, Idx);
      payFuel();
      A.incM(R14, offALoads);
      A.movRMIndex(RDX, RBP, RAX, static_cast<int32_t>(X.Obj * 8));
      A.movMR(RBX, slotDisp(X.Dst), RDX);
      break;
    case BOp::ArrayStoreLocal:
      fuelCheck(Idx);
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.cmpRI32(RAX, static_cast<int32_t>(X.Size));
      deoptIf(CC_AE, Idx);
      payFuel();
      A.incM(R14, offAStores);
      A.movRM(RDX, RBX, slotDisp(X.B));
      A.movMRIndex(RBP, RAX, static_cast<int32_t>(X.Obj * 8), RDX);
      break;
    case BOp::Call: {
      fuelCheck(Idx);
      payFuel();
      // Hand the call to the engine helper: it stages arguments from this
      // frame, dispatches the callee (native / bytecode / walker), and
      // re-anchors the frame pointers. Depth/arity/empty-callee traps are
      // raised inside and surface as Status != Ok.
      A.movMR(R14, offFuel, R13);
      A.movRR(RDI, R14);
      A.movRM(RSI, RSP, 0); // caller FnState, spilled in the prologue
      A.movRI32(RDX, Idx);
      A.movRR(RCX, RBX);
      A.movRR(R8, RBP);
      A.callM(R14, offCallHelper);
      A.movRM(R13, R14, offFuel);
      A.cmpM32I8(R14, offStatus, 0);
      A.jcc(CC_NE, TrapExit);
      A.movRM(RBX, R14, offCurRg);
      A.movRM(RBP, R14, offCurLc);
      if (X.Dst >= 0)
        A.movMR(RBX, slotDisp(X.Dst), RAX);
      break;
    }
    case BOp::Print:
      fuelCheck(Idx);
      payFuel();
      A.movRR(RDI, R14);
      A.movRM(RSI, RBX, slotDisp(X.A));
      A.callM(R14, offPrintHelper);
      break;
    case BOp::Jmp:
      fuelCheck(Idx);
      payFuel();
      emitEdge(X.T0);
      break;
    case BOp::JmpIf: {
      fuelCheck(Idx);
      payFuel();
      A.movRM(RAX, RBX, slotDisp(X.A));
      A.testRR(RAX, RAX);
      Label False;
      A.jcc(CC_E, False);
      emitEdge(X.T0);
      A.bind(False);
      A.patch(False);
      emitEdge(X.T1);
      break;
    }
    case BOp::Ret:
      fuelCheck(Idx);
      payFuel();
      if (X.A >= 0)
        A.movRM(RAX, RBX, slotDisp(X.A));
      else
        A.xorEaxEax();
      A.jmp(RetOk);
      break;
    case BOp::Trap:
      // Decode-time-known trap: always resolved by the bytecode loop so
      // the message (and the fuel-vs-trap ordering) stays exact.
      deoptAt(Idx);
      break;
    }
  }

public:
  FunctionCompiler(const DecodedFunction &DF, const MemoryLayout &L)
      : DF(DF), L(L) {}

  bool run(NativeCode &NC) {
    const size_t NB = DF.Blocks.size();
    BlockL.resize(NB);

    // Prologue: save callee-saved registers, spill the FnState argument,
    // load the pinned state. Entry rsp is 8 mod 16; six pushes keep it
    // there and the 8-byte spill slot realigns every helper call site.
    A.pushR(RBP);
    A.pushR(RBX);
    A.pushR(R12);
    A.pushR(R13);
    A.pushR(R14);
    A.pushR(R15);
    A.subRspI8(8);
    A.movMR(RSP, 0, R8); // FnState
    A.movRR(R14, RDI);
    A.movRR(RBX, RSI);
    A.movRR(RBP, RDX);
    A.movRR(R12, RCX);
    A.movRM(R13, R14, offFuel);
    A.movRM(R15, R14, offMemCells);

    for (size_t B = 0; B != NB; ++B) {
      A.bind(BlockL[B]);
      A.incM(R12, static_cast<int32_t>(B * 8));
      const uint32_t First = DF.Blocks[B].First;
      const uint32_t End = B + 1 != NB ? DF.Blocks[B + 1].First
                                       : static_cast<uint32_t>(DF.Code.size());
      for (uint32_t I = First; I != End; ++I)
        emitInst(I);
    }

    // Shared exit paths.
    A.bind(RetOk);
    A.movMI32(R14, offStatus, StatusOk);
    A.bind(EpilogueTail);
    A.movMR(R14, offFuel, R13);
    A.addRspI8(8);
    A.popR(R15);
    A.popR(R14);
    A.popR(R13);
    A.popR(R12);
    A.popR(RBX);
    A.popR(RBP);
    A.ret();
    A.bind(DeoptCommon);
    A.movMR32(R14, offDeoptIdx, RAX);
    A.movMI32(R14, offStatus, StatusDeopt);
    A.xorEaxEax();
    A.jmp(EpilogueTail);
    A.bind(TrapExit); // Status already set by the helper
    A.xorEaxEax();
    A.jmp(EpilogueTail);

    for (Label *Lb : {&DeoptCommon, &TrapExit, &RetOk, &EpilogueTail})
      A.patch(*Lb);
    for (Label &Lb : BlockL)
      A.patch(Lb);

    if (!NC.Buf.allocate(A.Code.size()))
      return false;
    std::memcpy(NC.Buf.data(), A.Code.data(), A.Code.size());
    if (!NC.Buf.finalize())
      return false;
    NC.Entry = reinterpret_cast<EntryFn>(NC.Buf.data());
    return true;
  }
};

} // namespace

bool srp::jit::compileFunction(NativeCode &NC, const DecodedFunction &DF,
                               const MemoryLayout &L) {
  NC.Entry = nullptr;
  NC.Buf.reset();
  if (!nativeJitSupported())
    return false;
  if (DF.NeedsWalk || DF.Empty || DF.Blocks.empty())
    return false;
  // Every displacement the templates bake must fit a signed 32-bit
  // immediate with headroom; frames and images anywhere near these limits
  // have no business being JIT-compiled.
  constexpr uint64_t Lim = 1u << 27; // cells / slots; *8 stays in int32
  if (DF.NumSlots > Lim || DF.LocalArenaSize > Lim || L.NumCells > Lim ||
      DF.Blocks.size() + DF.Edges.size() > Lim)
    return false;
  for (const BInst &X : DF.Code) {
    if (X.Size > Lim)
      return false;
    switch (X.Op) {
    case BOp::Load:
    case BOp::Store:
    case BOp::ArrayLoad:
    case BOp::ArrayStore:
    case BOp::AddrOf:
      if (X.Obj >= L.NumIds || L.BaseById[X.Obj] < 0)
        return false;
      break;
    default:
      break;
    }
  }
  return FunctionCompiler(DF, L).run(NC);
}

#else // !x86-64 hosts: the native tier degrades to bytecode.

bool srp::jit::compileFunction(NativeCode &, const DecodedFunction &,
                               const MemoryLayout &) {
  return false;
}

#endif
