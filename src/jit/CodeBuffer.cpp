//===- jit/CodeBuffer.cpp - W^X executable code allocation ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"

#include <utility>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define SRP_JIT_HOST_OK 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define SRP_JIT_HOST_OK 0
#endif

using namespace srp::jit;

bool srp::jit::nativeJitSupported() { return SRP_JIT_HOST_OK; }

CodeBuffer::~CodeBuffer() { reset(); }

CodeBuffer::CodeBuffer(CodeBuffer &&O) noexcept
    : Base(std::exchange(O.Base, nullptr)), Bytes(std::exchange(O.Bytes, 0)),
      Executable(std::exchange(O.Executable, false)) {}

CodeBuffer &CodeBuffer::operator=(CodeBuffer &&O) noexcept {
  if (this != &O) {
    reset();
    Base = std::exchange(O.Base, nullptr);
    Bytes = std::exchange(O.Bytes, 0);
    Executable = std::exchange(O.Executable, false);
  }
  return *this;
}

void CodeBuffer::reset() {
#if SRP_JIT_HOST_OK
  if (Base)
    ::munmap(Base, Bytes);
#endif
  Base = nullptr;
  Bytes = 0;
  Executable = false;
}

bool CodeBuffer::allocate(size_t WantBytes) {
  reset();
#if SRP_JIT_HOST_OK
  if (WantBytes == 0)
    return false;
  const size_t Page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  Bytes = (WantBytes + Page - 1) / Page * Page;
  void *P = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED) {
    Bytes = 0;
    return false;
  }
  Base = static_cast<uint8_t *>(P);
  return true;
#else
  (void)WantBytes;
  return false;
#endif
}

bool CodeBuffer::finalize() {
#if SRP_JIT_HOST_OK
  if (!Base || Executable)
    return false;
  if (::mprotect(Base, Bytes, PROT_READ | PROT_EXEC) != 0) {
    reset();
    return false;
  }
  Executable = true;
  return true;
#else
  return false;
#endif
}
