//===- server/Client.cpp - Compile-server client --------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace srp;
using namespace srp::server;

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  disconnect();
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(FD);
    FD = -1;
    return false;
  }
  return true;
}

void Client::disconnect() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
  Buf.clear();
}

bool Client::sendLine(const std::string &Line, std::string &Err) {
  std::string Out = Line + "\n";
  size_t Sent = 0;
  while (Sent < Out.size()) {
    ssize_t N =
        ::send(FD, Out.data() + Sent, Out.size() - Sent, MSG_NOSIGNAL);
    if (N <= 0) {
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool Client::recvLine(std::string &Line, std::string &Err) {
  char Chunk[4096];
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return true;
    }
    ssize_t Got = ::recv(FD, Chunk, sizeof(Chunk), 0);
    if (Got <= 0) {
      Err = Got == 0 ? "server closed the connection"
                     : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(Got));
  }
}

bool Client::roundTrip(const std::string &RequestLine,
                       std::string &ResponseLine, std::string &Err) {
  if (FD < 0) {
    Err = "not connected";
    return false;
  }
  if (!sendLine(RequestLine, Err))
    return false;
  return recvLine(ResponseLine, Err);
}

bool Client::compile(const CompileJob &Job, CompileResponse &Out,
                     std::string &Err) {
  std::string Resp;
  if (!roundTrip(encodeCompileRequest(Job, NextId++), Resp, Err))
    return false;
  json::Value V;
  if (!json::parse(Resp, V, Err)) {
    Err = "bad response: " + Err;
    return false;
  }
  return decodeCompileResponse(V, Out, Err);
}

bool Client::ping(std::string &Err) {
  std::string Resp;
  if (!roundTrip("{\"op\":\"ping\"}", Resp, Err))
    return false;
  json::Value V;
  if (!json::parse(Resp, V, Err))
    return false;
  if (!V.get("ok").asBool(false)) {
    Err = "server refused ping";
    return false;
  }
  return true;
}

bool Client::requestStats(std::string &StatsJson, std::string &Err) {
  std::string Resp;
  if (!roundTrip("{\"op\":\"stats\"}", Resp, Err))
    return false;
  json::Value V;
  if (!json::parse(Resp, V, Err))
    return false;
  const json::Value *S = V.find("stats");
  if (!V.get("ok").asBool(false) || !S) {
    Err = "server refused stats request";
    return false;
  }
  StatsJson = S->dump();
  return true;
}

bool Client::requestMetrics(std::string &PrometheusText, std::string &Err) {
  std::string Resp;
  if (!roundTrip("{\"op\":\"metrics\"}", Resp, Err))
    return false;
  json::Value V;
  if (!json::parse(Resp, V, Err))
    return false;
  const json::Value *P = V.find("prometheus");
  if (!V.get("ok").asBool(false) || !P || !P->isString()) {
    Err = "server refused metrics request";
    return false;
  }
  PrometheusText = P->asString();
  return true;
}

bool Client::requestShutdown(std::string &Err) {
  std::string Resp;
  if (!roundTrip("{\"op\":\"shutdown\"}", Resp, Err))
    return false;
  json::Value V;
  if (!json::parse(Resp, V, Err))
    return false;
  if (!V.get("ok").asBool(false)) {
    Err = "server refused shutdown";
    return false;
  }
  return true;
}
