//===- server/Protocol.cpp - Compile-server wire protocol -----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "analysis/StaticAnalysis.h"
#include <cstdio>

using namespace srp;
using namespace srp::server;

std::string srp::server::encodeCompileRequest(const CompileJob &Job,
                                              uint64_t Id) {
  const PipelineOptions Defaults;
  json::Value R = json::Value::object();
  R.set("op", json::Value::string("compile"));
  R.set("id", json::Value::integer(static_cast<int64_t>(Id)));
  if (!Job.Name.empty())
    R.set("name", json::Value::string(Job.Name));
  R.set("source", json::Value::string(Job.Source.str()));
  if (Job.InputIsIR)
    R.set("ir", json::Value::boolean(true));

  const PipelineOptions &O = Job.Opts;
  if (O.Mode != Defaults.Mode)
    R.set("mode", json::Value::string(promotionModeName(O.Mode)));
  if (O.EntryFunction != Defaults.EntryFunction)
    R.set("entry", json::Value::string(O.EntryFunction));
  {
    Strictness S = O.VerifyEachStep ? O.VerifyStrictness : Strictness::Off;
    Strictness DS = Defaults.VerifyEachStep ? Defaults.VerifyStrictness
                                            : Strictness::Off;
    if (S != DS)
      R.set("verify", json::Value::string(strictnessName(S)));
  }
  if (O.Interp != Defaults.Interp)
    R.set("interp", json::Value::string(interpEngineName(O.Interp)));
  if (O.JitThreshold != Defaults.JitThreshold)
    R.set("jit_threshold",
          json::Value::integer(static_cast<int64_t>(O.JitThreshold)));
  if (O.MeasurePressure != Defaults.MeasurePressure)
    R.set("measure_pressure", json::Value::boolean(O.MeasurePressure));
  if (O.DisableAnalysisCache != Defaults.DisableAnalysisCache)
    R.set("no_analysis_cache",
          json::Value::boolean(O.DisableAnalysisCache));
  if (O.Promo.AllowStoreElimination !=
      Defaults.Promo.AllowStoreElimination)
    R.set("store_elim",
          json::Value::boolean(O.Promo.AllowStoreElimination));
  if (O.Promo.WebGranularity != Defaults.Promo.WebGranularity)
    R.set("web_granularity",
          json::Value::boolean(O.Promo.WebGranularity));
  if (O.Promo.CountBoundaryOps != Defaults.Promo.CountBoundaryOps)
    R.set("boundary_cost",
          json::Value::boolean(O.Promo.CountBoundaryOps));
  if (O.Promo.DirectAliasedStores != Defaults.Promo.DirectAliasedStores)
    R.set("direct_stores",
          json::Value::boolean(O.Promo.DirectAliasedStores));
  if (O.Promo.ProfitThreshold != Defaults.Promo.ProfitThreshold)
    R.set("profit_threshold",
          json::Value::integer(O.Promo.ProfitThreshold));
  if (Job.WantRemarks)
    R.set("want_remarks", json::Value::boolean(true));
  if (!Job.RemarksFilter.empty())
    R.set("remarks_filter", json::Value::string(Job.RemarksFilter));
  if (Job.WantTrace)
    R.set("want_trace", json::Value::boolean(true));
  return R.dump();
}

bool srp::server::decodeCompileRequest(const json::Value &Req,
                                       CompileJob &Job, uint64_t &Id,
                                       std::string &Err) {
  if (!Req.isObject()) {
    Err = "request is not an object";
    return false;
  }
  Id = static_cast<uint64_t>(Req.get("id").asInt(0));
  const json::Value *Source = Req.find("source");
  if (!Source || !Source->isString()) {
    Err = "missing required string field 'source'";
    return false;
  }
  Job.Source = SourceText(Source->asString());
  Job.Name = Req.get("name").asString("<remote>");
  Job.InputIsIR = Req.get("ir").asBool(false);

  PipelineOptions &O = Job.Opts;
  if (const json::Value *V = Req.find("mode")) {
    if (!parsePromotionMode(V->asString(), O.Mode)) {
      Err = "unknown mode '" + V->asString() + "'";
      return false;
    }
  }
  if (const json::Value *V = Req.find("entry"))
    O.EntryFunction = V->asString();
  if (const json::Value *V = Req.find("verify")) {
    Strictness S;
    if (!parseStrictness(V->asString(), S)) {
      Err = "unknown strictness '" + V->asString() + "'";
      return false;
    }
    O.VerifyStrictness = S;
    O.VerifyEachStep = S != Strictness::Off;
  }
  if (const json::Value *V = Req.find("interp")) {
    if (!parseInterpEngine(V->asString(), O.Interp)) {
      Err = "unknown interpreter engine '" + V->asString() + "'";
      return false;
    }
  }
  if (const json::Value *V = Req.find("jit_threshold"))
    O.JitThreshold = static_cast<uint64_t>(V->asInt(0));
  if (const json::Value *V = Req.find("measure_pressure"))
    O.MeasurePressure = V->asBool(O.MeasurePressure);
  if (const json::Value *V = Req.find("no_analysis_cache"))
    O.DisableAnalysisCache = V->asBool(O.DisableAnalysisCache);
  if (const json::Value *V = Req.find("store_elim"))
    O.Promo.AllowStoreElimination = V->asBool(true);
  if (const json::Value *V = Req.find("web_granularity"))
    O.Promo.WebGranularity = V->asBool(true);
  if (const json::Value *V = Req.find("boundary_cost"))
    O.Promo.CountBoundaryOps = V->asBool(true);
  if (const json::Value *V = Req.find("direct_stores"))
    O.Promo.DirectAliasedStores = V->asBool(false);
  if (const json::Value *V = Req.find("profit_threshold"))
    O.Promo.ProfitThreshold = V->asInt(0);
  if (const json::Value *V = Req.find("want_remarks"))
    Job.WantRemarks = V->asBool(false);
  if (const json::Value *V = Req.find("remarks_filter"))
    Job.RemarksFilter = V->asString();
  if (const json::Value *V = Req.find("want_trace"))
    Job.WantTrace = V->asBool(false);
  return true;
}

std::string srp::server::encodeCompileResponse(uint64_t Id,
                                               const JobCache::Entry &E,
                                               bool CacheHit) {
  json::Value R = json::Value::object();
  R.set("id", json::Value::integer(static_cast<int64_t>(Id)));
  R.set("ok", json::Value::boolean(E.Ok));
  R.set("cache_hit", json::Value::boolean(CacheHit));
  R.set("exit_value", json::Value::integer(E.ExitValue));
  json::Value Out = json::Value::array();
  for (int64_t V : E.Output)
    Out.push(json::Value::integer(V));
  R.set("output", std::move(Out));
  char HashBuf[32];
  std::snprintf(HashBuf, sizeof(HashBuf), "%016llx",
                static_cast<unsigned long long>(E.FinalMemoryHash));
  R.set("final_memory_hash", json::Value::string(HashBuf));
  json::Value Errs = json::Value::array();
  for (const std::string &M : E.Errors)
    Errs.push(json::Value::string(M));
  R.set("errors", std::move(Errs));
  R.set("report", json::Value::string(E.ReportJson));
  if (!E.RemarksJson.empty())
    R.set("remarks_json", json::Value::string(E.RemarksJson));
  if (!E.TraceJson.empty())
    R.set("trace_json", json::Value::string(E.TraceJson));
  return R.dump();
}

std::string srp::server::encodeErrorResponse(uint64_t Id,
                                             const std::string &Msg) {
  json::Value R = json::Value::object();
  R.set("id", json::Value::integer(static_cast<int64_t>(Id)));
  R.set("ok", json::Value::boolean(false));
  R.set("error", json::Value::string(Msg));
  return R.dump();
}

bool srp::server::decodeCompileResponse(const json::Value &Resp,
                                        CompileResponse &Out,
                                        std::string &Err) {
  if (!Resp.isObject()) {
    Err = "response is not an object";
    return false;
  }
  Out.Id = static_cast<uint64_t>(Resp.get("id").asInt(0));
  Out.Ok = Resp.get("ok").asBool(false);
  Out.CacheHit = Resp.get("cache_hit").asBool(false);
  Out.ExitValue = Resp.get("exit_value").asInt(0);
  Out.Output.clear();
  for (const json::Value &V : Resp.get("output").items())
    Out.Output.push_back(V.asInt(0));
  Out.FinalMemoryHash = 0;
  {
    const std::string &Hex = Resp.get("final_memory_hash").asString();
    for (char C : Hex) {
      Out.FinalMemoryHash <<= 4;
      if (C >= '0' && C <= '9')
        Out.FinalMemoryHash |= uint64_t(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out.FinalMemoryHash |= uint64_t(C - 'a' + 10);
    }
  }
  Out.Errors.clear();
  for (const json::Value &V : Resp.get("errors").items())
    Out.Errors.push_back(V.asString());
  if (const json::Value *E = Resp.find("error"))
    if (E->isString() && !E->asString().empty())
      Out.Errors.push_back(E->asString());
  Out.ReportJson = Resp.get("report").asString();
  Out.RemarksJson = Resp.get("remarks_json").asString();
  Out.TraceJson = Resp.get("trace_json").asString();
  return true;
}
