//===- server/Protocol.h - Compile-server wire protocol --------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol the compile server speaks over
/// its unix-domain socket (docs/SERVER.md). Every message is one JSON
/// object on one line; requests carry an "op" discriminator:
///
///   {"op":"compile","id":1,"name":"loop.mc","source":"...","mode":"paper"}
///   {"op":"ping"} / {"op":"stats"} / {"op":"metrics"} / {"op":"shutdown"}
///
/// A compile response echoes the id and carries the behavioural fields
/// (exit value, printed output, final-memory digest) plus the complete
/// `srpc --stats-json` report as an embedded string — the exact bytes
/// resultToJson produced, so a client can print a report byte-identical
/// to a local run. A request may additionally set "want_remarks" /
/// "remarks_filter" / "want_trace" (the CompileJob observability fields);
/// the response then carries the captured documents as embedded strings
/// ("remarks_json", "trace_json"), again the exact local-run bytes —
/// replayed from the JobCache on a hit. The "metrics" op returns the
/// process-wide Prometheus snapshot ({"ok":true,"prometheus":"..."}).
///
/// Encode/decode here is shared by the server loop, the client
/// (`srpc --connect`), and the bench load generator, so the two sides
/// cannot drift.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SERVER_PROTOCOL_H
#define SRP_SERVER_PROTOCOL_H

#include "pipeline/Job.h"
#include "support/JSON.h"
#include <cstdint>
#include <string>
#include <vector>

namespace srp {
namespace server {

/// Bumped on incompatible wire changes; ping reports it.
constexpr int ProtocolVersion = 1;

/// Decoded compile response (the client-side view of a JobResult).
struct CompileResponse {
  uint64_t Id = 0;
  bool Ok = false;
  bool CacheHit = false;
  int64_t ExitValue = 0;
  std::vector<int64_t> Output;
  uint64_t FinalMemoryHash = 0;
  std::vector<std::string> Errors; ///< pipeline or protocol errors
  std::string ReportJson;          ///< the full --stats-json document
  std::string RemarksJson;         ///< remarksToJson document, "" if none
  std::string TraceJson;           ///< per-job trace document, "" if none
};

/// Serialises \p Job as a one-line compile request. Every option that
/// differs from the PipelineOptions defaults is spelled explicitly;
/// defaults are omitted, so requests stay small and forward-compatible.
std::string encodeCompileRequest(const CompileJob &Job, uint64_t Id);

/// Rebuilds a CompileJob from a parsed compile request. Unknown fields
/// are ignored (forward compatibility); bad values (unknown mode,
/// engine, strictness) fail with \p Err set. "source" is required.
bool decodeCompileRequest(const json::Value &Req, CompileJob &Job,
                          uint64_t &Id, std::string &Err);

/// Serialises a finished job (via its cache entry, which carries
/// exactly the response fields) as a one-line compile response.
std::string encodeCompileResponse(uint64_t Id, const JobCache::Entry &E,
                                  bool CacheHit);

/// Serialises a protocol-level failure for \p Id ("ok":false plus a
/// top-level "error" string, no report).
std::string encodeErrorResponse(uint64_t Id, const std::string &Msg);

/// Decodes any compile response (success or error) into \p Out.
bool decodeCompileResponse(const json::Value &Resp, CompileResponse &Out,
                           std::string &Err);

} // namespace server
} // namespace srp

#endif // SRP_SERVER_PROTOCOL_H
