//===- server/Server.cpp - Long-running compile server --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "server/Protocol.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace srp;
using namespace srp::server;

namespace {
SRP_STATISTIC(NumServerConnections, "server", "connections",
              "Client connections accepted by the compile server");
SRP_STATISTIC(NumServerJobs, "server", "jobs-submitted",
              "Compile jobs accepted by the compile server");
SRP_STATISTIC(NumServerBatches, "server", "batches",
              "Batches dispatched over the worker pool");
SRP_STATISTIC(NumServerCacheHits, "server", "cache-hits",
              "Jobs answered from the shared job cache");
SRP_STATISTIC(NumServerCacheMisses, "server", "cache-misses",
              "Jobs that required a pipeline run");
SRP_STATISTIC(NumServerBackpressure, "server", "backpressure-waits",
              "Times a connection reader blocked on a full job queue");
SRP_HISTOGRAM(QueueWaitMicros, "server", "queue-wait-micros",
              "Time a job spent queued before dispatch (us)");
SRP_HISTOGRAM(ServiceMicros, "server", "service-micros",
              "Pipeline wall time of one served job (us), cache hits "
              "excluded");
SRP_GAUGE(QueueDepth, "server", "queue-depth",
          "Jobs currently waiting in the dispatch queue");
} // namespace

/// One accepted client. Shared between its reader thread and any queued
/// jobs still owing it a response; writes are serialised by WriteMu.
struct CompileServer::Connection {
  int FD = -1;
  std::mutex WriteMu;
  std::atomic<bool> Closed{false};

  ~Connection() {
    if (FD >= 0)
      ::close(FD);
  }
};

std::string srp::server::serverStatsToJson(const ServerStats &S) {
  json::Value R = json::Value::object();
  R.set("connections", json::Value::integer(int64_t(S.Connections)));
  R.set("jobs_submitted", json::Value::integer(int64_t(S.JobsSubmitted)));
  R.set("jobs_completed", json::Value::integer(int64_t(S.JobsCompleted)));
  R.set("jobs_failed", json::Value::integer(int64_t(S.JobsFailed)));
  R.set("batches", json::Value::integer(int64_t(S.Batches)));
  R.set("protocol_errors", json::Value::integer(int64_t(S.ProtocolErrors)));
  R.set("backpressure_waits",
        json::Value::integer(int64_t(S.BackpressureWaits)));
  json::Value Cache = json::Value::object();
  Cache.set("hits", json::Value::integer(int64_t(S.Cache.Hits)));
  Cache.set("misses", json::Value::integer(int64_t(S.Cache.Misses)));
  Cache.set("insertions", json::Value::integer(int64_t(S.Cache.Insertions)));
  Cache.set("evictions", json::Value::integer(int64_t(S.Cache.Evictions)));
  Cache.set("hit_rate", json::Value::number(S.Cache.hitRate()));
  R.set("job_cache", std::move(Cache));
  json::Value An = json::Value::object();
  An.set("hits", json::Value::integer(int64_t(S.AnalysisHits)));
  An.set("misses", json::Value::integer(int64_t(S.AnalysisMisses)));
  An.set("hit_rate", json::Value::number(S.analysisHitRate()));
  R.set("analysis_cache", std::move(An));
  json::Value By = json::Value::object();
  By.set("decode_cache_hits",
         json::Value::integer(int64_t(S.DecodeCacheHits)));
  By.set("functions_decoded",
         json::Value::integer(int64_t(S.FunctionsDecoded)));
  By.set("hit_rate", json::Value::number(S.decodeHitRate()));
  R.set("bytecode_cache", std::move(By));
  R.set("uptime_seconds", json::Value::number(S.UptimeSeconds));
  return R.dump();
}

CompileServer::CompileServer(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheEntries) {
  if (!Opts.QueueCapacity)
    Opts.QueueCapacity = 1;
  if (!Opts.MaxBatch)
    Opts.MaxBatch = 1;
}

CompileServer::~CompileServer() {
  requestShutdown();
  wait();
}

bool CompileServer::start(std::string &Err) {
  if (Running.load())
    return true;
  sockaddr_un Addr{};
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Opts.SocketPath;
    return false;
  }
  ListenFD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFD < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Replace a stale socket file (e.g. from a crashed server); a live
  // server on the same path loses its socket, so callers pick distinct
  // paths per instance (the smoke gate and the bench do).
  ::unlink(Opts.SocketPath.c_str());
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFD, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    Err = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
    ::close(ListenFD);
    ListenFD = -1;
    return false;
  }
  if (::listen(ListenFD, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFD);
    ListenFD = -1;
    return false;
  }
  StartedAt = monotonicSeconds();
  Stopping.store(false);
  Running.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  return true;
}

void CompileServer::requestShutdown() {
  Stopping.store(true);
  QueueNotEmpty.notify_all();
  QueueNotFull.notify_all();
}

void CompileServer::wait() {
  if (!Running.load())
    return;
  // Threads poll their fds with a timeout and re-check Stopping, so a
  // blocked accept/read never outlives the flag by more than one tick.
  while (!Stopping.load()) {
    std::unique_lock<std::mutex> Lock(QueueMu);
    QueueNotEmpty.wait_for(Lock, std::chrono::milliseconds(200),
                           [&] { return Stopping.load(); });
  }
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (auto &C : Connections)
      C->Closed.store(true);
  }
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
  if (ListenFD >= 0) {
    ::close(ListenFD);
    ListenFD = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
  Running.store(false);
}

ServerStats CompileServer::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ServerStats S = Stats;
  S.Cache = Cache.stats();
  S.UptimeSeconds = monotonicSeconds() - StartedAt;
  return S;
}

void CompileServer::acceptLoop() {
  while (!Stopping.load()) {
    pollfd PFD{ListenFD, POLLIN, 0};
    int N = ::poll(&PFD, 1, 200);
    if (N <= 0)
      continue;
    int FD = ::accept(ListenFD, nullptr, nullptr);
    if (FD < 0)
      continue;
    auto Conn = std::make_shared<Connection>();
    Conn->FD = FD;
    ++NumServerConnections;
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.Connections;
    }
    if (Opts.Verbose)
      std::fprintf(stderr, "srpc-server: connection accepted\n");
    std::lock_guard<std::mutex> Lock(ConnMu);
    Connections.push_back(Conn);
    ConnThreads.emplace_back(
        [this, Conn] { connectionLoop(Conn); });
  }
}

void CompileServer::connectionLoop(std::shared_ptr<Connection> Conn) {
  std::string Buf;
  char Chunk[4096];
  while (!Stopping.load() && !Conn->Closed.load()) {
    pollfd PFD{Conn->FD, POLLIN, 0};
    int N = ::poll(&PFD, 1, 200);
    if (N <= 0)
      continue;
    ssize_t Got = ::recv(Conn->FD, Chunk, sizeof(Chunk), 0);
    if (Got <= 0) {
      // EOF or error: the peer is gone. Queued jobs still holding the
      // connection will find Closed set and skip their writes.
      Conn->Closed.store(true);
      break;
    }
    Buf.append(Chunk, static_cast<size_t>(Got));
    size_t Start = 0;
    for (size_t NL = Buf.find('\n', Start); NL != std::string::npos;
         NL = Buf.find('\n', Start)) {
      std::string Line = Buf.substr(Start, NL - Start);
      Start = NL + 1;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        handleLine(Conn, Line);
    }
    Buf.erase(0, Start);
  }
}

void CompileServer::handleLine(const std::shared_ptr<Connection> &Conn,
                               const std::string &Line) {
  json::Value Req;
  std::string Err;
  if (!json::parse(Line, Req, Err)) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ProtocolErrors;
    respond(Conn, encodeErrorResponse(0, "bad request: " + Err));
    return;
  }
  std::string Op = Req.get("op").asString("compile");

  if (Op == "ping") {
    json::Value R = json::Value::object();
    R.set("ok", json::Value::boolean(true));
    R.set("server", json::Value::string("srpc"));
    R.set("protocol", json::Value::integer(ProtocolVersion));
    R.set("pid", json::Value::integer(static_cast<int64_t>(::getpid())));
    respond(Conn, R.dump());
    return;
  }
  if (Op == "stats") {
    json::Value R = json::Value::object();
    R.set("ok", json::Value::boolean(true));
    std::string StatsJson = serverStatsToJson(stats());
    json::Value Body;
    std::string ParseErr;
    json::parse(StatsJson, Body, ParseErr);
    R.set("stats", std::move(Body));
    respond(Conn, R.dump());
    return;
  }
  if (Op == "metrics") {
    // The scrape endpoint: the whole process-global registry (counters,
    // gauges, histograms) in Prometheus text exposition format.
    json::Value R = json::Value::object();
    R.set("ok", json::Value::boolean(true));
    R.set("prometheus", json::Value::string(stats::metricsToPrometheusText()));
    respond(Conn, R.dump());
    return;
  }
  if (Op == "shutdown") {
    json::Value R = json::Value::object();
    R.set("ok", json::Value::boolean(true));
    R.set("shutting_down", json::Value::boolean(true));
    respond(Conn, R.dump());
    if (Opts.Verbose)
      std::fprintf(stderr, "srpc-server: shutdown requested\n");
    requestShutdown();
    return;
  }
  if (Op != "compile") {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ProtocolErrors;
    respond(Conn, encodeErrorResponse(0, "unknown op '" + Op + "'"));
    return;
  }

  QueuedJob QJ;
  QJ.Conn = Conn;
  if (!decodeCompileRequest(Req, QJ.Job, QJ.Id, Err)) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.ProtocolErrors;
    }
    respond(Conn, encodeErrorResponse(QJ.Id, Err));
    return;
  }
  ++NumServerJobs;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.JobsSubmitted;
  }

  // Shared-cache fast path: identical (source, options) answered from
  // memory, without touching the queue or the pool.
  if (JobCache::EntryPtr E = Cache.lookup(QJ.Job)) {
    ++NumServerCacheHits;
    if (trace::enabled())
      trace::instant("server", "job-cache-hit");
    respond(Conn, encodeCompileResponse(QJ.Id, *E, /*CacheHit=*/true));
    return;
  }
  ++NumServerCacheMisses;

  uint64_t Id = QJ.Id;
  if (!enqueue(std::move(QJ)))
    respond(Conn, encodeErrorResponse(Id, "server shutting down"));
}

bool CompileServer::enqueue(QueuedJob QJ) {
  std::unique_lock<std::mutex> Lock(QueueMu);
  if (Queue.size() >= Opts.QueueCapacity) {
    ++NumServerBackpressure;
    std::lock_guard<std::mutex> SLock(StatsMu);
    ++Stats.BackpressureWaits;
  }
  QueueNotFull.wait(Lock, [&] {
    return Stopping.load() || Queue.size() < Opts.QueueCapacity;
  });
  if (Stopping.load())
    return false;
  QJ.EnqueuedAt = monotonicSeconds();
  Queue.push_back(std::move(QJ));
  QueueDepth.set(static_cast<int64_t>(Queue.size()));
  QueueNotEmpty.notify_one();
  return true;
}

void CompileServer::dispatchLoop() {
  bool NamedTrack = false;
  while (true) {
    std::vector<QueuedJob> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueNotEmpty.wait_for(Lock, std::chrono::milliseconds(200), [&] {
        return Stopping.load() || !Queue.empty();
      });
      if (Queue.empty()) {
        if (Stopping.load())
          return; // drained: accepted jobs always get a response
        continue;
      }
      unsigned N = std::min<size_t>(Queue.size(), Opts.MaxBatch);
      Batch.reserve(N);
      for (unsigned I = 0; I != N; ++I) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
      QueueDepth.set(static_cast<int64_t>(Queue.size()));
      QueueNotFull.notify_all();
    }

    const double DequeuedAt = monotonicSeconds();
    for (const QueuedJob &QJ : Batch)
      QueueWaitMicros.observeSeconds(DequeuedAt - QJ.EnqueuedAt);

    if (trace::enabled() && !NamedTrack) {
      trace::setThreadName("server/dispatch");
      NamedTrack = true;
    }
    ++NumServerBatches;
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.Batches;
    }

    std::vector<CompileJob> Jobs;
    Jobs.reserve(Batch.size());
    for (const QueuedJob &QJ : Batch)
      Jobs.push_back(QJ.Job);

    TraceSpan BatchSpan;
    if (trace::enabled())
      BatchSpan.begin("server",
                      "batch(" + std::to_string(Jobs.size()) + ")");

    // One response per job as it finishes, on the worker that ran it —
    // the batch is a scheduling unit, not a response barrier. Workers
    // carry server-prefixed trace tracks ("server/worker-N") so merged
    // timelines tell them apart from local pipeline pools.
    runPipelineParallel(
        Jobs, Opts.Threads,
        [&](size_t I, const PipelineResult &R) {
          const QueuedJob &QJ = Batch[I];
          ServiceMicros.observeSeconds(R.WallSeconds);
          std::string Report = resultToJson(R, QJ.Job);
          JobCache::EntryPtr E = JobCache::makeEntry(QJ.Job, R, Report);
          Cache.insert(QJ.Job, E);
          {
            std::lock_guard<std::mutex> Lock(StatsMu);
            ++Stats.JobsCompleted;
            if (!R.Ok)
              ++Stats.JobsFailed;
            Stats.AnalysisHits += R.Analysis.Hits;
            Stats.AnalysisMisses += R.Analysis.Misses;
            Stats.DecodeCacheHits += R.RunBefore.Interp.DecodeCacheHits +
                                     R.RunAfter.Interp.DecodeCacheHits;
            Stats.FunctionsDecoded += R.RunBefore.Interp.FunctionsDecoded +
                                      R.RunAfter.Interp.FunctionsDecoded;
          }
          if (Opts.Verbose)
            std::fprintf(stderr, "srpc-server: job '%s' %s\n",
                         QJ.Job.Name.c_str(), R.Ok ? "ok" : "FAILED");
          respond(QJ.Conn, encodeCompileResponse(QJ.Id, *E,
                                                 /*CacheHit=*/false));
        },
        /*TrackPrefix=*/"server");
  }
}

void CompileServer::respond(const std::shared_ptr<Connection> &Conn,
                            const std::string &Line) {
  if (!Conn || Conn->Closed.load())
    return;
  std::lock_guard<std::mutex> Lock(Conn->WriteMu);
  std::string Out = Line + "\n";
  size_t Sent = 0;
  while (Sent < Out.size()) {
    ssize_t N = ::send(Conn->FD, Out.data() + Sent, Out.size() - Sent,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      Conn->Closed.store(true);
      return;
    }
    Sent += static_cast<size_t>(N);
  }
}

int srp::server::serveForever(const ServerOptions &Opts, bool Quiet) {
  CompileServer Server(Opts);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Quiet)
    std::fprintf(stderr,
                 "srpc: serving on %s (threads=%u, queue=%u, batch=%u, "
                 "cache=%zu)\n",
                 Opts.SocketPath.c_str(), Opts.Threads, Opts.QueueCapacity,
                 Opts.MaxBatch, Opts.CacheEntries);
  Server.wait();
  if (!Quiet) {
    ServerStats S = Server.stats();
    std::fprintf(stderr,
                 "srpc: served %llu jobs (%llu cache hits) over %llu "
                 "connections in %.1fs\n",
                 static_cast<unsigned long long>(S.JobsCompleted),
                 static_cast<unsigned long long>(S.Cache.Hits),
                 static_cast<unsigned long long>(S.Connections),
                 S.UptimeSeconds);
  }
  return 0;
}
