//===- server/Client.h - Compile-server client ------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the compile-server protocol: one blocking connection
/// over the unix-domain socket, used by `srpc --connect`, the bench load
/// generator, and the server tests. A Client is not thread-safe; the
/// load generator opens one per worker thread (which also exercises the
/// server's multi-connection path).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SERVER_CLIENT_H
#define SRP_SERVER_CLIENT_H

#include "server/Protocol.h"
#include <string>

namespace srp {
namespace server {

class Client {
public:
  Client() = default;
  ~Client() { disconnect(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the server socket. Returns false with \p Err set on
  /// failure (no server, permission, path too long).
  bool connect(const std::string &SocketPath, std::string &Err);
  void disconnect();
  bool connected() const { return FD >= 0; }

  /// Sends one request line and reads one response line. Lines are
  /// paired 1:1 per connection, so no id matching is needed here.
  bool roundTrip(const std::string &RequestLine, std::string &ResponseLine,
                 std::string &Err);

  /// Submits \p Job and decodes the response. Returns false with \p Err
  /// set on transport or protocol errors; pipeline failures come back as
  /// true with Out.Ok == false.
  bool compile(const CompileJob &Job, CompileResponse &Out,
               std::string &Err);

  /// {"op":"ping"} — true if the server answered with ok:true.
  bool ping(std::string &Err);

  /// {"op":"stats"} — raw JSON stats object text in \p StatsJson.
  bool requestStats(std::string &StatsJson, std::string &Err);

  /// {"op":"metrics"} — the server's process-wide metrics registry in
  /// Prometheus text exposition format, in \p PrometheusText.
  bool requestMetrics(std::string &PrometheusText, std::string &Err);

  /// {"op":"shutdown"} — asks the server to drain and exit.
  bool requestShutdown(std::string &Err);

private:
  bool sendLine(const std::string &Line, std::string &Err);
  bool recvLine(std::string &Line, std::string &Err);

  int FD = -1;
  uint64_t NextId = 1;
  std::string Buf; ///< bytes read past the last newline
};

} // namespace server
} // namespace srp

#endif // SRP_SERVER_CLIENT_H
