//===- server/Server.h - Long-running compile server -----------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `srpc --serve`: the pipeline as a long-running sharded service. A
/// CompileServer listens on a unix-domain socket, speaks the
/// newline-delimited JSON protocol of server/Protocol.h, and dispatches
/// accepted compile jobs over the existing runPipelineParallel worker
/// pool with batched scheduling:
///
///   connection readers --> bounded job queue --> batch dispatcher
///        (backpressure)        (FIFO)          (runPipelineParallel,
///                                               one response per job as
///                                               it finishes)
///
/// The bounded queue is the backpressure mechanism: when it is full,
/// connection readers block before reading the next request, so a
/// flooding client is throttled at its own socket instead of ballooning
/// server memory.
///
/// Jobs share exactly two pieces of process-wide mutable state, both
/// deliberately: the statistics registry (atomic counters) and the
/// JobCache (finished results keyed by source + options, answering
/// identical resubmissions without a run). Everything else — Module,
/// AnalysisManager, PipelineResult — is per-job, so concurrent jobs
/// with overlapping function names cannot alias each other's analyses
/// (tests/ServerTest.cpp pins this). See docs/SERVER.md.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SERVER_SERVER_H
#define SRP_SERVER_SERVER_H

#include "pipeline/Job.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace srp {
namespace server {

struct ServerOptions {
  /// Filesystem path of the unix-domain socket. An existing socket file
  /// is replaced (stale sockets from a crashed server would otherwise
  /// wedge restarts).
  std::string SocketPath = "/tmp/srpc.sock";
  /// Worker threads per dispatched batch (0 = hardware concurrency).
  unsigned Threads = 0;
  /// Bounded queue capacity; readers block when it is full.
  unsigned QueueCapacity = 64;
  /// Maximum jobs drained into one runPipelineParallel batch.
  unsigned MaxBatch = 16;
  /// JobCache capacity (finished results kept for resubmission).
  size_t CacheEntries = 128;
  /// Log connection/job lines to stderr.
  bool Verbose = false;
};

/// Counters exposed through the "stats" protocol op and the bench load
/// generator. Analysis/interp numbers are aggregated over every job the
/// server ran (cache hits answered without a run contribute nothing).
struct ServerStats {
  uint64_t Connections = 0;
  uint64_t JobsSubmitted = 0; ///< compile requests accepted
  uint64_t JobsCompleted = 0; ///< pipeline runs finished (Ok or not)
  uint64_t JobsFailed = 0;    ///< finished with Ok = false
  uint64_t Batches = 0;       ///< runPipelineParallel dispatches
  uint64_t ProtocolErrors = 0;
  uint64_t BackpressureWaits = 0; ///< times a reader blocked on a full queue
  JobCacheStats Cache;
  /// Summed per-job analysis-cache accounting (AnalysisManager).
  uint64_t AnalysisHits = 0;
  uint64_t AnalysisMisses = 0;
  /// Summed per-job bytecode decode accounting (interpreter tier).
  uint64_t DecodeCacheHits = 0;
  uint64_t FunctionsDecoded = 0;
  double UptimeSeconds = 0;

  double analysisHitRate() const {
    uint64_t T = AnalysisHits + AnalysisMisses;
    return T ? double(AnalysisHits) / double(T) : 0.0;
  }
  double decodeHitRate() const {
    uint64_t T = DecodeCacheHits + FunctionsDecoded;
    return T ? double(DecodeCacheHits) / double(T) : 0.0;
  }
};

/// Renders \p S as a JSON object (the "stats" op response body).
std::string serverStatsToJson(const ServerStats &S);

class CompileServer {
public:
  explicit CompileServer(ServerOptions Opts);
  ~CompileServer();

  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;

  /// Binds the socket and starts the accept + dispatcher threads.
  /// Returns false with \p Err set on socket errors.
  bool start(std::string &Err);

  /// Blocks until a shutdown request ({"op":"shutdown"} or
  /// requestShutdown()) has drained the queue and joined every thread.
  void wait();

  /// Thread-safe shutdown trigger; wait() returns once complete.
  void requestShutdown();

  bool running() const { return Running.load(); }
  const ServerOptions &options() const { return Opts; }
  ServerStats stats() const;

private:
  struct Connection;
  struct QueuedJob {
    std::shared_ptr<Connection> Conn;
    uint64_t Id = 0;
    CompileJob Job;
    double EnqueuedAt = 0; ///< feeds the server.queue-wait-micros histogram
  };

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Connection> Conn);
  void dispatchLoop();
  void handleLine(const std::shared_ptr<Connection> &Conn,
                  const std::string &Line);
  bool enqueue(QueuedJob QJ); ///< blocks on full queue; false on shutdown
  void respond(const std::shared_ptr<Connection> &Conn,
               const std::string &Line);

  ServerOptions Opts;
  int ListenFD = -1;
  double StartedAt = 0;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};

  std::thread AcceptThread;
  std::thread DispatchThread;
  std::mutex ConnMu;
  std::vector<std::shared_ptr<Connection>> Connections;
  std::vector<std::thread> ConnThreads;

  std::mutex QueueMu;
  std::condition_variable QueueNotFull, QueueNotEmpty;
  std::deque<QueuedJob> Queue;

  JobCache Cache;

  mutable std::mutex StatsMu;
  ServerStats Stats;
};

/// Convenience for `srpc --serve`: start, print one "listening" line
/// (unless quiet), block until shutdown, unlink the socket. Returns a
/// process exit code.
int serveForever(const ServerOptions &Opts, bool Quiet = false);

} // namespace server
} // namespace srp

#endif // SRP_SERVER_SERVER_H
