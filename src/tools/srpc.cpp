//===- tools/srpc.cpp - Mini-C compiler driver ----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: compile a Mini-C file, optionally promote, run,
/// and report. The "opt + lli" of this repository. Also the front door
/// of the compile server (docs/SERVER.md):
///
///   srpc file.mc                      # promote (paper mode) and run
///   srpc -mode=none|paper|noprofile|baseline file.mc
///   srpc -stats-json file.mc          # run report as JSON
///   srpc -serve -socket=/tmp/s.sock   # long-running compile server
///   srpc -connect -socket=/tmp/s.sock file.mc   # submit to a server
///   srpc -connect -server-stats       # query server counters
///   srpc -connect -shutdown           # drain and stop the server
///
/// One-shot, server, and client paths all speak the same job API
/// (pipeline/Job.h), so `-stats-json` output is byte-identical whether
/// the job ran in-process or on the other side of the socket.
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "frontend/Lowering.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "pipeline/Job.h"
#include "server/Client.h"
#include "server/Server.h"
#include "ssa/MemorySSA.h"
#include "support/Options.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace srp;

namespace {

/// Parses a non-negative integer option value.
bool parseUnsigned(const std::string &V, unsigned &Out) {
  if (V.empty())
    return false;
  unsigned long N = 0;
  for (char C : V) {
    if (C < '0' || C > '9')
      return false;
    N = N * 10 + static_cast<unsigned long>(C - '0');
    if (N > 1000000)
      return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

int runAnalyzeMode(const std::string &File, const std::string &Source,
                   bool InputIsIR, bool DiagJson) {
  // Static analysis mode: compile (without the implicit zero-init of
  // locals, so a load-before-store is visible as a read of the entry
  // memory version), run the layered IR checkers, then the source
  // lints on the un-mem2reg'd IR. No execution, no transformation.
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M;
  if (InputIsIR) {
    M = parseIR(Source, Errors);
  } else {
    LoweringOptions LO;
    LO.ImplicitZeroInitLocals = false;
    M = compileMiniC(Source, Errors, "mc", LO);
  }
  if (!M) {
    for (const auto &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  AnalysisManager AM(M.get());
  DiagnosticEngine DE;
  runChecks(*M, DE, Strictness::Fast, &AM);
  if (!DE.hasErrors()) {
    // The memory lints read mu/chi tags: build memory SSA first.
    for (const auto &F : M->functions())
      if (!F->empty())
        AM.get<MemorySSAInfo>(*F);
    runSourceLints(*M, AM, DE);
  }
  if (DiagJson) {
    std::printf("%s\n", diagnosticsToJson(DE.diagnostics()).c_str());
  } else {
    std::fputs(diagnosticsToText(DE.diagnostics()).c_str(), stdout);
    std::fprintf(stderr, "%s: %u error(s), %u warning(s)\n", File.c_str(),
                 DE.errors(), DE.warnings());
  }
  return DE.hasErrors() ? 1 : 0;
}

/// `srpc -connect`: submit the job to a running server and print (and
/// write) what a local run would have printed. The job carries its
/// observability requests, so -remarks-json/-trace-out work transparently:
/// the server captures per job and the response carries the exact bytes a
/// local run writes — replayed from the job cache on a hit.
int runConnectMode(const CompileJob &Job, const std::string &SocketPath,
                   bool Quiet, bool StatsJson,
                   const std::string &RemarksJsonPath,
                   const std::string &TraceOutPath) {
  server::Client C;
  std::string Err;
  if (!C.connect(SocketPath, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  server::CompileResponse Resp;
  if (!C.compile(Job, Resp, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Resp.Ok) {
    for (const auto &E : Resp.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  if (!RemarksJsonPath.empty()) {
    std::ofstream Out(RemarksJsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   RemarksJsonPath.c_str());
      return 1;
    }
    Out << Resp.RemarksJson << "\n";
  }
  if (!TraceOutPath.empty()) {
    std::ofstream Out(TraceOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 1;
    }
    Out << Resp.TraceJson;
  }
  if (!Quiet)
    for (int64_t V : Resp.Output)
      std::printf("%lld\n", static_cast<long long>(V));
  if (StatsJson)
    std::fputs(Resp.ReportJson.c_str(), stdout);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  PipelineOptions Opts;
  bool PrintBefore = false, PrintAfter = false, Stats = false;
  bool Counts = false, Quiet = false, InputIsIR = false;
  bool StatsJson = false, TimePasses = false;
  bool Analyze = false, DiagJson = false;
  bool Serve = false, Connect = false;
  bool Ping = false, ServerStats = false, Shutdown = false;
  bool ServerMetricsProm = false;
  server::ServerOptions SrvOpts;
  std::string File, RemarksJsonPath, RemarksFilter, TraceOutPath;

  opt::OptionParser OP("srpc", "[options] file.mc");
  OP.value("mode", "<none|paper|noprofile|baseline|superblock|memopt>",
           "promotion mode (default paper)",
           [&](const std::string &V) {
             return parsePromotionMode(V, Opts.Mode);
           });
  OP.value("entry", "<name>", "entry function (default main)",
           [&](const std::string &V) {
             Opts.EntryFunction = V;
             return true;
           });
  OP.flag("print-ir-before", "dump IR before promotion",
          [&] { PrintBefore = true; });
  OP.flag("print-ir-after", "dump IR after promotion",
          [&] { PrintAfter = true; });
  OP.flag("no-store-elim", "keep stores (loads only)",
          [&] { Opts.Promo.AllowStoreElimination = false; });
  OP.flag("whole-variable", "disable SSA-web granularity",
          [&] { Opts.Promo.WebGranularity = false; });
  OP.flag("no-boundary-cost", "use the paper's exact profit formula",
          [&] { Opts.Promo.CountBoundaryOps = false; });
  OP.flag("direct-stores", "improved aliased-store placement",
          [&] { Opts.Promo.DirectAliasedStores = true; });
  OP.flag("no-analysis-cache",
          "rebuild every analysis on each request (also: "
          "SRP_DISABLE_ANALYSIS_CACHE=1)",
          [&] { Opts.DisableAnalysisCache = true; });
  OP.value("interp", "<bytecode|walk|native>",
           "execution engine for the profile and measurement runs "
           "(default bytecode; walk is the reference tree-walker; native "
           "adds the hotness-tiered x86-64 baseline JIT; also: "
           "SRP_INTERP)",
           [&](const std::string &V) {
             return parseInterpEngine(V, Opts.Interp);
           });
  OP.value("jit-threshold", "<n>",
           "with -interp=native: call count at which a function is "
           "JIT-compiled (default 2, 1 = first call; also: "
           "SRP_JIT_THRESHOLD)",
           [&](const std::string &V) {
             char *End = nullptr;
             unsigned long long N = std::strtoull(V.c_str(), &End, 10);
             if (End == V.c_str() || *End)
               return false;
             Opts.JitThreshold = N;
             return true;
           });
  OP.flag("analyze",
          "static analysis only: run the IR checkers and the source "
          "lints, don't run the program; exit 1 on errors",
          [&] { Analyze = true; });
  OP.flag("diag-json", "with -analyze, emit diagnostics as JSON",
          [&] { DiagJson = true; });
  OP.value("verify-each", "<off|fast|full|semantic>",
           "between-pass verification depth (default fast; full adds "
           "the memory-SSA walks, canonical-shape and promotion checks; "
           "semantic additionally translation-validates every pass "
           "against a pre-pass snapshot)",
           [&](const std::string &V) {
             Strictness S;
             if (!parseStrictness(V, S))
               return false;
             Opts.VerifyStrictness = S;
             Opts.VerifyEachStep = S != Strictness::Off;
             return true;
           });
  OP.flag("stats", "print promotion statistics", [&] { Stats = true; });
  OP.flag("counts", "print static/dynamic memop counts",
          [&] { Counts = true; });
  OP.flag("stats-json",
          "emit run report (passes, statistics, counts, exec) as JSON "
          "on stdout (implies -quiet)",
          [&] {
            StatsJson = true;
            Quiet = true;
          });
  OP.value("remarks-json", "<file>",
           "write optimization remarks (per-web promote/reject decisions "
           "with the profitability inputs) as JSON; see docs/REMARKS.md",
           [&](const std::string &V) {
             RemarksJsonPath = V;
             return !V.empty();
           });
  OP.value("remarks-filter", "<pass>",
           "keep only remarks of one pass (promotion, mem2reg, "
           "loop-promotion, superblock, cleanup, pressure)",
           [&](const std::string &V) {
             RemarksFilter = V;
             return true;
           });
  OP.value("trace-out", "<file>",
           "write a Chrome trace (chrome://tracing / Perfetto) of the "
           "run or server; see docs/OBSERVABILITY.md",
           [&](const std::string &V) {
             TraceOutPath = V;
             return !V.empty();
           });
  OP.flag("time-passes",
          "print per-pass wall times (text; with -stats-json the times "
          "are in the JSON)",
          [&] { TimePasses = true; });
  OP.flag("ir", "input is textual IR, not Mini-C",
          [&] { InputIsIR = true; });
  OP.flag("quiet", "do not echo program output", [&] { Quiet = true; });

  // Compile-server options (docs/SERVER.md).
  OP.flag("serve",
          "run as a long-running compile server on the unix socket",
          [&] { Serve = true; });
  OP.flag("connect", "submit the job to a running server instead of "
                     "compiling in-process",
          [&] { Connect = true; });
  OP.value("socket", "<path>",
           "unix socket path for -serve/-connect (default /tmp/srpc.sock)",
           [&](const std::string &V) {
             SrvOpts.SocketPath = V;
             return !V.empty();
           });
  OP.value("threads", "<n>",
           "with -serve: worker threads per batch (0 = all cores)",
           [&](const std::string &V) {
             return parseUnsigned(V, SrvOpts.Threads);
           });
  OP.value("queue", "<n>",
           "with -serve: bounded job-queue capacity (backpressure)",
           [&](const std::string &V) {
             return parseUnsigned(V, SrvOpts.QueueCapacity) &&
                    SrvOpts.QueueCapacity > 0;
           });
  OP.value("batch", "<n>",
           "with -serve: max jobs dispatched per worker-pool batch",
           [&](const std::string &V) {
             return parseUnsigned(V, SrvOpts.MaxBatch) &&
                    SrvOpts.MaxBatch > 0;
           });
  OP.value("job-cache", "<n>",
           "with -serve: shared result-cache capacity in jobs",
           [&](const std::string &V) {
             unsigned N;
             if (!parseUnsigned(V, N) || N == 0)
               return false;
             SrvOpts.CacheEntries = N;
             return true;
           });
  OP.flag("server-verbose", "with -serve: log connections and jobs",
          [&] { SrvOpts.Verbose = true; });
  OP.flag("ping", "with -connect: check the server is alive",
          [&] { Ping = true; });
  OP.flag("server-stats", "with -connect: print server counters as JSON",
          [&] { ServerStats = true; });
  OP.flag("server-metrics-prom",
          "with -connect: print the server's metrics registry in "
          "Prometheus text format",
          [&] { ServerMetricsProm = true; });
  OP.flag("shutdown", "with -connect: ask the server to drain and exit",
          [&] { Shutdown = true; });
  OP.positional("file.mc", [&](const std::string &V) { File = V; });
  OP.epilog("Server mode and wire protocol: docs/SERVER.md.\n"
            "Report schema (-stats-json): docs/OBSERVABILITY.md.");

  switch (OP.parse(argc, argv)) {
  case opt::ParseResult::Ok:
    break;
  case opt::ParseResult::Help:
    return 0;
  case opt::ParseResult::Error:
    return 2;
  }

  if (Serve) {
    // Trace the server's lifetime: worker tracks (worker-N), the
    // dispatcher track, and per-job spans land in one timeline.
    if (!TraceOutPath.empty())
      trace::start();
    int Rc = server::serveForever(SrvOpts);
    if (!TraceOutPath.empty()) {
      trace::stop();
      std::ofstream Out(TraceOutPath);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     TraceOutPath.c_str());
        return 1;
      }
      Out << trace::toChromeJson();
    }
    return Rc;
  }

  // Admin ops need a connection but no input file.
  if (Ping || ServerStats || ServerMetricsProm || Shutdown) {
    server::Client C;
    std::string Err;
    if (!C.connect(SrvOpts.SocketPath, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    if (Ping) {
      if (!C.ping(Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("server on %s is alive\n", SrvOpts.SocketPath.c_str());
    }
    if (ServerStats) {
      std::string StatsJsonText;
      if (!C.requestStats(StatsJsonText, Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("%s\n", StatsJsonText.c_str());
    }
    if (ServerMetricsProm) {
      std::string Prom;
      if (!C.requestMetrics(Prom, Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::fputs(Prom.c_str(), stdout);
    }
    if (Shutdown) {
      if (!C.requestShutdown(Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
    }
    return 0;
  }

  if (File.empty()) {
    std::fputs(OP.helpText().c_str(), stderr);
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  if (Analyze)
    return runAnalyzeMode(File, SS.str(), InputIsIR, DiagJson);

  CompileJob Job;
  Job.Name = File;
  Job.Source = SourceText(SS.str());
  Job.Opts = Opts;
  Job.InputIsIR = InputIsIR;
  // Observability requests travel with the job: the same fields drive
  // the in-process capture and the server-side capture, so the bytes
  // written below are identical either way.
  Job.WantRemarks = !RemarksJsonPath.empty();
  Job.RemarksFilter = RemarksFilter;
  Job.WantTrace = !TraceOutPath.empty();

  if (Connect) {
    // The server runs the pipeline; options that need the in-process
    // result object (IR dumps, text reports) stay local-only. Remarks
    // and traces travel over the wire (see runConnectMode).
    const char *LocalOnly = PrintBefore || PrintAfter ? "-print-ir-*"
                            : TimePasses               ? "-time-passes"
                            : Stats                    ? "-stats"
                            : Counts                   ? "-counts"
                                                       : nullptr;
    if (LocalOnly) {
      std::fprintf(stderr,
                   "error: %s requires a local run (drop -connect)\n",
                   LocalOnly);
      return 2;
    }
    return runConnectMode(Job, SrvOpts.SocketPath, Quiet, StatsJson,
                          RemarksJsonPath, TraceOutPath);
  }

  // With -stats-json, stdout must stay pure JSON: IR dumps and the
  // -counts/-stats text go to stderr (the numbers are in the JSON anyway).
  std::FILE *Txt = StatsJson ? stderr : stdout;

  // The pipeline prints "before" IR only via its result module, which has
  // already been transformed; for -print-ir-before run a None-mode
  // pipeline first.
  if (PrintBefore) {
    // The extra None-mode run stays out of the reported job's capture.
    CompileJob NoneJob = Job;
    NoneJob.Opts.Mode = PromotionMode::None;
    NoneJob.WantRemarks = false;
    NoneJob.WantTrace = false;
    JobResult R0 = runCompileJob(NoneJob);
    if (R0.Pipeline.M)
      std::fprintf(Txt, ";; IR before promotion\n%s\n",
                   toString(*R0.Pipeline.M).c_str());
  }

  JobResult Res = runCompileJob(Job);
  const PipelineResult &R = Res.Pipeline;

  // The job API captured per-job (same path the server takes); write
  // the documents out. Byte layout matches what a -connect run receives.
  if (!RemarksJsonPath.empty()) {
    std::ofstream Out(RemarksJsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   RemarksJsonPath.c_str());
      return 1;
    }
    Out << remarksToJson(R.Remarks) << "\n";
  }
  if (!TraceOutPath.empty()) {
    std::ofstream Out(TraceOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 1;
    }
    Out << R.TraceJson;
  }

  if (!R.Ok) {
    for (const auto &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  if (PrintAfter)
    std::fprintf(Txt, ";; IR after promotion\n%s\n", toString(*R.M).c_str());

  if (!Quiet)
    for (int64_t V : R.RunAfter.Output)
      std::printf("%lld\n", static_cast<long long>(V));

  if (Counts) {
    std::fprintf(Txt, "static:  loads %u -> %u, stores %u -> %u\n",
                R.StaticBefore.Loads, R.StaticAfter.Loads,
                R.StaticBefore.Stores, R.StaticAfter.Stores);
    std::fprintf(Txt, "dynamic: loads %llu -> %llu, stores %llu -> %llu\n",
                static_cast<unsigned long long>(
                    R.RunBefore.Counts.SingletonLoads),
                static_cast<unsigned long long>(
                    R.RunAfter.Counts.SingletonLoads),
                static_cast<unsigned long long>(
                    R.RunBefore.Counts.SingletonStores),
                static_cast<unsigned long long>(
                    R.RunAfter.Counts.SingletonStores));
  }
  if (Stats) {
    std::fprintf(Txt, "webs: %u considered, %u promoted, %u store-eliminated\n",
                R.Promo.WebsConsidered, R.Promo.WebsPromoted,
                R.Promo.WebsStoreEliminated);
    std::fprintf(Txt, "loads: %u replaced, %u inserted; stores: %u deleted, "
                 "%u inserted; dummies: %u; reg-phis: %u\n",
                R.Promo.LoadsReplaced, R.Promo.LoadsInserted,
                R.Promo.StoresDeleted, R.Promo.StoresInserted,
                R.Promo.DummyLoadsInserted, R.Promo.RegisterPhisCreated);
  }

  if (TimePasses && !StatsJson) {
    std::printf("=== per-pass wall times ===\n");
    double Total = 0;
    for (const PassRecord &P : R.Passes)
      Total += P.WallSeconds;
    for (const PassRecord &P : R.Passes)
      std::printf("  %-14s %9.3f ms%s\n", P.Name.c_str(),
                  P.WallSeconds * 1e3, P.Verified ? "  (verified)" : "");
    std::printf("  %-14s %9.3f ms\n", "total", Total * 1e3);
  }

  // Schema documented in docs/OBSERVABILITY.md and pinned by
  // tests/JobTest.cpp; assembled by resultToJson so the server wire
  // format carries the same bytes. Keep stdout pure JSON.
  if (StatsJson)
    std::fputs(Res.ReportJson.c_str(), stdout);
  return 0;
}
