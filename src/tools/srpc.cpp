//===- tools/srpc.cpp - Mini-C compiler driver ----------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: compile a Mini-C file, optionally promote, run,
/// and report. The "opt + lli" of this repository.
///
///   srpc file.mc                      # promote (paper mode) and run
///   srpc -mode=none|paper|noprofile|baseline file.mc
///   srpc -print-ir-before -print-ir-after file.mc
///   srpc -no-store-elim -whole-variable -no-boundary-cost file.mc
///   srpc -entry=driver file.mc        # run a different entry function
///   srpc -stats file.mc               # promotion statistics
///   srpc -quiet file.mc               # suppress program output
///   srpc -analyze file.mc             # static analysis only (lints)
///   srpc -analyze -diag-json file.mc  # ... as JSON diagnostics
///   srpc -verify-each=full file.mc    # deep between-pass verification
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "frontend/Lowering.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "pipeline/Pipeline.h"
#include "ssa/MemorySSA.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace srp;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: srpc [options] file.mc\n"
      "  -mode=<none|paper|noprofile|baseline|superblock|memopt>  mode "
      "(default paper)\n"
      "  -entry=<name>        entry function (default main)\n"
      "  -print-ir-before     dump IR before promotion\n"
      "  -print-ir-after      dump IR after promotion\n"
      "  -no-store-elim       keep stores (loads only)\n"
      "  -whole-variable      disable SSA-web granularity\n"
      "  -no-boundary-cost    use the paper's exact profit formula\n"
      "  -direct-stores       improved aliased-store placement\n"
      "  -no-analysis-cache   rebuild every analysis on each request\n"
      "                       (also: SRP_DISABLE_ANALYSIS_CACHE=1)\n"
      "  -interp=<bytecode|walk>  execution engine for the profile and\n"
      "                       measurement runs (default bytecode; walk is\n"
      "                       the reference tree-walker; also: SRP_INTERP)\n"
      "  -analyze             static analysis only: run the IR checkers\n"
      "                       and the source lints (uninitialized load,\n"
      "                       dead store, unreachable code), don't run\n"
      "                       the program; exit 1 on errors\n"
      "  -diag-json           with -analyze, emit diagnostics as JSON\n"
      "  -verify-each=<off|fast|full>  between-pass verification depth\n"
      "                       (default fast; full adds the memory-SSA\n"
      "                       walks, canonical-shape and promotion checks)\n"
      "  -stats               print promotion statistics\n"
      "  -counts              print static/dynamic memop counts\n"
      "  -stats-json          emit run report (passes, statistics, counts)\n"
      "                       as JSON on stdout (implies -quiet)\n"
      "  -remarks-json=<file> write optimization remarks (per-web promote/\n"
      "                       reject decisions with the profitability\n"
      "                       inputs) as JSON; see docs/REMARKS.md\n"
      "  -remarks-filter=<pass>  keep only remarks of one pass (promotion,\n"
      "                       mem2reg, loop-promotion, superblock, cleanup,\n"
      "                       pressure)\n"
      "  -trace-out=<file>    write a Chrome trace (chrome://tracing /\n"
      "                       Perfetto) of the run; see docs/OBSERVABILITY.md\n"
      "  -time-passes         print per-pass wall times (text; with\n"
      "                       -stats-json the times are in the JSON)\n"
      "  -ir                  input is textual IR, not Mini-C\n"
      "  -quiet               do not echo program output\n"
      "  (options may also be spelled with a leading --)\n");
}

} // namespace

int main(int argc, char **argv) {
  PipelineOptions Opts;
  bool PrintBefore = false, PrintAfter = false, Stats = false;
  bool Counts = false, Quiet = false, InputIsIR = false;
  bool StatsJson = false, TimePasses = false;
  bool Analyze = false, DiagJson = false;
  std::string File, RemarksJsonPath, RemarksFilter, TraceOutPath;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    // Accept GNU-style double dashes for every option.
    if (A.rfind("--", 0) == 0)
      A.erase(0, 1);
    if (A.rfind("-mode=", 0) == 0) {
      std::string Mode = A.substr(6);
      if (!parsePromotionMode(Mode, Opts.Mode)) {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Mode.c_str());
        return 2;
      }
    } else if (A.rfind("-entry=", 0) == 0) {
      Opts.EntryFunction = A.substr(7);
    } else if (A == "-print-ir-before") {
      PrintBefore = true;
    } else if (A == "-print-ir-after") {
      PrintAfter = true;
    } else if (A == "-no-store-elim") {
      Opts.Promo.AllowStoreElimination = false;
    } else if (A == "-whole-variable") {
      Opts.Promo.WebGranularity = false;
    } else if (A == "-no-boundary-cost") {
      Opts.Promo.CountBoundaryOps = false;
    } else if (A == "-direct-stores") {
      Opts.Promo.DirectAliasedStores = true;
    } else if (A == "-no-analysis-cache") {
      Opts.DisableAnalysisCache = true;
    } else if (A.rfind("-interp=", 0) == 0) {
      std::string Engine = A.substr(8);
      if (!parseInterpEngine(Engine, Opts.Interp)) {
        std::fprintf(stderr, "error: unknown interpreter engine '%s'\n",
                     Engine.c_str());
        return 2;
      }
    } else if (A == "-analyze") {
      Analyze = true;
    } else if (A == "-diag-json") {
      DiagJson = true;
    } else if (A.rfind("-verify-each=", 0) == 0) {
      std::string Level = A.substr(13);
      Strictness S;
      if (!parseStrictness(Level, S)) {
        std::fprintf(stderr, "error: unknown strictness '%s'\n",
                     Level.c_str());
        return 2;
      }
      Opts.VerifyStrictness = S;
      Opts.VerifyEachStep = S != Strictness::Off;
    } else if (A == "-stats") {
      Stats = true;
    } else if (A == "-counts") {
      Counts = true;
    } else if (A == "-stats-json") {
      StatsJson = true;
      Quiet = true;
    } else if (A.rfind("-remarks-json=", 0) == 0) {
      RemarksJsonPath = A.substr(14);
    } else if (A.rfind("-remarks-filter=", 0) == 0) {
      RemarksFilter = A.substr(16);
    } else if (A.rfind("-trace-out=", 0) == 0) {
      TraceOutPath = A.substr(11);
    } else if (A == "-time-passes") {
      TimePasses = true;
    } else if (A == "-quiet") {
      Quiet = true;
    } else if (A == "-ir") {
      InputIsIR = true;
    } else if (A == "-h" || A == "--help") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      File = A;
    }
  }
  if (File.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  if (Analyze) {
    // Static analysis mode: compile (without the implicit zero-init of
    // locals, so a load-before-store is visible as a read of the entry
    // memory version), run the layered IR checkers, then the source
    // lints on the un-mem2reg'd IR. No execution, no transformation.
    std::vector<std::string> Errors;
    std::unique_ptr<Module> M;
    if (InputIsIR) {
      M = parseIR(SS.str(), Errors);
    } else {
      LoweringOptions LO;
      LO.ImplicitZeroInitLocals = false;
      M = compileMiniC(SS.str(), Errors, "mc", LO);
    }
    if (!M) {
      for (const auto &E : Errors)
        std::fprintf(stderr, "error: %s\n", E.c_str());
      return 1;
    }
    AnalysisManager AM(M.get());
    DiagnosticEngine DE;
    runChecks(*M, DE, Strictness::Fast, &AM);
    if (!DE.hasErrors()) {
      // The memory lints read mu/chi tags: build memory SSA first.
      for (const auto &F : M->functions())
        if (!F->empty())
          AM.get<MemorySSAInfo>(*F);
      runSourceLints(*M, AM, DE);
    }
    if (DiagJson) {
      std::printf("%s\n", diagnosticsToJson(DE.diagnostics()).c_str());
    } else {
      std::fputs(diagnosticsToText(DE.diagnostics()).c_str(), stdout);
      std::fprintf(stderr, "%s: %u error(s), %u warning(s)\n", File.c_str(),
                   DE.errors(), DE.warnings());
    }
    return DE.hasErrors() ? 1 : 0;
  }

  auto runOnce = [&](const PipelineOptions &O) {
    if (!InputIsIR)
      return runPipeline(SS.str(), O);
    PipelineResult R;
    auto M = parseIR(SS.str(), R.Errors);
    if (!M)
      return R;
    return runPipeline(std::move(M), O);
  };

  // With -stats-json, stdout must stay pure JSON: IR dumps and the
  // -counts/-stats text go to stderr (the numbers are in the JSON anyway).
  std::FILE *Txt = StatsJson ? stderr : stdout;

  // The pipeline prints "before" IR only via its result module, which has
  // already been transformed; for -print-ir-before run a None-mode
  // pipeline first.
  if (PrintBefore) {
    PipelineOptions NoneOpts = Opts;
    NoneOpts.Mode = PromotionMode::None;
    PipelineResult R0 = runOnce(NoneOpts);
    if (R0.M)
      std::fprintf(Txt, ";; IR before promotion\n%s\n",
                   toString(*R0.M).c_str());
  }

  // Observability sinks cover only the reported pipeline run (the extra
  // None-mode run behind -print-ir-before stays out of the picture).
  RemarkEngine Remarks;
  if (!RemarksJsonPath.empty()) {
    Remarks.setPassFilter(RemarksFilter);
    remarks::setSink(&Remarks);
  }
  if (!TraceOutPath.empty())
    trace::start();

  PipelineResult R = runOnce(Opts);

  if (!RemarksJsonPath.empty()) {
    remarks::setSink(nullptr);
    std::ofstream Out(RemarksJsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   RemarksJsonPath.c_str());
      return 1;
    }
    Out << remarksToJson(Remarks.remarks()) << "\n";
  }
  if (!TraceOutPath.empty()) {
    trace::stop();
    std::ofstream Out(TraceOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 1;
    }
    Out << trace::toChromeJson();
  }

  if (!R.Ok) {
    for (const auto &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  if (PrintAfter)
    std::fprintf(Txt, ";; IR after promotion\n%s\n", toString(*R.M).c_str());

  if (!Quiet)
    for (int64_t V : R.RunAfter.Output)
      std::printf("%lld\n", static_cast<long long>(V));

  if (Counts) {
    std::fprintf(Txt, "static:  loads %u -> %u, stores %u -> %u\n",
                R.StaticBefore.Loads, R.StaticAfter.Loads,
                R.StaticBefore.Stores, R.StaticAfter.Stores);
    std::fprintf(Txt, "dynamic: loads %llu -> %llu, stores %llu -> %llu\n",
                static_cast<unsigned long long>(
                    R.RunBefore.Counts.SingletonLoads),
                static_cast<unsigned long long>(
                    R.RunAfter.Counts.SingletonLoads),
                static_cast<unsigned long long>(
                    R.RunBefore.Counts.SingletonStores),
                static_cast<unsigned long long>(
                    R.RunAfter.Counts.SingletonStores));
  }
  if (Stats) {
    std::fprintf(Txt, "webs: %u considered, %u promoted, %u store-eliminated\n",
                R.Promo.WebsConsidered, R.Promo.WebsPromoted,
                R.Promo.WebsStoreEliminated);
    std::fprintf(Txt, "loads: %u replaced, %u inserted; stores: %u deleted, "
                 "%u inserted; dummies: %u; reg-phis: %u\n",
                R.Promo.LoadsReplaced, R.Promo.LoadsInserted,
                R.Promo.StoresDeleted, R.Promo.StoresInserted,
                R.Promo.DummyLoadsInserted, R.Promo.RegisterPhisCreated);
  }

  if (TimePasses && !StatsJson) {
    std::printf("=== per-pass wall times ===\n");
    double Total = 0;
    for (const PassRecord &P : R.Passes)
      Total += P.WallSeconds;
    for (const PassRecord &P : R.Passes)
      std::printf("  %-14s %9.3f ms%s\n", P.Name.c_str(),
                  P.WallSeconds * 1e3, P.Verified ? "  (verified)" : "");
    std::printf("  %-14s %9.3f ms\n", "total", Total * 1e3);
  }

  if (StatsJson) {
    // Schema documented in docs/OBSERVABILITY.md. Keep stdout pure JSON.
    std::ostringstream OS;
    OS << "{\n"
       << "  \"file\": \"" << jsonEscape(File) << "\",\n"
       << "  \"mode\": \"" << promotionModeName(Opts.Mode) << "\",\n"
       << "  \"entry\": \"" << jsonEscape(Opts.EntryFunction) << "\",\n"
       << "  \"ok\": " << (R.Ok ? "true" : "false") << ",\n"
       << "  \"exit_value\": " << R.RunAfter.ExitValue << ",\n"
       << "  \"passes\": " << passRecordsToJson(R.Passes, 1) << ",\n"
       << "  \"statistics\": " << stats::toJson(stats::snapshot(), 1)
       << ",\n"
       << "  \"analysis\": " << analysisCacheStatsToJson(R.Analysis, 1)
       << ",\n"
       << "  \"interp\": {\n"
       << "    \"engine\": \"" << interpEngineName(Opts.Interp) << "\",\n"
       << "    \"functions_decoded\": "
       << (R.RunBefore.Interp.FunctionsDecoded +
           R.RunAfter.Interp.FunctionsDecoded)
       << ",\n"
       << "    \"decode_cache_hits\": "
       << (R.RunBefore.Interp.DecodeCacheHits +
           R.RunAfter.Interp.DecodeCacheHits)
       << ",\n"
       << "    \"walk_fallback_calls\": "
       << (R.RunBefore.Interp.WalkFallbackCalls +
           R.RunAfter.Interp.WalkFallbackCalls)
       << ",\n"
       << "    \"decode_seconds\": "
       << (R.RunBefore.Interp.DecodeSeconds +
           R.RunAfter.Interp.DecodeSeconds)
       << ",\n"
       << "    \"profile_exec_seconds\": " << R.RunBefore.Interp.ExecSeconds
       << ",\n"
       << "    \"measure_exec_seconds\": " << R.RunAfter.Interp.ExecSeconds
       << "\n"
       << "  },\n"
       << "  \"verification\": {\n"
       << "    \"strictness\": \""
       << strictnessName(Opts.VerifyEachStep ? Opts.VerifyStrictness
                                             : Strictness::Off)
       << "\",\n"
       << "    \"passes_verified\": " << R.Verify.PassesVerified << ",\n"
       << "    \"checks_run\": " << R.Verify.ChecksRun << ",\n"
       << "    \"diagnostics\": " << R.Verify.Diagnostics << ",\n"
       << "    \"wall_seconds\": " << R.Verify.WallSeconds << "\n"
       << "  },\n"
       << "  \"counts\": {\n"
       << "    \"static_loads_before\": " << R.StaticBefore.Loads << ",\n"
       << "    \"static_loads_after\": " << R.StaticAfter.Loads << ",\n"
       << "    \"static_stores_before\": " << R.StaticBefore.Stores << ",\n"
       << "    \"static_stores_after\": " << R.StaticAfter.Stores << ",\n"
       << "    \"dynamic_loads_before\": "
       << R.RunBefore.Counts.SingletonLoads << ",\n"
       << "    \"dynamic_loads_after\": "
       << R.RunAfter.Counts.SingletonLoads << ",\n"
       << "    \"dynamic_stores_before\": "
       << R.RunBefore.Counts.SingletonStores << ",\n"
       << "    \"dynamic_stores_after\": "
       << R.RunAfter.Counts.SingletonStores << "\n"
       << "  },\n"
       << "  \"pressure\": {\n"
       << "    \"values\": " << R.Pressure.NumValues << ",\n"
       << "    \"edges\": " << R.Pressure.Edges << ",\n"
       << "    \"colors_needed\": " << R.Pressure.ColorsNeeded << ",\n"
       << "    \"max_live\": " << R.Pressure.MaxLive << "\n"
       << "  }\n"
       << "}\n";
    std::fputs(OS.str().c_str(), stdout);
  }
  return 0;
}
