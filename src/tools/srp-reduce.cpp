//===- tools/srp-reduce.cpp - Failing-program reducer ---------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing Mini-C program while preserving its failure
/// signature (gen/Reducer.h over the gen/Corpus.h oracle stack).
///
///   srp-reduce crash.mc                   # signature taken from the input
///   srp-reduce -signature=oracle-mismatch:paper:output crash.mc
///   srp-reduce -o=min.mc crash.mc
///
/// Exit status: 0 reduced (or already minimal), 1 the input does not fail
/// at all, 2 usage/IO error.
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/Reducer.h"
#include "support/Options.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace srp;
using namespace srp::gen;

int main(int argc, char **argv) {
  std::string File, OutFile, Signature;
  ReduceOptions RO;
  CheckOptions CO;
  bool Quiet = false;

  opt::OptionParser OP("srp-reduce", "[options] file.mc");
  OP.value("signature", "<sig>",
           "failure signature to preserve (default: what the oracle "
           "stack reports for the input)",
           [&](const std::string &V) {
             Signature = V;
             return !V.empty();
           });
  OP.value("o", "<file>",
           "write the reduced program here (default: print to stdout)",
           [&](const std::string &V) {
             OutFile = V;
             return !V.empty();
           });
  OP.value("max-tests", "<n>", "oracle-run budget (default 2000)",
           [&](const std::string &V) {
             RO.MaxTests = unsigned(std::strtoul(V.c_str(), nullptr, 10));
             return RO.MaxTests > 0;
           });
  OP.value("max-passes", "<n>", "sweep-pass bound (default 12)",
           [&](const std::string &V) {
             RO.MaxPasses = unsigned(std::strtoul(V.c_str(), nullptr, 10));
             return RO.MaxPasses > 0;
           });
  OP.value("verify", "<off|fast|full>",
           "verification depth of the oracle runs (default full)",
           [&](const std::string &V) {
             if (V == "off") {
               CO.VerifyEachStep = false;
               return true;
             }
             if (V == "fast") {
               CO.Verify = Strictness::Fast;
               return true;
             }
             if (V == "full") {
               CO.Verify = Strictness::Full;
               return true;
             }
             return false;
           });
  OP.flag("no-parity", "skip walk-vs-bytecode parity in the oracle",
          [&] { CO.EngineParity = false; });
  OP.flag("quiet", "suppress the progress summary on stderr",
          [&] { Quiet = true; });
  OP.positional("file.mc", [&](const std::string &V) { File = V; });

  switch (OP.parse(argc, argv)) {
  case opt::ParseResult::Ok:
    break;
  case opt::ParseResult::Help:
    return 0;
  case opt::ParseResult::Error:
    return 2;
  }
  if (File.empty()) {
    std::fputs(OP.helpText().c_str(), stderr);
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  if (Signature.empty()) {
    CheckResult Initial = checkSource(Source, CO);
    if (Initial.Ok) {
      std::fprintf(stderr,
                   "srp-reduce: input passes the oracle stack; nothing to "
                   "reduce\n");
      return 1;
    }
    Signature = Initial.Signature;
    if (!Quiet)
      std::fprintf(stderr, "srp-reduce: preserving signature '%s' (%s)\n",
                   Signature.c_str(), Initial.Detail.c_str());
  }

  FailurePredicate StillFails = [&](const std::string &Candidate) {
    return checkSource(Candidate, CO).Signature == Signature;
  };
  ReduceResult R = reduceSource(Source, StillFails, RO);
  if (R.ReducedBytes == R.OriginalBytes && !StillFails(Source)) {
    std::fprintf(stderr, "srp-reduce: input does not exhibit signature "
                         "'%s'\n",
                 Signature.c_str());
    return 1;
  }

  if (!Quiet)
    std::fprintf(stderr,
                 "srp-reduce: %zu -> %zu bytes (%.0f%% smaller), %u oracle "
                 "runs, %u passes\n",
                 R.OriginalBytes, R.ReducedBytes, R.shrink() * 100.0,
                 R.TestsRun, R.PassesRun);

  if (OutFile.empty()) {
    std::fputs(R.Reduced.c_str(), stdout);
  } else {
    std::ofstream Out(OutFile);
    Out << R.Reduced;
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
      return 2;
    }
  }
  return 0;
}
