//===- tools/srp-reduce.cpp - Failing-program reducer ---------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing Mini-C program while preserving its failure
/// signature (gen/Reducer.h over the gen/Corpus.h oracle stack).
///
///   srp-reduce crash.mc                   # signature taken from the input
///   srp-reduce -signature=oracle-mismatch:paper:output crash.mc
///   srp-reduce -o=min.mc crash.mc
///
/// Exit status: 0 reduced (or already minimal), 1 the input does not fail
/// at all, 2 usage/IO error.
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/Reducer.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace srp;
using namespace srp::gen;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: srp-reduce [options] file.mc\n"
      "  -signature=<sig>   failure signature to preserve (default: what\n"
      "                     the oracle stack reports for the input)\n"
      "  -o=<file>          write the reduced program here (default: print\n"
      "                     to stdout)\n"
      "  -max-tests=<n>     oracle-run budget (default 2000)\n"
      "  -max-passes=<n>    sweep-pass bound (default 12)\n"
      "  -verify=<off|fast|full>  verification depth of the oracle runs\n"
      "                     (default full)\n"
      "  -no-parity         skip walk-vs-bytecode parity in the oracle\n"
      "  -quiet             suppress the progress summary on stderr\n"
      "  (options may also be spelled with a leading --)\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string File, OutFile, Signature;
  ReduceOptions RO;
  CheckOptions CO;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--", 0) == 0)
      A.erase(0, 1);
    if (A.rfind("-signature=", 0) == 0) {
      Signature = A.substr(11);
    } else if (A.rfind("-o=", 0) == 0) {
      OutFile = A.substr(3);
    } else if (A.rfind("-max-tests=", 0) == 0) {
      RO.MaxTests = unsigned(std::strtoul(A.c_str() + 11, nullptr, 10));
    } else if (A.rfind("-max-passes=", 0) == 0) {
      RO.MaxPasses = unsigned(std::strtoul(A.c_str() + 12, nullptr, 10));
    } else if (A == "-verify=off") {
      CO.VerifyEachStep = false;
    } else if (A == "-verify=fast") {
      CO.Verify = Strictness::Fast;
    } else if (A == "-verify=full") {
      CO.Verify = Strictness::Full;
    } else if (A == "-no-parity") {
      CO.EngineParity = false;
    } else if (A == "-quiet") {
      Quiet = true;
    } else if (A == "-help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage();
      return 2;
    } else {
      File = argv[I];
    }
  }
  if (File.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  if (Signature.empty()) {
    CheckResult Initial = checkSource(Source, CO);
    if (Initial.Ok) {
      std::fprintf(stderr,
                   "srp-reduce: input passes the oracle stack; nothing to "
                   "reduce\n");
      return 1;
    }
    Signature = Initial.Signature;
    if (!Quiet)
      std::fprintf(stderr, "srp-reduce: preserving signature '%s' (%s)\n",
                   Signature.c_str(), Initial.Detail.c_str());
  }

  FailurePredicate StillFails = [&](const std::string &Candidate) {
    return checkSource(Candidate, CO).Signature == Signature;
  };
  ReduceResult R = reduceSource(Source, StillFails, RO);
  if (R.ReducedBytes == R.OriginalBytes && !StillFails(Source)) {
    std::fprintf(stderr, "srp-reduce: input does not exhibit signature "
                         "'%s'\n",
                 Signature.c_str());
    return 1;
  }

  if (!Quiet)
    std::fprintf(stderr,
                 "srp-reduce: %zu -> %zu bytes (%.0f%% smaller), %u oracle "
                 "runs, %u passes\n",
                 R.OriginalBytes, R.ReducedBytes, R.shrink() * 100.0,
                 R.TestsRun, R.PassesRun);

  if (OutFile.empty()) {
    std::fputs(R.Reduced.c_str(), stdout);
  } else {
    std::ofstream Out(OutFile);
    Out << R.Reduced;
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
      return 2;
    }
  }
  return 0;
}
