//===- tools/srp-corpus.cpp - Differential fuzzing corpus driver ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps generated programs through the six-mode differential oracle,
/// Strictness::Full between-pass verification, and engine parity — walk
/// and native(JIT) against bytecode (gen/Corpus.h) — with remark-coverage
/// feedback steering generation toward under-exercised promoters and
/// §4.3 rejection reasons.
///
///   srp-corpus -seeds=50                      # the tier-1 smoke sweep
///   srp-corpus -seeds=1000 -threads=8         # the full nightly sweep
///   srp-corpus -seeds=50 -require-coverage    # also fail on coverage gaps
///   srp-corpus -seeds=50 -json                # machine-readable report
///   srp-corpus -seeds=20 -save-failures=DIR   # one .mc per failure
///
/// Exit status: 0 clean, 1 failures found (or coverage gaps with
/// -require-coverage), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "support/Options.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace srp;
using namespace srp::gen;

namespace {

void printCoverage(const CorpusReport &R) {
  std::printf("coverage: promoters");
  for (const std::string &K : requiredPromoters())
    std::printf(" %s=%llu", K.c_str(),
                (unsigned long long)R.Coverage.promoter(K));
  std::printf("\ncoverage: rejections");
  for (const std::string &K : requiredRejections())
    std::printf(" %s=%llu", K.c_str(),
                (unsigned long long)R.Coverage.rejection(K));
  std::printf("\n");
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void printJson(const CorpusOptions &Opts, const CorpusReport &R) {
  std::printf("{\n  \"programs\": %u,\n  \"passed\": %u,\n", R.NumPrograms,
              R.NumPassed);
  std::printf("  \"first_seed\": %llu,\n",
              (unsigned long long)Opts.FirstSeed);
  std::printf("  \"profiles\": {");
  bool First = true;
  for (const auto &[K, V] : R.ProfilePrograms) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"promoters\": {");
  First = true;
  for (const auto &[K, V] : R.Coverage.Promoters) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"rejections\": {");
  First = true;
  for (const auto &[K, V] : R.Coverage.Rejections) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"failures\": [");
  First = true;
  for (const CorpusFailure &F : R.Failures) {
    std::printf("%s\n    {\"seed\": %llu, \"profile\": \"%s\", "
                "\"signature\": \"%s\", \"detail\": \"%s\"}",
                First ? "" : ",", (unsigned long long)F.Seed,
                shapeProfileName(F.Profile), jsonEscape(F.Signature).c_str(),
                jsonEscape(F.Detail).c_str());
    First = false;
  }
  std::printf("\n  ]\n}\n");
}

} // namespace

int main(int argc, char **argv) {
  CorpusOptions Opts;
  bool RequireCoverage = false, Json = false, Quiet = false;
  std::string SaveDir;

  auto parseU = [](const std::string &V, unsigned &Out) {
    if (V.empty())
      return false;
    for (char C : V)
      if (C < '0' || C > '9')
        return false;
    Out = unsigned(std::strtoul(V.c_str(), nullptr, 10));
    return Out > 0;
  };

  opt::OptionParser OP("srp-corpus", "[options]");
  OP.value("seeds", "<n>", "programs to sweep (default 50)",
           [&](const std::string &V) { return parseU(V, Opts.Count); });
  OP.value("first-seed", "<n>", "first seed (default 1)",
           [&](const std::string &V) {
             Opts.FirstSeed = std::strtoull(V.c_str(), nullptr, 10);
             return !V.empty();
           });
  OP.value("threads", "<n>", "worker threads (default 0 = hardware)",
           [&](const std::string &V) {
             Opts.Threads = unsigned(std::strtoul(V.c_str(), nullptr, 10));
             return !V.empty();
           });
  OP.value("batch", "<n>", "seeds per parallel batch (default 32)",
           [&](const std::string &V) { return parseU(V, Opts.BatchSize); });
  OP.value("max-failures", "<n>", "stop after n failures (default 16)",
           [&](const std::string &V) {
             return parseU(V, Opts.MaxFailures);
           });
  OP.value("verify", "<off|fast|full|no-semantic>",
           "between-pass verification depth (default full; the fuzz "
           "contract — full also translation-validates every pass; "
           "no-semantic is full without the validator)",
           [&](const std::string &V) {
             if (V == "off") {
               Opts.Check.VerifyEachStep = false;
               return true;
             }
             if (V == "fast") {
               Opts.Check.Verify = Strictness::Fast;
               return true;
             }
             if (V == "full") {
               Opts.Check.Verify = Strictness::Full;
               return true;
             }
             if (V == "no-semantic") {
               Opts.Check.Verify = Strictness::Full;
               Opts.Check.Semantic = false;
               return true;
             }
             return false;
           });
  OP.flag("no-parity", "skip every engine-parity run (walk and native)",
          [&] {
            Opts.Check.EngineParity = false;
            Opts.Check.NativeParity = false;
          });
  OP.value("engines", "<list>",
           "comma-separated parity engines to run against bytecode "
           "(default walk,native; \"none\" disables parity)",
           [&](const std::string &V) {
             Opts.Check.EngineParity = false;
             Opts.Check.NativeParity = false;
             if (V == "none")
               return true;
             size_t Pos = 0;
             while (Pos <= V.size()) {
               size_t Comma = V.find(',', Pos);
               std::string E = V.substr(Pos, Comma == std::string::npos
                                                 ? std::string::npos
                                                 : Comma - Pos);
               if (E == "walk")
                 Opts.Check.EngineParity = true;
               else if (E == "native")
                 Opts.Check.NativeParity = true;
               else
                 return false;
               if (Comma == std::string::npos)
                 break;
               Pos = Comma + 1;
             }
             return true;
           });
  OP.flag("no-feedback", "disable coverage-guided profile steering",
          [&] { Opts.Feedback = false; });
  OP.flag("require-coverage",
          "exit 1 if any required promoter or rejection reason never "
          "fired during the sweep",
          [&] { RequireCoverage = true; });
  OP.value("save-failures", "<dir>",
           "write each failing program to dir/seedN.mc",
           [&](const std::string &V) {
             SaveDir = V;
             return !V.empty();
           });
  OP.flag("json", "print the report as JSON instead of text",
          [&] { Json = true; });
  OP.flag("quiet", "no per-batch progress lines", [&] { Quiet = true; });

  switch (OP.parse(argc, argv)) {
  case opt::ParseResult::Ok:
    break;
  case opt::ParseResult::Help:
    return 0;
  case opt::ParseResult::Error:
    return 2;
  }

  CorpusProgressFn Progress;
  if (!Quiet && !Json)
    Progress = [](unsigned Done, unsigned Total, const CorpusReport &R) {
      std::fprintf(stderr, "srp-corpus: %u/%u programs, %zu failures, %zu "
                           "coverage keys missing\n",
                   Done, Total, R.Failures.size(),
                   R.Coverage.missingRequired().size());
    };

  CorpusReport R = runCorpus(Opts, Progress);

  if (!SaveDir.empty())
    for (const CorpusFailure &F : R.Failures) {
      std::string Path =
          SaveDir + "/seed" + std::to_string(F.Seed) + ".mc";
      std::ofstream Out(Path);
      Out << "// srp-gen -seed=" << F.Seed << " -profile="
          << shapeProfileName(F.Profile) << "\n// " << F.Signature << ": "
          << F.Detail << "\n" << F.Source;
      if (!Out)
        std::fprintf(stderr, "warning: could not write %s\n", Path.c_str());
    }

  std::vector<std::string> Missing = R.Coverage.missingRequired();
  if (Json) {
    printJson(Opts, R);
  } else {
    std::printf("srp-corpus: %u programs, %u passed, %zu failed\n",
                R.NumPrograms, R.NumPassed, R.Failures.size());
    printCoverage(R);
    for (const std::string &K : Missing)
      std::printf("coverage MISSING: %s\n", K.c_str());
    for (const CorpusFailure &F : R.Failures)
      std::printf("FAIL seed %llu: %s\n  %s\n  reproduce: srp-gen -seed=%llu "
                  "-profile=%s\n",
                  (unsigned long long)F.Seed, F.Signature.c_str(),
                  F.Detail.c_str(), (unsigned long long)F.Seed,
                  shapeProfileName(F.Profile));
  }

  if (!R.Failures.empty())
    return 1;
  if (RequireCoverage && !Missing.empty())
    return 1;
  return 0;
}
