//===- tools/srp-corpus.cpp - Differential fuzzing corpus driver ----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps generated programs through the six-mode differential oracle,
/// Strictness::Full between-pass verification, and walk/bytecode parity
/// (gen/Corpus.h), with remark-coverage feedback steering generation
/// toward under-exercised promoters and §4.3 rejection reasons.
///
///   srp-corpus -seeds=50                      # the tier-1 smoke sweep
///   srp-corpus -seeds=1000 -threads=8         # the full nightly sweep
///   srp-corpus -seeds=50 -require-coverage    # also fail on coverage gaps
///   srp-corpus -seeds=50 -json                # machine-readable report
///   srp-corpus -seeds=20 -save-failures=DIR   # one .mc per failure
///
/// Exit status: 0 clean, 1 failures found (or coverage gaps with
/// -require-coverage), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace srp;
using namespace srp::gen;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: srp-corpus [options]\n"
      "  -seeds=<n>         programs to sweep (default 50)\n"
      "  -first-seed=<n>    first seed (default 1)\n"
      "  -threads=<n>       worker threads (default 0 = hardware)\n"
      "  -batch=<n>         seeds per parallel batch (default 32)\n"
      "  -verify=<off|fast|full>  between-pass verification depth\n"
      "                     (default full; the fuzz contract)\n"
      "  -no-parity         skip the walk-vs-bytecode parity runs\n"
      "  -no-feedback       disable coverage-guided profile steering\n"
      "  -max-failures=<n>  stop after n failures (default 16)\n"
      "  -require-coverage  exit 1 if any required promoter or rejection\n"
      "                     reason never fired during the sweep\n"
      "  -save-failures=<dir>  write each failing program to dir/seedN.mc\n"
      "  -json              print the report as JSON instead of text\n"
      "  -quiet             no per-batch progress lines\n"
      "  (options may also be spelled with a leading --)\n");
}

void printCoverage(const CorpusReport &R) {
  std::printf("coverage: promoters");
  for (const std::string &K : requiredPromoters())
    std::printf(" %s=%llu", K.c_str(),
                (unsigned long long)R.Coverage.promoter(K));
  std::printf("\ncoverage: rejections");
  for (const std::string &K : requiredRejections())
    std::printf(" %s=%llu", K.c_str(),
                (unsigned long long)R.Coverage.rejection(K));
  std::printf("\n");
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void printJson(const CorpusOptions &Opts, const CorpusReport &R) {
  std::printf("{\n  \"programs\": %u,\n  \"passed\": %u,\n", R.NumPrograms,
              R.NumPassed);
  std::printf("  \"first_seed\": %llu,\n",
              (unsigned long long)Opts.FirstSeed);
  std::printf("  \"profiles\": {");
  bool First = true;
  for (const auto &[K, V] : R.ProfilePrograms) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"promoters\": {");
  First = true;
  for (const auto &[K, V] : R.Coverage.Promoters) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"rejections\": {");
  First = true;
  for (const auto &[K, V] : R.Coverage.Rejections) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",", K.c_str(),
                (unsigned long long)V);
    First = false;
  }
  std::printf("\n  },\n  \"failures\": [");
  First = true;
  for (const CorpusFailure &F : R.Failures) {
    std::printf("%s\n    {\"seed\": %llu, \"profile\": \"%s\", "
                "\"signature\": \"%s\", \"detail\": \"%s\"}",
                First ? "" : ",", (unsigned long long)F.Seed,
                shapeProfileName(F.Profile), jsonEscape(F.Signature).c_str(),
                jsonEscape(F.Detail).c_str());
    First = false;
  }
  std::printf("\n  ]\n}\n");
}

} // namespace

int main(int argc, char **argv) {
  CorpusOptions Opts;
  bool RequireCoverage = false, Json = false, Quiet = false;
  std::string SaveDir;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--", 0) == 0)
      A.erase(0, 1);
    if (A.rfind("-seeds=", 0) == 0) {
      Opts.Count = unsigned(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A.rfind("-first-seed=", 0) == 0) {
      Opts.FirstSeed = std::strtoull(A.c_str() + 12, nullptr, 10);
    } else if (A.rfind("-threads=", 0) == 0) {
      Opts.Threads = unsigned(std::strtoul(A.c_str() + 9, nullptr, 10));
    } else if (A.rfind("-batch=", 0) == 0) {
      Opts.BatchSize = unsigned(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A.rfind("-max-failures=", 0) == 0) {
      Opts.MaxFailures =
          unsigned(std::strtoul(A.c_str() + 14, nullptr, 10));
    } else if (A == "-verify=off") {
      Opts.Check.VerifyEachStep = false;
    } else if (A == "-verify=fast") {
      Opts.Check.Verify = Strictness::Fast;
    } else if (A == "-verify=full") {
      Opts.Check.Verify = Strictness::Full;
    } else if (A == "-no-parity") {
      Opts.Check.EngineParity = false;
    } else if (A == "-no-feedback") {
      Opts.Feedback = false;
    } else if (A == "-require-coverage") {
      RequireCoverage = true;
    } else if (A.rfind("-save-failures=", 0) == 0) {
      SaveDir = A.substr(15);
    } else if (A == "-json") {
      Json = true;
    } else if (A == "-quiet") {
      Quiet = true;
    } else if (A == "-help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage();
      return 2;
    }
  }
  if (!Opts.Count || !Opts.BatchSize || !Opts.MaxFailures) {
    std::fprintf(stderr, "error: -seeds, -batch and -max-failures must be "
                         "positive\n");
    return 2;
  }

  CorpusProgressFn Progress;
  if (!Quiet && !Json)
    Progress = [](unsigned Done, unsigned Total, const CorpusReport &R) {
      std::fprintf(stderr, "srp-corpus: %u/%u programs, %zu failures, %zu "
                           "coverage keys missing\n",
                   Done, Total, R.Failures.size(),
                   R.Coverage.missingRequired().size());
    };

  CorpusReport R = runCorpus(Opts, Progress);

  if (!SaveDir.empty())
    for (const CorpusFailure &F : R.Failures) {
      std::string Path =
          SaveDir + "/seed" + std::to_string(F.Seed) + ".mc";
      std::ofstream Out(Path);
      Out << "// srp-gen -seed=" << F.Seed << " -profile="
          << shapeProfileName(F.Profile) << "\n// " << F.Signature << ": "
          << F.Detail << "\n" << F.Source;
      if (!Out)
        std::fprintf(stderr, "warning: could not write %s\n", Path.c_str());
    }

  std::vector<std::string> Missing = R.Coverage.missingRequired();
  if (Json) {
    printJson(Opts, R);
  } else {
    std::printf("srp-corpus: %u programs, %u passed, %zu failed\n",
                R.NumPrograms, R.NumPassed, R.Failures.size());
    printCoverage(R);
    for (const std::string &K : Missing)
      std::printf("coverage MISSING: %s\n", K.c_str());
    for (const CorpusFailure &F : R.Failures)
      std::printf("FAIL seed %llu: %s\n  %s\n  reproduce: srp-gen -seed=%llu "
                  "-profile=%s\n",
                  (unsigned long long)F.Seed, F.Signature.c_str(),
                  F.Detail.c_str(), (unsigned long long)F.Seed,
                  shapeProfileName(F.Profile));
  }

  if (!R.Failures.empty())
    return 1;
  if (RequireCoverage && !Missing.empty())
    return 1;
  return 0;
}
