//===- tools/srp-gen.cpp - Random Mini-C program generator ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits seeded, deterministic, terminating Mini-C programs biased toward
/// promotion-relevant shapes (gen/ProgramGen.h). The same seed and
/// profile always produce the same bytes — corpus failures print an exact
/// `srp-gen -seed=N -profile=P` reproduction line.
///
///   srp-gen -seed=42                       # biased profile rotation
///   srp-gen -seed=42 -profile=multi-live-in
///   srp-gen -seed=1 -count=5               # five consecutive seeds
///   srp-gen -seed=42 -check                # also run the oracle stack
///   srp-gen -list-profiles
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/ProgramGen.h"
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace srp::gen;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: srp-gen [options]\n"
      "  -seed=<n>          first seed (default 1)\n"
      "  -count=<n>         number of consecutive seeds to emit (default 1;\n"
      "                     programs are separated by a '// seed N' banner)\n"
      "  -profile=<name>    pin the shape profile (default: the per-seed\n"
      "                     rotation biasedConfig uses); see -list-profiles\n"
      "  -check             run each program through the differential\n"
      "                     oracle / verification / parity stack and report\n"
      "                     instead of printing it; exit 1 on any failure\n"
      "  -list-profiles     print the shape profile names and exit\n"
      "  (options may also be spelled with a leading --)\n");
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  unsigned Count = 1;
  bool HaveProfile = false, Check = false;
  ShapeProfile Profile = ShapeProfile::Default;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--", 0) == 0)
      A.erase(0, 1);
    if (A.rfind("-seed=", 0) == 0) {
      Seed = std::strtoull(A.c_str() + 6, nullptr, 10);
    } else if (A.rfind("-count=", 0) == 0) {
      Count = unsigned(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A.rfind("-profile=", 0) == 0) {
      if (!parseShapeProfile(A.substr(9), Profile)) {
        std::fprintf(stderr, "error: unknown profile '%s'\n",
                     A.substr(9).c_str());
        return 2;
      }
      HaveProfile = true;
    } else if (A == "-check") {
      Check = true;
    } else if (A == "-list-profiles") {
      for (ShapeProfile P : allShapeProfiles())
        std::printf("%s\n", shapeProfileName(P));
      return 0;
    } else if (A == "-help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage();
      return 2;
    }
  }
  if (!Count) {
    std::fprintf(stderr, "error: -count must be positive\n");
    return 2;
  }

  int Failures = 0;
  for (unsigned I = 0; I != Count; ++I) {
    uint64_t S = Seed + I;
    ShapeProfile P = HaveProfile ? Profile : profileForSeed(S);
    std::string Program = generateProgram(S, biasedConfig(S, P));
    if (Check) {
      CheckResult R = checkSource(Program, CheckOptions{});
      if (R.Ok) {
        std::printf("seed %llu (%s): ok\n", (unsigned long long)S,
                    shapeProfileName(P));
      } else {
        ++Failures;
        std::printf("seed %llu (%s): FAIL %s\n  %s\n  reproduce: srp-gen "
                    "-seed=%llu -profile=%s\n",
                    (unsigned long long)S, shapeProfileName(P),
                    R.Signature.c_str(), R.Detail.c_str(),
                    (unsigned long long)S, shapeProfileName(P));
      }
      continue;
    }
    if (Count > 1)
      std::printf("// seed %llu profile %s\n", (unsigned long long)S,
                  shapeProfileName(P));
    std::fputs(Program.c_str(), stdout);
  }
  return Failures ? 1 : 0;
}
