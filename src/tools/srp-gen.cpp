//===- tools/srp-gen.cpp - Random Mini-C program generator ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits seeded, deterministic, terminating Mini-C programs biased toward
/// promotion-relevant shapes (gen/ProgramGen.h). The same seed and
/// profile always produce the same bytes — corpus failures print an exact
/// `srp-gen -seed=N -profile=P` reproduction line.
///
///   srp-gen -seed=42                       # biased profile rotation
///   srp-gen -seed=42 -profile=multi-live-in
///   srp-gen -seed=1 -count=5               # five consecutive seeds
///   srp-gen -seed=42 -check                # also run the oracle stack
///   srp-gen -list-profiles
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/ProgramGen.h"
#include "support/Options.h"
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace srp;
using namespace srp::gen;

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  unsigned Count = 1;
  bool HaveProfile = false, Check = false;
  ShapeProfile Profile = ShapeProfile::Default;

  opt::OptionParser OP("srp-gen", "[options]");
  OP.value("seed", "<n>", "first seed (default 1)",
           [&](const std::string &V) {
             Seed = std::strtoull(V.c_str(), nullptr, 10);
             return !V.empty();
           });
  OP.value("count", "<n>",
           "number of consecutive seeds to emit (default 1; programs are "
           "separated by a '// seed N' banner)",
           [&](const std::string &V) {
             Count = unsigned(std::strtoul(V.c_str(), nullptr, 10));
             return Count > 0;
           });
  OP.value("profile", "<name>",
           "pin the shape profile (default: the per-seed rotation "
           "biasedConfig uses); see -list-profiles",
           [&](const std::string &V) {
             HaveProfile = parseShapeProfile(V, Profile);
             return HaveProfile;
           });
  OP.flag("check",
          "run each program through the differential oracle / "
          "verification / parity stack and report instead of printing "
          "it; exit 1 on any failure",
          [&] { Check = true; });
  OP.flag("list-profiles", "print the shape profile names and exit", [&] {
    for (ShapeProfile P : allShapeProfiles())
      std::printf("%s\n", shapeProfileName(P));
    std::exit(0);
  });

  switch (OP.parse(argc, argv)) {
  case opt::ParseResult::Ok:
    break;
  case opt::ParseResult::Help:
    return 0;
  case opt::ParseResult::Error:
    return 2;
  }

  int Failures = 0;
  for (unsigned I = 0; I != Count; ++I) {
    uint64_t S = Seed + I;
    ShapeProfile P = HaveProfile ? Profile : profileForSeed(S);
    std::string Program = generateProgram(S, biasedConfig(S, P));
    if (Check) {
      CheckResult R = checkSource(Program, CheckOptions{});
      if (R.Ok) {
        std::printf("seed %llu (%s): ok\n", (unsigned long long)S,
                    shapeProfileName(P));
      } else {
        ++Failures;
        std::printf("seed %llu (%s): FAIL %s\n  %s\n  reproduce: srp-gen "
                    "-seed=%llu -profile=%s\n",
                    (unsigned long long)S, shapeProfileName(P),
                    R.Signature.c_str(), R.Detail.c_str(),
                    (unsigned long long)S, shapeProfileName(P));
      }
      continue;
    }
    if (Count > 1)
      std::printf("// seed %llu profile %s\n", (unsigned long long)S,
                  shapeProfileName(P));
    std::fputs(Program.c_str(), stdout);
  }
  return Failures ? 1 : 0;
}
