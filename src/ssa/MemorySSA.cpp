//===- ssa/MemorySSA.cpp - Memory SSA construction ------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/MemorySSA.h"
#include "analysis/Dominators.h"
#include "ir/Module.h"
#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace srp;

AliasInfo AliasInfo::compute(Function &F) {
  AliasInfo AI;
  Module *M = F.parent();

  for (const auto &G : M->globals()) {
    AI.CallModRef.push_back(G.get());
    AI.EscapingAtReturn.push_back(G.get());
    AI.AllObjects.push_back(G.get());
    if (G->isAddressTaken())
      AI.PointerAliases.push_back(G.get());
  }
  for (const auto &L : F.locals()) {
    AI.AllObjects.push_back(L.get());
    if (L->isAddressTaken()) {
      AI.CallModRef.push_back(L.get());
      AI.PointerAliases.push_back(L.get());
    }
  }

  auto ById = [](const MemoryObject *A, const MemoryObject *B) {
    return A->id() < B->id();
  };
  std::sort(AI.CallModRef.begin(), AI.CallModRef.end(), ById);
  std::sort(AI.PointerAliases.begin(), AI.PointerAliases.end(), ById);
  std::sort(AI.EscapingAtReturn.begin(), AI.EscapingAtReturn.end(), ById);
  std::sort(AI.AllObjects.begin(), AI.AllObjects.end(), ById);
  return AI;
}

std::vector<MemoryObject *>
AliasInfo::useObjects(const Instruction &I) const {
  switch (I.kind()) {
  case Value::Kind::Load:
    return {static_cast<const LoadInst &>(I).object()};
  case Value::Kind::DummyLoad:
    return {static_cast<const DummyLoadInst &>(I).object()};
  case Value::Kind::ArrayLoad:
    return {static_cast<const ArrayLoadInst &>(I).object()};
  case Value::Kind::ArrayStore:
    // Partial update of the aggregate: reads the rest of the array.
    return {static_cast<const ArrayStoreInst &>(I).object()};
  case Value::Kind::PtrLoad:
  case Value::Kind::PtrStore:
    return PointerAliases;
  case Value::Kind::Call:
    return CallModRef;
  case Value::Kind::Ret:
    return EscapingAtReturn;
  default:
    return {};
  }
}

std::vector<MemoryObject *>
AliasInfo::defObjects(const Instruction &I) const {
  switch (I.kind()) {
  case Value::Kind::Store:
    return {static_cast<const StoreInst &>(I).object()};
  case Value::Kind::ArrayStore:
    return {static_cast<const ArrayStoreInst &>(I).object()};
  case Value::Kind::PtrStore:
    return PointerAliases;
  case Value::Kind::Call:
    return CallModRef;
  default:
    return {};
  }
}

void srp::buildMemorySSA(Function &F, const DominatorTree &DT) {
  buildMemorySSA(F, DT, AliasInfo::compute(F));
}

void srp::buildMemorySSA(Function &F, const DominatorTree &DT,
                         const AliasInfo &AI) {
  F.clearMemorySSA();

  // Which objects does the function touch at all? (Avoids versioning the
  // whole module for every function.)
  std::unordered_map<const MemoryObject *, bool> Touched;
  for (BasicBlock *BB : DT.rpo())
    for (auto &I : *BB) {
      for (MemoryObject *O : AI.useObjects(*I))
        Touched[O] = true;
      for (MemoryObject *O : AI.defObjects(*I))
        Touched[O] = true;
    }

  std::vector<MemoryObject *> Objects;
  for (MemoryObject *O : AI.AllObjects)
    if (Touched[O])
      Objects.push_back(O);

  // Per-object: definition blocks, then memory phis at the IDF.
  std::unordered_map<const BasicBlock *, std::vector<MemPhiInst *>> BlockPhis;

  auto blockDefines = [&](BasicBlock *BB, MemoryObject *Obj) {
    for (auto &I : *BB)
      for (MemoryObject *O : AI.defObjects(*I))
        if (O == Obj)
          return true;
    return false;
  };

  for (MemoryObject *Obj : Objects) {
    std::vector<BasicBlock *> DefBlocks;
    for (BasicBlock *BB : DT.rpo())
      if (blockDefines(BB, Obj))
        DefBlocks.push_back(BB);
    if (DefBlocks.empty())
      continue; // read-only object: only the entry version exists
    for (BasicBlock *BB : DT.iteratedFrontier(DefBlocks)) {
      auto Phi = std::make_unique<MemPhiInst>(Obj);
      MemPhiInst *Raw = Phi.get();
      BB->prepend(std::move(Phi));
      BlockPhis[BB].push_back(Raw);
    }
  }

  // Renaming: dominator-tree walk with a version stack per object.
  std::unordered_map<const MemoryObject *, std::vector<MemoryName *>> Stacks;
  for (MemoryObject *Obj : Objects) {
    MemoryName *Entry = F.createMemoryName(Obj);
    F.setEntryMemoryName(Obj, Entry);
    Stacks[Obj].push_back(Entry);
  }

  struct Frame {
    BasicBlock *BB;
    unsigned NextChild = 0;
    std::vector<std::pair<MemoryObject *, unsigned>> Pushed;
  };
  std::vector<Frame> Stack;
  Stack.push_back({F.entry(), 0, {}});

  // Process a block's instructions on first visit.
  auto processBlock = [&](Frame &Fr) {
    BasicBlock *BB = Fr.BB;
    for (auto &I : *BB) {
      if (auto *MP = dyn_cast<MemPhiInst>(I.get())) {
        MemoryName *New = F.createMemoryName(MP->object());
        MP->addMemDef(New);
        Stacks[MP->object()].push_back(New);
        Fr.Pushed.emplace_back(MP->object(), 1);
        continue;
      }
      for (MemoryObject *O : AI.useObjects(*I)) {
        assert(!Stacks[O].empty() && "object with no reaching version");
        I->addMemOperand(Stacks[O].back());
      }
      for (MemoryObject *O : AI.defObjects(*I)) {
        MemoryName *New = F.createMemoryName(O);
        I->addMemDef(New);
        Stacks[O].push_back(New);
        Fr.Pushed.emplace_back(O, 1);
      }
    }
    // Fill successor memory phis.
    for (BasicBlock *S : BB->succs()) {
      auto It = BlockPhis.find(S);
      if (It == BlockPhis.end())
        continue;
      for (MemPhiInst *MP : It->second)
        MP->addIncoming(Stacks[MP->object()].back(), BB);
    }
  };

  processBlock(Stack.back());
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const auto &Kids = DT.children(Top.BB);
    if (Top.NextChild < Kids.size()) {
      Stack.push_back({Kids[Top.NextChild++], 0, {}});
      processBlock(Stack.back());
      continue;
    }
    for (auto &[Obj, Count] : Top.Pushed)
      for (unsigned K = 0; K != Count; ++K)
        Stacks[Obj].pop_back();
    Stack.pop_back();
  }
}
