//===- ssa/MemoryOpt.cpp - Optimizations on memory SSA --------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/MemoryOpt.h"
#include "analysis/Dominators.h"
#include "ir/Function.h"
#include "ssa/MemorySSA.h"
#include "ssa/SSAUpdater.h"
#include "support/Statistics.h"
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace srp;

namespace {
SRP_STATISTIC(NumForwarded, "memopt", "loads-forwarded",
              "Loads forwarded from the defining store");
SRP_STATISTIC(NumReused, "memopt", "loads-reused",
              "Loads replaced by a dominating load of the same version");
SRP_STATISTIC(NumDeadStores, "memopt", "dead-stores-removed",
              "Stores deleted because no instruction observes them");
} // namespace

MemoryOptStats srp::eliminateRedundantLoads(Function &F,
                                            const DominatorTree &DT) {
  MemoryOptStats Stats;

  // Group loads by the version they read.
  std::unordered_map<const MemoryName *, std::vector<LoadInst *>> ByVersion;
  for (BasicBlock *BB : F.blocks())
    for (auto &I : *BB)
      if (auto *Ld = dyn_cast<LoadInst>(I.get()))
        if (Ld->memUse())
          ByVersion[Ld->memUse()].push_back(Ld);

  std::vector<LoadInst *> ToErase;
  std::unordered_set<const LoadInst *> Dead;
  for (auto &[Version, Loads] : ByVersion) {
    // Store-to-load forwarding: the version's defining store dominates
    // every one of its loads by SSA construction.
    if (Version->def())
      if (auto *St = dyn_cast<StoreInst>(Version->def())) {
        for (LoadInst *Ld : Loads) {
          Ld->replaceAllUsesWith(St->storedValue());
          ToErase.push_back(Ld);
          ++Stats.LoadsForwardedFromStores;
        }
        continue;
      }
    // Load-load reuse: a load dominated by another load of the same
    // version returns the same value. Loads already replaced this round
    // must not serve as representatives.
    for (LoadInst *Ld : Loads) {
      for (LoadInst *Other : Loads) {
        if (Other == Ld || Dead.count(Other))
          continue;
        if (DT.dominates(static_cast<Instruction *>(Other),
                         static_cast<Instruction *>(Ld))) {
          Ld->replaceAllUsesWith(Other);
          ToErase.push_back(Ld);
          Dead.insert(Ld);
          ++Stats.LoadsReusedFromLoads;
          break;
        }
      }
    }
  }
  for (LoadInst *Ld : ToErase)
    Ld->eraseFromParent();
  NumForwarded += Stats.LoadsForwardedFromStores;
  NumReused += Stats.LoadsReusedFromLoads;
  return Stats;
}

MemoryOptStats srp::eliminateDeadStores(Function &F) {
  MemoryOptStats Stats;
  std::vector<MemoryName *> StoreVersions;
  for (BasicBlock *BB : F.blocks())
    for (auto &I : *BB) {
      if (auto *St = dyn_cast<StoreInst>(I.get()))
        if (St->memDefName())
          StoreVersions.push_back(St->memDefName());
      if (auto *MP = dyn_cast<MemPhiInst>(I.get()))
        if (MP->target())
          StoreVersions.push_back(MP->target());
    }
  SSAUpdateStats Sweep = sweepDeadDefs(F, StoreVersions);
  Stats.DeadStoresRemoved = Sweep.DefsDeleted;
  NumDeadStores += Stats.DeadStoresRemoved;
  return Stats;
}

MemoryOptStats srp::optimizeMemorySSA(Function &F, const DominatorTree &DT) {
  MemoryOptStats Total;
  while (true) {
    MemoryOptStats Round;
    MemoryOptStats L = eliminateRedundantLoads(F, DT);
    MemoryOptStats S = eliminateDeadStores(F);
    Round.LoadsForwardedFromStores = L.LoadsForwardedFromStores;
    Round.LoadsReusedFromLoads = L.LoadsReusedFromLoads;
    Round.DeadStoresRemoved = S.DeadStoresRemoved;
    Total.LoadsForwardedFromStores += Round.LoadsForwardedFromStores;
    Total.LoadsReusedFromLoads += Round.LoadsReusedFromLoads;
    Total.DeadStoresRemoved += Round.DeadStoresRemoved;
    if (Round.total() == 0)
      return Total;
  }
}

MemoryOptStats srp::optimizeMemorySSA(Function &F, AnalysisManager &AM) {
  AM.get<MemorySSAInfo>(F); // no-op when the memory-ssa pass already ran
  return optimizeMemorySSA(F, AM.get<DominatorTree>(F));
  // Edits go through sweepDeadDefs / in-place rewrites that end in
  // notifySSAEdited, so no explicit invalidation is needed here.
}
