//===- ssa/SSADestruction.cpp - Out-of-SSA conversion ---------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/SSADestruction.h"
#include "ir/Function.h"
#include <vector>

using namespace srp;

unsigned srp::destructSSA(Function &F) {
  unsigned NumLowered = 0;
  for (BasicBlock *BB : F.blocks()) {
    // Collect this block's phis first; the list is edited below.
    std::vector<PhiInst *> Phis;
    for (auto &I : *BB)
      if (auto *P = dyn_cast<PhiInst>(I.get()))
        Phis.push_back(P);
    if (Phis.empty())
      continue;

    // Phase 1: replace each phi by a load of a fresh temporary at the top
    // of the block. All uses of the phi (including other phis' incoming
    // values, the swap case) now read the load, which observes the value
    // the temporary had at block entry.
    std::vector<MemoryObject *> Tmps;
    for (PhiInst *P : Phis) {
      MemoryObject *Tmp = F.createLocal(
          F.uniqueValueName("phi"), MemoryObject::Kind::Local);
      Tmps.push_back(Tmp);
      auto Load = std::make_unique<LoadInst>(Tmp, P->name());
      Instruction *L = BB->insertAfterPhis(std::move(Load));
      P->replaceAllUsesWith(L);
    }

    // Phase 2: store the incoming values at the end of each predecessor.
    // The incoming values were RAUW'd in phase 1 where they referenced
    // other phis of this block, so they now read the entry-time loads.
    for (unsigned Idx = 0; Idx != Phis.size(); ++Idx) {
      PhiInst *P = Phis[Idx];
      for (unsigned In = 0; In != P->numIncoming(); ++In) {
        BasicBlock *Pred = P->incomingBlock(In);
        Instruction *Term = Pred->terminator();
        assert(Term && "unterminated predecessor");
        Pred->insertBefore(
            Term, std::make_unique<StoreInst>(Tmps[Idx],
                                              P->incomingValue(In)));
      }
    }

    // Phase 3: delete the phis.
    for (PhiInst *P : Phis) {
      assert(!P->hasUses() && "phi still used after lowering");
      P->eraseFromParent();
      ++NumLowered;
    }
  }
  return NumLowered;
}
