//===- ssa/MemorySSA.h - Memory SSA construction ---------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Puts the singleton memory resources of a function in SSA form (§3):
/// every store gets a fresh version of its object, aliased stores (calls,
/// pointer stores, array stores) get chi-definitions of every object in
/// their alias set, aliased loads get mu-uses, loads are tagged with the
/// reaching version, memory phis are placed at the iterated dominance
/// frontier of the definition blocks, and returns carry mu-uses of escaping
/// objects so memory modified before return stays live.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_MEMORYSSA_H
#define SRP_SSA_MEMORYSSA_H

#include "analysis/AnalysisManager.h"
#include <memory>
#include <vector>

namespace srp {

class DominatorTree;
class Function;
class Instruction;
class MemoryObject;

/// Static alias model of a function (deliberately simple, matching the
/// paper's assumptions): calls may use/modify every escaping object;
/// pointer dereferences may touch every address-taken object; array
/// accesses touch only their array.
struct AliasInfo {
  /// Objects a call may read and write: module-scope objects plus
  /// address-taken locals of this function.
  std::vector<MemoryObject *> CallModRef;
  /// Objects a pointer dereference may reference: address-taken objects
  /// (module-scope or local to this function).
  std::vector<MemoryObject *> PointerAliases;
  /// Objects whose final value is observable after return (module-scope).
  std::vector<MemoryObject *> EscapingAtReturn;
  /// Every object the function may touch at all.
  std::vector<MemoryObject *> AllObjects;

  /// Computes the alias model for \p F.
  static AliasInfo compute(Function &F);

  /// Objects instruction \p I may read (mu-set), in deterministic order.
  std::vector<MemoryObject *> useObjects(const Instruction &I) const;
  /// Objects instruction \p I may write (chi-set), in deterministic order.
  std::vector<MemoryObject *> defObjects(const Instruction &I) const;
};

/// Builds memory SSA for \p F in place: creates MemoryName versions,
/// inserts MemPhi instructions, attaches mu/chi operands. Any existing
/// memory SSA is discarded first.
void buildMemorySSA(Function &F, const DominatorTree &DT);
void buildMemorySSA(Function &F, const DominatorTree &DT,
                    const AliasInfo &AI);

/// Cache identity of a function's built memory SSA form. The form itself
/// lives in the IR (MemPhi instructions, mu/chi operands); this object
/// records that it is current and keeps the alias model it was built
/// against, so clients reached through the AnalysisManager share one
/// AliasInfo computation and one in-place build per function.
struct MemorySSAInfo {
  AliasInfo Aliases;
};

template <> struct AnalysisTraits<MemorySSAInfo> {
  static constexpr AnalysisKind Kind = AnalysisKind::MemorySSA;
  static std::unique_ptr<MemorySSAInfo> build(Function &F,
                                              AnalysisManager &AM) {
    auto Info = std::make_unique<MemorySSAInfo>();
    Info->Aliases = AliasInfo::compute(F);
    buildMemorySSA(F, AM.get<DominatorTree>(F), Info->Aliases);
    return Info;
  }
};

} // namespace srp

#endif // SRP_SSA_MEMORYSSA_H
