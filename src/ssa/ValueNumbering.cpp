//===- ssa/ValueNumbering.cpp - Register GVN ------------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/ValueNumbering.h"
#include "analysis/Dominators.h"
#include "ir/Function.h"
#include <map>
#include <vector>

using namespace srp;

namespace {

/// Expression key: opcode discriminator + operand identities. Commutative
/// operators are canonicalised by sorting the operand pair.
struct ExprKey {
  unsigned Opcode;           ///< BinOpKind+1, 0 = load, ~0 = addr-of
  const void *Op0, *Op1;

  bool operator<(const ExprKey &R) const {
    if (Opcode != R.Opcode)
      return Opcode < R.Opcode;
    if (Op0 != R.Op0)
      return Op0 < R.Op0;
    return Op1 < R.Op1;
  }
};

class GVNWalker {
  Function &F;
  const DominatorTree &DT;
  GVNStats Stats;
  /// Scoped expression table: the walk pushes one scope per dominator-tree
  /// node and pops it on exit, so a hit always dominates the current
  /// instruction.
  std::map<ExprKey, Value *> Table;
  std::vector<std::vector<ExprKey>> Scopes;

  void insert(const ExprKey &K, Value *V) {
    if (Table.emplace(K, V).second)
      Scopes.back().push_back(K);
  }

  Value *lookup(const ExprKey &K) const {
    auto It = Table.find(K);
    return It == Table.end() ? nullptr : It->second;
  }

  /// Processes one block; returns the instructions it erased.
  void processBlock(BasicBlock *BB) {
    std::vector<Instruction *> Dead;
    for (auto &IP : *BB) {
      Instruction *I = IP.get();
      switch (I->kind()) {
      case Value::Kind::Copy: {
        // Copies do not create values; forward the source.
        auto *C = cast<CopyInst>(I);
        I->replaceAllUsesWith(C->source());
        Dead.push_back(I);
        ++Stats.CopiesForwarded;
        break;
      }
      case Value::Kind::Phi: {
        // A phi whose incomings are all the same value is that value.
        auto *P = cast<PhiInst>(I);
        if (P->numIncoming() == 0)
          break;
        Value *Common = P->incomingValue(0);
        bool AllSame = Common != P;
        for (unsigned K = 1; K != P->numIncoming(); ++K)
          if (P->incomingValue(K) != Common && P->incomingValue(K) != P)
            AllSame = false;
        if (AllSame && Common != P) {
          P->replaceAllUsesWith(Common);
          Dead.push_back(P);
          ++Stats.PhisSimplified;
        }
        break;
      }
      case Value::Kind::BinOp: {
        auto *B = cast<BinOpInst>(I);
        const void *L = B->lhs(), *R = B->rhs();
        if (isCommutativeBinOp(B->op()) && R < L)
          std::swap(L, R);
        ExprKey Key{static_cast<unsigned>(B->op()) + 1, L, R};
        if (Value *Prev = lookup(Key)) {
          I->replaceAllUsesWith(Prev);
          Dead.push_back(I);
          ++Stats.BinOpsUnified;
        } else {
          insert(Key, I);
        }
        break;
      }
      case Value::Kind::AddrOf: {
        auto *A = cast<AddrOfInst>(I);
        ExprKey Key{~0u, A->object(), nullptr};
        if (Value *Prev = lookup(Key)) {
          I->replaceAllUsesWith(Prev);
          Dead.push_back(I);
        } else {
          insert(Key, I);
        }
        break;
      }
      case Value::Kind::Load: {
        // Loads unify only under memory SSA: same version => same value.
        auto *Ld = cast<LoadInst>(I);
        if (!Ld->memUse())
          break;
        ExprKey Key{0, Ld->memUse(), nullptr};
        if (Value *Prev = lookup(Key)) {
          I->replaceAllUsesWith(Prev);
          Dead.push_back(I);
          ++Stats.LoadsUnified;
        } else {
          insert(Key, I);
        }
        break;
      }
      default:
        break;
      }
    }
    for (Instruction *I : Dead)
      I->eraseFromParent();
  }

public:
  GVNWalker(Function &F, const DominatorTree &DT) : F(F), DT(DT) {}

  GVNStats run() {
    struct Frame {
      BasicBlock *BB;
      unsigned NextChild = 0;
    };
    std::vector<Frame> Stack;
    Scopes.emplace_back();
    Stack.push_back({F.entry()});
    processBlock(F.entry());
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const auto &Kids = DT.children(Top.BB);
      if (Top.NextChild < Kids.size()) {
        BasicBlock *Child = Kids[Top.NextChild++];
        Scopes.emplace_back();
        Stack.push_back({Child});
        processBlock(Child);
        continue;
      }
      for (const ExprKey &K : Scopes.back())
        Table.erase(K);
      Scopes.pop_back();
      Stack.pop_back();
    }
    return Stats;
  }
};

/// The read-only twin of GVNWalker: identical scoped preorder walk and
/// expression keys, but hits are recorded in a leader map instead of
/// rewriting uses. Because nothing is erased, later expressions still
/// name their original operands; keying resolves each operand through
/// the leader map first so chains (copy-of-copy, binop over forwarded
/// copies) land on the same key runGVN would have produced.
class TableBuilder {
  Function &F;
  const DominatorTree &DT;
  std::unordered_map<const Value *, Value *> &Leader;
  std::map<ExprKey, Value *> Table;
  std::vector<std::vector<ExprKey>> Scopes;

  Value *leaderOf(Value *V) const {
    auto It = Leader.find(V);
    return It == Leader.end() ? V : It->second;
  }

  void insert(const ExprKey &K, Value *V) {
    if (Table.emplace(K, V).second)
      Scopes.back().push_back(K);
  }

  Value *lookup(const ExprKey &K) const {
    auto It = Table.find(K);
    return It == Table.end() ? nullptr : It->second;
  }

  void processBlock(BasicBlock *BB) {
    for (auto &IP : *BB) {
      Instruction *I = IP.get();
      switch (I->kind()) {
      case Value::Kind::Copy:
        Leader[I] = leaderOf(cast<CopyInst>(I)->source());
        break;
      case Value::Kind::Phi: {
        auto *P = cast<PhiInst>(I);
        if (P->numIncoming() == 0)
          break;
        Value *Common = P->incomingValue(0);
        bool AllSame = Common != P;
        for (unsigned K = 1; K != P->numIncoming(); ++K)
          if (P->incomingValue(K) != Common && P->incomingValue(K) != P)
            AllSame = false;
        if (AllSame && Common != P)
          Leader[P] = leaderOf(Common);
        break;
      }
      case Value::Kind::BinOp: {
        auto *B = cast<BinOpInst>(I);
        const void *L = leaderOf(B->lhs()), *R = leaderOf(B->rhs());
        if (isCommutativeBinOp(B->op()) && R < L)
          std::swap(L, R);
        ExprKey Key{static_cast<unsigned>(B->op()) + 1, L, R};
        if (Value *Prev = lookup(Key))
          Leader[I] = Prev;
        else
          insert(Key, I);
        break;
      }
      case Value::Kind::AddrOf: {
        ExprKey Key{~0u, cast<AddrOfInst>(I)->object(), nullptr};
        if (Value *Prev = lookup(Key))
          Leader[I] = Prev;
        else
          insert(Key, I);
        break;
      }
      case Value::Kind::Load: {
        auto *Ld = cast<LoadInst>(I);
        if (!Ld->memUse())
          break;
        ExprKey Key{0, Ld->memUse(), nullptr};
        if (Value *Prev = lookup(Key))
          Leader[I] = Prev;
        else
          insert(Key, I);
        break;
      }
      default:
        break;
      }
    }
  }

public:
  TableBuilder(Function &F, const DominatorTree &DT,
               std::unordered_map<const Value *, Value *> &Leader)
      : F(F), DT(DT), Leader(Leader) {}

  void run() {
    struct Frame {
      BasicBlock *BB;
      unsigned NextChild = 0;
    };
    std::vector<Frame> Stack;
    Scopes.emplace_back();
    Stack.push_back({F.entry()});
    processBlock(F.entry());
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const auto &Kids = DT.children(Top.BB);
      if (Top.NextChild < Kids.size()) {
        BasicBlock *Child = Kids[Top.NextChild++];
        Scopes.emplace_back();
        Stack.push_back({Child});
        processBlock(Child);
        continue;
      }
      for (const ExprKey &K : Scopes.back())
        Table.erase(K);
      Scopes.pop_back();
      Stack.pop_back();
    }
  }
};

} // namespace

bool srp::isCommutativeBinOp(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
  case BinOpKind::Mul:
  case BinOpKind::And:
  case BinOpKind::Or:
  case BinOpKind::Xor:
  case BinOpKind::CmpEQ:
  case BinOpKind::CmpNE:
    return true;
  default:
    return false;
  }
}

GVNStats srp::runGVN(Function &F, const DominatorTree &DT) {
  return GVNWalker(F, DT).run();
}

void ValueNumberTable::build(Function &F, const DominatorTree &DT) {
  Leader.clear();
  TableBuilder(F, DT, Leader).run();
}
