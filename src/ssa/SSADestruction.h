//===- ssa/SSADestruction.h - Out-of-SSA conversion ------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leaves SSA form (§3: when leaving SSA, names referring to one location
/// collapse back to a single name). Register phis are lowered through
/// fresh compiler temporaries with memory semantics: stores at the ends of
/// the incoming blocks and one load where the phi stood. Because every
/// phi of a block is replaced by a load *before* the predecessor stores
/// are wired up, the parallel-read semantics of phis (including the
/// classic swap case) are preserved. The resulting IR is phi-free, passes
/// the verifier, executes identically, and a later mem2reg round-trips it
/// back into SSA.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_SSADESTRUCTION_H
#define SRP_SSA_SSADESTRUCTION_H

namespace srp {

class Function;

/// Lowers every register phi in \p F. Requires critical edges to be split
/// (CFG canonicalisation guarantees this). Memory phis are analysis-only
/// and are not touched. Returns the number of phis lowered.
unsigned destructSSA(Function &F);

} // namespace srp

#endif // SRP_SSA_SSADESTRUCTION_H
