//===- ssa/SSAUpdater.h - Incremental SSA update for clones ----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's incremental SSA-update algorithm (§4.5, Fig. 11) for the
/// situation where a transformation clones new definitions of a resource
/// from existing ones (register promotion's inserted stores; also loop
/// unrolling or compensation code). All cloned definitions are handled in
/// one batch: a single iterated-dominance-frontier computation places the
/// phis, uses are renamed via dominator-tree-walking reaching-definition
/// queries, live phis are filled from a worklist, and use-less definitions
/// (old, cloned, or freshly inserted phis) are deleted so the cloning
/// introduces no dead code.
///
/// A per-definition variant in the style of Choi-Sarkar-Schonberg [CSS96]
/// (one IDF computation per inserted definition, O(m*n) total) is provided
/// as the compile-time baseline for the paper's efficiency claim.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_SSAUPDATER_H
#define SRP_SSA_SSAUPDATER_H

#include <vector>

namespace srp {

class DominatorTree;
class Function;
class MemoryName;
class MemoryObject;

/// Counters describing the work an update performed (used by the ablation
/// benchmark and by tests).
struct SSAUpdateStats {
  unsigned IDFComputations = 0;
  unsigned PhisInserted = 0;
  unsigned PhisDeleted = 0;
  unsigned DefsDeleted = 0;
  unsigned UsesRenamed = 0;

  SSAUpdateStats &operator+=(const SSAUpdateStats &RHS) {
    IDFComputations += RHS.IDFComputations;
    PhisInserted += RHS.PhisInserted;
    PhisDeleted += RHS.PhisDeleted;
    DefsDeleted += RHS.DefsDeleted;
    UsesRenamed += RHS.UsesRenamed;
    return *this;
  }
};

/// updateSSAForClonedResources (paper Fig. 11). \p OldRes holds existing
/// SSA versions of one memory object (all renamed from the same variable);
/// \p ClonedRes holds the new versions whose defining instructions have
/// already been inserted into the code stream. On return the function is
/// back in valid SSA form and every use-less definition among the involved
/// versions has been removed (including the original definitions made
/// redundant by the clones).
///
/// \p SweepDead can be disabled to defer dead-definition elimination (used
/// by the per-definition baseline so intermediate states stay conservative).
SSAUpdateStats
updateSSAForClonedResources(Function &F, const DominatorTree &DT,
                            const std::vector<MemoryName *> &OldRes,
                            const std::vector<MemoryName *> &ClonedRes,
                            bool SweepDead = true);

/// CSS96-style baseline: processes the cloned definitions one at a time,
/// recomputing the iterated dominance frontier for each (O(m*n)), then
/// sweeps dead definitions once at the end. Produces the same final SSA
/// form as the batch algorithm; exists to reproduce the paper's
/// compile-time comparison.
SSAUpdateStats
updateSSAPerClonedDef(Function &F, const DominatorTree &DT,
                      const std::vector<MemoryName *> &OldRes,
                      const std::vector<MemoryName *> &ClonedRes);

/// Deletes use-less definitions (stores, memory phis) of the given object
/// versions, cascading until a fixpoint; never touches calls or other
/// effectful instructions. Exposed for the promoter's cleanup.
SSAUpdateStats sweepDeadDefs(Function &F,
                             const std::vector<MemoryName *> &Versions);

/// The paper's third use of the incremental updater (§4.5): "when a
/// compiler phase adds a new resource with multiple definitions and uses
/// to the code stream, the resource can be converted into SSA form by
/// using the incremental update algorithm". Tags every untagged load of
/// \p Obj with the entry version, gives every untagged store a fresh
/// version, then runs updateSSAForClonedResources to place phis and
/// rename the loads to their reaching definitions. Returns-with-mu
/// tagging is added for module-scope objects so final stores stay live.
SSAUpdateStats convertResourceToSSA(Function &F, const DominatorTree &DT,
                                    MemoryObject *Obj);

} // namespace srp

#endif // SRP_SSA_SSAUPDATER_H
