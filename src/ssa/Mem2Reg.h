//===- ssa/Mem2Reg.h - Promote non-aliased locals to SSA -------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic [CFR+91] promotion of non-address-taken local scalars from
/// load/store form into pure SSA register values (phi placement at the IDF
/// of the stores + dominator-tree renaming). This is the front half of the
/// compilation pipeline; the paper's register promoter then works on what
/// remains: globals, struct fields, and address-exposed locals.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_MEM2REG_H
#define SRP_SSA_MEM2REG_H

namespace srp {

class AnalysisManager;
class DominatorTree;
class Function;

/// Promotes every candidate local (non-address-taken scalar owned by \p F)
/// out of memory. Deletes its loads/stores and the object's accesses become
/// SSA values. Returns the number of objects promoted. Must run before
/// memory SSA construction.
unsigned promoteLocalsToSSA(Function &F, const DominatorTree &DT);

/// Cache-aware variant: pulls the dominator tree from \p AM and reports
/// the rewrite through the IR-change notifier (liveness goes stale; the
/// CFG and dominators do not).
unsigned promoteLocalsToSSA(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_SSA_MEM2REG_H
