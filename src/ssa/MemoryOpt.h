//===- ssa/MemoryOpt.h - Optimizations on memory SSA -----------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper (§3) puts singleton memory resources in SSA form precisely so
/// that classic SSA optimizations "such as global value numbering and dead
/// code elimination" apply "to memory instructions as well". This module
/// provides those two consumers:
///
///  - redundant load elimination (value numbering on memory versions):
///    a load of a version defined by a store forwards the stored value; a
///    load dominated by another load of the same version reuses it,
///  - dead store elimination: stores whose versions no instruction (other
///    than dead phis) observes are deleted.
///
/// These run independently of register promotion (the promoter has its
/// own profitability-driven machinery); the pipeline exposes them as an
/// optional extra stage.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_MEMORYOPT_H
#define SRP_SSA_MEMORYOPT_H

namespace srp {

class AnalysisManager;
class DominatorTree;
class Function;

struct MemoryOptStats {
  unsigned LoadsForwardedFromStores = 0;
  unsigned LoadsReusedFromLoads = 0;
  unsigned DeadStoresRemoved = 0;

  unsigned total() const {
    return LoadsForwardedFromStores + LoadsReusedFromLoads +
           DeadStoresRemoved;
  }
};

/// Store-to-load forwarding and redundant load elimination over memory
/// SSA. Requires memory SSA to be built; leaves it valid.
MemoryOptStats eliminateRedundantLoads(Function &F, const DominatorTree &DT);

/// Deletes stores whose version has no (transitive, phi-aware) observer.
/// Requires memory SSA; the function's ret-instructions must carry their
/// mu-uses of escaping objects (buildMemorySSA guarantees this), which
/// keeps externally visible stores alive.
MemoryOptStats eliminateDeadStores(Function &F);

/// Convenience: loads then stores, to a fixpoint.
MemoryOptStats optimizeMemorySSA(Function &F, const DominatorTree &DT);

/// Cache-aware variant: ensures memory SSA is built (via the manager) and
/// uses the cached dominator tree; edits are reported to the notifier.
MemoryOptStats optimizeMemorySSA(Function &F, AnalysisManager &AM);

} // namespace srp

#endif // SRP_SSA_MEMORYOPT_H
