//===- ssa/ValueNumbering.h - Register GVN ---------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-scoped global value numbering for register values, in the
/// spirit of [RWZ88] which the paper lists among the SSA optimizations its
/// representation enables (§3). Pure expressions (binary operators,
/// copies, address-of) with identical opcode and already-numbered operands
/// are replaced by the dominating earlier occurrence. Loads participate
/// too, keyed by their memory SSA version — two loads of the same version
/// are the same value — which is the "memory instructions as well" part of
/// the paper's claim (subsumes MemoryOpt's load-load reuse when memory SSA
/// is available).
///
/// The implementation is a preorder dominator-tree walk with a scoped hash
/// table, the classic simple-GVN design.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_VALUENUMBERING_H
#define SRP_SSA_VALUENUMBERING_H

namespace srp {

class DominatorTree;
class Function;

struct GVNStats {
  unsigned BinOpsUnified = 0;
  unsigned LoadsUnified = 0;
  unsigned CopiesForwarded = 0;
  unsigned PhisSimplified = 0; ///< phis whose incomings all agree

  unsigned total() const {
    return BinOpsUnified + LoadsUnified + CopiesForwarded + PhisSimplified;
  }
};

/// Runs GVN over \p F. Memory SSA may or may not be present; loads are
/// only unified when it is (without version tags two loads may see
/// different memory). Leaves the IR valid.
GVNStats runGVN(Function &F, const DominatorTree &DT);

} // namespace srp

#endif // SRP_SSA_VALUENUMBERING_H
