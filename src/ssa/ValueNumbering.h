//===- ssa/ValueNumbering.h - Register GVN ---------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-scoped global value numbering for register values, in the
/// spirit of [RWZ88] which the paper lists among the SSA optimizations its
/// representation enables (§3). Pure expressions (binary operators,
/// copies, address-of) with identical opcode and already-numbered operands
/// are replaced by the dominating earlier occurrence. Loads participate
/// too, keyed by their memory SSA version — two loads of the same version
/// are the same value — which is the "memory instructions as well" part of
/// the paper's claim (subsumes MemoryOpt's load-load reuse when memory SSA
/// is available).
///
/// The implementation is a preorder dominator-tree walk with a scoped hash
/// table, the classic simple-GVN design.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_VALUENUMBERING_H
#define SRP_SSA_VALUENUMBERING_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace srp {

class DominatorTree;
class Function;
class Value;

enum class BinOpKind : uint8_t;

/// True for operators where `a op b == b op a`; shared between the
/// mutating GVN below and the read-only ValueNumberTable.
bool isCommutativeBinOp(BinOpKind K);

struct GVNStats {
  unsigned BinOpsUnified = 0;
  unsigned LoadsUnified = 0;
  unsigned CopiesForwarded = 0;
  unsigned PhisSimplified = 0; ///< phis whose incomings all agree

  unsigned total() const {
    return BinOpsUnified + LoadsUnified + CopiesForwarded + PhisSimplified;
  }
};

/// Runs GVN over \p F. Memory SSA may or may not be present; loads are
/// only unified when it is (without version tags two loads may see
/// different memory). Leaves the IR valid.
GVNStats runGVN(Function &F, const DominatorTree &DT);

/// Read-only value numbering: the same dominator-scoped walk as runGVN,
/// but instead of rewriting the IR it records, for every instruction that
/// would have been unified, the dominating *leader* of its congruence
/// class. Copies forward to their source's leader, trivial phis to their
/// common incoming, binops/addr-ofs to the earliest equal expression,
/// loads to the earliest load of the same memory version.
///
/// The translation validator (analysis/TransValidate.h) uses this to
/// canonicalise values on each side of a pass before comparing them, so
/// GVN-style rewrites inside other passes are provable without mutating
/// either snapshot.
class ValueNumberTable {
public:
  ValueNumberTable() = default;
  ValueNumberTable(Function &F, const DominatorTree &DT) { build(F, DT); }

  /// (Re)populates the table for \p F. The IR is not modified.
  void build(Function &F, const DominatorTree &DT);

  /// The dominating leader of \p V's congruence class; \p V itself when
  /// it is the first occurrence or not a numbered expression.
  Value *leader(Value *V) const {
    auto It = Leader.find(V);
    return It == Leader.end() ? V : It->second;
  }

  /// Number of values mapped to an earlier leader.
  size_t size() const { return Leader.size(); }

private:
  std::unordered_map<const Value *, Value *> Leader;
};

} // namespace srp

#endif // SRP_SSA_VALUENUMBERING_H
