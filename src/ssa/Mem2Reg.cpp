//===- ssa/Mem2Reg.cpp - Promote non-aliased locals to SSA ----------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/Mem2Reg.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/TransValidate.h"
#include "ir/CFGEdit.h"
#include "ir/Module.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include <unordered_map>

using namespace srp;

namespace {

SRP_STATISTIC(NumPromoted, "mem2reg", "promoted",
              "Local scalars promoted out of memory");
SRP_STATISTIC(NumSkipped, "mem2reg", "candidates-rejected",
              "Locals kept in memory (address-taken or aggregate)");

bool isCandidate(const MemoryObject &Obj) {
  return Obj.kind() == MemoryObject::Kind::Local && !Obj.isAddressTaken() &&
         Obj.size() == 1;
}

/// Promotes one object. Standard Cytron construction: phis at the iterated
/// dominance frontier of the store blocks, then a renaming walk over the
/// dominator tree with a current-value stack.
void promoteObject(Function &F, const DominatorTree &DT, MemoryObject *Obj) {
  // Collect definition blocks.
  std::vector<BasicBlock *> DefBlocks;
  for (BasicBlock *BB : DT.rpo()) {
    for (auto &I : *BB) {
      if (auto *St = dyn_cast<StoreInst>(I.get()); St && St->object() == Obj) {
        DefBlocks.push_back(BB);
        break;
      }
    }
  }

  // Phi placement.
  std::unordered_map<const BasicBlock *, PhiInst *> BlockPhi;
  for (BasicBlock *BB : DT.iteratedFrontier(DefBlocks)) {
    auto Phi = std::make_unique<PhiInst>(Type::Int,
                                         F.uniqueValueName(Obj->name().c_str()));
    BlockPhi[BB] = Phi.get();
    BB->prepend(std::move(Phi));
  }

  // Renaming walk.
  UndefValue *Undef = F.parent()->undef();
  struct Frame {
    BasicBlock *BB;
    unsigned NextChild = 0;
    unsigned Pushed = 0;
  };
  std::vector<Value *> Stack{Undef};
  std::vector<Frame> Frames;
  std::vector<Instruction *> ToErase;

  auto processBlock = [&](Frame &Fr) {
    BasicBlock *BB = Fr.BB;
    if (auto It = BlockPhi.find(BB); It != BlockPhi.end()) {
      Stack.push_back(It->second);
      ++Fr.Pushed;
    }
    for (auto &I : *BB) {
      if (auto *Ld = dyn_cast<LoadInst>(I.get());
          Ld && Ld->object() == Obj) {
        Ld->replaceAllUsesWith(Stack.back());
        ToErase.push_back(Ld);
      } else if (auto *St = dyn_cast<StoreInst>(I.get());
                 St && St->object() == Obj) {
        Stack.push_back(St->storedValue());
        ++Fr.Pushed;
        ToErase.push_back(St);
      }
    }
    for (BasicBlock *S : BB->succs())
      if (auto It = BlockPhi.find(S); It != BlockPhi.end())
        It->second->addIncoming(Stack.back(), BB);
  };

  Frames.push_back({F.entry()});
  processBlock(Frames.back());
  while (!Frames.empty()) {
    Frame &Top = Frames.back();
    const auto &Kids = DT.children(Top.BB);
    if (Top.NextChild < Kids.size()) {
      Frames.push_back({Kids[Top.NextChild++]});
      processBlock(Frames.back());
      continue;
    }
    for (unsigned K = 0; K != Top.Pushed; ++K)
      Stack.pop_back();
    Frames.pop_back();
  }

  for (Instruction *I : ToErase)
    I->eraseFromParent();
}

} // namespace

unsigned srp::promoteLocalsToSSA(Function &F, const DominatorTree &DT) {
  unsigned Count = 0;
  for (const auto &L : F.locals()) {
    if (!isCandidate(*L)) {
      ++NumSkipped;
      if (RemarkEngine *RE = remarks::sink())
        RE->record(Remark(RemarkKind::Missed, "mem2reg", "NotPromotable")
                       .inFunction(F.name())
                       .onWeb(L->name())
                       .arg("address-taken", L->isAddressTaken())
                       .arg("size", L->size()));
      continue;
    }
    promoteObject(F, DT, L.get());
    ++Count;
    validation::recordPromotedWeb(F.name(), L->name(), L->name(), "mem2reg");
    if (RemarkEngine *RE = remarks::sink())
      RE->record(Remark(RemarkKind::Passed, "mem2reg", "PromotedLocal")
                     .inFunction(F.name())
                     .onWeb(L->name())
                     .arg("size", L->size()));
  }
  NumPromoted += Count;
  return Count;
}

unsigned srp::promoteLocalsToSSA(Function &F, AnalysisManager &AM) {
  unsigned Count = promoteLocalsToSSA(F, AM.get<DominatorTree>(F));
  if (Count)
    notifySSAEdited(F);
  return Count;
}
