//===- ssa/SSAUpdater.cpp - Incremental SSA update for clones ------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "ssa/SSAUpdater.h"
#include "analysis/Dominators.h"
#include "ir/CFGEdit.h"
#include "ir/Function.h"
#include "support/Statistics.h"
#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace srp;

namespace {
SRP_STATISTIC(NumIDF, "ssa-update", "idf-computations",
              "Iterated-dominance-frontier computations");
SRP_STATISTIC(NumPhisInserted, "ssa-update", "phis-inserted",
              "Memory phis placed by incremental SSA update");
SRP_STATISTIC(NumUsesRenamed, "ssa-update", "uses-renamed",
              "Memory uses renamed to their reaching definitions");
} // namespace

namespace {

/// Reaching-definition oracle over a fixed set of definitions of one memory
/// object. Queries walk the dominator tree bottom-up (the paper's
/// computeReachingDef); within a block the textually last definition that
/// precedes the query point wins.
class ReachingDefOracle {
  const DominatorTree &DT;
  /// Definitions per block, in block order.
  std::unordered_map<const BasicBlock *, std::vector<MemoryName *>> Defs;
  MemoryName *EntryVersion;

public:
  ReachingDefOracle(Function &F, const DominatorTree &DT,
                    const std::vector<MemoryName *> &AllDefs,
                    const MemoryObject *Obj)
      : DT(DT), EntryVersion(F.entryMemoryName(Obj)) {
    for (MemoryName *N : AllDefs) {
      if (N->isEntryVersion())
        continue;
      assert(N->def() && "non-entry version without a defining instruction");
      Defs[N->def()->parent()].push_back(N);
    }
    for (auto &[BB, List] : Defs)
      std::sort(List.begin(), List.end(),
                [&](MemoryName *A, MemoryName *B) {
                  return BB->indexOf(A->def()) < BB->indexOf(B->def());
                });
  }

  /// Definition reaching the point just before \p Before in \p BB; a null
  /// \p Before means the end of the block.
  MemoryName *query(const BasicBlock *BB, const Instruction *Before) const {
    // Same-block definitions preceding the query point.
    if (auto It = Defs.find(BB); It != Defs.end()) {
      const std::vector<MemoryName *> &List = It->second;
      if (!Before) {
        if (!List.empty())
          return List.back();
      } else {
        unsigned Limit = BB->indexOf(Before);
        MemoryName *Best = nullptr;
        for (MemoryName *N : List) {
          if (BB->indexOf(N->def()) >= Limit)
            break;
          Best = N;
        }
        if (Best)
          return Best;
      }
    }
    // Walk up the dominator tree.
    for (BasicBlock *D = DT.idom(BB); D; D = DT.idom(D)) {
      if (auto It = Defs.find(D); It != Defs.end() && !It->second.empty())
        return It->second.back();
    }
    return EntryVersion;
  }

  void addDef(MemoryName *N) {
    BasicBlock *BB = N->def()->parent();
    auto &List = Defs[BB];
    List.push_back(N);
    std::sort(List.begin(), List.end(), [&](MemoryName *A, MemoryName *B) {
      return BB->indexOf(A->def()) < BB->indexOf(B->def());
    });
  }
};

/// The use location of a memory operand for dominance purposes: phi operands
/// are uses at the end of their incoming block.
struct UseSite {
  const BasicBlock *BB;
  const Instruction *Before; ///< Null = end of block.
};

UseSite useSite(Instruction *User, unsigned MemOpIdx) {
  if (auto *MP = dyn_cast<MemPhiInst>(User))
    return {MP->incomingBlock(MemOpIdx), nullptr};
  return {User->parent(), User};
}

} // namespace

SSAUpdateStats srp::sweepDeadDefs(Function &F,
                                  const std::vector<MemoryName *> &Versions) {
  // Liveness closure so that phi cycles (a loop phi kept alive only by its
  // own back-edge operand, or two phis feeding each other) are recognised
  // as dead: a version is live iff some non-phi instruction uses it, or a
  // phi whose own target is live uses it.
  SSAUpdateStats Stats;
  // Deletion candidates are ONLY the provided versions (the paper's
  // allDefResSet). Other webs of the same object may be awaiting their own
  // promotion and must not lose definitions behind their back.
  std::unordered_set<const MemoryName *> InSet(Versions.begin(),
                                               Versions.end());
  std::vector<Instruction *> Defs;
  for (MemoryName *N : Versions) {
    if (N->isEntryVersion() || !N->def())
      continue;
    Instruction *D = N->def();
    if (isa<StoreInst>(D) || isa<MemPhiInst>(D))
      Defs.push_back(D);
  }

  std::unordered_set<const Instruction *> DefSet(Defs.begin(), Defs.end());
  std::unordered_set<const MemoryName *> Live;
  std::vector<const MemoryName *> Work;
  auto markLive = [&](const MemoryName *N) {
    if (Live.insert(N).second)
      Work.push_back(N);
  };
  // Seeds: uses by anything that is not a deletion-candidate phi. Memory
  // phis outside the set (e.g. in an enclosing interval) are external
  // users and pin their operands.
  for (Instruction *D : Defs) {
    MemoryName *Target =
        isa<StoreInst>(D) ? cast<StoreInst>(D)->memDefName()
                          : cast<MemPhiInst>(D)->target();
    for (const Use &U : Target->uses())
      if (!isa<MemPhiInst>(U.User) || !DefSet.count(U.User))
        markLive(Target);
  }
  // Propagate: a live version defined by an in-set phi keeps that phi's
  // operands alive (so the phi itself survives).
  while (!Work.empty()) {
    const MemoryName *N = Work.back();
    Work.pop_back();
    if (!N->def() || !DefSet.count(N->def()))
      continue;
    if (auto *MP = dyn_cast<MemPhiInst>(N->def()))
      for (MemoryName *Op : MP->memOperands())
        markLive(Op);
  }

  // Decide deadness before deleting anything, then delete dead phis first
  // (clearing their operand uses), then dead stores.
  std::vector<Instruction *> DeadPhis, DeadStores;
  for (Instruction *D : Defs) {
    if (auto *MP = dyn_cast<MemPhiInst>(D)) {
      if (!Live.count(MP->target()))
        DeadPhis.push_back(MP);
    } else if (auto *St = dyn_cast<StoreInst>(D)) {
      if (!Live.count(St->memDefName()))
        DeadStores.push_back(St);
    }
  }
  for (Instruction *MP : DeadPhis) {
    MP->eraseFromParent();
    ++Stats.PhisDeleted;
  }
  for (Instruction *St : DeadStores) {
    assert(!cast<StoreInst>(St)->memDefName()->hasUses() &&
           "dead store version still used after phi deletion");
    St->eraseFromParent();
    ++Stats.DefsDeleted;
  }
  F.purgeDeadMemoryNames();
  notifySSAEdited(F);
  return Stats;
}

SSAUpdateStats srp::updateSSAForClonedResources(
    Function &F, const DominatorTree &DT,
    const std::vector<MemoryName *> &OldRes,
    const std::vector<MemoryName *> &ClonedRes, bool SweepDead) {
  SSAUpdateStats Stats;
  assert(!OldRes.empty() && "need at least one existing resource");
  MemoryObject *Obj = OldRes.front()->object();
#ifndef NDEBUG
  for (MemoryName *N : OldRes)
    assert(N->object() == Obj && "resources renamed from different variables");
  for (MemoryName *N : ClonedRes)
    assert(N->object() == Obj && "clones of a different variable");
#endif

  // Step 1: collect the definition blocks of old and cloned resources and
  // place one phi at each block of their iterated dominance frontier.
  std::vector<BasicBlock *> InitDefBlocks;
  std::unordered_set<const BasicBlock *> SeenDefBlock;
  std::unordered_set<const BasicBlock *> HasPhiAlready;
  auto noteDef = [&](MemoryName *N) {
    BasicBlock *BB =
        N->isEntryVersion() ? F.entry() : N->def()->parent();
    if (N->def() && isa<MemPhiInst>(N->def()))
      HasPhiAlready.insert(BB);
    if (SeenDefBlock.insert(BB).second)
      InitDefBlocks.push_back(BB);
  };
  for (MemoryName *N : OldRes)
    noteDef(N);
  for (MemoryName *N : ClonedRes)
    noteDef(N);

  std::vector<MemoryName *> AllDefs;
  AllDefs.insert(AllDefs.end(), OldRes.begin(), OldRes.end());
  AllDefs.insert(AllDefs.end(), ClonedRes.begin(), ClonedRes.end());

  ++Stats.IDFComputations;
  std::vector<MemPhiInst *> NewPhis;
  std::unordered_set<MemPhiInst *> IsNewPhi;
  for (BasicBlock *BB : DT.iteratedFrontier(InitDefBlocks)) {
    // A pre-existing phi of this object already merges here; it stays the
    // merge point and its operands are recomputed in step 2.
    if (HasPhiAlready.count(BB))
      continue;
    auto Phi = std::make_unique<MemPhiInst>(Obj);
    MemPhiInst *Raw = Phi.get();
    BB->prepend(std::move(Phi));
    Raw->addMemDef(F.createMemoryName(Obj));
    NewPhis.push_back(Raw);
    IsNewPhi.insert(Raw);
    AllDefs.push_back(Raw->target());
    ++Stats.PhisInserted;
  }

  ReachingDefOracle Oracle(F, DT, AllDefs, Obj);

  // Step 2: rename every use of an old resource to its reaching definition.
  // New phis whose targets become reachable go on the worklist for filling.
  std::vector<MemPhiInst *> PhiWork;
  std::unordered_set<MemPhiInst *> PhiQueued;
  auto enqueueIfNewPhi = [&](MemoryName *N) {
    if (!N->def())
      return;
    if (auto *MP = dyn_cast<MemPhiInst>(N->def()))
      if (IsNewPhi.count(MP) && PhiQueued.insert(MP).second)
        PhiWork.push_back(MP);
  };

  for (MemoryName *Old : OldRes) {
    // Snapshot: renaming mutates the use list.
    std::vector<Use> Snapshot = Old->uses();
    for (const Use &U : Snapshot) {
      assert(U.IsMem && "register use of a memory name");
      // Do not rewrite the operands of phis we just inserted (they have
      // none yet) nor a definition's own record.
      UseSite Site = useSite(U.User, U.Index);
      MemoryName *Reach = Oracle.query(Site.BB, Site.Before);
      if (Reach != Old) {
        U.User->setMemOperand(U.Index, Reach);
        ++Stats.UsesRenamed;
      }
      enqueueIfNewPhi(Reach);
    }
  }

  // Step 3: fill live phis; a phi source is a use at the end of the
  // corresponding predecessor.
  while (!PhiWork.empty()) {
    MemPhiInst *MP = PhiWork.back();
    PhiWork.pop_back();
    BasicBlock *BB = MP->parent();
    assert(MP->numIncoming() == 0 && "new phi filled twice");
    for (BasicBlock *Pred : BB->preds()) {
      MemoryName *Reach = Oracle.query(Pred, nullptr);
      MP->addIncoming(Reach, Pred);
      enqueueIfNewPhi(Reach);
    }
  }

  // Unfilled new phis are unreachable by any renamed use: they are dead on
  // arrival; the sweep below removes them (their targets have no uses).

  // Step 4: delete every definition that has no use (old, cloned, or
  // inserted phi), cascading.
  if (SweepDead) {
    std::vector<MemoryName *> Candidates = AllDefs;
    SSAUpdateStats SweepStats = sweepDeadDefs(F, Candidates);
    Stats.PhisDeleted += SweepStats.PhisDeleted;
    Stats.DefsDeleted += SweepStats.DefsDeleted;
  } else {
    // Still remove never-filled phis: they would otherwise be structurally
    // invalid (zero operands).
    for (MemPhiInst *MP : NewPhis) {
      if (MP->numIncoming() == 0 && MP->target() && !MP->target()->hasUses()) {
        MP->eraseFromParent();
        ++Stats.PhisDeleted;
      }
    }
    F.purgeDeadMemoryNames();
  }
  NumIDF += Stats.IDFComputations;
  NumPhisInserted += Stats.PhisInserted;
  NumUsesRenamed += Stats.UsesRenamed;
  notifySSAEdited(F);
  return Stats;
}

SSAUpdateStats srp::convertResourceToSSA(Function &F,
                                         const DominatorTree &DT,
                                         MemoryObject *Obj) {
  MemoryName *Entry = F.entryMemoryName(Obj);
  if (!Entry) {
    Entry = F.createMemoryName(Obj);
    F.setEntryMemoryName(Obj, Entry);
  }

  std::vector<MemoryName *> Clones;
  for (BasicBlock *BB : F.blocks()) {
    for (auto &I : *BB) {
      if (auto *St = dyn_cast<StoreInst>(I.get())) {
        if (St->object() == Obj && !St->memDefName()) {
          MemoryName *V = F.createMemoryName(Obj);
          St->addMemDef(V);
          Clones.push_back(V);
        }
      } else if (auto *Ld = dyn_cast<LoadInst>(I.get())) {
        if (Ld->object() == Obj && !Ld->memUse())
          Ld->addMemOperand(Entry);
      } else if (auto *Ret = dyn_cast<RetInst>(I.get())) {
        // Module-scope objects are observable after return; the mu keeps
        // final stores alive through the update's dead-def sweep.
        if (Obj->isVisibleToCalls() && !Obj->owner() &&
            !Ret->memOperandFor(Obj))
          Ret->addMemOperand(Entry);
      }
    }
  }
  return updateSSAForClonedResources(F, DT, {Entry}, Clones);
}

SSAUpdateStats
srp::updateSSAPerClonedDef(Function &F, const DominatorTree &DT,
                           const std::vector<MemoryName *> &OldRes,
                           const std::vector<MemoryName *> &ClonedRes) {
  SSAUpdateStats Stats;
  // The evolving "old" set: each processed clone becomes an existing
  // definition for the next round, mirroring repeated single-definition
  // insertion.
  std::vector<MemoryName *> Current = OldRes;
  for (MemoryName *Clone : ClonedRes) {
    Stats += updateSSAForClonedResources(F, DT, Current, {Clone},
                                         /*SweepDead=*/false);
    // Definitions may have been erased meanwhile; keep only live versions.
    std::vector<MemoryName *> Live;
    for (MemoryName *N : Current)
      if (N->isEntryVersion() ? F.entryMemoryName(N->object()) == N
                              : N->def() != nullptr)
        Live.push_back(N);
    Current = std::move(Live);
    Current.push_back(Clone);
    // Phis inserted by this round join the definition set of later rounds.
    for (BasicBlock *BB : F.blocks())
      for (auto &I : *BB)
        if (auto *MP = dyn_cast<MemPhiInst>(I.get()))
          if (MP->object() == Clone->object() && MP->target() &&
              std::find(Current.begin(), Current.end(), MP->target()) ==
                  Current.end())
            Current.push_back(MP->target());
  }
  Stats += sweepDeadDefs(F, Current);
  return Stats;
}
