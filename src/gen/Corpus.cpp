//===- gen/Corpus.cpp - Differential fuzzing corpus harness ---------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "pipeline/Job.h"
#include "pipeline/Pipeline.h"
#include "support/Remarks.h"
#include <algorithm>
#include <sstream>

using namespace srp;
using namespace srp::gen;

//===----------------------------------------------------------------------===
// Coverage accounting.
//===----------------------------------------------------------------------===

uint64_t CoverageCounts::promoter(const std::string &Key) const {
  auto It = Promoters.find(Key);
  return It == Promoters.end() ? 0 : It->second;
}

uint64_t CoverageCounts::rejection(const std::string &Key) const {
  auto It = Rejections.find(Key);
  return It == Rejections.end() ? 0 : It->second;
}

void CoverageCounts::merge(const CoverageCounts &O) {
  for (const auto &[K, V] : O.Promoters)
    Promoters[K] += V;
  for (const auto &[K, V] : O.Rejections)
    Rejections[K] += V;
  AnalysisRemarks += O.AnalysisRemarks;
}

std::vector<std::string> CoverageCounts::missingRequired() const {
  std::vector<std::string> Missing;
  for (const std::string &K : requiredPromoters())
    if (!promoter(K))
      Missing.push_back(K);
  for (const std::string &K : requiredRejections())
    if (!rejection(K))
      Missing.push_back(K);
  return Missing;
}

const std::vector<std::string> &srp::gen::requiredPromoters() {
  static const std::vector<std::string> Keys = {
      "promotion:PromotedWeb",
      "mem2reg:PromotedLocal",
      "loop-promotion:PromotedVariable",
      "superblock:PromotedTraceVariable",
  };
  return Keys;
}

const std::vector<std::string> &srp::gen::requiredRejections() {
  static const std::vector<std::string> Keys = {
      "promotion:NoMemoryWork",
      "promotion:UnprofitableWeb",
      "promotion:StoresOnlyNotEliminated",
      "promotion:MultipleLiveIns",
  };
  return Keys;
}

ShapeProfile srp::gen::profileForCoverageKey(const std::string &Key) {
  // Which generation shape most reliably produces each remark: the
  // steering table the feedback loop consults for under-exercised keys.
  if (Key == "promotion:MultipleLiveIns")
    return ShapeProfile::MultiLiveIn;
  if (Key == "promotion:StoresOnlyNotEliminated")
    return ShapeProfile::GuardedStores;
  if (Key == "promotion:NoMemoryWork")
    return ShapeProfile::CallHeavy;
  if (Key == "promotion:UnprofitableWeb")
    return ShapeProfile::Aliased;
  if (Key == "loop-promotion:AmbiguousRef")
    return ShapeProfile::Aliased;
  if (Key == "superblock:PromotedTraceVariable")
    return ShapeProfile::GuardedStores;
  if (Key == "promotion:PromotedWeb" ||
      Key == "loop-promotion:PromotedVariable")
    return ShapeProfile::DeepLoops;
  return ShapeProfile::Default; // mem2reg:PromotedLocal and anything else
}

//===----------------------------------------------------------------------===
// Execution-result comparison.
//===----------------------------------------------------------------------===

namespace {

std::string joinErrors(const PipelineResult &R) {
  std::string S;
  for (const std::string &E : R.Errors) {
    if (!S.empty())
      S += "; ";
    S += E;
  }
  return S.empty() ? "(no error text)" : S;
}

bool countsEqual(const DynamicCounts &A, const DynamicCounts &B) {
  return A.SingletonLoads == B.SingletonLoads &&
         A.SingletonStores == B.SingletonStores &&
         A.AliasedLoads == B.AliasedLoads &&
         A.AliasedStores == B.AliasedStores && A.Copies == B.Copies &&
         A.Instructions == B.Instructions;
}

std::string blockKey(const BasicBlock *BB) {
  return (BB->parent() ? BB->parent()->name() : std::string("?")) + "." +
         BB->name();
}

std::map<std::string, uint64_t>
blockCountsByName(const ExecutionResult &R) {
  std::map<std::string, uint64_t> M;
  for (const auto &[BB, N] : R.BlockCounts)
    M[blockKey(BB)] += N;
  return M;
}

std::map<std::string, uint64_t> edgeCountsByName(const ExecutionResult &R) {
  std::map<std::string, uint64_t> M;
  for (const auto &[From, Row] : R.EdgeCounts)
    for (const auto &[To, N] : Row)
      M[blockKey(From) + "->" + blockKey(To)] += N;
  return M;
}

/// First differing observable field between two runs of the *same* module
/// shape, "" if none. \p Profile also compares dynamic counts and the
/// block/edge profiles (engine parity); the cross-mode oracle must not —
/// promotion changes those by design.
std::string diffRuns(const ExecutionResult &A, const ExecutionResult &B,
                     bool Profile, std::string &Detail) {
  if (A.Ok != B.Ok) {
    Detail = std::string("ok ") + (A.Ok ? "true" : "false") + " vs " +
             (B.Ok ? "true" : "false") + " (" + (A.Ok ? B.Error : A.Error) +
             ")";
    return "ok";
  }
  if (!A.Ok)
    return ""; // both failed the same way observably
  if (A.ExitValue != B.ExitValue) {
    Detail = "exit " + std::to_string(A.ExitValue) + " vs " +
             std::to_string(B.ExitValue);
    return "exit";
  }
  if (A.Output != B.Output) {
    size_t I = 0;
    while (I < A.Output.size() && I < B.Output.size() &&
           A.Output[I] == B.Output[I])
      ++I;
    Detail = "output diverges at index " + std::to_string(I) + " (sizes " +
             std::to_string(A.Output.size()) + " vs " +
             std::to_string(B.Output.size()) + ")";
    return "output";
  }
  if (A.FinalMemory != B.FinalMemory) {
    Detail = "final memory differs";
    for (const auto &[Obj, Cells] : A.FinalMemory) {
      auto It = B.FinalMemory.find(Obj);
      if (It == B.FinalMemory.end() || It->second != Cells) {
        Detail = "final memory differs at object #" + std::to_string(Obj);
        break;
      }
    }
    return "memory";
  }
  if (Profile) {
    if (!countsEqual(A.Counts, B.Counts)) {
      Detail = "dynamic counts differ (instructions " +
               std::to_string(A.Counts.Instructions) + " vs " +
               std::to_string(B.Counts.Instructions) + ", memops " +
               std::to_string(A.Counts.memOps()) + " vs " +
               std::to_string(B.Counts.memOps()) + ")";
      return "counts";
    }
    if (blockCountsByName(A) != blockCountsByName(B)) {
      Detail = "block profile differs";
      return "block-counts";
    }
    if (edgeCountsByName(A) != edgeCountsByName(B)) {
      Detail = "edge profile differs";
      return "edge-counts";
    }
  }
  return "";
}

/// Job layout per program: the six modes on the bytecode engine, then
/// (with EngineParity) the control and paper modes again on the walker,
/// then (with NativeParity) the same two on the native engine.
unsigned jobsPerProgram(const CheckOptions &O) {
  return 6 + (O.EngineParity ? 2 : 0) + (O.NativeParity ? 2 : 0);
}

/// The strictness the sweep actually runs at: Semantic piggybacks on Full
/// (the translation validator needs the structural checks to have passed
/// before it compares the snapshots).
Strictness appliedStrictness(const CheckOptions &O) {
  return O.Semantic && O.Verify == Strictness::Full ? Strictness::Semantic
                                                    : O.Verify;
}

void appendJobs(std::vector<CompileJob> &Jobs, const SourceText &Source,
                const CheckOptions &O, const std::string &Label) {
  PipelineOptions Base;
  Base.VerifyEachStep = O.VerifyEachStep;
  Base.VerifyStrictness = appliedStrictness(O);
  Base.MeasurePressure = false; // coloring is dead weight for the oracle
  for (PromotionMode M : allPromotionModes()) {
    PipelineOptions PO = Base;
    PO.Mode = M;
    PO.Interp = InterpEngine::Bytecode;
    Jobs.push_back({Label + "/" + promotionModeName(M), Source, PO});
  }
  if (O.EngineParity)
    for (PromotionMode M : {PromotionMode::None, PromotionMode::Paper}) {
      PipelineOptions PO = Base;
      PO.Mode = M;
      PO.Interp = InterpEngine::Walk;
      Jobs.push_back(
          {Label + "/" + promotionModeName(M) + "@walk", Source, PO});
    }
  if (O.NativeParity)
    for (PromotionMode M : {PromotionMode::None, PromotionMode::Paper}) {
      PipelineOptions PO = Base;
      PO.Mode = M;
      PO.Interp = InterpEngine::Native;
      PO.JitThreshold = 1; // force the JIT path, no warm-up calls
      Jobs.push_back(
          {Label + "/" + promotionModeName(M) + "@native", Source, PO});
    }
}

/// Evaluates the results slice for one program (starting at \p Base).
CheckResult evaluateProgram(const std::vector<PipelineResult> &R,
                            size_t Base, const CheckOptions &O) {
  CheckResult C;
  auto Fail = [&C](std::string Sig, std::string Detail) {
    C.Ok = false;
    C.Signature = std::move(Sig);
    C.Detail = std::move(Detail);
    return C;
  };

  // A failed pipeline whose error list carries a translation-validation
  // check ("[trans-...]") gets its own stable signature: the validator
  // refuted (or could not prove) a pass, which the reducer shrinks
  // separately from ordinary pipeline failures.
  const auto SemanticFailure = [](const PipelineResult &RM) {
    for (const std::string &E : RM.Errors)
      if (E.find("[trans-") != std::string::npos)
        return true;
    return false;
  };

  const auto &Modes = allPromotionModes();
  const PipelineResult &Control = R[Base];
  if (!Control.Ok)
    return Fail(SemanticFailure(Control) ? "semantic-validation:none"
                                         : "pipeline-error:none",
                joinErrors(Control));
  if (!Control.RunAfter.Ok)
    return Fail("run-error:none", Control.RunAfter.Error);

  for (size_t I = 0; I != Modes.size(); ++I) {
    const PipelineResult &RM = R[Base + I];
    const char *Name = promotionModeName(Modes[I]);
    if (!RM.Ok)
      return Fail(std::string(SemanticFailure(RM) ? "semantic-validation:"
                                                  : "pipeline-error:") +
                      Name,
                  joinErrors(RM));
    unsigned VerifyErrors = 0;
    for (const PassRecord &P : RM.Passes)
      VerifyErrors += P.VerifyErrors;
    if (VerifyErrors)
      return Fail(std::string("verify-errors:") + Name,
                  std::to_string(VerifyErrors) + " verifier errors");
    if (RM.Verify.Diagnostics)
      return Fail(std::string("verify-diagnostics:") + Name,
                  std::to_string(RM.Verify.Diagnostics) +
                      " static-analysis diagnostics at " +
                      strictnessName(appliedStrictness(O)) + " strictness");
    if (I == 0)
      continue;
    // The shared pre-promotion baseline must match the control exactly
    // (same module shape: mem2reg + canonicalisation only).
    std::string Detail;
    std::string Field =
        diffRuns(Control.RunBefore, RM.RunBefore, /*Profile=*/true, Detail);
    if (!Field.empty())
      return Fail(std::string("baseline-mismatch:") + Name + ":" + Field,
                  Detail);
    // The oracle proper: observable behaviour after promotion.
    Field =
        diffRuns(Control.RunAfter, RM.RunAfter, /*Profile=*/false, Detail);
    if (!Field.empty())
      return Fail(std::string("oracle-mismatch:") + Name + ":" + Field,
                  Detail);
  }

  if (O.EngineParity) {
    const std::pair<size_t, const char *> Parity[] = {{0, "none"},
                                                      {1, "paper"}};
    for (size_t P = 0; P != 2; ++P) {
      const PipelineResult &Walk = R[Base + Modes.size() + P];
      const PipelineResult &Byte = R[Base + Parity[P].first];
      const char *Name = Parity[P].second;
      if (!Walk.Ok)
        return Fail(std::string("pipeline-error:") + Name + "@walk",
                    joinErrors(Walk));
      std::string Detail;
      std::string Field = diffRuns(Byte.RunBefore, Walk.RunBefore,
                                   /*Profile=*/true, Detail);
      if (!Field.empty())
        return Fail(std::string("engine-parity:") + Name + ":before-" +
                        Field,
                    Detail);
      Field = diffRuns(Byte.RunAfter, Walk.RunAfter, /*Profile=*/true,
                       Detail);
      if (!Field.empty())
        return Fail(std::string("engine-parity:") + Name + ":" + Field,
                    Detail);
    }
  }

  if (O.NativeParity) {
    const size_t NBase = Base + Modes.size() + (O.EngineParity ? 2 : 0);
    const std::pair<size_t, const char *> Parity[] = {{0, "none"},
                                                      {1, "paper"}};
    for (size_t P = 0; P != 2; ++P) {
      const PipelineResult &Nat = R[NBase + P];
      const PipelineResult &Byte = R[Base + Parity[P].first];
      const char *Name = Parity[P].second;
      if (!Nat.Ok)
        return Fail(std::string("pipeline-error:") + Name + "@native",
                    joinErrors(Nat));
      std::string Detail;
      std::string Field = diffRuns(Byte.RunBefore, Nat.RunBefore,
                                   /*Profile=*/true, Detail);
      if (!Field.empty())
        return Fail(std::string("native-parity:") + Name + ":before-" +
                        Field,
                    Detail);
      Field = diffRuns(Byte.RunAfter, Nat.RunAfter, /*Profile=*/true,
                       Detail);
      if (!Field.empty())
        return Fail(std::string("native-parity:") + Name + ":" + Field,
                    Detail);
    }
  }
  return C;
}

void accumulateCoverage(CoverageCounts &Cov,
                        const std::vector<Remark> &Remarks) {
  for (const Remark &R : Remarks) {
    std::string Key = R.Pass + ":" + R.Name;
    switch (R.Kind) {
    case RemarkKind::Passed:
      ++Cov.Promoters[Key];
      break;
    case RemarkKind::Missed:
      ++Cov.Rejections[Key];
      break;
    case RemarkKind::Analysis:
      ++Cov.AnalysisRemarks;
      break;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===
// Public entry points.
//===----------------------------------------------------------------------===

CheckResult srp::gen::checkSource(const std::string &Source,
                                  const CheckOptions &Opts) {
  std::vector<CompileJob> Jobs;
  appendJobs(Jobs, SourceText(Source), Opts, "check");
  std::vector<PipelineResult> Results =
      runPipelineParallel(Jobs, Opts.Threads);
  return evaluateProgram(Results, 0, Opts);
}

CorpusReport srp::gen::runCorpus(const CorpusOptions &Opts,
                                 const CorpusProgressFn &Progress) {
  CorpusReport Report;
  unsigned JPP = jobsPerProgram(Opts.Check);
  unsigned BatchSize = std::max(1u, Opts.BatchSize);
  unsigned Done = 0;
  while (Done < Opts.Count && Report.Failures.size() < Opts.MaxFailures) {
    unsigned N = std::min(BatchSize, Opts.Count - Done);

    // Pick (seed, profile) pairs. With feedback on, every other slot is
    // steered toward a shape whose required coverage key has not fired
    // yet; the rest follow the deterministic rotation.
    std::vector<std::string> Missing;
    if (Opts.Feedback)
      Missing = Report.Coverage.missingRequired();
    std::vector<std::pair<uint64_t, ShapeProfile>> Picks;
    Picks.reserve(N);
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Seed = Opts.FirstSeed + Done + I;
      ShapeProfile P = profileForSeed(Seed);
      if (!Missing.empty() && (I & 1))
        P = profileForCoverageKey(Missing[(I / 2) % Missing.size()]);
      Picks.emplace_back(Seed, P);
    }

    std::vector<std::string> Sources(N);
    std::vector<CompileJob> Jobs;
    Jobs.reserve(size_t(N) * JPP);
    for (unsigned I = 0; I != N; ++I) {
      auto [Seed, P] = Picks[I];
      Sources[I] = generateProgram(Seed, biasedConfig(Seed, P));
      ++Report.ProfilePrograms[shapeProfileName(P)];
      appendJobs(Jobs, SourceText(Sources[I]), Opts.Check,
                 "seed" + std::to_string(Seed));
    }

    std::vector<PipelineResult> Results;
    {
      RemarkEngine RE;
      ScopedRemarkSink Sink(RE);
      Results = runPipelineParallel(Jobs, Opts.Threads);
      accumulateCoverage(Report.Coverage, RE.remarks());
    }

    for (unsigned I = 0; I != N; ++I) {
      CheckResult C =
          evaluateProgram(Results, size_t(I) * JPP, Opts.Check);
      ++Report.NumPrograms;
      if (C.Ok) {
        ++Report.NumPassed;
        continue;
      }
      CorpusFailure F;
      F.Seed = Picks[I].first;
      F.Profile = Picks[I].second;
      F.Signature = std::move(C.Signature);
      F.Detail = std::move(C.Detail);
      if (Opts.KeepFailingSource)
        F.Source = Sources[I];
      Report.Failures.push_back(std::move(F));
      if (Report.Failures.size() >= Opts.MaxFailures)
        break;
    }

    Done += N;
    if (Progress)
      Progress(Done, Opts.Count, Report);
  }
  return Report;
}

ProgramSignature srp::gen::signatureFor(const std::string &Source) {
  ProgramSignature Sig;
  RemarkEngine RE;
  ScopedRemarkSink Sink(RE);
  // The paper mode provides the dynamic facts; the baseline and
  // superblock modes run too so the signature records every promoter's
  // decisions, not just the paper promoter's.
  PipelineResult R = PipelineBuilder()
                         .mode(PromotionMode::Paper)
                         .verifyStrictness(Strictness::Full)
                         .run(Source);
  Sig.Ok = R.Ok && R.RunAfter.Ok;
  if (!R.Ok)
    Sig.Error = joinErrors(R);
  else if (!R.RunAfter.Ok)
    Sig.Error = R.RunAfter.Error;
  Sig.ExitValue = R.RunAfter.ExitValue;
  Sig.OutputLen = R.RunAfter.Output.size();
  Sig.MemOpsBefore = R.RunBefore.Counts.memOps();
  Sig.MemOpsAfter = R.RunAfter.Counts.memOps();
  if (Sig.Ok)
    for (PromotionMode M :
         {PromotionMode::LoopBaseline, PromotionMode::Superblock})
      (void)PipelineBuilder().mode(M).run(Source);
  CoverageCounts Cov;
  accumulateCoverage(Cov, RE.remarks());
  Sig.Promoters = std::move(Cov.Promoters);
  Sig.Rejections = std::move(Cov.Rejections);
  return Sig;
}

std::string srp::gen::signatureToString(const ProgramSignature &Sig) {
  std::ostringstream OS;
  if (!Sig.Ok) {
    OS << "error " << Sig.Error;
    return OS.str();
  }
  OS << "ok exit=" << Sig.ExitValue << " out=" << Sig.OutputLen
     << " memops=" << Sig.MemOpsBefore << "->" << Sig.MemOpsAfter;
  auto Emit = [&OS](const char *Tag,
                    const std::map<std::string, uint64_t> &M) {
    if (M.empty())
      return;
    OS << " | " << Tag << " ";
    bool First = true;
    for (const auto &[K, V] : M) {
      OS << (First ? "" : ",") << K << "=" << V;
      First = false;
    }
  };
  Emit("passed", Sig.Promoters);
  Emit("missed", Sig.Rejections);
  return OS.str();
}
