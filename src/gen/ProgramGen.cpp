//===- gen/ProgramGen.cpp - Promotion-targeted Mini-C generator -----------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "gen/ProgramGen.h"
#include "support/RNG.h"
#include <cassert>
#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

using namespace srp;
using namespace srp::gen;

const char *srp::gen::shapeProfileName(ShapeProfile P) {
  switch (P) {
  case ShapeProfile::Default:       return "default";
  case ShapeProfile::DeepLoops:     return "deep-loops";
  case ShapeProfile::Irreducible:   return "irreducible";
  case ShapeProfile::MultiLiveIn:   return "multi-live-in";
  case ShapeProfile::Aliased:       return "aliased";
  case ShapeProfile::CallHeavy:     return "call-heavy";
  case ShapeProfile::GuardedStores: return "guarded-stores";
  }
  return "?";
}

bool srp::gen::parseShapeProfile(const std::string &Name, ShapeProfile &Out) {
  for (ShapeProfile P : allShapeProfiles())
    if (Name == shapeProfileName(P)) {
      Out = P;
      return true;
    }
  return false;
}

const std::array<ShapeProfile, NumShapeProfiles> &srp::gen::allShapeProfiles() {
  static const std::array<ShapeProfile, NumShapeProfiles> All = {
      ShapeProfile::Default,     ShapeProfile::DeepLoops,
      ShapeProfile::Irreducible, ShapeProfile::MultiLiveIn,
      ShapeProfile::Aliased,     ShapeProfile::CallHeavy,
      ShapeProfile::GuardedStores};
  return All;
}

GenConfig GenConfig::forProfile(ShapeProfile P) {
  GenConfig C;
  switch (P) {
  case ShapeProfile::Default:
    break; // the defaults *are* the Default profile
  case ShapeProfile::DeepLoops:
    C.MaxLoopDepth = 4;
    C.LoopWeight = 35;
    C.ExtraStmts = 1;
    break;
  case ShapeProfile::Irreducible:
    C.IrreducibleChance = 85;
    C.MultiLiveInChance = 25;
    C.LoopWeight = 15;
    break;
  case ShapeProfile::MultiLiveIn:
    C.IrreducibleChance = 90;
    C.MultiLiveInChance = 95;
    break;
  case ShapeProfile::Aliased:
    C.AliasedWeight = 30;
    C.GuardedStoreWeight = 0;
    C.ExtraStmts = 1;
    break;
  case ShapeProfile::CallHeavy:
    C.MaxFunctions = 5;
    C.CallWeight = 30;
    C.ExtraStmts = 1;
    break;
  case ShapeProfile::GuardedStores:
    C.GuardedStoreWeight = 30;
    C.LoopWeight = 20;
    break;
  }
  return C;
}

ShapeProfile srp::gen::profileForSeed(uint64_t Seed) {
  return allShapeProfiles()[Seed % NumShapeProfiles];
}

GenConfig srp::gen::biasedConfig(uint64_t Seed) {
  return biasedConfig(Seed, profileForSeed(Seed));
}

GenConfig srp::gen::biasedConfig(uint64_t Seed, ShapeProfile Profile) {
  GenConfig C = GenConfig::forProfile(Profile);
  // Deterministic per-seed jitter of the size knobs, decoupled from the
  // program-content RNG stream so changing the jitter scheme does not
  // invalidate golden programs generated from explicit configs.
  RNG Jitter(Seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  C.MaxFunctions = std::max(1u, C.MaxFunctions + unsigned(Jitter.below(3)) - 1);
  C.MaxLoopDepth = std::max(1u, C.MaxLoopDepth + unsigned(Jitter.below(2)));
  C.ExtraStmts += unsigned(Jitter.below(3));
  C.AllowPointerWrites = Jitter.chance(4, 5);
  return C;
}

//===----------------------------------------------------------------------===
// Generator implementation.
//===----------------------------------------------------------------------===

struct ProgramGen::Impl {
  RNG Rand;
  GenConfig Cfg;
  std::ostringstream OS;
  std::vector<std::string> Globals;
  std::vector<std::pair<std::string, unsigned>> Arrays;
  std::vector<std::string> Fields; ///< "s.f" spellings
  /// Functions generated so far (callable from later functions, so the
  /// call graph is acyclic): name, arity, returns-int.
  struct Callee {
    std::string Name;
    unsigned Arity;
    bool ReturnsInt;
    uint64_t Cost; ///< estimated dynamic instructions per call
  };
  std::vector<Callee> Callables;
  std::vector<std::string> ScalarLocals; ///< in-scope locals of current fn
  std::vector<std::string> ReadOnly;     ///< induction vars and params
  unsigned NameCounter = 0;
  unsigned LoopDepth = 0;
  bool PointerToGlobal0 = false;

  //===--------------------------------------------------------------------===
  // Dynamic-cost accounting. Deep counted-loop nests that call helpers
  // which contain loops of their own multiply execution counts, and an
  // unlucky seed can overrun the interpreters' fuel. Every production
  // charges a rough per-execution instruction estimate scaled by the
  // product of the enclosing trip counts; call emission is suppressed
  // once a call site would contribute more than CallBudget dynamic
  // instructions, which caps whole programs far below the fuel limit.
  //===--------------------------------------------------------------------===
  uint64_t CurMult = 1;  ///< product of enclosing trip counts
  uint64_t FnCost = 0;   ///< estimated dynamic cost of the current function
  static constexpr uint64_t CallBudget = 200'000;

  void charge(uint64_t Instrs) { FnCost += Instrs * CurMult; }

  /// Whether a call to \p C fits the budget at the current loop depth.
  bool affordableCall(const Callee &C) {
    return CurMult * (C.Cost + 2 + C.Arity) <= CallBudget;
  }

  Impl(uint64_t Seed, GenConfig Cfg) : Rand(Seed), Cfg(Cfg) {}

  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(NameCounter++);
  }

  std::string indent(unsigned Depth) { return std::string(Depth * 2, ' '); }

  bool hasIntCallee() {
    for (const Callee &C : Callables)
      if (C.ReturnsInt && affordableCall(C))
        return true;
    return false;
  }

  const Callee &pickIntCallee() {
    for (;;) {
      const Callee &C = Callables[Rand.below(Callables.size())];
      if (C.ReturnsInt && affordableCall(C))
        return C;
    }
  }

  /// A random readable scalar location (global, field, local, param).
  std::string scalarRef() {
    unsigned Pools = 0;
    if (!Globals.empty())
      ++Pools;
    if (!Fields.empty())
      ++Pools;
    if (!ScalarLocals.empty())
      ++Pools;
    if (Pools == 0)
      return std::to_string(Rand.range(0, 9));
    while (true) {
      switch (Rand.below(3)) {
      case 0:
        if (!Globals.empty())
          return Globals[Rand.below(Globals.size())];
        break;
      case 1:
        if (!Fields.empty())
          return Fields[Rand.below(Fields.size())];
        break;
      default:
        if (!ScalarLocals.empty())
          return ScalarLocals[Rand.below(ScalarLocals.size())];
        break;
      }
    }
  }

  std::string scalarRefWritable() {
    for (int Tries = 0; Tries != 8; ++Tries) {
      std::string R = scalarRef();
      bool RO = false;
      for (const std::string &N : ReadOnly)
        if (N == R)
          RO = true;
      // Literals from the empty-pool fallback are not writable either.
      if (!RO && !R.empty() &&
          !std::isdigit(static_cast<unsigned char>(R[0])) && R[0] != '-')
        return R;
    }
    // Guaranteed writable fallback.
    if (!Globals.empty())
      return Globals[0];
    std::string N = fresh("l");
    OS << "  int " << N << " = 0;\n";
    ScalarLocals.push_back(N);
    return N;
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || Rand.chance(2, 5)) {
      // Leaf.
      switch (Rand.below(5)) {
      case 0:
        return std::to_string(Rand.range(-20, 20));
      case 1:
      case 2:
        return scalarRef();
      case 3:
        if (Cfg.IntCallees && hasIntCallee() && Rand.chance(1, 3)) {
          const Callee &C = pickIntCallee();
          charge(C.Cost + 2 + C.Arity);
          std::string Call = C.Name + "(";
          for (unsigned A = 0; A != C.Arity; ++A)
            Call += (A ? ", " : "") +
                    (Rand.chance(1, 2) ? scalarRef()
                                       : std::to_string(Rand.range(-9, 9)));
          return Call + ")";
        }
        return scalarRef();
      default:
        if (!Arrays.empty()) {
          auto &[Name, Size] = Arrays[Rand.below(Arrays.size())];
          std::string S = std::to_string(Size);
          return Name + "[((" + scalarRef() + ") % " + S + " + " + S +
                 ") % " + S + "]";
        }
        return scalarRef();
      }
    }
    static const char *Ops[] = {"+", "-", "*", "&", "|", "^",
                                "<", "<=", "==", "!="};
    std::string Op = Ops[Rand.below(10)];
    std::string L = expr(Depth - 1), R = expr(Depth - 1);
    if (Op == "*") // bound value growth
      R = std::to_string(Rand.range(-3, 3));
    return "(" + L + " " + Op + " " + R + ")";
  }

  /// A non-negative array index expression guaranteed in [0, Size).
  std::string arrayIndex(unsigned Size) {
    return "((" + expr(1) + ") * (" + expr(1) + ") % " +
           std::to_string(static_cast<int>(Size)) + " + " +
           std::to_string(static_cast<int>(Size)) + ") % " +
           std::to_string(static_cast<int>(Size));
  }

  /// Trip count for a counted loop: small when already nested so the
  /// dynamic instruction count stays bounded for deep nests.
  unsigned tripCount() {
    return 1 + static_cast<unsigned>(Rand.below(LoopDepth >= 2 ? 4 : 12));
  }

  //===--------------------------------------------------------------------===
  // Statement productions.
  //===--------------------------------------------------------------------===

  void stmtLocalDecl(unsigned Depth) {
    std::string N = fresh("l");
    OS << indent(Depth) << "int " << N << " = " << expr(2) << ";\n";
    ScalarLocals.push_back(N);
  }

  void stmtScalarAssign(unsigned Depth) {
    OS << indent(Depth) << scalarRefWritable() << " = " << expr(2) << ";\n";
  }

  void stmtArrayStore(unsigned Depth) {
    if (Arrays.empty())
      return;
    auto &[Name, Size] = Arrays[Rand.below(Arrays.size())];
    OS << indent(Depth) << Name << "[" << arrayIndex(Size)
       << "] = " << expr(2) << ";\n";
  }

  void stmtIf(unsigned Depth, unsigned Budget) {
    size_t LocalsBefore = ScalarLocals.size();
    OS << indent(Depth) << "if (" << expr(2) << ") {\n";
    stmts(Depth + 1, 1 + Rand.below(Budget));
    ScalarLocals.resize(LocalsBefore);
    if (Rand.chance(1, 2)) {
      OS << indent(Depth) << "} else {\n";
      stmts(Depth + 1, 1 + Rand.below(Budget));
      ScalarLocals.resize(LocalsBefore);
    }
    OS << indent(Depth) << "}\n";
  }

  /// The psi-SSA scenario class: a store guarded by a loop-body
  /// conditional, with a use after the rejoin so the guarded version and
  /// the fall-through version meet in one web.
  void stmtGuardedStore(unsigned Depth) {
    if (Globals.empty() && Fields.empty())
      return;
    std::string G = !Globals.empty() && (Fields.empty() || Rand.chance(2, 3))
                        ? Globals[Rand.below(Globals.size())]
                        : Fields[Rand.below(Fields.size())];
    OS << indent(Depth) << "if (" << expr(1) << ") {\n";
    OS << indent(Depth + 1) << G << " = " << expr(2) << ";\n";
    if (Rand.chance(1, 3)) {
      OS << indent(Depth) << "} else {\n";
      OS << indent(Depth + 1) << G << " = " << expr(1) << ";\n";
    }
    OS << indent(Depth) << "}\n";
    OS << indent(Depth) << scalarRefWritable() << " = " << G << " + "
       << expr(1) << ";\n";
  }

  void stmtLoop(unsigned Depth) {
    if (LoopDepth >= Cfg.MaxLoopDepth)
      return;
    std::string IV = fresh("i");
    unsigned Trip = tripCount();
    bool DoWhile = Rand.chance(1, 4);
    OS << indent(Depth) << "int " << IV << ";\n";
    if (DoWhile) {
      OS << indent(Depth) << IV << " = 0;\n";
      OS << indent(Depth) << "do {\n";
    } else {
      OS << indent(Depth) << "for (" << IV << " = 0; " << IV << " < " << Trip
         << "; " << IV << "++) {\n";
    }
    ++LoopDepth;
    CurMult *= Trip;
    charge(3); // condition + increment + branch, per iteration
    size_t LocalsBefore = ScalarLocals.size();
    ScalarLocals.push_back(IV); // readable inside, never assigned
    ReadOnly.push_back(IV);
    stmts(Depth + 1, 1 + Rand.below(3));
    ScalarLocals.resize(LocalsBefore);
    ReadOnly.pop_back();
    CurMult /= Trip;
    --LoopDepth;
    if (DoWhile) {
      OS << indent(Depth + 1) << IV << " = " << IV << " + 1;\n";
      OS << indent(Depth) << "} while (" << IV << " < " << Trip << ");\n";
    } else {
      OS << indent(Depth) << "}\n";
    }
  }

  void stmtCall(unsigned Depth) {
    if (Callables.empty())
      return;
    const Callee &C = Callables[Rand.below(Callables.size())];
    if (!affordableCall(C)) {
      stmtCompound(Depth); // too hot for a call; keep the slot cheap
      return;
    }
    charge(C.Cost + 2 + C.Arity);
    std::string Call = C.Name + "(";
    for (unsigned A = 0; A != C.Arity; ++A)
      Call += (A ? ", " : "") + expr(1);
    Call += ")";
    if (C.ReturnsInt && Rand.chance(2, 3))
      OS << indent(Depth) << scalarRefWritable() << " = " << Call << ";\n";
    else
      OS << indent(Depth) << Call << ";\n";
  }

  void stmtPrint(unsigned Depth) {
    OS << indent(Depth) << "print(" << expr(2) << ");\n";
  }

  void stmtPointerToGlobal(unsigned Depth) {
    if (!PointerToGlobal0 || Globals.empty())
      return;
    std::string P = fresh("p");
    OS << indent(Depth) << "int " << P << " = &" << Globals[0] << ";\n";
    OS << indent(Depth) << "*" << P << " = " << expr(2) << ";\n";
  }

  /// Aliased aggregate access: a pointer into an array (or at a struct
  /// field), a store through it when writes are allowed, and a load
  /// through it. The pointee object becomes address-taken, so every later
  /// access to it is aliased — the Baradaran/Diniz scenario class.
  void stmtAliased(unsigned Depth) {
    std::string P = fresh("p");
    if (!Arrays.empty() && (Fields.empty() || Rand.chance(2, 3))) {
      auto &[Name, Size] = Arrays[Rand.below(Arrays.size())];
      OS << indent(Depth) << "int " << P << " = &" << Name << "["
         << Rand.below(Size) << "];\n";
    } else if (!Fields.empty()) {
      OS << indent(Depth) << "int " << P << " = &"
         << Fields[Rand.below(Fields.size())] << ";\n";
    } else if (!Globals.empty()) {
      OS << indent(Depth) << "int " << P << " = &" << Globals[0] << ";\n";
    } else {
      return;
    }
    if (Cfg.AllowPointerWrites && Rand.chance(2, 3))
      OS << indent(Depth) << "*" << P << " = " << expr(2) << ";\n";
    OS << indent(Depth) << scalarRefWritable() << " = *" << P << " + "
       << expr(1) << ";\n";
  }

  void stmtCompound(unsigned Depth) {
    std::string T = scalarRefWritable();
    if (Rand.chance(1, 2))
      OS << indent(Depth) << T << " += " << expr(1) << ";\n";
    else
      OS << indent(Depth) << T << "++;\n";
  }

  /// The irreducible-interval region: a forward goto into a counted-loop
  /// body gives the loop a second entry, so the interval is improper and
  /// promotion must place boundary loads at the least common dominator.
  /// When SplitLiveIn is set, the two entry paths carry *different* memory
  /// versions of the shared global, producing the MultipleLiveIns
  /// rejection of §4.3 — a shape no structured control flow can build.
  void stmtIrreducibleRegion(unsigned Depth, bool SplitLiveIn) {
    if (Globals.empty())
      return;
    const std::string &G = Globals[Rand.below(Globals.size())];
    std::string IV = fresh("i");
    std::string L = fresh("entry");
    unsigned Trip = 2 + static_cast<unsigned>(Rand.below(9));
    OS << indent(Depth) << "int " << IV << " = 0;\n";
    OS << indent(Depth) << G << " = " << expr(1) << ";\n";
    OS << indent(Depth) << "if (" << expr(1) << " < " << expr(1)
       << ") goto " << L << ";\n";
    if (SplitLiveIn)
      OS << indent(Depth) << G << " = " << expr(1) << ";\n";
    OS << indent(Depth) << "while (" << IV << " < " << Trip << ") {\n";
    ++LoopDepth;
    CurMult *= Trip;
    charge(8); // load/add/store of G, IV increment, condition, branches
    size_t LocalsBefore = ScalarLocals.size();
    ScalarLocals.push_back(IV);
    ReadOnly.push_back(IV);
    // A guaranteed load of the shared global inside the loop keeps the
    // web profitable, so the MultipleLiveIns check (not profitability) is
    // what decides its fate.
    OS << indent(Depth + 1) << scalarRefWritable() << " = " << G << " + "
       << expr(1) << ";\n";
    if (Rand.chance(1, 2))
      stmts(Depth + 1, 1);
    OS << indent(Depth) << L << ":\n";
    OS << indent(Depth + 1) << G << " = " << G << " + "
       << Rand.range(1, 3) << ";\n";
    OS << indent(Depth + 1) << IV << " = " << IV << " + 1;\n";
    ScalarLocals.resize(LocalsBefore);
    ReadOnly.pop_back();
    CurMult /= Trip;
    --LoopDepth;
    OS << indent(Depth) << "}\n";
    OS << indent(Depth) << "print(" << G << ");\n";
  }

  /// Weighted statement dispatch: \p Budget statements at \p Depth.
  void stmts(unsigned Depth, unsigned Budget) {
    for (unsigned K = 0; K != Budget; ++K) {
      charge(6); // flat estimate per statement; calls/loops add their own
      // Fixed-weight productions (historical mix), then the configurable
      // shape productions on top.
      unsigned LoopW = Cfg.LoopWeight;
      unsigned CallW = Cfg.CallWeight;
      unsigned GuardW = Cfg.GuardedStoreWeight;
      unsigned AliasW = Cfg.AliasedWeight;
      unsigned Total = 10 /*decl*/ + 20 /*assign*/ + 8 /*array*/ +
                       10 /*if*/ + 6 /*print*/ + 4 /*ptr-global*/ +
                       10 /*compound*/ + LoopW + CallW + GuardW + AliasW;
      uint64_t R = Rand.below(Total);
      auto Take = [&R](unsigned W) {
        if (R < W)
          return true;
        R -= W;
        return false;
      };
      if (Take(10))
        stmtLocalDecl(Depth);
      else if (Take(20))
        stmtScalarAssign(Depth);
      else if (Take(8))
        stmtArrayStore(Depth);
      else if (Take(10))
        stmtIf(Depth, 2);
      else if (Take(6))
        stmtPrint(Depth);
      else if (Take(4))
        stmtPointerToGlobal(Depth);
      else if (Take(10))
        stmtCompound(Depth);
      else if (Take(LoopW))
        stmtLoop(Depth);
      else if (Take(CallW))
        stmtCall(Depth);
      else if (Take(GuardW))
        stmtGuardedStore(Depth);
      else
        stmtAliased(Depth);
    }
  }

  //===--------------------------------------------------------------------===
  // Program assembly.
  //===--------------------------------------------------------------------===

  void functionBody(unsigned BaseBudget) {
    bool Irreducible =
        Cfg.IrreducibleChance && Rand.chance(Cfg.IrreducibleChance, 100);
    bool SplitLiveIn =
        Irreducible && Rand.chance(Cfg.MultiLiveInChance, 100);
    unsigned Budget = BaseBudget + Cfg.ExtraStmts +
                      static_cast<unsigned>(Rand.below(4));
    unsigned Before = Irreducible ? 1 + unsigned(Rand.below(Budget)) : Budget;
    stmts(1, Before);
    if (Irreducible) {
      stmtIrreducibleRegion(1, SplitLiveIn);
      if (Budget > Before)
        stmts(1, Budget - Before);
    }
  }

  std::string generate() {
    unsigned NumGlobals = 1 + static_cast<unsigned>(Rand.below(4));
    for (unsigned I = 0; I != NumGlobals; ++I) {
      std::string N = fresh("g");
      OS << "int " << N << " = " << Rand.range(-5, 5) << ";\n";
      Globals.push_back(N);
    }
    if (Rand.chance(1, 2)) {
      std::string N = fresh("arr");
      unsigned Size = 2 + static_cast<unsigned>(Rand.below(7));
      OS << "int " << N << "[" << Size << "];\n";
      Arrays.emplace_back(N, Size);
    }
    if (Rand.chance(1, 3)) {
      OS << "struct St { int f0 = 1; int f1 = 2; } s0;\n";
      Fields.push_back("s0.f0");
      Fields.push_back("s0.f1");
    }
    PointerToGlobal0 = Cfg.AllowPointerWrites && Rand.chance(1, 3);

    unsigned NumFns =
        Cfg.MaxFunctions ? static_cast<unsigned>(Rand.below(Cfg.MaxFunctions))
                         : 0;
    for (unsigned I = 0; I != NumFns; ++I) {
      std::string N = fresh("f");
      unsigned Arity = static_cast<unsigned>(Rand.below(3));
      bool ReturnsInt = Cfg.IntCallees && Rand.chance(1, 2);
      OS << (ReturnsInt ? "int " : "void ") << N << "(";
      std::vector<std::string> Params;
      for (unsigned A = 0; A != Arity; ++A) {
        std::string P = fresh("a");
        OS << (A ? ", " : "") << "int " << P;
        Params.push_back(P);
      }
      OS << ") {\n";
      ScalarLocals = Params; // params readable (read-only)
      ReadOnly = Params;
      CurMult = 1;
      FnCost = 4; // frame setup + return
      functionBody(2);
      if (ReturnsInt)
        OS << "  return " << expr(2) << ";\n";
      ScalarLocals.clear();
      ReadOnly.clear();
      OS << "}\n";
      Callables.push_back({N, Arity, ReturnsInt, FnCost});
    }

    OS << "void main() {\n";
    ScalarLocals.clear();
    ReadOnly.clear();
    CurMult = 1;
    FnCost = 0;
    functionBody(4);
    // Make every global observable so equivalence checks bite.
    for (const std::string &G : Globals)
      OS << "  print(" << G << ");\n";
    for (const std::string &Fd : Fields)
      OS << "  print(" << Fd << ");\n";
    OS << "}\n";
    return OS.str();
  }
};

ProgramGen::ProgramGen(uint64_t Seed, GenConfig Cfg)
    : P(std::make_unique<Impl>(Seed, Cfg)) {}
ProgramGen::~ProgramGen() = default;
ProgramGen::ProgramGen(ProgramGen &&) noexcept = default;
ProgramGen &ProgramGen::operator=(ProgramGen &&) noexcept = default;

std::string ProgramGen::generate() { return P->generate(); }

std::string srp::gen::generateProgram(uint64_t Seed, const GenConfig &Cfg) {
  return ProgramGen(Seed, Cfg).generate();
}
