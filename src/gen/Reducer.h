//===- gen/Reducer.h - Failure-preserving test-case reducer ----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A delta-debugging (ddmin-style) reducer for failing Mini-C programs:
/// given a source and a predicate that recognises "still fails the same
/// way" (typically: gen/Corpus.h checkSource reports the same failure
/// signature), it greedily deletes line chunks and whole balanced-brace
/// regions until no single deletion preserves the failure. The predicate
/// fully owns the failure definition, so the reducer never conflates "got
/// smaller" with "fails differently": a reduction that turns an oracle
/// mismatch into a parse error is rejected because the signature changes.
///
/// Candidate deletions are pre-filtered to keep `{}` nesting balanced —
/// unbalanced candidates cannot compile and would only burn oracle runs.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_GEN_REDUCER_H
#define SRP_GEN_REDUCER_H

#include <cstdint>
#include <functional>
#include <string>

namespace srp::gen {

/// Returns true when \p Source still exhibits the original failure.
using FailurePredicate = std::function<bool(const std::string &Source)>;

struct ReduceOptions {
  /// Upper bound on full sweep passes (each pass is a complete ddmin
  /// round plus a brace-region round); reduction also stops at the first
  /// pass that removes nothing.
  unsigned MaxPasses = 12;
  /// Also attempt deleting whole balanced-brace regions (an `if`/loop
  /// header line through its closing brace) as single candidates — these
  /// remove nests that line-granular ddmin can only remove piecemeal.
  bool BraceRegions = true;
  /// Hard cap on predicate evaluations (each one runs the full oracle
  /// stack); reduction returns the best-so-far when exhausted.
  unsigned MaxTests = 2000;
};

struct ReduceResult {
  std::string Reduced;      ///< smallest failing variant found
  size_t OriginalBytes = 0;
  size_t ReducedBytes = 0;
  unsigned TestsRun = 0;    ///< predicate evaluations spent
  unsigned PassesRun = 0;   ///< sweep passes completed

  /// Fraction of bytes removed, in [0, 1].
  double shrink() const {
    return OriginalBytes
               ? 1.0 - double(ReducedBytes) / double(OriginalBytes)
               : 0.0;
  }
};

/// Shrinks \p Source while \p StillFails holds. \p Source itself must
/// satisfy the predicate; if it does not, the result is \p Source
/// unchanged with TestsRun == 1.
ReduceResult reduceSource(const std::string &Source,
                          const FailurePredicate &StillFails,
                          const ReduceOptions &Opts = {});

} // namespace srp::gen

#endif // SRP_GEN_REDUCER_H
