//===- gen/Reducer.cpp - Failure-preserving test-case reducer -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "gen/Reducer.h"
#include <algorithm>
#include <vector>

using namespace srp::gen;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t NL = S.find('\n', Pos);
    if (NL == std::string::npos) {
      Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, NL - Pos));
    Pos = NL + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string S;
  for (const std::string &L : Lines) {
    S += L;
    S += '\n';
  }
  return S;
}

/// Net `{` minus `}` of one line. Mini-C has no string or character
/// literals, so counting raw braces is exact.
int braceDelta(const std::string &L) {
  int D = 0;
  for (char C : L)
    D += C == '{' ? 1 : C == '}' ? -1 : 0;
  return D;
}

/// True when deleting [Begin, End) keeps the program brace-balanced.
bool balancedToRemove(const std::vector<std::string> &Lines, size_t Begin,
                      size_t End) {
  int D = 0;
  for (size_t I = Begin; I != End; ++I)
    D += braceDelta(Lines[I]);
  return D == 0;
}

std::vector<std::string> without(const std::vector<std::string> &Lines,
                                 size_t Begin, size_t End) {
  std::vector<std::string> Out;
  Out.reserve(Lines.size() - (End - Begin));
  Out.insert(Out.end(), Lines.begin(), Lines.begin() + Begin);
  Out.insert(Out.end(), Lines.begin() + End, Lines.end());
  return Out;
}

struct Budget {
  unsigned Remaining;
  unsigned Spent = 0;
  bool take() {
    if (!Remaining)
      return false;
    --Remaining;
    ++Spent;
    return true;
  }
};

/// One ddmin round over line chunks: chunk sizes halve from n/2 down
/// to 1; every brace-balanced chunk deletion that preserves the failure
/// is committed immediately. Returns true if anything was removed.
bool ddminRound(std::vector<std::string> &Lines,
                const FailurePredicate &StillFails, Budget &B) {
  bool Removed = false;
  for (size_t Chunk = std::max<size_t>(1, Lines.size() / 2); Chunk >= 1;
       Chunk /= 2) {
    for (size_t Begin = 0; Begin < Lines.size();) {
      size_t End = std::min(Begin + Chunk, Lines.size());
      if (!balancedToRemove(Lines, Begin, End) || !B.take()) {
        Begin += Chunk;
        continue;
      }
      std::vector<std::string> Candidate = without(Lines, Begin, End);
      if (StillFails(joinLines(Candidate))) {
        Lines = std::move(Candidate);
        Removed = true; // retry same position: the next chunk slid in
      } else {
        Begin += Chunk;
      }
    }
    if (Chunk == 1)
      break;
  }
  return Removed;
}

/// One round of whole-region deletion: for every line that opens a brace
/// region, try deleting through its matching close. Catches `if`/loop
/// nests whose header and footer ddmin can only remove together.
bool braceRegionRound(std::vector<std::string> &Lines,
                      const FailurePredicate &StillFails, Budget &B) {
  bool Removed = false;
  for (size_t Begin = 0; Begin < Lines.size(); ++Begin) {
    if (braceDelta(Lines[Begin]) <= 0)
      continue;
    int Depth = 0;
    size_t End = Begin;
    while (End < Lines.size()) {
      Depth += braceDelta(Lines[End]);
      ++End;
      if (Depth == 0)
        break;
    }
    if (Depth != 0 || End - Begin >= Lines.size())
      continue; // unmatched, or the whole program
    if (!B.take())
      return Removed;
    std::vector<std::string> Candidate = without(Lines, Begin, End);
    if (StillFails(joinLines(Candidate))) {
      Lines = std::move(Candidate);
      Removed = true;
      --Begin; // a new region may have slid into this position
    }
  }
  return Removed;
}

} // namespace

ReduceResult srp::gen::reduceSource(const std::string &Source,
                                    const FailurePredicate &StillFails,
                                    const ReduceOptions &Opts) {
  ReduceResult R;
  R.Reduced = Source;
  R.OriginalBytes = Source.size();
  R.ReducedBytes = Source.size();
  R.TestsRun = 1;
  if (!StillFails(Source))
    return R; // not a failing input; nothing to preserve

  std::vector<std::string> Lines = splitLines(Source);
  Budget B{Opts.MaxTests > 0 ? Opts.MaxTests - 1 : 0};
  for (unsigned Pass = 0; Pass != Opts.MaxPasses; ++Pass) {
    bool Removed = ddminRound(Lines, StillFails, B);
    if (Opts.BraceRegions)
      Removed |= braceRegionRound(Lines, StillFails, B);
    ++R.PassesRun;
    if (!Removed || !B.Remaining)
      break;
  }
  R.TestsRun += B.Spent;
  R.Reduced = joinLines(Lines);
  R.ReducedBytes = R.Reduced.size();
  return R;
}
