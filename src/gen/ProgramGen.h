//===- gen/ProgramGen.h - Promotion-targeted Mini-C generator --*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic random Mini-C program generator biased toward
/// promotion-relevant shapes. Generated programs always terminate (loops
/// are bounded counted loops whose induction variable is never otherwise
/// assigned; gotos only jump forward into counted-loop bodies; the call
/// graph is acyclic) and never trap (no division, array indices reduced
/// modulo the array size, pointers stay inside the object they address).
///
/// Shape biasing is the point of the subsystem: besides the classic
/// globals/arrays/fields mix, the generator can emit
///  - deep counted-loop nests (promotion across interval nesting),
///  - *irreducible* interval shapes — a forward goto into a counted-loop
///    body gives the loop a second entry, so interval analysis sees an
///    improper region and promotion must fall back to the least common
///    dominator (paper §4.1),
///  - *multi-live-in* webs — distinct memory versions of one object
///    reaching the two entries of an improper interval, the one §4.3
///    rejection (MultipleLiveIns) no structured program can trigger,
///  - aliased aggregate and pointer access (arrays, struct fields, stores
///    and loads through pointers into both),
///  - call-heavy webs (int-returning helpers used inside expressions, so
///    webs are repeatedly killed by call-clobber chi/mu pairs),
///  - conditionally-guarded stores (the psi-SSA scenario class: a store
///    under an if inside a loop, loads after the guard rejoin).
///
/// Every shape has a `ShapeProfile` preset; `biasedConfig(Seed)` rotates
/// through the profiles deterministically, which the fuzz suites and the
/// corpus harness (gen/Corpus.h) use as their default. The same seed and
/// config always produce byte-identical programs on every platform (the
/// RNG is the repo's own xorshift128+, support/RNG.h).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_GEN_PROGRAMGEN_H
#define SRP_GEN_PROGRAMGEN_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace srp::gen {

/// Named generation presets, one per promotion-relevant shape class. The
/// corpus harness sweeps all of them; `forProfile` returns the knobs.
enum class ShapeProfile : uint8_t {
  Default,       ///< balanced mix, every shape at a low rate
  DeepLoops,     ///< nesting depth 4, loop-heavy statement mix
  Irreducible,   ///< goto-into-loop regions in most functions
  MultiLiveIn,   ///< irreducible regions with split live-in versions
  Aliased,       ///< arrays, struct fields, pointer loads/stores
  CallHeavy,     ///< int-returning helpers called from expressions
  GuardedStores, ///< stores under loop-body conditionals (psi-SSA class)
};

inline constexpr unsigned NumShapeProfiles = 7;

/// Stable spelling used by -profile= flags, JSON, and test names
/// ("default", "deep-loops", "irreducible", "multi-live-in", "aliased",
/// "call-heavy", "guarded-stores").
const char *shapeProfileName(ShapeProfile P);

/// Inverse of shapeProfileName; returns false for unknown spellings.
bool parseShapeProfile(const std::string &Name, ShapeProfile &Out);

/// Every profile, in declaration order (corpus rotation axis).
const std::array<ShapeProfile, NumShapeProfiles> &allShapeProfiles();

/// Shape knobs for generated programs. The defaults describe the Default
/// profile: every shape class is reachable (in particular the irreducible
/// and multi-live-in chances are deliberately nonzero — a default
/// configuration that can never emit them would silently blind the fuzz
/// suites to the MultipleLiveIns rejection path).
struct GenConfig {
  unsigned MaxFunctions = 3; ///< helper functions besides main (0..N-1)
  unsigned MaxLoopDepth = 2; ///< nesting bound for counted loops
  unsigned ExtraStmts = 0;   ///< added to every statement budget
  bool AllowPointerWrites = true; ///< permit stores through pointers

  /// Relative weight (out of ~100) of emitting a loop at each statement
  /// slot. 10 matches the historical generator.
  unsigned LoopWeight = 10;
  /// Relative weight of emitting a call statement.
  unsigned CallWeight = 10;
  /// Relative weight of the dedicated guarded-store production
  /// (`if (c) { g = e; } use(g);`) on top of the generic if production.
  unsigned GuardedStoreWeight = 5;
  /// Percent chance per function of emitting an irreducible region: a
  /// forward goto into a counted-loop body (second interval entry).
  unsigned IrreducibleChance = 10;
  /// Percent chance that an irreducible region also splits the live-in
  /// memory version of its shared global (stores on both entry paths),
  /// producing a web promotion must reject as MultipleLiveIns.
  unsigned MultiLiveInChance = 50;
  /// Relative weight of the aliased productions (pointer into array /
  /// global, load and store through it).
  unsigned AliasedWeight = 5;
  /// Helpers may return int and be called inside expressions.
  bool IntCallees = true;

  /// The preset for one shape class.
  static GenConfig forProfile(ShapeProfile P);
};

/// The profile `biasedConfig` picks for \p Seed (deterministic rotation).
ShapeProfile profileForSeed(uint64_t Seed);

/// The fuzz-suite default: the profile rotation for \p Seed plus
/// deterministic per-seed jitter of the size knobs, so consecutive seeds
/// differ in shape *and* scale.
GenConfig biasedConfig(uint64_t Seed);

/// Same per-seed jitter but with the profile pinned — what the corpus
/// harness uses when coverage feedback steers a seed toward an
/// under-exercised shape. (Seed, Profile) fully determines the program,
/// so every corpus failure is reproducible standalone.
GenConfig biasedConfig(uint64_t Seed, ShapeProfile Profile);

/// Deterministic random Mini-C program generator. One instance generates
/// one program; the same (seed, config) pair is byte-stable forever —
/// golden corpus entries under tests/corpus/ depend on it.
class ProgramGen {
  struct Impl;
  std::unique_ptr<Impl> P;

public:
  explicit ProgramGen(uint64_t Seed, GenConfig Cfg = {});
  ~ProgramGen();
  ProgramGen(ProgramGen &&) noexcept;
  ProgramGen &operator=(ProgramGen &&) noexcept;

  /// Generates one complete program. Call once per instance.
  std::string generate();
};

/// One-shot convenience: `ProgramGen(Seed, Cfg).generate()`.
std::string generateProgram(uint64_t Seed, const GenConfig &Cfg = {});

} // namespace srp::gen

#endif // SRP_GEN_PROGRAMGEN_H
