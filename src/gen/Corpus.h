//===- gen/Corpus.h - Differential fuzzing corpus harness ------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus harness behind srp-corpus and the fuzz ctest gates: sweeps
/// generated programs (gen/ProgramGen.h) through
///  - the six-mode differential oracle (every PromotionMode against the
///    PromotionMode::None control: exit value, printed output, final
///    memory, and the shared pre-promotion run),
///  - Strictness::Full between-pass verification, and
///  - interpreter engine parity, walk-vs-bytecode and native(JIT)-vs-
///    bytecode (full ExecutionResult, block/edge profiles compared by
///    block name),
/// batching seeds through runPipelineParallel so a 1000-program sweep
/// saturates the worker pool without holding 1000 modules alive.
///
/// The harness is coverage-guided: it drains the optimization-remark
/// stream (support/Remarks.h) after every batch, accounts which promoters
/// fired and which §4.3 rejection reasons were hit, and steers the next
/// batch's shape profiles toward whatever the sweep has not yet
/// exercised. Steering only ever pins a seed's ShapeProfile — the program
/// for (Seed, Profile) is byte-stable — so every failure in the report is
/// reproducible standalone with `srp-gen -seed=N -profile=P`.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_GEN_CORPUS_H
#define SRP_GEN_CORPUS_H

#include "analysis/StaticAnalysis.h"
#include "gen/ProgramGen.h"
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace srp::gen {

/// Options for checking one program (also the reducer's oracle).
struct CheckOptions {
  /// Between-pass verification depth. The fuzz suites run Full.
  Strictness Verify = Strictness::Full;
  bool VerifyEachStep = true;
  /// Upgrade Full verification to Strictness::Semantic: every pass of
  /// every mode is additionally translation-validated against its
  /// pre-pass snapshot (analysis/TransValidate.h), and an unproven pass
  /// fails the program with the stable "semantic-validation:<mode>"
  /// signature so srp-reduce can shrink validator failures like any other
  /// oracle mismatch.
  bool Semantic = true;
  /// Re-run the control and paper modes on the tree-walker and require
  /// field-by-field ExecutionResult equality with the bytecode runs.
  bool EngineParity = true;
  /// Re-run the control and paper modes on the native (JIT) engine with a
  /// first-call compile threshold and require the same field-by-field
  /// equality. Safe on non-x86-64 hosts: the engine degrades to bytecode
  /// there, so the comparison is trivially exact.
  bool NativeParity = true;
  /// Worker threads for the per-program mode fan-out (0 = hardware).
  /// Corpus sweeps flatten whole batches instead and leave this at 1.
  unsigned Threads = 1;
};

/// Outcome of checking one program. `Signature` is a stable, short
/// failure classifier — "oracle-mismatch:paper:output",
/// "verify-diagnostics:superblock", "engine-parity:none:block-counts",
/// "compile-error", ... — empty when the program passed. The reducer
/// preserves it while shrinking; `Detail` is the human-readable evidence.
struct CheckResult {
  bool Ok = true;
  std::string Signature;
  std::string Detail;
};

/// Runs one Mini-C program through the whole oracle stack.
CheckResult checkSource(const std::string &Source,
                        const CheckOptions &Opts = {});

/// One failing corpus entry. (Seed, Profile) regenerates Source exactly.
struct CorpusFailure {
  uint64_t Seed = 0;
  ShapeProfile Profile = ShapeProfile::Default;
  std::string Signature;
  std::string Detail;
  std::string Source;
};

/// Aggregate remark-coverage accounting for a sweep. Keys are
/// "pass:RemarkName" ("promotion:PromotedWeb", "promotion:MultipleLiveIns",
/// "mem2reg:PromotedLocal", ...).
struct CoverageCounts {
  std::map<std::string, uint64_t> Promoters;  ///< Passed remarks
  std::map<std::string, uint64_t> Rejections; ///< Missed remarks
  uint64_t AnalysisRemarks = 0;

  uint64_t promoter(const std::string &Key) const;
  uint64_t rejection(const std::string &Key) const;
  void merge(const CoverageCounts &O);
  /// Required keys with a zero count, in deterministic order.
  std::vector<std::string> missingRequired() const;
};

/// Every promoter the corpus is required to exercise (one Passed remark
/// per promoting pass: promotion, mem2reg, loop-promotion, superblock).
const std::vector<std::string> &requiredPromoters();

/// Every §4.3 WebPromotion rejection reason the corpus is required to
/// exercise (NoMemoryWork, UnprofitableWeb, StoresOnlyNotEliminated,
/// MultipleLiveIns).
const std::vector<std::string> &requiredRejections();

/// The shape profile most likely to produce coverage key \p Key — the
/// steering table (exposed for the coverage meta-test).
ShapeProfile profileForCoverageKey(const std::string &Key);

/// Options for a corpus sweep.
struct CorpusOptions {
  uint64_t FirstSeed = 1;
  unsigned Count = 50;
  unsigned Threads = 0;   ///< worker threads (0 = hardware)
  unsigned BatchSize = 32;///< seeds checked per parallel batch
  bool Feedback = true;   ///< steer profiles toward missing coverage
  bool KeepFailingSource = true; ///< retain Source in CorpusFailure
  unsigned MaxFailures = 16; ///< stop sweeping after this many failures
  CheckOptions Check;
};

/// Result of a corpus sweep.
struct CorpusReport {
  unsigned NumPrograms = 0; ///< programs actually checked
  unsigned NumPassed = 0;
  std::vector<CorpusFailure> Failures;
  CoverageCounts Coverage;
  /// Programs generated per profile (steering visibility).
  std::map<std::string, uint64_t> ProfilePrograms;

  bool ok() const { return Failures.empty(); }
};

/// Per-batch progress callback (Done, Total, report-so-far).
using CorpusProgressFn =
    std::function<void(unsigned, unsigned, const CorpusReport &)>;

/// Runs the sweep. Deterministic for fixed options: steering depends only
/// on aggregate coverage counts, which are order-independent sums.
CorpusReport runCorpus(const CorpusOptions &Opts,
                       const CorpusProgressFn &Progress = nullptr);

/// Stable one-program signature used by the golden corpus suite: the
/// remark census of the paper, loop-baseline and superblock promoters
/// plus the paper run's dynamic facts. Renders via signatureToString.
struct ProgramSignature {
  bool Ok = false;
  std::string Error; ///< first pipeline error when !Ok
  int64_t ExitValue = 0;
  size_t OutputLen = 0;
  uint64_t MemOpsBefore = 0; ///< dynamic singleton memops, pre-promotion
  uint64_t MemOpsAfter = 0;  ///< same, post-promotion (paper mode)
  std::map<std::string, uint64_t> Promoters, Rejections;
};

ProgramSignature signatureFor(const std::string &Source);

/// Byte-stable rendering ("ok exit=3 out=17 memops=120->36 | passed
/// promotion:PromotedWeb=2 ... | missed promotion:UnprofitableWeb=1 ...").
std::string signatureToString(const ProgramSignature &Sig);

} // namespace srp::gen

#endif // SRP_GEN_CORPUS_H
