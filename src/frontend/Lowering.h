//===- frontend/Lowering.h - AST to IR lowering ----------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the resolved Mini-C AST into the IR. Every variable with memory
/// semantics (locals, globals, struct fields) is accessed through explicit
/// load/store instructions — exactly the "traditional C compiler" starting
/// point the paper describes; mem2reg and register promotion then lift what
/// they can into registers.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FRONTEND_LOWERING_H
#define SRP_FRONTEND_LOWERING_H

#include "frontend/AST.h"
#include <memory>
#include <string>
#include <vector>

namespace srp {

class Module;

struct LoweringOptions {
  /// Lower `int x;` (no initialiser) as a store of 0. The language gives
  /// locals defined-zero semantics (the interpreter and the measurement
  /// pipelines rely on it); the static analyzer (`srpc --analyze`) turns
  /// this off so a load-before-store is visible as a read of the entry
  /// memory version and lint-uninitialized-load can fire.
  bool ImplicitZeroInitLocals = true;
};

/// Lowers \p P (already analyzed against \p M) into \p M's functions.
void lowerProgram(ast::Program &P, Module &M,
                  const LoweringOptions &Opts = {});

/// Convenience front door: parse + analyze + lower. Returns null and fills
/// \p Errors on any problem.
std::unique_ptr<Module> compileMiniC(const std::string &Source,
                                     std::vector<std::string> &Errors,
                                     const std::string &ModuleName = "mc",
                                     const LoweringOptions &Opts = {});

} // namespace srp

#endif // SRP_FRONTEND_LOWERING_H
