//===- frontend/AST.h - Mini-C abstract syntax tree ------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for Mini-C. Nodes carry source lines for diagnostics and resolution
/// slots that Sema fills in (what an identifier denotes, which memory
/// object backs it).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FRONTEND_AST_H
#define SRP_FRONTEND_AST_H

#include "ir/Instruction.h" // BinOpKind
#include <memory>
#include <string>
#include <vector>

namespace srp {

class MemoryObject;

namespace ast {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// What a resolved name denotes.
enum class SymbolKind : uint8_t {
  Unresolved,
  Param,    ///< Formal int parameter.
  Local,    ///< Local int variable.
  Global,   ///< Module-scope int variable.
  Field,    ///< struct component s.f.
  Array,    ///< Module-scope int array.
  Function, ///< Callee name.
};

struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    VarRef,    ///< scalar variable or parameter
    FieldRef,  ///< s.f
    Index,     ///< a[e]
    Unary,     ///< -e, !e, *e (deref)
    AddrOf,    ///< &x, &a[e], &s.f
    Binary,
    LogicalAnd, ///< short-circuit
    LogicalOr,  ///< short-circuit
    Call,
  };

  Kind K;
  unsigned Line = 0;

  // IntLit
  int64_t IntValue = 0;

  // VarRef / FieldRef / Index / Call / AddrOf target
  std::string Name;
  std::string FieldName; ///< for FieldRef / AddrOf of field

  // Resolution (filled by Sema).
  SymbolKind Sym = SymbolKind::Unresolved;
  MemoryObject *Object = nullptr; ///< Local/Global/Field/Array backing store.
  unsigned ParamIndex = 0;

  // Unary: Op in {'-','!','*'}; AddrOf uses Sub expression for &a[e] index.
  char UnaryOp = 0;

  BinOpKind BinOp = BinOpKind::Add;

  ExprPtr Lhs, Rhs;           ///< Binary/logical operands; Unary uses Lhs.
  ExprPtr IndexExpr;          ///< Index/AddrOf-of-array-element index.
  std::vector<ExprPtr> Args;  ///< Call arguments.

  explicit Expr(Kind K, unsigned Line) : K(K), Line(Line) {}
};

struct Stmt {
  enum class Kind : uint8_t {
    Block,
    LocalDecl, ///< int x; / int x = e;
    Assign,    ///< lvalue (=|+=|-=|*=|/=|%=) e; also ++/-- desugared
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    Print,
    ExprStmt, ///< expression evaluated for effect (calls)
    Label,    ///< name: — a goto target (function-scoped)
    Goto,     ///< goto name;
  };

  Kind K;
  unsigned Line = 0;

  std::vector<StmtPtr> Body; ///< Block statements.

  // LocalDecl; Label/Goto reuse Name for the label spelling.
  std::string Name;
  ExprPtr Init; ///< optional

  // Resolution for LocalDecl (filled by Sema).
  MemoryObject *Object = nullptr;

  // Assign: target lvalue expression (VarRef/FieldRef/Index/Unary-deref)
  // and value; compound ops are pre-desugared by the parser into
  // "target = target op value".
  ExprPtr Target;
  ExprPtr Value;

  // If / While / DoWhile / For
  ExprPtr Cond;
  StmtPtr Then, Else; ///< Then doubles as loop body.
  StmtPtr ForInit, ForStep;

  explicit Stmt(Kind K, unsigned Line) : K(K), Line(Line) {}
};

struct Param {
  std::string Name;
  unsigned Line = 0;
};

struct Function {
  std::string Name;
  bool ReturnsValue = false;
  std::vector<Param> Params;
  StmtPtr Body;
  unsigned Line = 0;
};

struct GlobalVar {
  std::string Name;
  int64_t Init = 0;
  unsigned ArraySize = 0; ///< 0 = scalar
  unsigned Line = 0;
};

struct StructField {
  std::string Name;
  int64_t Init = 0;
};

struct StructVar {
  std::string TypeName;
  std::string VarName;
  std::vector<StructField> Fields;
  unsigned Line = 0;
};

struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<StructVar> Structs;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace ast
} // namespace srp

#endif // SRP_FRONTEND_AST_H
