//===- frontend/Parser.cpp - Mini-C recursive descent parser -------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Lexer.h"
#include <cassert>

using namespace srp;
using namespace srp::ast;

namespace {

class Parser {
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::vector<std::string> &Errors;

public:
  Parser(std::vector<Token> Toks, std::vector<std::string> &Errors)
      : Toks(std::move(Toks)), Errors(Errors) {}

  Program parse() {
    Program P;
    while (!at(TokKind::Eof)) {
      size_t Before = Pos;
      parseTopLevel(P);
      if (Pos == Before)
        ++Pos; // never loop forever on junk
    }
    return P;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Off = 1) const {
    return Toks[std::min(Pos + Off, Toks.size() - 1)];
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token take() { return Toks[Pos++]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }

  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(cur().Line) + ": " + Msg);
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(std::string("expected ") + tokKindName(K) + " " + Context +
          ", found " + tokKindName(cur().Kind));
    return false;
  }

  /// Skips to the next statement boundary after an error.
  void recover() {
    while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
      ++Pos;
    accept(TokKind::Semi);
  }

  void parseTopLevel(Program &P) {
    if (at(TokKind::KwStruct)) {
      parseStruct(P);
      return;
    }
    if (at(TokKind::KwInt) || at(TokKind::KwVoid)) {
      bool ReturnsValue = at(TokKind::KwInt);
      unsigned Line = cur().Line;
      ++Pos;
      if (!at(TokKind::Ident)) {
        error("expected name after type");
        recover();
        return;
      }
      std::string Name = take().Text;
      if (at(TokKind::LParen)) {
        parseFunctionRest(P, Name, ReturnsValue, Line);
        return;
      }
      if (!ReturnsValue) {
        error("global variables must have type int");
        recover();
        return;
      }
      parseGlobalRest(P, Name, Line);
      return;
    }
    error("expected declaration");
    recover();
  }

  void parseGlobalRest(Program &P, std::string Name, unsigned Line) {
    GlobalVar G;
    G.Name = std::move(Name);
    G.Line = Line;
    if (accept(TokKind::LBracket)) {
      if (at(TokKind::IntLit))
        G.ArraySize = static_cast<unsigned>(take().IntValue);
      else
        error("expected array size");
      expect(TokKind::RBracket, "after array size");
    } else if (accept(TokKind::Assign)) {
      bool Neg = accept(TokKind::Minus);
      if (at(TokKind::IntLit))
        G.Init = take().IntValue * (Neg ? -1 : 1);
      else
        error("global initializer must be an integer literal");
    }
    expect(TokKind::Semi, "after global declaration");
    P.Globals.push_back(std::move(G));
  }

  void parseStruct(Program &P) {
    StructVar S;
    S.Line = cur().Line;
    take(); // struct
    if (at(TokKind::Ident))
      S.TypeName = take().Text;
    expect(TokKind::LBrace, "after struct name");
    while (at(TokKind::KwInt)) {
      take();
      StructField Fld;
      if (at(TokKind::Ident))
        Fld.Name = take().Text;
      else
        error("expected field name");
      if (accept(TokKind::Assign)) {
        bool Neg = accept(TokKind::Minus);
        if (at(TokKind::IntLit))
          Fld.Init = take().IntValue * (Neg ? -1 : 1);
        else
          error("field initializer must be an integer literal");
      }
      expect(TokKind::Semi, "after field");
      S.Fields.push_back(std::move(Fld));
    }
    expect(TokKind::RBrace, "after struct fields");
    if (at(TokKind::Ident))
      S.VarName = take().Text;
    else
      error("expected struct variable name");
    expect(TokKind::Semi, "after struct declaration");
    P.Structs.push_back(std::move(S));
  }

  void parseFunctionRest(Program &P, std::string Name, bool ReturnsValue,
                         unsigned Line) {
    auto F = std::make_unique<ast::Function>();
    F->Name = std::move(Name);
    F->ReturnsValue = ReturnsValue;
    F->Line = Line;
    expect(TokKind::LParen, "after function name");
    if (!at(TokKind::RParen)) {
      do {
        if (!expect(TokKind::KwInt, "before parameter name"))
          break;
        if (at(TokKind::Ident))
          F->Params.push_back({take().Text, cur().Line});
        else
          error("expected parameter name");
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after parameters");
    F->Body = parseBlock();
    P.Functions.push_back(std::move(F));
  }

  StmtPtr parseBlock() {
    auto B = std::make_unique<Stmt>(Stmt::Kind::Block, cur().Line);
    if (!expect(TokKind::LBrace, "to open block"))
      return B;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      size_t Before = Pos;
      if (StmtPtr S = parseStmt())
        B->Body.push_back(std::move(S));
      if (Pos == Before)
        ++Pos;
    }
    expect(TokKind::RBrace, "to close block");
    return B;
  }

  StmtPtr parseStmt() {
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwInt:
      return parseLocalDecl();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwDo:
      return parseDoWhile();
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwReturn: {
      auto S = std::make_unique<Stmt>(Stmt::Kind::Return, cur().Line);
      take();
      if (!at(TokKind::Semi))
        S->Value = parseExpr();
      expect(TokKind::Semi, "after return");
      return S;
    }
    case TokKind::KwBreak: {
      auto S = std::make_unique<Stmt>(Stmt::Kind::Break, cur().Line);
      take();
      expect(TokKind::Semi, "after break");
      return S;
    }
    case TokKind::KwContinue: {
      auto S = std::make_unique<Stmt>(Stmt::Kind::Continue, cur().Line);
      take();
      expect(TokKind::Semi, "after continue");
      return S;
    }
    case TokKind::KwPrint: {
      auto S = std::make_unique<Stmt>(Stmt::Kind::Print, cur().Line);
      take();
      expect(TokKind::LParen, "after print");
      S->Value = parseExpr();
      expect(TokKind::RParen, "after print argument");
      expect(TokKind::Semi, "after print statement");
      return S;
    }
    case TokKind::KwGoto: {
      auto S = std::make_unique<Stmt>(Stmt::Kind::Goto, cur().Line);
      take();
      if (at(TokKind::Ident))
        S->Name = take().Text;
      else
        error("expected label name after goto");
      expect(TokKind::Semi, "after goto");
      return S;
    }
    default:
      // "name:" introduces a label; anything else is a simple statement.
      if (at(TokKind::Ident) && peek().Kind == TokKind::Colon) {
        auto S = std::make_unique<Stmt>(Stmt::Kind::Label, cur().Line);
        S->Name = take().Text;
        take(); // colon
        return S;
      }
      return parseSimpleStmt(/*NeedSemi=*/true);
    }
  }

  StmtPtr parseLocalDecl() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::LocalDecl, cur().Line);
    take(); // int
    if (at(TokKind::Ident))
      S->Name = take().Text;
    else
      error("expected local variable name");
    if (accept(TokKind::Assign))
      S->Init = parseExpr();
    expect(TokKind::Semi, "after local declaration");
    return S;
  }

  StmtPtr parseIf() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::If, cur().Line);
    take();
    expect(TokKind::LParen, "after if");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after if condition");
    S->Then = parseStmt();
    if (accept(TokKind::KwElse))
      S->Else = parseStmt();
    return S;
  }

  StmtPtr parseWhile() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::While, cur().Line);
    take();
    expect(TokKind::LParen, "after while");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after while condition");
    S->Then = parseStmt();
    return S;
  }

  StmtPtr parseDoWhile() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::DoWhile, cur().Line);
    take();
    S->Then = parseStmt();
    expect(TokKind::KwWhile, "after do body");
    expect(TokKind::LParen, "after while");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after condition");
    expect(TokKind::Semi, "after do-while");
    return S;
  }

  StmtPtr parseFor() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::For, cur().Line);
    take();
    expect(TokKind::LParen, "after for");
    if (!at(TokKind::Semi)) {
      S->ForInit = at(TokKind::KwInt) ? parseLocalDecl()
                                      : parseSimpleStmt(/*NeedSemi=*/true);
    } else {
      accept(TokKind::Semi);
    }
    if (!at(TokKind::Semi))
      S->Cond = parseExpr();
    expect(TokKind::Semi, "after for condition");
    if (!at(TokKind::RParen))
      S->ForStep = parseSimpleStmt(/*NeedSemi=*/false);
    expect(TokKind::RParen, "after for clauses");
    S->Then = parseStmt();
    return S;
  }

  /// assignment / ++ / -- / expression statement.
  StmtPtr parseSimpleStmt(bool NeedSemi) {
    unsigned Line = cur().Line;
    ExprPtr Lval = parseUnary();
    if (!Lval)
      return nullptr;

    auto finish = [&](StmtPtr S) {
      if (NeedSemi)
        expect(TokKind::Semi, "after statement");
      return S;
    };

    auto cloneLValue = [&](const Expr &E) { return cloneExpr(E); };

    TokKind K = cur().Kind;
    if (K == TokKind::Assign || K == TokKind::PlusAssign ||
        K == TokKind::MinusAssign || K == TokKind::StarAssign ||
        K == TokKind::SlashAssign || K == TokKind::PercentAssign) {
      take();
      ExprPtr Rhs = parseExpr();
      auto S = std::make_unique<Stmt>(Stmt::Kind::Assign, Line);
      if (K == TokKind::Assign) {
        S->Target = std::move(Lval);
        S->Value = std::move(Rhs);
      } else {
        BinOpKind Op = K == TokKind::PlusAssign    ? BinOpKind::Add
                       : K == TokKind::MinusAssign ? BinOpKind::Sub
                       : K == TokKind::StarAssign  ? BinOpKind::Mul
                       : K == TokKind::SlashAssign ? BinOpKind::Div
                                                   : BinOpKind::Rem;
        auto B = std::make_unique<Expr>(Expr::Kind::Binary, Line);
        B->BinOp = Op;
        B->Lhs = cloneLValue(*Lval);
        B->Rhs = std::move(Rhs);
        S->Target = std::move(Lval);
        S->Value = std::move(B);
      }
      return finish(std::move(S));
    }
    if (K == TokKind::PlusPlus || K == TokKind::MinusMinus) {
      take();
      auto S = std::make_unique<Stmt>(Stmt::Kind::Assign, Line);
      auto B = std::make_unique<Expr>(Expr::Kind::Binary, Line);
      B->BinOp = K == TokKind::PlusPlus ? BinOpKind::Add : BinOpKind::Sub;
      B->Lhs = cloneLValue(*Lval);
      auto One = std::make_unique<Expr>(Expr::Kind::IntLit, Line);
      One->IntValue = 1;
      B->Rhs = std::move(One);
      S->Target = std::move(Lval);
      S->Value = std::move(B);
      return finish(std::move(S));
    }
    // Plain expression statement (typically a call).
    auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt, Line);
    S->Value = std::move(Lval);
    return finish(std::move(S));
  }

  /// Deep copy used to desugar compound assignment (x += e becomes
  /// x = x + e, re-evaluating the lvalue; our lvalues are side-effect-free
  /// apart from the index expression, which workloads keep pure).
  ExprPtr cloneExpr(const Expr &E) {
    auto C = std::make_unique<Expr>(E.K, E.Line);
    C->IntValue = E.IntValue;
    C->Name = E.Name;
    C->FieldName = E.FieldName;
    C->UnaryOp = E.UnaryOp;
    C->BinOp = E.BinOp;
    if (E.Lhs)
      C->Lhs = cloneExpr(*E.Lhs);
    if (E.Rhs)
      C->Rhs = cloneExpr(*E.Rhs);
    if (E.IndexExpr)
      C->IndexExpr = cloneExpr(*E.IndexExpr);
    for (const auto &A : E.Args)
      C->Args.push_back(cloneExpr(*A));
    return C;
  }

  //===------------------------------------------------------------------===
  // Expressions (precedence climbing).
  //===------------------------------------------------------------------===

  ExprPtr parseExpr() { return parseLogicalOr(); }

  ExprPtr parseLogicalOr() {
    ExprPtr L = parseLogicalAnd();
    while (at(TokKind::PipePipe)) {
      unsigned Line = take().Line;
      auto E = std::make_unique<Expr>(Expr::Kind::LogicalOr, Line);
      E->Lhs = std::move(L);
      E->Rhs = parseLogicalAnd();
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr L = parseBitOr();
    while (at(TokKind::AmpAmp)) {
      unsigned Line = take().Line;
      auto E = std::make_unique<Expr>(Expr::Kind::LogicalAnd, Line);
      E->Lhs = std::move(L);
      E->Rhs = parseBitOr();
      L = std::move(E);
    }
    return L;
  }

  ExprPtr binary(BinOpKind Op, ExprPtr L, ExprPtr R, unsigned Line) {
    auto E = std::make_unique<Expr>(Expr::Kind::Binary, Line);
    E->BinOp = Op;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  ExprPtr parseBitOr() {
    ExprPtr L = parseBitXor();
    while (at(TokKind::Pipe)) {
      unsigned Line = take().Line;
      L = binary(BinOpKind::Or, std::move(L), parseBitXor(), Line);
    }
    return L;
  }

  ExprPtr parseBitXor() {
    ExprPtr L = parseBitAnd();
    while (at(TokKind::Caret)) {
      unsigned Line = take().Line;
      L = binary(BinOpKind::Xor, std::move(L), parseBitAnd(), Line);
    }
    return L;
  }

  ExprPtr parseBitAnd() {
    // '&' in binary position is always bitwise-and; address-of only occurs
    // in unary position (handled by parseUnary).
    ExprPtr L = parseEquality();
    while (at(TokKind::Amp)) {
      unsigned Line = take().Line;
      L = binary(BinOpKind::And, std::move(L), parseEquality(), Line);
    }
    return L;
  }

  ExprPtr parseEquality() {
    ExprPtr L = parseRelational();
    while (at(TokKind::EQ) || at(TokKind::NE)) {
      TokKind K = cur().Kind;
      unsigned Line = take().Line;
      L = binary(K == TokKind::EQ ? BinOpKind::CmpEQ : BinOpKind::CmpNE,
                 std::move(L), parseRelational(), Line);
    }
    return L;
  }

  ExprPtr parseRelational() {
    ExprPtr L = parseShift();
    while (at(TokKind::LT) || at(TokKind::LE) || at(TokKind::GT) ||
           at(TokKind::GE)) {
      TokKind K = cur().Kind;
      unsigned Line = take().Line;
      BinOpKind Op = K == TokKind::LT   ? BinOpKind::CmpLT
                     : K == TokKind::LE ? BinOpKind::CmpLE
                     : K == TokKind::GT ? BinOpKind::CmpGT
                                        : BinOpKind::CmpGE;
      L = binary(Op, std::move(L), parseShift(), Line);
    }
    return L;
  }

  ExprPtr parseShift() {
    ExprPtr L = parseAdditive();
    while (at(TokKind::Shl) || at(TokKind::Shr)) {
      TokKind K = cur().Kind;
      unsigned Line = take().Line;
      L = binary(K == TokKind::Shl ? BinOpKind::Shl : BinOpKind::Shr,
                 std::move(L), parseAdditive(), Line);
    }
    return L;
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      TokKind K = cur().Kind;
      unsigned Line = take().Line;
      L = binary(K == TokKind::Plus ? BinOpKind::Add : BinOpKind::Sub,
                 std::move(L), parseMultiplicative(), Line);
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
      TokKind K = cur().Kind;
      unsigned Line = take().Line;
      BinOpKind Op = K == TokKind::Star    ? BinOpKind::Mul
                     : K == TokKind::Slash ? BinOpKind::Div
                                           : BinOpKind::Rem;
      L = binary(Op, std::move(L), parseUnary(), Line);
    }
    return L;
  }

  ExprPtr parseUnary() {
    unsigned Line = cur().Line;
    if (accept(TokKind::Minus)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Unary, Line);
      E->UnaryOp = '-';
      E->Lhs = parseUnary();
      return E;
    }
    if (accept(TokKind::Bang)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Unary, Line);
      E->UnaryOp = '!';
      E->Lhs = parseUnary();
      return E;
    }
    if (accept(TokKind::Star)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Unary, Line);
      E->UnaryOp = '*';
      E->Lhs = parseUnary();
      return E;
    }
    if (accept(TokKind::Amp)) {
      auto E = std::make_unique<Expr>(Expr::Kind::AddrOf, Line);
      if (!at(TokKind::Ident)) {
        error("expected variable after '&'");
        return E;
      }
      E->Name = take().Text;
      if (accept(TokKind::Dot)) {
        if (at(TokKind::Ident))
          E->FieldName = take().Text;
        else
          error("expected field name after '.'");
      } else if (accept(TokKind::LBracket)) {
        E->IndexExpr = parseExpr();
        expect(TokKind::RBracket, "after index");
      }
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    unsigned Line = cur().Line;
    if (at(TokKind::IntLit)) {
      auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Line);
      E->IntValue = take().IntValue;
      return E;
    }
    if (accept(TokKind::LParen)) {
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "after parenthesised expression");
      return E;
    }
    if (!at(TokKind::Ident)) {
      error(std::string("expected expression, found ") +
            tokKindName(cur().Kind));
      auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Line);
      return E;
    }
    std::string Name = take().Text;
    if (accept(TokKind::LParen)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Call, Line);
      E->Name = std::move(Name);
      if (!at(TokKind::RParen)) {
        do
          E->Args.push_back(parseExpr());
        while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      return E;
    }
    if (accept(TokKind::Dot)) {
      auto E = std::make_unique<Expr>(Expr::Kind::FieldRef, Line);
      E->Name = std::move(Name);
      if (at(TokKind::Ident))
        E->FieldName = take().Text;
      else
        error("expected field name after '.'");
      return E;
    }
    if (accept(TokKind::LBracket)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Index, Line);
      E->Name = std::move(Name);
      E->IndexExpr = parseExpr();
      expect(TokKind::RBracket, "after index");
      return E;
    }
    auto E = std::make_unique<Expr>(Expr::Kind::VarRef, Line);
    E->Name = std::move(Name);
    return E;
  }
};

} // namespace

ast::Program srp::parseProgram(const std::string &Source,
                               std::vector<std::string> &Errors) {
  std::vector<Token> Toks = lex(Source, Errors);
  Parser P(std::move(Toks), Errors);
  return P.parse();
}
