//===- frontend/Sema.cpp - Mini-C semantic analysis ----------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"
#include "ir/Module.h"
#include <unordered_map>

using namespace srp;
using namespace srp::ast;

namespace {

class Analyzer {
  Program &P;
  Module &M;
  std::vector<std::string> Errors;

  // Module-level symbol tables.
  std::unordered_map<std::string, MemoryObject *> GlobalScalars;
  std::unordered_map<std::string, MemoryObject *> GlobalArrays;
  // struct var name -> (field name -> object)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, MemoryObject *>>
      StructFields;
  std::unordered_map<std::string, ast::Function *> Functions;
  std::unordered_map<std::string, srp::Function *> IRFunctions;

  // Current function state.
  ast::Function *CurFn = nullptr;
  srp::Function *CurIRFn = nullptr;
  /// Scope stack: name -> memory object (locals) or param index.
  struct LocalInfo {
    MemoryObject *Obj;
  };
  std::vector<std::unordered_map<std::string, LocalInfo>> Scopes;
  std::unordered_map<std::string, unsigned> ParamIndex;
  unsigned LoopDepth = 0;
  /// Labels defined anywhere in the current function (labels are
  /// function-scoped, like C).
  std::unordered_map<std::string, unsigned> Labels; ///< name -> line

  void error(unsigned Line, const std::string &Msg) {
    Errors.push_back("line " + std::to_string(Line) + ": " + Msg);
  }

  LocalInfo *lookupLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

public:
  Analyzer(Program &P, Module &M) : P(P), M(M) {}

  std::vector<std::string> run() {
    collectGlobals();
    collectFunctions();
    for (auto &F : P.Functions)
      analyzeFunction(*F);
    return std::move(Errors);
  }

private:
  void collectGlobals() {
    for (GlobalVar &G : P.Globals) {
      if (GlobalScalars.count(G.Name) || GlobalArrays.count(G.Name)) {
        error(G.Line, "redefinition of global '" + G.Name + "'");
        continue;
      }
      if (G.ArraySize > 0)
        GlobalArrays[G.Name] = M.createGlobalArray(G.Name, G.ArraySize);
      else
        GlobalScalars[G.Name] = M.createGlobal(G.Name, G.Init);
    }
    for (StructVar &S : P.Structs) {
      if (StructFields.count(S.VarName)) {
        error(S.Line, "redefinition of struct variable '" + S.VarName + "'");
        continue;
      }
      auto &Fields = StructFields[S.VarName];
      for (const StructField &Fld : S.Fields) {
        if (Fields.count(Fld.Name)) {
          error(S.Line, "duplicate field '" + Fld.Name + "' in '" +
                            S.VarName + "'");
          continue;
        }
        Fields[Fld.Name] =
            M.createField(S.VarName + "." + Fld.Name, Fld.Init);
      }
    }
  }

  void collectFunctions() {
    for (auto &F : P.Functions) {
      if (Functions.count(F->Name)) {
        error(F->Line, "redefinition of function '" + F->Name + "'");
        continue;
      }
      Functions[F->Name] = F.get();
      srp::Function *IRF = M.createFunction(
          F->Name, F->ReturnsValue ? Type::Int : Type::Void);
      for (const Param &Pm : F->Params)
        IRF->addArgument(Pm.Name);
      IRFunctions[F->Name] = IRF;
    }
  }

  void analyzeFunction(ast::Function &F) {
    CurFn = &F;
    CurIRFn = IRFunctions[F.Name];
    Scopes.clear();
    Scopes.emplace_back();
    ParamIndex.clear();
    LoopDepth = 0;
    for (unsigned I = 0; I != F.Params.size(); ++I) {
      if (ParamIndex.count(F.Params[I].Name))
        error(F.Line, "duplicate parameter '" + F.Params[I].Name + "'");
      ParamIndex[F.Params[I].Name] = I;
    }
    Labels.clear();
    if (F.Body) {
      collectLabels(*F.Body);
      analyzeStmt(*F.Body);
    }
  }

  /// Pre-pass: labels are visible to gotos anywhere in the function,
  /// including lexically earlier ones, so gather them before the main walk.
  void collectLabels(Stmt &S) {
    if (S.K == Stmt::Kind::Label) {
      auto [It, Inserted] = Labels.emplace(S.Name, S.Line);
      if (!Inserted)
        error(S.Line, "redefinition of label '" + S.Name +
                          "' (first defined at line " +
                          std::to_string(It->second) + ")");
    }
    for (auto &Sub : S.Body)
      collectLabels(*Sub);
    for (Stmt *Child : {S.Then.get(), S.Else.get(), S.ForInit.get(),
                        S.ForStep.get()})
      if (Child)
        collectLabels(*Child);
  }

  void analyzeStmt(Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block:
      Scopes.emplace_back();
      for (auto &Sub : S.Body)
        analyzeStmt(*Sub);
      Scopes.pop_back();
      break;
    case Stmt::Kind::LocalDecl: {
      if (Scopes.back().count(S.Name))
        error(S.Line, "redefinition of local '" + S.Name + "'");
      // Every local starts as a memory object; mem2reg turns the
      // non-address-taken ones into registers.
      MemoryObject *Obj = CurIRFn->createLocal(
          S.Name + "#" + std::to_string(S.Line), MemoryObject::Kind::Local);
      Scopes.back()[S.Name] = {Obj};
      S.Object = Obj;
      if (S.Init)
        analyzeExpr(*S.Init);
      break;
    }
    case Stmt::Kind::Assign:
      analyzeExpr(*S.Target);
      checkAssignable(*S.Target);
      analyzeExpr(*S.Value);
      break;
    case Stmt::Kind::If:
      analyzeExpr(*S.Cond);
      analyzeStmt(*S.Then);
      if (S.Else)
        analyzeStmt(*S.Else);
      break;
    case Stmt::Kind::While:
    case Stmt::Kind::DoWhile:
      analyzeExpr(*S.Cond);
      ++LoopDepth;
      analyzeStmt(*S.Then);
      --LoopDepth;
      break;
    case Stmt::Kind::For:
      Scopes.emplace_back(); // for-init scope
      if (S.ForInit)
        analyzeStmt(*S.ForInit);
      if (S.Cond)
        analyzeExpr(*S.Cond);
      if (S.ForStep)
        analyzeStmt(*S.ForStep);
      ++LoopDepth;
      analyzeStmt(*S.Then);
      --LoopDepth;
      Scopes.pop_back();
      break;
    case Stmt::Kind::Return:
      if (S.Value) {
        if (!CurFn->ReturnsValue)
          error(S.Line, "void function '" + CurFn->Name +
                            "' returns a value");
        analyzeExpr(*S.Value);
      } else if (CurFn->ReturnsValue) {
        error(S.Line, "non-void function '" + CurFn->Name +
                          "' returns no value");
      }
      break;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        error(S.Line, S.K == Stmt::Kind::Break
                          ? "break outside of a loop"
                          : "continue outside of a loop");
      break;
    case Stmt::Kind::Print:
    case Stmt::Kind::ExprStmt:
      analyzeExpr(*S.Value);
      break;
    case Stmt::Kind::Label:
      break; // collected in the pre-pass
    case Stmt::Kind::Goto:
      if (!Labels.count(S.Name))
        error(S.Line, "goto to undefined label '" + S.Name + "'");
      break;
    }
  }

  void checkAssignable(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::VarRef:
      if (E.Sym == SymbolKind::Param)
        error(E.Line, "parameters are read-only in Mini-C; copy '" +
                          E.Name + "' into a local first");
      else if (E.Sym == SymbolKind::Array || E.Sym == SymbolKind::Function)
        error(E.Line, "'" + E.Name + "' is not assignable");
      break;
    case Expr::Kind::FieldRef:
    case Expr::Kind::Index:
      break;
    case Expr::Kind::Unary:
      if (E.UnaryOp == '*')
        break;
      [[fallthrough]];
    default:
      error(E.Line, "expression is not assignable");
      break;
    }
  }

  void analyzeExpr(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      break;
    case Expr::Kind::VarRef:
      resolveVar(E);
      break;
    case Expr::Kind::FieldRef: {
      auto It = StructFields.find(E.Name);
      if (It == StructFields.end()) {
        error(E.Line, "unknown struct variable '" + E.Name + "'");
        break;
      }
      auto FIt = It->second.find(E.FieldName);
      if (FIt == It->second.end()) {
        error(E.Line, "no field '" + E.FieldName + "' in '" + E.Name + "'");
        break;
      }
      E.Sym = SymbolKind::Field;
      E.Object = FIt->second;
      break;
    }
    case Expr::Kind::Index: {
      auto It = GlobalArrays.find(E.Name);
      if (It == GlobalArrays.end()) {
        error(E.Line, "unknown array '" + E.Name + "'");
      } else {
        E.Sym = SymbolKind::Array;
        E.Object = It->second;
      }
      analyzeExpr(*E.IndexExpr);
      break;
    }
    case Expr::Kind::Unary:
      analyzeExpr(*E.Lhs);
      break;
    case Expr::Kind::AddrOf: {
      if (E.IndexExpr) {
        // &a[e]
        auto It = GlobalArrays.find(E.Name);
        if (It == GlobalArrays.end()) {
          error(E.Line, "unknown array '" + E.Name + "'");
        } else {
          E.Sym = SymbolKind::Array;
          E.Object = It->second;
          E.Object->setAddressTaken();
        }
        analyzeExpr(*E.IndexExpr);
        break;
      }
      if (!E.FieldName.empty()) {
        auto It = StructFields.find(E.Name);
        if (It == StructFields.end() ||
            !It->second.count(E.FieldName)) {
          error(E.Line, "unknown field '" + E.Name + "." + E.FieldName + "'");
          break;
        }
        E.Sym = SymbolKind::Field;
        E.Object = It->second[E.FieldName];
        E.Object->setAddressTaken();
        break;
      }
      // &scalar
      if (LocalInfo *L = lookupLocal(E.Name)) {
        E.Sym = SymbolKind::Local;
        E.Object = L->Obj;
        E.Object->setAddressTaken();
        break;
      }
      if (auto It = GlobalScalars.find(E.Name); It != GlobalScalars.end()) {
        E.Sym = SymbolKind::Global;
        E.Object = It->second;
        E.Object->setAddressTaken();
        break;
      }
      error(E.Line, "cannot take the address of '" + E.Name + "'");
      break;
    }
    case Expr::Kind::Binary:
    case Expr::Kind::LogicalAnd:
    case Expr::Kind::LogicalOr:
      analyzeExpr(*E.Lhs);
      analyzeExpr(*E.Rhs);
      break;
    case Expr::Kind::Call: {
      auto It = Functions.find(E.Name);
      if (It == Functions.end()) {
        error(E.Line, "call to unknown function '" + E.Name + "'");
      } else {
        E.Sym = SymbolKind::Function;
        if (It->second->Params.size() != E.Args.size())
          error(E.Line, "'" + E.Name + "' expects " +
                            std::to_string(It->second->Params.size()) +
                            " arguments, got " +
                            std::to_string(E.Args.size()));
      }
      for (auto &A : E.Args)
        analyzeExpr(*A);
      break;
    }
    }
  }

  void resolveVar(Expr &E) {
    if (LocalInfo *L = lookupLocal(E.Name)) {
      E.Sym = SymbolKind::Local;
      E.Object = L->Obj;
      return;
    }
    if (auto It = ParamIndex.find(E.Name); It != ParamIndex.end()) {
      E.Sym = SymbolKind::Param;
      E.ParamIndex = It->second;
      return;
    }
    if (auto It = GlobalScalars.find(E.Name); It != GlobalScalars.end()) {
      E.Sym = SymbolKind::Global;
      E.Object = It->second;
      return;
    }
    if (GlobalArrays.count(E.Name)) {
      error(E.Line, "array '" + E.Name + "' used without an index");
      return;
    }
    error(E.Line, "unknown variable '" + E.Name + "'");
  }
};

} // namespace

std::vector<std::string> srp::analyze(ast::Program &P, Module &M) {
  return Analyzer(P, M).run();
}
