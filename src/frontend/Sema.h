//===- frontend/Sema.h - Mini-C semantic analysis --------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checks for Mini-C. Creates the Module's
/// memory objects (globals, arrays, struct fields) and function shells,
/// resolves every identifier in the AST (annotating the nodes in place),
/// marks address-taken objects, and reports semantic errors.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FRONTEND_SEMA_H
#define SRP_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include <string>
#include <vector>

namespace srp {

class Module;

/// Resolves \p P against a fresh module. On success (empty error list) the
/// AST is fully annotated and \p M contains the global objects and function
/// declarations; lowering may proceed.
std::vector<std::string> analyze(ast::Program &P, Module &M);

} // namespace srp

#endif // SRP_FRONTEND_SEMA_H
