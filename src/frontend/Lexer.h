//===- frontend/Lexer.h - Mini-C lexer -------------------------*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for Mini-C, the small C subset used to author the SPECInt95-
/// like workloads (globals, arrays, structs with int fields, pointers,
/// functions, loops, print).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FRONTEND_LEXER_H
#define SRP_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace srp {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwStruct,
  KwPrint,
  KwGoto,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Colon,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  PlusPlus,
  MinusMinus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Bang,
  Shl,
  Shr,
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< Identifier spelling.
  int64_t IntValue = 0;
  unsigned Line = 0;
};

/// Tokenizes \p Source. Lexical errors (bad characters) are reported into
/// \p Errors as "line N: message" strings; scanning continues.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

/// Printable name of a token kind (diagnostics).
const char *tokKindName(TokKind K);

} // namespace srp

#endif // SRP_FRONTEND_LEXER_H
