//===- frontend/Parser.h - Mini-C recursive descent parser -----*- C++ -*-===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the Mini-C AST. Errors are collected
/// as "line N: message" strings; parsing recovers at statement boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FRONTEND_PARSER_H
#define SRP_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include <string>
#include <vector>

namespace srp {

/// Parses Mini-C \p Source. On any error, the error list is non-empty and
/// the returned program must not be lowered.
ast::Program parseProgram(const std::string &Source,
                          std::vector<std::string> &Errors);

} // namespace srp

#endif // SRP_FRONTEND_PARSER_H
