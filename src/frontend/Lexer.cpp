//===- frontend/Lexer.cpp - Mini-C lexer ----------------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include <cctype>
#include <unordered_map>

using namespace srp;

const char *srp::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of input";
  case TokKind::Ident: return "identifier";
  case TokKind::IntLit: return "integer literal";
  case TokKind::KwInt: return "'int'";
  case TokKind::KwVoid: return "'void'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwWhile: return "'while'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwDo: return "'do'";
  case TokKind::KwReturn: return "'return'";
  case TokKind::KwBreak: return "'break'";
  case TokKind::KwContinue: return "'continue'";
  case TokKind::KwStruct: return "'struct'";
  case TokKind::KwPrint: return "'print'";
  case TokKind::KwGoto: return "'goto'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semi: return "';'";
  case TokKind::Comma: return "','";
  case TokKind::Dot: return "'.'";
  case TokKind::Colon: return "':'";
  case TokKind::Assign: return "'='";
  case TokKind::PlusAssign: return "'+='";
  case TokKind::MinusAssign: return "'-='";
  case TokKind::StarAssign: return "'*='";
  case TokKind::SlashAssign: return "'/='";
  case TokKind::PercentAssign: return "'%='";
  case TokKind::PlusPlus: return "'++'";
  case TokKind::MinusMinus: return "'--'";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Amp: return "'&'";
  case TokKind::AmpAmp: return "'&&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::PipePipe: return "'||'";
  case TokKind::Caret: return "'^'";
  case TokKind::Bang: return "'!'";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::EQ: return "'=='";
  case TokKind::NE: return "'!='";
  case TokKind::LT: return "'<'";
  case TokKind::LE: return "'<='";
  case TokKind::GT: return "'>'";
  case TokKind::GE: return "'>='";
  }
  return "?";
}

std::vector<Token> srp::lex(const std::string &Source,
                            std::vector<std::string> &Errors) {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"int", TokKind::KwInt},         {"void", TokKind::KwVoid},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"do", TokKind::KwDo},           {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"struct", TokKind::KwStruct},   {"print", TokKind::KwPrint},
      {"goto", TokKind::KwGoto},
  };

  std::vector<Token> Toks;
  unsigned Line = 1;
  size_t I = 0, E = Source.size();

  auto peek = [&](size_t Off = 0) -> char {
    return I + Off < E ? Source[I + Off] : '\0';
  };
  auto emit = [&](TokKind K, unsigned Len) {
    Toks.push_back({K, "", 0, Line});
    I += Len;
  };

  while (I < E) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments: // to end of line, /* ... */ nested not supported.
    if (C == '/' && peek(1) == '/') {
      while (I < E && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      I += 2;
      while (I < E && !(Source[I] == '*' && peek(1) == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      if (I < E)
        I += 2;
      else
        Errors.push_back("line " + std::to_string(Line) +
                         ": unterminated block comment");
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < E && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      Token T{TokKind::IntLit, "", 0, Line};
      T.IntValue = std::stoll(Source.substr(Start, I - Start));
      Toks.push_back(T);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < E && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Word = Source.substr(Start, I - Start);
      auto It = Keywords.find(Word);
      if (It != Keywords.end()) {
        Toks.push_back({It->second, "", 0, Line});
      } else {
        Toks.push_back({TokKind::Ident, Word, 0, Line});
      }
      continue;
    }
    switch (C) {
    case '(': emit(TokKind::LParen, 1); break;
    case ')': emit(TokKind::RParen, 1); break;
    case '{': emit(TokKind::LBrace, 1); break;
    case '}': emit(TokKind::RBrace, 1); break;
    case '[': emit(TokKind::LBracket, 1); break;
    case ']': emit(TokKind::RBracket, 1); break;
    case ';': emit(TokKind::Semi, 1); break;
    case ',': emit(TokKind::Comma, 1); break;
    case '.': emit(TokKind::Dot, 1); break;
    case ':': emit(TokKind::Colon, 1); break;
    case '+':
      if (peek(1) == '+')
        emit(TokKind::PlusPlus, 2);
      else if (peek(1) == '=')
        emit(TokKind::PlusAssign, 2);
      else
        emit(TokKind::Plus, 1);
      break;
    case '-':
      if (peek(1) == '-')
        emit(TokKind::MinusMinus, 2);
      else if (peek(1) == '=')
        emit(TokKind::MinusAssign, 2);
      else
        emit(TokKind::Minus, 1);
      break;
    case '*':
      if (peek(1) == '=')
        emit(TokKind::StarAssign, 2);
      else
        emit(TokKind::Star, 1);
      break;
    case '/':
      if (peek(1) == '=')
        emit(TokKind::SlashAssign, 2);
      else
        emit(TokKind::Slash, 1);
      break;
    case '%':
      if (peek(1) == '=')
        emit(TokKind::PercentAssign, 2);
      else
        emit(TokKind::Percent, 1);
      break;
    case '&':
      if (peek(1) == '&')
        emit(TokKind::AmpAmp, 2);
      else
        emit(TokKind::Amp, 1);
      break;
    case '|':
      if (peek(1) == '|')
        emit(TokKind::PipePipe, 2);
      else
        emit(TokKind::Pipe, 1);
      break;
    case '^': emit(TokKind::Caret, 1); break;
    case '!':
      if (peek(1) == '=')
        emit(TokKind::NE, 2);
      else
        emit(TokKind::Bang, 1);
      break;
    case '<':
      if (peek(1) == '<')
        emit(TokKind::Shl, 2);
      else if (peek(1) == '=')
        emit(TokKind::LE, 2);
      else
        emit(TokKind::LT, 1);
      break;
    case '>':
      if (peek(1) == '>')
        emit(TokKind::Shr, 2);
      else if (peek(1) == '=')
        emit(TokKind::GE, 2);
      else
        emit(TokKind::GT, 1);
      break;
    case '=':
      if (peek(1) == '=')
        emit(TokKind::EQ, 2);
      else
        emit(TokKind::Assign, 1);
      break;
    default:
      Errors.push_back("line " + std::to_string(Line) +
                       ": unexpected character '" + std::string(1, C) + "'");
      ++I;
      break;
    }
  }
  Toks.push_back({TokKind::Eof, "", 0, Line});
  return Toks;
}
