//===- frontend/Lowering.cpp - AST to IR lowering -------------------------===//
//
// Part of the srp project: SSA-based scalar register promotion.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include <cassert>
#include <unordered_map>

using namespace srp;
using namespace srp::ast;

namespace {

class FunctionLowerer {
  Module &M;
  srp::Function &IRF;
  ast::Function &FnAST;
  const LoweringOptions &Opts;
  IRBuilder B;

  struct LoopContext {
    BasicBlock *BreakTarget;
    BasicBlock *ContinueTarget;
  };
  std::vector<LoopContext> Loops;
  /// Label blocks, created on first mention (goto or definition). Labels
  /// are function-scoped, so forward gotos work.
  std::unordered_map<std::string, BasicBlock *> LabelBlocks;

  BasicBlock *labelBlock(const std::string &Name) {
    BasicBlock *&BB = LabelBlocks[Name];
    if (!BB)
      BB = IRF.createBlock("label." + Name);
    return BB;
  }

public:
  FunctionLowerer(Module &M, srp::Function &IRF, ast::Function &FnAST,
                  const LoweringOptions &Opts)
      : M(M), IRF(IRF), FnAST(FnAST), Opts(Opts) {}

  void run() {
    BasicBlock *Entry = IRF.createBlock("entry");
    B.setInsertPoint(Entry);
    lowerStmt(*FnAST.Body);
    // Implicit return at the end of a fall-through body.
    if (!B.block()->terminator())
      B.ret(FnAST.ReturnsValue ? static_cast<Value *>(M.constant(0))
                               : nullptr);
    sealUnterminatedBlocks();
  }

private:
  /// Blocks left unterminated by break/continue/return lowering get an
  /// unreachable filler terminator so the IR stays structurally valid.
  void sealUnterminatedBlocks() {
    for (BasicBlock *BB : IRF.blocks()) {
      if (!BB->terminator()) {
        IRBuilder Fix(BB);
        Fix.ret(IRF.returnType() == Type::Int
                    ? static_cast<Value *>(M.constant(0))
                    : nullptr);
      }
    }
  }

  //===------------------------------------------------------------------===
  // Statements.
  //===------------------------------------------------------------------===

  void lowerStmt(Stmt &S) {
    if (S.K == Stmt::Kind::Label) {
      // A label re-opens reachability: code after an unconditional
      // goto/break/return is live again if it is labelled.
      BasicBlock *L = labelBlock(S.Name);
      if (!B.block()->terminator())
        B.br(L);
      B.setInsertPoint(L);
      return;
    }
    if (B.block()->terminator())
      return; // unreachable code after break/continue/return: drop it
    switch (S.K) {
    case Stmt::Kind::Block:
      for (auto &Sub : S.Body)
        lowerStmt(*Sub);
      break;
    case Stmt::Kind::LocalDecl: {
      if (!S.Init && !Opts.ImplicitZeroInitLocals)
        break; // analyzer mode: leave the local observably uninitialised
      Value *Init = S.Init ? lowerExpr(*S.Init)
                           : static_cast<Value *>(M.constant(0));
      B.store(S.Object, Init);
      break;
    }
    case Stmt::Kind::Assign:
      lowerAssign(*S.Target, lowerExpr(*S.Value));
      break;
    case Stmt::Kind::If:
      lowerIf(S);
      break;
    case Stmt::Kind::While:
      lowerWhile(S);
      break;
    case Stmt::Kind::DoWhile:
      lowerDoWhile(S);
      break;
    case Stmt::Kind::For:
      lowerFor(S);
      break;
    case Stmt::Kind::Return:
      B.ret(S.Value ? lowerExpr(*S.Value) : nullptr);
      break;
    case Stmt::Kind::Break:
      assert(!Loops.empty() && "sema admits break only inside loops");
      B.br(Loops.back().BreakTarget);
      break;
    case Stmt::Kind::Continue:
      assert(!Loops.empty() && "sema admits continue only inside loops");
      B.br(Loops.back().ContinueTarget);
      break;
    case Stmt::Kind::Print:
      B.print(lowerExpr(*S.Value));
      break;
    case Stmt::Kind::ExprStmt:
      lowerExpr(*S.Value);
      break;
    case Stmt::Kind::Goto:
      B.br(labelBlock(S.Name));
      break;
    case Stmt::Kind::Label:
      break; // handled above
    }
  }

  void lowerIf(Stmt &S) {
    Value *Cond = lowerExpr(*S.Cond);
    BasicBlock *ThenBB = IRF.createBlock("if.then");
    BasicBlock *JoinBB = IRF.createBlock("if.join");
    BasicBlock *ElseBB = S.Else ? IRF.createBlock("if.else") : JoinBB;
    B.condBr(Cond, ThenBB, ElseBB);

    B.setInsertPoint(ThenBB);
    lowerStmt(*S.Then);
    if (!B.block()->terminator())
      B.br(JoinBB);

    if (S.Else) {
      B.setInsertPoint(ElseBB);
      lowerStmt(*S.Else);
      if (!B.block()->terminator())
        B.br(JoinBB);
    }
    B.setInsertPoint(JoinBB);
  }

  void lowerWhile(Stmt &S) {
    BasicBlock *CondBB = IRF.createBlock("while.cond");
    BasicBlock *BodyBB = IRF.createBlock("while.body");
    BasicBlock *ExitBB = IRF.createBlock("while.exit");
    B.br(CondBB);

    B.setInsertPoint(CondBB);
    Value *Cond = lowerExpr(*S.Cond);
    B.condBr(Cond, BodyBB, ExitBB);

    Loops.push_back({ExitBB, CondBB});
    B.setInsertPoint(BodyBB);
    lowerStmt(*S.Then);
    if (!B.block()->terminator())
      B.br(CondBB);
    Loops.pop_back();

    B.setInsertPoint(ExitBB);
  }

  void lowerDoWhile(Stmt &S) {
    BasicBlock *BodyBB = IRF.createBlock("do.body");
    BasicBlock *CondBB = IRF.createBlock("do.cond");
    BasicBlock *ExitBB = IRF.createBlock("do.exit");
    B.br(BodyBB);

    Loops.push_back({ExitBB, CondBB});
    B.setInsertPoint(BodyBB);
    lowerStmt(*S.Then);
    if (!B.block()->terminator())
      B.br(CondBB);
    Loops.pop_back();

    B.setInsertPoint(CondBB);
    Value *Cond = lowerExpr(*S.Cond);
    B.condBr(Cond, BodyBB, ExitBB);

    B.setInsertPoint(ExitBB);
  }

  void lowerFor(Stmt &S) {
    if (S.ForInit)
      lowerStmt(*S.ForInit);
    BasicBlock *CondBB = IRF.createBlock("for.cond");
    BasicBlock *BodyBB = IRF.createBlock("for.body");
    BasicBlock *StepBB = IRF.createBlock("for.step");
    BasicBlock *ExitBB = IRF.createBlock("for.exit");
    B.br(CondBB);

    B.setInsertPoint(CondBB);
    if (S.Cond) {
      Value *Cond = lowerExpr(*S.Cond);
      B.condBr(Cond, BodyBB, ExitBB);
    } else {
      B.br(BodyBB);
    }

    Loops.push_back({ExitBB, StepBB});
    B.setInsertPoint(BodyBB);
    lowerStmt(*S.Then);
    if (!B.block()->terminator())
      B.br(StepBB);
    Loops.pop_back();

    B.setInsertPoint(StepBB);
    if (S.ForStep)
      lowerStmt(*S.ForStep);
    if (!B.block()->terminator())
      B.br(CondBB);

    B.setInsertPoint(ExitBB);
  }

  void lowerAssign(Expr &Target, Value *V) {
    switch (Target.K) {
    case Expr::Kind::VarRef:
      assert(Target.Object && "sema left an assignable var unresolved");
      B.store(Target.Object, V);
      break;
    case Expr::Kind::FieldRef:
      B.store(Target.Object, V);
      break;
    case Expr::Kind::Index:
      B.arrayStore(Target.Object, lowerExpr(*Target.IndexExpr), V);
      break;
    case Expr::Kind::Unary:
      assert(Target.UnaryOp == '*' && "sema checked assignability");
      B.ptrStore(lowerExpr(*Target.Lhs), V);
      break;
    default:
      assert(false && "not an lvalue");
    }
  }

  //===------------------------------------------------------------------===
  // Expressions.
  //===------------------------------------------------------------------===

  Value *lowerExpr(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return M.constant(E.IntValue);
    case Expr::Kind::VarRef:
      if (E.Sym == SymbolKind::Param)
        return IRF.arg(E.ParamIndex);
      assert(E.Object && "unresolved variable survived sema");
      return B.load(E.Object);
    case Expr::Kind::FieldRef:
      return B.load(E.Object);
    case Expr::Kind::Index:
      return B.arrayLoad(E.Object, lowerExpr(*E.IndexExpr));
    case Expr::Kind::Unary: {
      if (E.UnaryOp == '*')
        return B.ptrLoad(lowerExpr(*E.Lhs));
      Value *V = lowerExpr(*E.Lhs);
      if (E.UnaryOp == '-')
        return B.sub(M.constant(0), V);
      assert(E.UnaryOp == '!' && "unknown unary operator");
      return B.cmpEQ(V, M.constant(0));
    }
    case Expr::Kind::AddrOf: {
      Value *Base = B.addrOf(E.Object);
      if (E.IndexExpr)
        return B.add(Base, lowerExpr(*E.IndexExpr));
      return Base;
    }
    case Expr::Kind::Binary:
      return B.binop(E.BinOp, lowerExpr(*E.Lhs), lowerExpr(*E.Rhs));
    case Expr::Kind::LogicalAnd:
    case Expr::Kind::LogicalOr:
      return lowerShortCircuit(E);
    case Expr::Kind::Call: {
      std::vector<Value *> Args;
      for (auto &A : E.Args)
        Args.push_back(lowerExpr(*A));
      return B.call(M.getFunction(E.Name), std::move(Args));
    }
    }
    assert(false && "unhandled expression kind");
    return M.constant(0);
  }

  /// Short-circuit evaluation through control flow and a compiler
  /// temporary (mem2reg turns the temporary into a phi).
  Value *lowerShortCircuit(Expr &E) {
    bool IsAnd = E.K == Expr::Kind::LogicalAnd;
    MemoryObject *Tmp =
        IRF.createLocal(IRF.uniqueValueName("sc"), MemoryObject::Kind::Local);

    Value *L = lowerExpr(*E.Lhs);
    Value *LBool = B.binop(BinOpKind::CmpNE, L, M.constant(0));
    B.store(Tmp, LBool);

    BasicBlock *RhsBB = IRF.createBlock(IsAnd ? "and.rhs" : "or.rhs");
    BasicBlock *JoinBB = IRF.createBlock(IsAnd ? "and.join" : "or.join");
    if (IsAnd)
      B.condBr(LBool, RhsBB, JoinBB);
    else
      B.condBr(LBool, JoinBB, RhsBB);

    B.setInsertPoint(RhsBB);
    Value *R = lowerExpr(*E.Rhs);
    Value *RBool = B.binop(BinOpKind::CmpNE, R, M.constant(0));
    B.store(Tmp, RBool);
    B.br(JoinBB);

    B.setInsertPoint(JoinBB);
    return B.load(Tmp);
  }
};

} // namespace

void srp::lowerProgram(ast::Program &P, Module &M,
                       const LoweringOptions &Opts) {
  for (auto &F : P.Functions) {
    srp::Function *IRF = M.getFunction(F->Name);
    assert(IRF && "sema did not declare the function");
    FunctionLowerer(M, *IRF, *F, Opts).run();
  }
}

std::unique_ptr<Module> srp::compileMiniC(const std::string &Source,
                                          std::vector<std::string> &Errors,
                                          const std::string &ModuleName,
                                          const LoweringOptions &Opts) {
  ast::Program P = parseProgram(Source, Errors);
  if (!Errors.empty())
    return nullptr;
  auto M = std::make_unique<Module>(ModuleName);
  auto SemaErrors = analyze(P, *M);
  Errors.insert(Errors.end(), SemaErrors.begin(), SemaErrors.end());
  if (!Errors.empty())
    return nullptr;
  lowerProgram(P, *M, Opts);
  return M;
}
