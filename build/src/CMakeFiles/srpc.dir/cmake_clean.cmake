file(REMOVE_RECURSE
  "CMakeFiles/srpc.dir/tools/srpc.cpp.o"
  "CMakeFiles/srpc.dir/tools/srpc.cpp.o.d"
  "srpc"
  "srpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
