file(REMOVE_RECURSE
  "libsrp_frontend.a"
)
