file(REMOVE_RECURSE
  "CMakeFiles/srp_frontend.dir/frontend/Lexer.cpp.o"
  "CMakeFiles/srp_frontend.dir/frontend/Lexer.cpp.o.d"
  "CMakeFiles/srp_frontend.dir/frontend/Lowering.cpp.o"
  "CMakeFiles/srp_frontend.dir/frontend/Lowering.cpp.o.d"
  "CMakeFiles/srp_frontend.dir/frontend/Parser.cpp.o"
  "CMakeFiles/srp_frontend.dir/frontend/Parser.cpp.o.d"
  "CMakeFiles/srp_frontend.dir/frontend/Sema.cpp.o"
  "CMakeFiles/srp_frontend.dir/frontend/Sema.cpp.o.d"
  "libsrp_frontend.a"
  "libsrp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
