# Empty compiler generated dependencies file for srp_frontend.
# This may be replaced when dependencies are built.
