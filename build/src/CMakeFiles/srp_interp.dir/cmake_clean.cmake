file(REMOVE_RECURSE
  "CMakeFiles/srp_interp.dir/interp/Interpreter.cpp.o"
  "CMakeFiles/srp_interp.dir/interp/Interpreter.cpp.o.d"
  "libsrp_interp.a"
  "libsrp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
