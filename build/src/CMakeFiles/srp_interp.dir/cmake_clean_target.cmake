file(REMOVE_RECURSE
  "libsrp_interp.a"
)
