file(REMOVE_RECURSE
  "CMakeFiles/srp_regalloc.dir/regalloc/Coloring.cpp.o"
  "CMakeFiles/srp_regalloc.dir/regalloc/Coloring.cpp.o.d"
  "CMakeFiles/srp_regalloc.dir/regalloc/Liveness.cpp.o"
  "CMakeFiles/srp_regalloc.dir/regalloc/Liveness.cpp.o.d"
  "libsrp_regalloc.a"
  "libsrp_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
