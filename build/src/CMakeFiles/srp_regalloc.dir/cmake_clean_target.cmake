file(REMOVE_RECURSE
  "libsrp_regalloc.a"
)
