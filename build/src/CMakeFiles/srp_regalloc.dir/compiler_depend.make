# Empty compiler generated dependencies file for srp_regalloc.
# This may be replaced when dependencies are built.
