
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/srp_ir.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/CFGEdit.cpp" "src/CMakeFiles/srp_ir.dir/ir/CFGEdit.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/CFGEdit.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/srp_ir.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/CMakeFiles/srp_ir.dir/ir/IRParser.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/IRParser.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/srp_ir.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/srp_ir.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/srp_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/CMakeFiles/srp_ir.dir/ir/Value.cpp.o" "gcc" "src/CMakeFiles/srp_ir.dir/ir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
