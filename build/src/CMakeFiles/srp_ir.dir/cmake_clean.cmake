file(REMOVE_RECURSE
  "CMakeFiles/srp_ir.dir/ir/BasicBlock.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/BasicBlock.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/CFGEdit.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/CFGEdit.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/Function.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/Function.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/IRParser.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/IRParser.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/Module.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/Module.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/srp_ir.dir/ir/Value.cpp.o"
  "CMakeFiles/srp_ir.dir/ir/Value.cpp.o.d"
  "libsrp_ir.a"
  "libsrp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
