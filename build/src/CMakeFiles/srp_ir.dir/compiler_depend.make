# Empty compiler generated dependencies file for srp_ir.
# This may be replaced when dependencies are built.
