file(REMOVE_RECURSE
  "libsrp_analysis.a"
)
