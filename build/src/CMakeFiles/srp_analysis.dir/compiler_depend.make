# Empty compiler generated dependencies file for srp_analysis.
# This may be replaced when dependencies are built.
