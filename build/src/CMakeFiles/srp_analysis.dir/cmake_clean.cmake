file(REMOVE_RECURSE
  "CMakeFiles/srp_analysis.dir/analysis/CFGCanonicalize.cpp.o"
  "CMakeFiles/srp_analysis.dir/analysis/CFGCanonicalize.cpp.o.d"
  "CMakeFiles/srp_analysis.dir/analysis/Dominators.cpp.o"
  "CMakeFiles/srp_analysis.dir/analysis/Dominators.cpp.o.d"
  "CMakeFiles/srp_analysis.dir/analysis/Intervals.cpp.o"
  "CMakeFiles/srp_analysis.dir/analysis/Intervals.cpp.o.d"
  "CMakeFiles/srp_analysis.dir/analysis/Verifier.cpp.o"
  "CMakeFiles/srp_analysis.dir/analysis/Verifier.cpp.o.d"
  "libsrp_analysis.a"
  "libsrp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
