# Empty compiler generated dependencies file for srp_pipeline.
# This may be replaced when dependencies are built.
