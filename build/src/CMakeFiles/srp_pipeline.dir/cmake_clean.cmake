file(REMOVE_RECURSE
  "CMakeFiles/srp_pipeline.dir/pipeline/Pipeline.cpp.o"
  "CMakeFiles/srp_pipeline.dir/pipeline/Pipeline.cpp.o.d"
  "libsrp_pipeline.a"
  "libsrp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
