file(REMOVE_RECURSE
  "libsrp_pipeline.a"
)
