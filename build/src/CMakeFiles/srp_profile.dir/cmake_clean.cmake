file(REMOVE_RECURSE
  "CMakeFiles/srp_profile.dir/profile/ProfileInfo.cpp.o"
  "CMakeFiles/srp_profile.dir/profile/ProfileInfo.cpp.o.d"
  "libsrp_profile.a"
  "libsrp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
