# Empty compiler generated dependencies file for srp_profile.
# This may be replaced when dependencies are built.
