file(REMOVE_RECURSE
  "libsrp_profile.a"
)
