# Empty dependencies file for srp_ssa.
# This may be replaced when dependencies are built.
