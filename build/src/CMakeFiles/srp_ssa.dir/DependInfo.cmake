
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssa/Mem2Reg.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/Mem2Reg.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/Mem2Reg.cpp.o.d"
  "/root/repo/src/ssa/MemoryOpt.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/MemoryOpt.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/MemoryOpt.cpp.o.d"
  "/root/repo/src/ssa/MemorySSA.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/MemorySSA.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/MemorySSA.cpp.o.d"
  "/root/repo/src/ssa/SSADestruction.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/SSADestruction.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/SSADestruction.cpp.o.d"
  "/root/repo/src/ssa/SSAUpdater.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/SSAUpdater.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/SSAUpdater.cpp.o.d"
  "/root/repo/src/ssa/ValueNumbering.cpp" "src/CMakeFiles/srp_ssa.dir/ssa/ValueNumbering.cpp.o" "gcc" "src/CMakeFiles/srp_ssa.dir/ssa/ValueNumbering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/srp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/srp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
