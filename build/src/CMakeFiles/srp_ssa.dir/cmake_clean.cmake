file(REMOVE_RECURSE
  "CMakeFiles/srp_ssa.dir/ssa/Mem2Reg.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/Mem2Reg.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/ssa/MemoryOpt.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/MemoryOpt.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/ssa/MemorySSA.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/MemorySSA.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/ssa/SSADestruction.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/SSADestruction.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/ssa/SSAUpdater.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/SSAUpdater.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/ssa/ValueNumbering.cpp.o"
  "CMakeFiles/srp_ssa.dir/ssa/ValueNumbering.cpp.o.d"
  "libsrp_ssa.a"
  "libsrp_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
