file(REMOVE_RECURSE
  "libsrp_ssa.a"
)
